// Known-bad fixture: <iostream> in a library layer (rule no-iostream),
// a raw assert (rule calib-check), and a naked new/delete pair (rule
// no-naked-new). The commented-out and string-literal occurrences below
// must NOT be flagged — the linter strips comments and strings first.
#include <cassert>   // calib-check finding (include form)
#include <iostream>  // no-iostream finding

// assert(false) in a comment is fine; so is "new Widget" in a comment.
const char* kDecoy = "assert(true) new delete #include <iostream>";

int compute(int x) {
  assert(x > 0);  // calib-check finding (call form)
  int* box = new int(x);  // no-naked-new finding
  const int y = *box;
  delete box;  // no-naked-new finding
  std::cout << y << '\n';
  return y;
}

file(REMOVE_RECURSE
  "CMakeFiles/test_alg3.dir/test_alg3.cpp.o"
  "CMakeFiles/test_alg3.dir/test_alg3.cpp.o.d"
  "test_alg3"
  "test_alg3.pdb"
  "test_alg3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alg3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Schedule serialization: persist a solved schedule (calendar +
// placements) as CSV and reload it byte-identically. Lets the CLI and
// downstream pipelines hand solved shifts between tools without
// re-solving.
//
// Format:
//   # T=<T> P=<machines> N=<jobs>
//   calibration,<machine>,<start>        (one per calibration)
//   placement,<job>,<machine>,<start>    (one per job)
#pragma once

#include <iosfwd>

#include "core/schedule.hpp"

namespace calib {

void save_schedule_csv(const Schedule& schedule, std::ostream& os);

/// Throws std::runtime_error on malformed input. The result is *not*
/// validated against any instance (callers pair it with the matching
/// instance file and call validate()).
Schedule load_schedule_csv(std::istream& is);

}  // namespace calib

// calib::obs — RAII spans and Chrome trace_event export.
//
// A ScopedSpan measures one scoped region (a sweep cell, one solver
// run, one DP curve). While the process-wide TraceCollector is enabled,
// the span's completed event — name, category, start, duration, small
// key/value args — lands in a bounded per-thread buffer; when the
// buffer fills, further events are counted as dropped rather than
// reallocating without bound. write_chrome_trace() emits the buffers as
// Chrome trace_event JSON ("ph":"X" complete events, one track per
// thread via tid + thread_name metadata) loadable in Perfetto or
// chrome://tracing; nesting falls out of time containment per track.
//
// Spans always measure time — even with the collector disabled (two
// steady_clock reads) and even with CALIBSCHED_OBS=0 — because the
// sweep engine uses the cell span as the single source of truth for the
// journal's wall_ms field.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"  // for the CALIBSCHED_OBS default
#include "util/sync.hpp"

namespace calib::obs {

/// Nanoseconds on the steady clock since the first call in the process
/// (one shared epoch, so timestamps compare across threads).
[[nodiscard]] std::uint64_t now_ns();

/// Fixed-size last-known-phase cell for crash forensics. The sandbox
/// (harness/sandbox.*) maps one of these MAP_SHARED before forking and
/// installs it in the child via set_phase_breadcrumb(); from then on
/// every ScopedSpan writes its name on entry and restores its parent's
/// on exit, so when the child dies on a signal the parent can read the
/// deepest span it was inside (e.g. "dp.flow_curve") straight off the
/// shared page. Present in both CALIBSCHED_OBS configurations — spans
/// always carry their name, and crash attribution must not disappear
/// with the metrics layer.
struct PhaseBreadcrumb {
  static constexpr std::size_t kCapacity = 96;
  char phase[kCapacity] = {};  ///< NUL-terminated, truncated to fit
};

/// Install (nullptr: remove) the process-wide breadcrumb sink. Intended
/// for the single-threaded sandbox child only: the span stack behind it
/// is deliberately unsynchronized, and the parent never installs one,
/// so multi-threaded processes pay exactly one branch per span.
void set_phase_breadcrumb(PhaseBreadcrumb* sink);

namespace detail {
void phase_enter(const char* name);
void phase_exit();
}  // namespace detail

/// One completed span, timestamped relative to the now_ns() epoch.
/// Defined in both CALIBSCHED_OBS configurations: the executor protocol
/// ships these across the coordinator pipe, and the wire codec must
/// compile (to a codec of empty chunks) even when the collector is a
/// no-op.
struct TraceEvent {
  std::string name;
  std::string cat;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// A drained slice of a collector: events plus the thread-name table
/// and the dropped count at drain time. What a worker ships per
/// heartbeat.
struct TraceChunk {
  std::vector<TraceEvent> events;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names;
  std::uint64_t dropped = 0;

  [[nodiscard]] bool empty() const { return events.empty() && dropped == 0; }
};

/// One remote process's accumulated trace, as the coordinator rebuilds
/// it from kTrace frames: timestamps already rebased onto the
/// coordinator's now_ns() clock via the per-worker offset estimated at
/// handshake (first chunk received).
struct ProcessTrace {
  int worker = -1;          ///< worker index (coordinator-assigned)
  std::int64_t pid = 0;     ///< the worker's real pid (trace labeling only)
  std::uint64_t now_ns = 0; ///< sender clock at encode time (offset source)
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names;
};

/// Merged Chrome trace_event JSON: the calling process's collector
/// (tracer()) becomes Perfetto process 1 ("coordinator"), each entry of
/// `workers` becomes its own process (2 + worker index) with one track
/// per worker thread. Coordinator "lease" spans and worker "cell" spans
/// carrying matching ("cell", "worker"/index) args are linked with flow
/// events ("ph":"s"/"f") keyed on (cell, attempt), so a lease in the
/// coordinator track points at the cell execution it paid for.
void write_merged_chrome_trace(std::ostream& os,
                               const std::vector<ProcessTrace>& workers);

#if CALIBSCHED_OBS

class TraceCollector {
 public:
  /// Per-thread buffer capacity; events past this are dropped (and
  /// counted), never reallocated — recording stays O(1) and bounded.
  static constexpr std::size_t kMaxEventsPerThread = 1 << 16;

  TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Recording is off by default; ScopedSpan checks this once at
  /// construction (a span straddling the flip records per its start).
  void set_enabled(bool enabled) { enabled_.store(enabled); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Label the calling thread's track ("worker-3") in the export.
  void set_thread_name(const std::string& name);

  void record(TraceEvent event);

  /// All buffered events merged and sorted by (ts, dur desc) — so a
  /// parent precedes the children it encloses even on timestamp ties.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// (tid, name) pairs for every thread that called set_thread_name,
  /// sorted by tid — the export's track labels.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::string>>
  thread_names() const;

  /// Remove and return everything buffered so far — events (unsorted),
  /// the thread-name table, and the dropped count (which resets).
  /// Incremental shipping: repeated drains partition the event stream,
  /// so a worker can ship its buffer piecewise inside heartbeats
  /// without double-sending. Events recorded concurrently with a drain
  /// land in either this chunk or the next, never both.
  [[nodiscard]] TraceChunk drain();

  /// Drop all buffered events (thread names and tids survive).
  void clear();

  /// Chrome trace_event JSON: thread_name metadata + "X" events, ts/dur
  /// in microseconds. Valid (possibly empty) JSON even when disabled.
  void write_chrome_trace(std::ostream& os) const;

 private:
  struct Buffer {
    calib::Mutex mutex;  // leaf lock; never held while taking mutex_
    std::uint32_t tid = 0;  // written once before publication, then
                            // read-only — needs no lock
    std::string name CALIB_GUARDED_BY(mutex);
    std::vector<TraceEvent> events CALIB_GUARDED_BY(mutex);
    std::uint64_t dropped CALIB_GUARDED_BY(mutex) = 0;
  };

  [[nodiscard]] Buffer& local_buffer();

  const std::uint64_t uid_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> next_tid_{0};
  // Lock hierarchy: mutex_ (the buffer list) is acquired first, each
  // Buffer::mutex second; readers copy the shared_ptr list under mutex_
  // and only then lock individual buffers.
  mutable calib::Mutex mutex_;
  std::vector<std::shared_ptr<Buffer>> buffers_ CALIB_GUARDED_BY(mutex_);
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a key/value annotation (shown under the span in Perfetto).
  /// No-op unless the collector was enabled when the span started.
  void arg(const char* key, std::string value);

  [[nodiscard]] std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) * 1e-6;
  }

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t start_;
  bool record_;
  std::vector<std::pair<std::string, std::string>> args_;
};

#else  // !CALIBSCHED_OBS

class TraceCollector {
 public:
  TraceCollector() = default;
  void set_enabled(bool) {}
  [[nodiscard]] bool enabled() const { return false; }
  void set_thread_name(const std::string&) {}
  void record(TraceEvent) {}
  [[nodiscard]] std::vector<TraceEvent> events() const { return {}; }
  [[nodiscard]] std::uint64_t dropped() const { return 0; }
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::string>>
  thread_names() const {
    return {};
  }
  [[nodiscard]] TraceChunk drain() { return {}; }
  void clear() {}
  void write_chrome_trace(std::ostream& os) const {
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n";
  }
};

/// Still a (near-free) timer: the sweep engine reads wall_ms off it.
/// Also still a phase marker — the sandbox's crash breadcrumb works in
/// the no-op configuration too.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* = "")
      : start_(now_ns()) {
    detail::phase_enter(name);
  }
  ~ScopedSpan() { detail::phase_exit(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  void arg(const char*, const std::string&) {}
  [[nodiscard]] std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) * 1e-6;
  }

 private:
  std::uint64_t start_;
};

#endif  // CALIBSCHED_OBS

/// The process-wide collector every ScopedSpan records into.
TraceCollector& tracer();

}  // namespace calib::obs

file(REMOVE_RECURSE
  "CMakeFiles/test_offline_dp.dir/test_offline_dp.cpp.o"
  "CMakeFiles/test_offline_dp.dir/test_offline_dp.cpp.o.d"
  "test_offline_dp"
  "test_offline_dp.pdb"
  "test_offline_dp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offline_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/offline/brute_force.cpp" "src/CMakeFiles/calibsched_offline.dir/offline/brute_force.cpp.o" "gcc" "src/CMakeFiles/calibsched_offline.dir/offline/brute_force.cpp.o.d"
  "/root/repo/src/offline/budget_search.cpp" "src/CMakeFiles/calibsched_offline.dir/offline/budget_search.cpp.o" "gcc" "src/CMakeFiles/calibsched_offline.dir/offline/budget_search.cpp.o.d"
  "/root/repo/src/offline/dp.cpp" "src/CMakeFiles/calibsched_offline.dir/offline/dp.cpp.o" "gcc" "src/CMakeFiles/calibsched_offline.dir/offline/dp.cpp.o.d"
  "/root/repo/src/offline/local_search.cpp" "src/CMakeFiles/calibsched_offline.dir/offline/local_search.cpp.o" "gcc" "src/CMakeFiles/calibsched_offline.dir/offline/local_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/calibsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/calibsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#include "core/schedule_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace calib {

void save_schedule_csv(const Schedule& schedule, std::ostream& os) {
  const Calendar& calendar = schedule.calendar();
  os << "# T=" << calendar.T() << " P=" << calendar.machines()
     << " N=" << schedule.size() << '\n';
  CsvWriter writer(os);
  for (MachineId m = 0; m < calendar.machines(); ++m) {
    for (const Time start : calendar.starts(m)) {
      writer.write_row({"calibration", std::to_string(m),
                        std::to_string(start)});
    }
  }
  for (JobId j = 0; j < schedule.size(); ++j) {
    const Placement& p = schedule.placement(j);
    writer.write_row({"placement", std::to_string(j),
                      std::to_string(p.machine),
                      std::to_string(p.start)});
  }
}

Schedule load_schedule_csv(std::istream& is) {
  std::string header;
  std::getline(is, header);
  Time T = 0;
  int machines = 0;
  int jobs = 0;
  {
    std::istringstream hs(header);
    std::string tag;
    std::string t_field;
    std::string p_field;
    std::string n_field;
    hs >> tag >> t_field >> p_field >> n_field;
    if (tag != "#" || t_field.rfind("T=", 0) != 0 ||
        p_field.rfind("P=", 0) != 0 || n_field.rfind("N=", 0) != 0) {
      throw std::runtime_error("schedule csv: bad header: " + header);
    }
    T = std::stoll(t_field.substr(2));
    machines = std::stoi(p_field.substr(2));
    jobs = std::stoi(n_field.substr(2));
  }
  if (T < 1 || machines < 1 || jobs < 0) {
    throw std::runtime_error("schedule csv: invalid header values");
  }
  Calendar calendar(T, machines);
  Schedule schedule(calendar, jobs);
  bool any_calibration = false;
  for (const auto& row : read_csv(is)) {
    if (row.empty()) continue;
    if (row[0] == "calibration") {
      if (row.size() != 3) {
        throw std::runtime_error("schedule csv: bad calibration row");
      }
      schedule.calendar().add(std::stoi(row[1]), std::stoll(row[2]));
      any_calibration = true;
    } else if (row[0] == "placement") {
      if (row.size() != 4) {
        throw std::runtime_error("schedule csv: bad placement row");
      }
      const int j = std::stoi(row[1]);
      if (j < 0 || j >= jobs) {
        throw std::runtime_error("schedule csv: placement job out of range");
      }
      schedule.place(static_cast<JobId>(j), std::stoi(row[2]),
                     std::stoll(row[3]));
    } else {
      throw std::runtime_error("schedule csv: unknown row kind " + row[0]);
    }
  }
  (void)any_calibration;  // zero-calibration schedules are legal (n = 0)
  return schedule;
}

}  // namespace calib

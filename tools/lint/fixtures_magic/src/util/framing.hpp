// Known-bad fixture: the canonical header defines the IPC magic twice —
// exactly the drift the single-definition check exists to catch.
#pragma once
#include <cstdint>

inline constexpr std::uint32_t kFrameMagic = 0x43414C42u;
inline constexpr std::uint32_t kFrameMagicLegacy = 0x43414C42u;

// The parallel sweep engine: run a SweepGrid's cross-product, emit
// structured rows.
//
// Design invariants (tested in tests/test_sweep.cpp):
//   * Determinism — every per-cell PRNG stream is derived from
//     (base_seed, cell coordinates) via fresh splitmix roots, rows are
//     stored at their cell index, and the writers can exclude wall-clock
//     fields; the JSONL/CSV output is then byte-identical at any thread
//     count.
//   * Instance sharing — all solvers and all G values of a given
//     (workload, seed) see the *same* instance, which is what makes
//     paired policy comparisons honest and lets the FlowCurveCache
//     compute the O(K n³) DP once per instance instead of once per cell.
//   * One result shape — each cell produces a SolveResult plus optional
//     opt/trace/extra columns, the same struct the CLI's `solve` prints.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/solve_result.hpp"
#include "harness/dp_cache.hpp"
#include "harness/grid.hpp"

namespace calib::harness {

/// One cell's structured result. Optional groups (opt, trace, extra) are
/// present iff the corresponding grid switch was on.
struct SweepRow {
  // Coordinates (deterministic; identify the cell independent of order).
  std::size_t cell = 0;
  std::size_t workload_index = 0;
  std::string workload;  ///< WorkloadSpec::label()
  std::string solver;
  Cost G = 0;
  int seed = 0;
  int jobs = 0;  ///< instance size

  SolveResult result;

  bool has_opt = false;
  Cost opt_cost = 0;
  int opt_k = 0;
  double ratio = 0.0;  ///< result.objective / opt_cost

  bool has_trace = false;
  int peak_queue = 0;
  double utilization = 0.0;

  bool has_extra = false;
  double extra = 0.0;
};

/// Wall-clock accounting for the whole sweep (never part of the
/// deterministic row serialization).
struct SweepTiming {
  double wall_seconds = 0.0;      ///< end-to-end engine time
  double cell_seconds = 0.0;      ///< sum of per-cell solve times
  std::size_t dp_cache_hits = 0;
  std::size_t dp_cache_misses = 0;
  double dp_seconds = 0.0;        ///< time inside DP computations
  std::size_t threads = 0;        ///< pool size actually used
};

struct SweepReport {
  std::vector<SweepRow> rows;  ///< always in cell order
  SweepTiming timing;
  std::string extra_metric_name;  ///< column name for SweepRow::extra

  /// One JSON object per row. `include_timing` adds the nondeterministic
  /// "wall_ms" field; leave it off when byte-stability matters.
  void write_jsonl(std::ostream& os, bool include_timing = false) const;
  /// Same rows as CSV with a header line; absent optionals are blank.
  void write_csv(std::ostream& os, bool include_timing = false) const;
  /// Human-readable timing digest (stderr material, not row data).
  [[nodiscard]] std::string timing_summary() const;
};

class SweepEngine {
 public:
  /// Validates the grid eagerly (unknown solver names, offline/opt with
  /// P > 1, empty axes) by throwing std::runtime_error.
  explicit SweepEngine(SweepGrid grid);

  /// Fan every cell across the pool (grid.threads == 0 → global_pool())
  /// and collect rows in cell order.
  [[nodiscard]] SweepReport run();

  [[nodiscard]] const SweepGrid& grid() const { return grid_; }

 private:
  [[nodiscard]] SweepRow run_cell(const CellCoords& coords,
                                  FlowCurveCache& cache) const;

  SweepGrid grid_;
};

}  // namespace calib::harness

file(REMOVE_RECURSE
  "CMakeFiles/camera_lab.dir/camera_lab.cpp.o"
  "CMakeFiles/camera_lab.dir/camera_lab.cpp.o.d"
  "camera_lab"
  "camera_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camera_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Known-good fixture for the policy-driver-isolation rule: a policy
// that consumes only the DriverHandle surface. The OnlineDriver mention
// in this comment (and in the string below) must not trip the rule.
#include "online/policy.hpp"

namespace calib {

const char* surface_note() {
  return "policies never name OnlineDriver";
}

void decide_via_handle(DriverHandle& handle) {
  if (handle.waiting_empty()) return;
  if (handle.queue_flow_from(handle.now() + 1, QueueOrder::kFifo) >=
      handle.G()) {
    handle.calibrate();
  }
}

}  // namespace calib

// Driver-backend equivalence: the incremental OnlineDriver must produce
// BYTE-IDENTICAL schedules and costs to the seed (legacy) driver for
// every registered policy, both adversary branches, and randomized
// chaos histories. The legacy backend is compiled behind
// CALIBSCHED_LEGACY_DRIVER for exactly this one-PR window; when it is
// compiled out these tests skip.
//
// Also home to the regression pins for the queries the rewrite made
// incremental (queue_flow_from, last_interval_flow, first_free_slot):
// the pinned integers are the seed driver's answers, asserted against
// both backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "online/adversary.hpp"
#include "online/driver.hpp"
#include "online/registry.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

#if CALIBSCHED_LEGACY_DRIVER
constexpr bool kHaveLegacy = true;
#else
constexpr bool kHaveLegacy = false;
#endif

void expect_identical_schedules(const Instance& instance, Cost G,
                                const Schedule& legacy,
                                const Schedule& incremental,
                                const std::string& label) {
  for (MachineId m = 0; m < instance.machines(); ++m) {
    ASSERT_EQ(legacy.calendar().starts(m), incremental.calendar().starts(m))
        << label << ": calendar diverged on machine " << m;
  }
  for (JobId j = 0; j < instance.size(); ++j) {
    ASSERT_EQ(legacy.is_placed(j), incremental.is_placed(j)) << label;
    if (!legacy.is_placed(j)) continue;
    ASSERT_EQ(legacy.placement(j).start, incremental.placement(j).start)
        << label << ": job " << j << " start diverged";
    ASSERT_EQ(legacy.placement(j).machine, incremental.placement(j).machine)
        << label << ": job " << j << " machine diverged";
  }
  ASSERT_EQ(legacy.online_cost(instance, G),
            incremental.online_cost(instance, G))
      << label;
}

/// Run `name` from the registry on both backends (fresh policy instance
/// each run, same params) and require identical realized schedules.
void expect_backend_equivalence(const std::string& name,
                                const Instance& instance, Cost G) {
  PolicyParams params;
  params.seed = 99;
  const auto legacy_policy = PolicyRegistry::instance().make(name, params);
  const auto incremental_policy =
      PolicyRegistry::instance().make(name, params);
  const Schedule legacy =
      run_online(instance, G, *legacy_policy, nullptr, nullptr,
                 DriverBackend::kLegacy);
  const Schedule incremental =
      run_online(instance, G, *incremental_policy, nullptr, nullptr,
                 DriverBackend::kIncremental);
  expect_identical_schedules(instance, G, legacy, incremental,
                             "policy " + name);
}

/// Single-machine-only policies (they CALIB_CHECK machines() == 1).
bool single_machine_only(const std::string& name) {
  static const std::vector<std::string> kSingle{
      "alg1", "alg1-noimm", "alg2", "alg2-lightest", "random"};
  return std::find(kSingle.begin(), kSingle.end(), name) != kSingle.end();
}

TEST(DriverEquiv, RegistryPoliciesSingleMachine) {
  if (!kHaveLegacy) GTEST_SKIP() << "legacy backend compiled out";
  Prng prng(4242);
  for (int trial = 0; trial < 4; ++trial) {
    const Instance instance = sparse_uniform_instance(
        /*jobs=*/30, /*span=*/80, /*T=*/5, /*machines=*/1,
        WeightModel::kZipf, /*w_max=*/9, prng);
    for (const std::string& name : PolicyRegistry::instance().names()) {
      if (name == "alg3" || name == "alg4") continue;  // multi-machine home
      expect_backend_equivalence(name, instance, /*G=*/11 + trial * 9);
    }
  }
}

TEST(DriverEquiv, RegistryPoliciesMultiMachine) {
  if (!kHaveLegacy) GTEST_SKIP() << "legacy backend compiled out";
  Prng prng(777);
  for (int trial = 0; trial < 4; ++trial) {
    const Instance instance = sparse_uniform_instance(
        /*jobs=*/40, /*span=*/60, /*T=*/4, /*machines=*/3,
        WeightModel::kBimodal, /*w_max=*/7, prng);
    for (const std::string& name : PolicyRegistry::instance().names()) {
      if (single_machine_only(name)) continue;
      expect_backend_equivalence(name, instance, /*G=*/8 + trial * 5);
    }
  }
}

TEST(DriverEquiv, AdversaryBranchesIdentical) {
  if (!kHaveLegacy) GTEST_SKIP() << "legacy backend compiled out";
  // Alg1 calibrates early (branch 1); ski-rental waits (branch 2);
  // sweep (G, T) so both code paths run at several shapes.
  for (const std::string name : {"alg1", "alg2", "ski", "eager"}) {
    for (const Cost G : {3, 9, 20}) {
      for (const Time T : {2, 5, 9}) {
        const auto legacy_policy = PolicyRegistry::instance().make(name);
        const auto incremental_policy = PolicyRegistry::instance().make(name);
        const AdversaryOutcome legacy = run_lower_bound_adversary(
            *legacy_policy, G, T, DriverBackend::kLegacy);
        const AdversaryOutcome incremental = run_lower_bound_adversary(
            *incremental_policy, G, T, DriverBackend::kIncremental);
        ASSERT_EQ(legacy.calibrated_at_zero, incremental.calibrated_at_zero)
            << name << " G=" << G << " T=" << T;
        ASSERT_EQ(legacy.algorithm_cost, incremental.algorithm_cost)
            << name << " G=" << G << " T=" << T;
        ASSERT_EQ(legacy.lemma_opt_cost, incremental.lemma_opt_cost);
        ASSERT_EQ(legacy.instance.size(), incremental.instance.size());
        for (JobId j = 0; j < legacy.instance.size(); ++j) {
          ASSERT_EQ(legacy.instance.job(j), incremental.instance.job(j));
        }
      }
    }
  }
}

/// The fuzz chaos policy, duplicated here with the empty-queue no-op
/// contract: identical PRNG draws on both backends (the legacy driver
/// polls decide() during empty-queue spans, the incremental one skips
/// them — returning before any draw keeps the streams aligned).
class ChaosPolicy final : public OnlinePolicy {
 public:
  explicit ChaosPolicy(std::uint64_t seed) : prng_(seed) {}
  [[nodiscard]] QueueOrder order() const override {
    return QueueOrder::kHeaviestFirst;
  }
  [[nodiscard]] bool assign_before_decide() const override { return true; }
  void decide(DriverHandle& handle) override {
    if (handle.waiting_empty()) return;
    while (prng_.bernoulli(0.35)) {
      const MachineId m = handle.calibrate();
      if (!handle.waiting_empty() && prng_.bernoulli(0.5)) {
        const auto pick = static_cast<std::size_t>(prng_.uniform_int(
            0, static_cast<std::int64_t>(handle.waiting_count()) - 1));
        const JobId j = handle.waiting_at(pick);
        const Time slot = handle.first_free_slot(
            m, std::max(handle.now(), handle.job(j).release),
            handle.now() + handle.T());
        if (slot != kUnscheduled) handle.assign(j, m, slot);
      }
      if (handle.calendar().count() > 512) break;
    }
  }
  [[nodiscard]] const char* name() const override { return "chaos"; }

 private:
  Prng prng_;
};

TEST(DriverEquiv, ChaosFuzzIdenticalAcrossBackends) {
  if (!kHaveLegacy) GTEST_SKIP() << "legacy backend compiled out";
  Prng prng(20110519);
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    const Instance instance = sparse_uniform_instance(
        /*jobs=*/25, /*span=*/70, /*T=*/4, /*machines=*/2,
        WeightModel::kUniform, /*w_max=*/9, prng);
    ChaosPolicy legacy_policy(trial * 6151 + 3);
    ChaosPolicy incremental_policy(trial * 6151 + 3);
    const Schedule legacy =
        run_online(instance, /*G=*/6, legacy_policy, nullptr, nullptr,
                   DriverBackend::kLegacy);
    const Schedule incremental =
        run_online(instance, /*G=*/6, incremental_policy, nullptr, nullptr,
                   DriverBackend::kIncremental);
    expect_identical_schedules(instance, 6, legacy, incremental,
                               "chaos trial " + std::to_string(trial));
  }
}

// ---- Regression pins for the incrementalized queries -------------------

/// Policy that never acts; lets tests drive the driver by hand.
class NullPolicy final : public OnlinePolicy {
 public:
  void decide(DriverHandle&) override {}
  [[nodiscard]] const char* name() const override { return "null"; }
};

/// Calibrates whenever uncovered with jobs waiting (test_driver's
/// PromptPolicy).
class PromptPolicy final : public OnlinePolicy {
 public:
  void decide(DriverHandle& handle) override {
    if (handle.waiting_empty()) return;
    for (MachineId m = 0; m < handle.machines(); ++m) {
      if (handle.calibrated(m, handle.now())) return;
    }
    handle.calibrate();
  }
  [[nodiscard]] const char* name() const override { return "prompt"; }
};

class DriverEquivPins : public ::testing::TestWithParam<DriverBackend> {};

TEST_P(DriverEquivPins, QueueFlowFromStaggeredReleases) {
  NullPolicy policy;
  OnlineDriver driver(/*T=*/6, /*machines=*/1, /*G=*/1000, policy,
                      GetParam());
  driver.add_job(2);   // r=0
  driver.add_job(5);   // r=0
  driver.step();
  driver.add_job(5);   // r=1 (tie weight with job 1 — arrival breaks it)
  driver.step();
  driver.add_job(1);   // r=2
  // Seed-driver answers, computed by the O(n log n) sort-and-scan:
  // FIFO from 4: 2*5 + 5*6 + 5*6 + 1*6 = 76.
  EXPECT_EQ(driver.queue_flow_from(4, QueueOrder::kFifo), 76);
  // Heaviest: 5(r0)@4, 5(r1)@5, 2(r0)@6, 1(r2)@7 -> 25+25+14+6 = 70.
  EXPECT_EQ(driver.queue_flow_from(4, QueueOrder::kHeaviestFirst), 70);
  // Lightest: 1(r2)@4, 2(r0)@5, 5(r0)@6, 5(r1)@7 -> 3+12+35+35 = 85.
  EXPECT_EQ(driver.queue_flow_from(4, QueueOrder::kLightestFirst), 85);
}

TEST_P(DriverEquivPins, LastIntervalFlowTracksOnlyLatestInterval) {
  PromptPolicy policy;
  OnlineDriver driver(/*T=*/3, /*machines=*/1, /*G=*/100, policy,
                      GetParam());
  EXPECT_EQ(driver.last_interval_flow(), -1);
  driver.add_job(2);
  driver.add_job(3);
  driver.step();  // calibrate at 0, heaviest (w=3) runs at 0: flow 3
  EXPECT_EQ(driver.last_interval_flow(), 3);
  driver.step();  // w=2 runs at 1: flow 2*(1+1-0)=4, same interval
  EXPECT_EQ(driver.last_interval_flow(), 7);
  driver.step();
  driver.add_job(4);
  driver.step();  // new interval at t=3; job runs at 3: flow 4
  EXPECT_EQ(driver.last_interval_flow(), 4);
}

TEST_P(DriverEquivPins, FirstFreeSlotSkipsBookedAndUncovered) {
  PromptPolicy policy;
  OnlineDriver driver(/*T=*/4, /*machines=*/1, /*G=*/100, policy,
                      GetParam());
  driver.add_job(1);
  driver.add_job(1);
  driver.step();  // calibrates [0,4); slots 0 occupied
  // Slot 0 booked at t=0; one job remains, auto-assigned at t=1 next
  // step. Before that, the first free covered slot from 0 is 1.
  EXPECT_EQ(driver.first_free_slot(0, 0, 10), 1);
  driver.step();  // second job placed at 1
  EXPECT_EQ(driver.first_free_slot(0, 0, 10), 2);
  EXPECT_EQ(driver.first_free_slot(0, 3, 10), 3);
  // [4, 10) is uncovered: no slot.
  EXPECT_EQ(driver.first_free_slot(0, 4, 10), kUnscheduled);
  // Window entirely before coverage start has covered slots only in
  // the intersection.
  EXPECT_EQ(driver.first_free_slot(0, 2, 3), 2);
  EXPECT_EQ(driver.first_free_slot(0, 0, 1), kUnscheduled);  // 0 booked
}

#if CALIBSCHED_LEGACY_DRIVER
INSTANTIATE_TEST_SUITE_P(BothBackends, DriverEquivPins,
                         ::testing::Values(DriverBackend::kIncremental,
                                           DriverBackend::kLegacy),
                         [](const auto& param_info) {
                           return param_info.param ==
                                          DriverBackend::kIncremental
                                      ? "incremental"
                                      : "legacy";
                         });
#else
INSTANTIATE_TEST_SUITE_P(Incremental, DriverEquivPins,
                         ::testing::Values(DriverBackend::kIncremental),
                         [](const auto&) { return std::string("incremental"); });
#endif

// ---- Event-driven advance semantics ------------------------------------

TEST(DriverEquiv, AdvanceToSkipsIdleSpans) {
  NullPolicy policy;
  OnlineDriver driver(/*T=*/3, /*machines=*/1, /*G=*/5, policy);
  EXPECT_EQ(driver.now(), 0);
  driver.advance_to(17);
  EXPECT_EQ(driver.now(), 17);
  driver.advance_to(17);  // no-op
  EXPECT_EQ(driver.now(), 17);
}

TEST(DriverEquivDeath, AdvanceToRequiresEmptyQueue) {
  NullPolicy policy;
  OnlineDriver driver(/*T=*/3, /*machines=*/1, /*G=*/5, policy);
  driver.add_job(1);
  EXPECT_DEATH(driver.advance_to(5), "waiting jobs");
  EXPECT_DEATH(driver.advance_to(-1), "backwards");
}

TEST(DriverEquiv, RunOnlineSkipsLongGapsAndMatchesStepping) {
  if (!kHaveLegacy) GTEST_SKIP() << "legacy backend compiled out";
  // A widely spaced instance: the incremental run advances across the
  // gaps while the legacy run ticks through them; results must agree.
  std::vector<Job> jobs{{0, 3}, {1000, 1}, {5000, 7}, {5000, 2}};
  const Instance instance(jobs, /*T=*/4, /*machines=*/1);
  const auto legacy_policy = PolicyRegistry::instance().make("alg2");
  const auto incremental_policy = PolicyRegistry::instance().make("alg2");
  const Schedule legacy =
      run_online(instance, /*G=*/7, *legacy_policy, nullptr, nullptr,
                 DriverBackend::kLegacy);
  const Schedule incremental =
      run_online(instance, /*G=*/7, *incremental_policy, nullptr, nullptr,
                 DriverBackend::kIncremental);
  expect_identical_schedules(instance, 7, legacy, incremental,
                             "sparse gaps");
}

}  // namespace
}  // namespace calib

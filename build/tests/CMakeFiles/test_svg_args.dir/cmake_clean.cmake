file(REMOVE_RECURSE
  "CMakeFiles/test_svg_args.dir/test_svg_args.cpp.o"
  "CMakeFiles/test_svg_args.dir/test_svg_args.cpp.o.d"
  "test_svg_args"
  "test_svg_args.pdb"
  "test_svg_args[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svg_args.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Offline optimum of the *online* objective G * #calibrations + flow,
// computed from the Section 4 DP (the paper's Section 4 remark: the
// budget problem generalizes the cost problem; search over K).
//
// Two searches are provided:
//   * exhaustive — evaluate G*k + F(k) for every k in [1, n]; exact.
//   * binary     — the paper's suggested binary search on the marginal
//     value of a calibration; exact when F is convex in k. The test
//     suite and bench E8 compare the two, probing the footnote's claim.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/solve_result.hpp"
#include "core/types.hpp"

namespace calib {

struct BudgetSearchResult {
  int best_k = 0;        ///< optimal calibration count
  Cost best_cost = 0;    ///< G * best_k + F(best_k)
  std::vector<Cost> flow_curve;  ///< F(k) for k = 0..n (kInfeasible entries)
};

/// Exact offline optimum of the online objective (P = 1; releases are
/// normalized internally). Requires a nonempty instance.
BudgetSearchResult offline_online_optimum(const Instance& instance, Cost G);

/// The footnote-5 binary search: assumes the marginal flow saving of an
/// extra calibration is non-increasing, finds the first k where an extra
/// calibration stops paying for itself.
BudgetSearchResult offline_online_optimum_binary(const Instance& instance,
                                                 Cost G);

/// The exhaustive offline optimum as a uniform SolveResult (solver name
/// "offline-opt"; best_k doubles as the calibration count).
SolveResult offline_optimum_result(const Instance& instance, Cost G);

}  // namespace calib

// Summary statistics for experiment reporting.
//
// Accumulates samples and reports mean / min / max / percentiles /
// standard deviation. Percentiles use the nearest-rank method on the
// sorted sample; exact enough for benchmark tables.
#pragma once

#include <cstddef>
#include <vector>

namespace calib {

class Summary {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;  // sample stddev (n-1)
  /// p in [0, 100]; nearest-rank percentile.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Ordinary least squares fit of y = a + b*x; returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

/// Fit y = c * x^p through log-log regression (requires positive data);
/// returns {c, p, r2 of the log-log fit}. Used to verify the DP's
/// O(K n^3) scaling empirically.
struct PowerFit {
  double coeff = 0.0;
  double exponent = 0.0;
  double r2 = 0.0;
};
PowerFit fit_power(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace calib

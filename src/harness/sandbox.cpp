#include "harness/sandbox.hpp"

#include <signal.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <new>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/sync.hpp"

namespace calib::harness {
namespace {

// Serializes pipe()+fork()+close(write end in parent): without this, a
// cell forked concurrently on another pool thread would inherit this
// pipe's write end, and the parent would never see EOF after this
// child's death. (fork is cheap; the children run outside the lock.)
Mutex& fork_mutex() {
  static Mutex mutex;
  return mutex;
}

// calib-lint: signal-safe-begin
// Runs in the forked child between fork() and _exit(): only
// async-signal-safe calls (calib::write_all — a write(2) loop with
// EINTR retry, no heap, no stdio, no locks). Checked by
// tools/lint/calib_lint.py (rule fork-child-signal-safety).
//
// The child's terminal path: ship the pre-serialized frame and die.
// Nothing here may allocate, lock, use stdio, or run atexit handlers —
// the child of a multi-threaded fork may hold no heap/stdio locks, and
// any non-async-signal-safe call can deadlock on one another thread
// held at fork time. `frame` was fully assembled before this is called.
[[noreturn]] void child_exit_with_frame(int write_fd, int code,
                                        const char* frame,
                                        std::size_t frame_size) {
  if (code == 0 && !write_all(write_fd, frame, frame_size)) code = 13;
  ::close(write_fd);
  // _exit, not exit: no atexit handlers, no static destructors — the
  // child shares the parent's registries and must not tear them down.
  ::_exit(code);
}
// calib-lint: signal-safe-end

void apply_rlimit(int resource, std::uint64_t bytes) {
  if (bytes == 0) return;
  rlimit limit;
  limit.rlim_cur = static_cast<rlim_t>(bytes);
  limit.rlim_max = static_cast<rlim_t>(bytes);
  // Failure to tighten a limit is not fatal: the cell then merely runs
  // uncapped, exactly like the non-sandboxed path.
  (void)::setrlimit(resource, &limit);
}

[[noreturn]] void child_main(int write_fd, obs::PhaseBreadcrumb* crumb,
                             const SandboxLimits& limits,
                             const std::function<std::string()>& job) {
  apply_rlimit(RLIMIT_AS, limits.memory_bytes);
  apply_rlimit(RLIMIT_STACK, limits.stack_bytes);
  if (crumb != nullptr) obs::set_phase_breadcrumb(crumb);

  // The job itself is ordinary C++ — it allocates, locks, and throws.
  // Running it in the child of a multi-threaded fork is sound only
  // because the parent serializes the fork window (fork_mutex) and
  // pre-registers every metric handle the job records into
  // (sandbox_metrics_warmup), so no inherited lock can be held at fork
  // time — see the header comment. The frame (magic, length, payload)
  // is pre-serialized into one contiguous buffer *here*, while the heap
  // is still fair game, so that the terminal path below stays purely
  // async-signal-safe.
  std::string frame;
  int code = 0;
  try {
    const std::string payload = job();
    if (payload.size() > kMaxFrameBytes) {
      code = 14;
    } else {
      const std::uint32_t magic = kFrameMagic;
      const auto length = static_cast<std::uint32_t>(payload.size());
      frame.reserve(sizeof magic + sizeof length + payload.size());
      frame.append(reinterpret_cast<const char*>(&magic), sizeof magic);
      frame.append(reinterpret_cast<const char*>(&length), sizeof length);
      frame.append(payload);
    }
  } catch (...) {
    // The sweep's run_cell converts everything to a row before it gets
    // here; an escaping exception is a harness bug, not a cell outcome.
    code = 12;
  }
  child_exit_with_frame(write_fd, code, frame.data(), frame.size());
}

double elapsed_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Handles resolved through functions so sandbox_metrics_warmup() can
// force registration (which takes the registry mutex) before any fork:
// a child forked while another thread holds that mutex would inherit it
// locked and deadlock on its own first metric call.
const obs::Counter& fork_counter() {
  static const obs::Counter forks = obs::metrics().counter("sandbox.forks");
  return forks;
}

const obs::Counter& watchdog_counter() {
  static const obs::Counter kills =
      obs::metrics().counter("sandbox.watchdog_kills");
  return kills;
}

}  // namespace

void sandbox_metrics_warmup() {
  (void)fork_counter();
  (void)watchdog_counter();
}

std::string signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGKILL: return "SIGKILL";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    case SIGXCPU: return "SIGXCPU";
    case SIGPIPE: return "SIGPIPE";
    default: return "signal " + std::to_string(sig);
  }
}

SandboxOutcome run_in_sandbox(const std::function<std::string()>& job,
                              const SandboxLimits& limits) {
  SandboxOutcome outcome;

  // One PhaseBreadcrumb on a MAP_SHARED page: the child's spans write
  // it, the parent reads it after reaping. Failure to map just loses
  // the phase annotation, never the sandbox.
  void* page =
      ::mmap(nullptr, sizeof(obs::PhaseBreadcrumb), PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  obs::PhaseBreadcrumb* crumb =
      page == MAP_FAILED ? nullptr : new (page) obs::PhaseBreadcrumb{};

  int pipe_fds[2] = {-1, -1};
  pid_t pid = -1;
  {
    const MutexLock lock(fork_mutex());
    if (::pipe(pipe_fds) != 0) {
      outcome.detail = std::string("sandbox: pipe failed: ") +
                       std::strerror(errno);
      if (crumb != nullptr) ::munmap(page, sizeof(obs::PhaseBreadcrumb));
      return outcome;
    }
    pid = ::fork();
    if (pid == 0) {
      ::close(pipe_fds[0]);
      child_main(pipe_fds[1], crumb, limits, job);  // never returns
    }
    ::close(pipe_fds[1]);
    if (pid < 0) {
      outcome.detail = std::string("sandbox: fork failed: ") +
                       std::strerror(errno);
      ::close(pipe_fds[0]);
      if (crumb != nullptr) ::munmap(page, sizeof(obs::PhaseBreadcrumb));
      return outcome;
    }
  }
  fork_counter().add();

  // Drain the pipe until the frame is complete or the child dies; kill
  // at the watchdog deadline. Because the fork window is serialized and
  // the parent closed its write end, child death always produces EOF.
  const auto start = std::chrono::steady_clock::now();
  bool killed_by_watchdog = false;
  std::string frame;
  bool frame_done = false;
  bool eof = false;
  char buffer[4096];
  while (!eof && !frame_done) {
    int timeout_ms = -1;
    if (limits.watchdog_ms > 0.0 && !killed_by_watchdog) {
      const double remaining = limits.watchdog_ms - elapsed_ms_since(start);
      if (remaining <= 0.0) {
        ::kill(pid, SIGKILL);
        killed_by_watchdog = true;
        watchdog_counter().add();
        timeout_ms = -1;  // SIGKILL guarantees EOF shortly
      } else {
        timeout_ms = static_cast<int>(remaining) + 1;
      }
    }
    const int ready = wait_readable(pipe_fds[0], timeout_ms);
    if (ready < 0) break;
    if (ready == 0) continue;  // deadline check at loop top
    const ssize_t n = read_some(pipe_fds[0], buffer, sizeof buffer);
    if (n < 0) break;
    if (n == 0) {
      eof = true;
      break;
    }
    frame.append(buffer, static_cast<std::size_t>(n));
    if (frame.size() >= 2 * sizeof(std::uint32_t)) {
      std::uint32_t magic = 0;
      std::uint32_t length = 0;
      std::memcpy(&magic, frame.data(), sizeof magic);
      std::memcpy(&length, frame.data() + sizeof magic, sizeof length);
      if (magic != kFrameMagic || length > kMaxFrameBytes) {
        break;  // protocol breakage; reap and report below
      }
      frame_done = frame.size() >= 2 * sizeof(std::uint32_t) + length;
    }
  }
  ::close(pipe_fds[0]);

  // The child is at _exit (frame complete / EOF) or SIGKILLed, so a
  // blocking reap terminates promptly.
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }

  if (crumb != nullptr) {
    crumb->phase[obs::PhaseBreadcrumb::kCapacity - 1] = '\0';
    outcome.phase = crumb->phase;
    ::munmap(page, sizeof(obs::PhaseBreadcrumb));
  }

  if (killed_by_watchdog) {
    outcome.kind = SandboxOutcome::Kind::kWatchdog;
    return outcome;
  }
  if (WIFSIGNALED(status)) {
    outcome.kind = SandboxOutcome::Kind::kSignal;
    outcome.signal = WTERMSIG(status);
    return outcome;
  }
  const int exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 255;
  if (exit_code != 0) {
    outcome.kind = SandboxOutcome::Kind::kExit;
    outcome.exit_code = exit_code;
    return outcome;
  }
  if (!frame_done) {
    outcome.detail = "sandbox: child exited 0 without a complete frame";
    return outcome;
  }
  std::uint32_t length = 0;
  std::memcpy(&length, frame.data() + sizeof(std::uint32_t), sizeof length);
  outcome.kind = SandboxOutcome::Kind::kOk;
  outcome.payload = frame.substr(2 * sizeof(std::uint32_t), length);
  return outcome;
}

}  // namespace calib::harness

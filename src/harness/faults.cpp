#include "harness/faults.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "util/prng.hpp"

namespace calib::harness {
namespace {

struct KindRef {
  FaultPlan::Action action;
  const std::vector<std::size_t>* cells;
  double probability;
};

// Enum order; both the listed-cell check and the cumulative draw walk
// this table, so precedence and band layout stay in one place.
std::array<KindRef, 6> kinds(const FaultPlan& plan) {
  return {{
      {FaultPlan::Action::kThrow, &plan.throw_cells, plan.throw_probability},
      {FaultPlan::Action::kTimeout, &plan.timeout_cells,
       plan.timeout_probability},
      {FaultPlan::Action::kSegv, &plan.segv_cells, plan.segv_probability},
      {FaultPlan::Action::kAbort, &plan.abort_cells, plan.abort_probability},
      {FaultPlan::Action::kHang, &plan.hang_cells, plan.hang_probability},
      {FaultPlan::Action::kCorrupt, &plan.corrupt_cells,
       plan.corrupt_probability},
  }};
}

}  // namespace

bool FaultPlan::empty() const {
  for (const KindRef& kind : kinds(*this)) {
    if (!kind.cells->empty() || kind.probability != 0.0) return false;
  }
  return true;
}

bool FaultPlan::has_crash_kinds() const {
  return !segv_cells.empty() || !abort_cells.empty() || !hang_cells.empty() ||
         segv_probability > 0.0 || abort_probability > 0.0 ||
         hang_probability > 0.0;
}

bool FaultPlan::has_hangs() const {
  return !hang_cells.empty() || hang_probability > 0.0;
}

FaultPlan::Action FaultPlan::action(const CellCoords& coords) const {
  const auto table = kinds(*this);
  for (const KindRef& kind : table) {
    if (std::find(kind.cells->begin(), kind.cells->end(), coords.index) !=
        kind.cells->end()) {
      return kind.action;
    }
  }
  double total = 0.0;
  for (const KindRef& kind : table) total += kind.probability;
  if (total == 0.0) return Action::kNone;
  // Fresh root per cell, exactly like the instance/policy streams: the
  // draw depends only on (seed, cell index), never on evaluation order.
  Prng root(seed);
  Prng stream = root.split(coords.index);
  const double draw = stream.uniform01();
  double cumulative = 0.0;
  for (const KindRef& kind : table) {
    cumulative += kind.probability;
    if (draw < cumulative) return kind.action;
  }
  return Action::kNone;
}

void FaultPlan::validate() const {
  double total = 0.0;
  for (const KindRef& kind : kinds(*this)) {
    if (kind.probability < 0.0 || kind.probability > 1.0) {
      throw std::runtime_error(
          "fault plan: probabilities must lie in [0, 1] and sum to <= 1");
    }
    total += kind.probability;
  }
  if (total > 1.0) {
    throw std::runtime_error(
        "fault plan: probabilities must lie in [0, 1] and sum to <= 1");
  }
}

}  // namespace calib::harness

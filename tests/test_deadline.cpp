// The deadline-world baseline (SPAA'13 model, experiment E10): EDF
// optimality for feasibility, lazy binning vs the exact solver, and
// the push-late candidate restriction vs full exhaustive search.
#include <gtest/gtest.h>

#include <functional>

#include "deadline/edf.hpp"
#include "deadline/min_calibrations.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

/// Exhaustive feasibility: does ANY injective assignment of jobs to
/// calibrated slots meet every deadline? Ground truth for EDF.
bool exhaustive_feasible(const DeadlineInstance& instance,
                         const Calendar& calendar) {
  const auto slots = calendar.slots();
  std::vector<bool> used(slots.size(), false);
  std::function<bool(JobId)> recurse = [&](JobId j) -> bool {
    if (j == instance.size()) return true;
    const DeadlineJob& job = instance.job(j);
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (used[s] || slots[s].time < job.release ||
          slots[s].time >= job.deadline) {
        continue;
      }
      used[s] = true;
      if (recurse(j + 1)) return true;
      used[s] = false;
    }
    return false;
  };
  return recurse(0);
}

TEST(DeadlineInstance, SortsByDeadline) {
  const DeadlineInstance instance(
      {DeadlineJob{3, 9}, DeadlineJob{0, 4}, DeadlineJob{1, 4}}, 3);
  EXPECT_EQ(instance.job(0).deadline, 4);
  EXPECT_EQ(instance.job(0).release, 0);
  EXPECT_EQ(instance.job(2).deadline, 9);
  EXPECT_EQ(instance.max_deadline(), 9);
  EXPECT_EQ(instance.min_release(), 0);
}

TEST(DeadlineInstance, RejectsEmptyWindow) {
  EXPECT_DEATH(DeadlineInstance({DeadlineJob{3, 3}}, 2),
               "cannot fit a unit job");
}

TEST(Edf, SchedulesTightJobFirst) {
  const DeadlineInstance instance(
      {DeadlineJob{0, 2}, DeadlineJob{0, 10}}, 4);
  Calendar calendar(4, 1);
  calendar.add(0, 0);
  const EdfResult result = edf_schedule(instance, calendar);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.start[0], 0);  // deadline-2 job takes the first slot
  EXPECT_EQ(result.start[1], 1);
}

TEST(Edf, ReportsMissedJobs) {
  const DeadlineInstance instance(
      {DeadlineJob{0, 2}, DeadlineJob{0, 2}}, 4);
  Calendar calendar(4, 1);
  calendar.add(0, 1);  // only slot 1 lands before both deadlines
  const EdfResult result = edf_schedule(instance, calendar);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.missed.size(), 1u);
}

TEST(Edf, JobsWithNoSlotAtAllAreMissed) {
  const DeadlineInstance instance({DeadlineJob{10, 12}}, 3);
  Calendar calendar(3, 1);
  calendar.add(0, 0);
  EXPECT_FALSE(edf_feasible(instance, calendar));
}

TEST(Edf, MatchesExhaustiveFeasibilityOnRandomInstances) {
  Prng prng(1401);
  for (int trial = 0; trial < 120; ++trial) {
    const DeadlineInstance instance =
        deadline_uniform_instance(5, 8, 3, 5, prng);
    std::vector<Time> starts;
    const auto calibrations = static_cast<int>(prng.uniform_int(1, 3));
    for (int c = 0; c < calibrations; ++c) {
      starts.push_back(prng.uniform_int(-2, 10));
    }
    const Calendar calendar = Calendar::round_robin(starts, 3, 1);
    EXPECT_EQ(edf_feasible(instance, calendar),
              exhaustive_feasible(instance, calendar))
        << instance.to_string() << ' ' << calendar.to_string();
  }
}

TEST(MinCalibrations, SingleJobNeedsOne) {
  const DeadlineInstance instance({DeadlineJob{2, 5}}, 4);
  const auto lazy = lazy_binning(instance);
  ASSERT_TRUE(lazy.has_value());
  EXPECT_EQ(lazy->count(), 1);
  const auto exact = min_calibrations_exact(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->count(), 1);
}

TEST(MinCalibrations, LazyPushesIntervalLate) {
  // One job with window [0, 10), T = 4: the lazy interval should start
  // as late as possible (9), not at the release.
  const DeadlineInstance instance({DeadlineJob{0, 10}}, 4);
  const auto lazy = lazy_binning(instance);
  ASSERT_TRUE(lazy.has_value());
  ASSERT_EQ(lazy->count(), 1);
  EXPECT_EQ(lazy->starts(0).front(), 9);
}

TEST(MinCalibrations, TwoDistantJobsNeedTwo) {
  const DeadlineInstance instance(
      {DeadlineJob{0, 2}, DeadlineJob{50, 52}}, 3);
  const auto exact = min_calibrations_exact(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->count(), 2);
}

TEST(MinCalibrations, SharedWindowBatchesIntoOne) {
  const DeadlineInstance instance(
      {DeadlineJob{0, 6}, DeadlineJob{1, 6}, DeadlineJob{2, 6}}, 3);
  const auto exact = min_calibrations_exact(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->count(), 1);
}

TEST(MinCalibrations, OverfullWindowInfeasible) {
  // Three unit jobs all in window [0, 2): impossible on one machine.
  const DeadlineInstance instance(
      {DeadlineJob{0, 2}, DeadlineJob{0, 2}, DeadlineJob{0, 2}}, 4);
  EXPECT_FALSE(min_calibrations_exact(instance).has_value());
  EXPECT_FALSE(lazy_binning(instance).has_value());
}

struct DeadlineSweepParams {
  int jobs;
  Time span;
  Time T;
  Time window_max;
  int trials;
  std::uint64_t seed;
};

class DeadlineSweep
    : public ::testing::TestWithParam<DeadlineSweepParams> {};

// The counterexample that killed the tempting push-late candidate
// restriction (see min_calibrations.hpp): starts { d - 1, d - 2 } alone
// cannot serve three jobs ending at 4 with T = 2; the optimum needs an
// interval at 1.
TEST(MinCalibrations, BlockLockingCounterexample) {
  const DeadlineInstance instance(
      {DeadlineJob{0, 4}, DeadlineJob{1, 4}, DeadlineJob{2, 4}}, 2);
  const auto exact = min_calibrations_exact(instance);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->count(), 2);
  Calendar restricted(2, 1);
  restricted.add(0, 2);
  restricted.add(0, 3);
  EXPECT_FALSE(edf_feasible(instance, restricted));
}

// Exact solver witnesses are genuinely feasible and match the EDF
// oracle across randomized instances.
TEST_P(DeadlineSweep, ExactWitnessIsFeasible) {
  const auto& p = GetParam();
  Prng prng(p.seed);
  for (int trial = 0; trial < p.trials; ++trial) {
    const DeadlineInstance instance = deadline_uniform_instance(
        p.jobs, p.span, p.T, p.window_max, prng);
    const auto exact = min_calibrations_exact(instance);
    if (!exact.has_value()) continue;
    EXPECT_TRUE(edf_feasible(instance, *exact)) << instance.to_string();
    // Minimality: one fewer calibration must be infeasible.
    EXPECT_FALSE(
        min_calibrations_exact(instance, exact->count() - 1).has_value())
        << instance.to_string();
  }
}

// Lazy binning reproduces the exact optimum (Bender et al.'s headline
// claim for the single-machine case).
TEST_P(DeadlineSweep, LazyBinningMatchesExact) {
  const auto& p = GetParam();
  Prng prng(p.seed + 1);
  for (int trial = 0; trial < p.trials; ++trial) {
    const DeadlineInstance instance = deadline_uniform_instance(
        p.jobs, p.span, p.T, p.window_max, prng);
    const auto lazy = lazy_binning(instance);
    const auto exact = min_calibrations_exact(instance);
    ASSERT_EQ(lazy.has_value(), exact.has_value()) << instance.to_string();
    if (lazy.has_value()) {
      EXPECT_TRUE(edf_feasible(instance, *lazy)) << instance.to_string();
      EXPECT_EQ(lazy->count(), exact->count()) << instance.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeadlineSweep,
    ::testing::Values(DeadlineSweepParams{3, 6, 2, 4, 30, 1501},
                      DeadlineSweepParams{4, 8, 2, 5, 25, 1502},
                      DeadlineSweepParams{4, 8, 3, 6, 25, 1503},
                      DeadlineSweepParams{5, 10, 3, 5, 15, 1504},
                      DeadlineSweepParams{5, 9, 4, 7, 15, 1505},
                      DeadlineSweepParams{6, 12, 2, 6, 10, 1506}));

}  // namespace
}  // namespace calib

// E9 — design-choice ablations the paper discusses but does not
// evaluate:
//   (1) Algorithm 1 with/without immediate calibrations (the Section 3
//       remark: for T < G/T they can be removed);
//   (2) Algorithm 2's queue order — Observation 2.1's heaviest-first vs
//       the literal line-13 "smallest weight" (DESIGN.md ambiguity #1);
//   (3) Algorithm 3 explicit placements vs Observation 2.1 reassignment
//       (the paper's "in practice" note);
//   (4) the special regimes G/T < 1 and T < G/T.
// Expected shape: immediate calibrations help exactly when T >= G/T;
// heaviest-first dominates lightest-first on weighted flow; the
// reassignment is never worse and often strictly better.
//
// Every ensemble runs through the harness sweep engine. Paired
// comparisons (alg1 vs alg1-noimm, alg2 vs alg2-lightest) are honest by
// construction: the engine derives each instance stream from (workload,
// seed) only, so both solvers of a grid see identical instances.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "harness/sweep.hpp"
#include "online/alg1_unweighted.hpp"
#include "online/alg3_multi.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

void BM_Alg1ImmediateToggle(benchmark::State& state) {
  const bool immediate = state.range(0) != 0;
  Prng prng(17);
  PoissonConfig config;
  config.rate = 0.3;
  config.steps = 400;
  const Instance instance = poisson_instance(config, 6, 1, prng);
  for (auto _ : state) {
    Alg1Unweighted policy(immediate);
    benchmark::DoNotOptimize(online_objective(instance, 18, policy));
  }
  state.SetLabel(immediate ? "with immediate" : "without immediate");
}

BENCHMARK(BM_Alg1ImmediateToggle)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

/// Mean of a row statistic over the cells matching one solver.
double solver_mean(const harness::SweepReport& report,
                   const std::string& solver,
                   double (*stat)(const harness::SweepRow&)) {
  Summary summary;
  for (const harness::SweepRow& row : report.rows) {
    if (row.solver == solver) summary.add(stat(row));
  }
  return summary.mean();
}

double objective_of(const harness::SweepRow& row) {
  return static_cast<double>(row.result.objective);
}
double flow_of(const harness::SweepRow& row) {
  return static_cast<double>(row.result.flow);
}
double extra_of(const harness::SweepRow& row) { return row.extra; }

struct TablePrinter {
  ~TablePrinter() {
    std::cout << "\nE9.1 - Algorithm 1 immediate calibrations on/off "
                 "(mean objective over 80 seeds; regimes split by "
                 "T vs G/T):\n";
    Table t1({"regime", "G", "T", "with", "without", "without/with"});
    // The rule can only fire when an interval ends light (p < G/2) and
    // the next arrival trips neither the count nor the flow trigger —
    // arithmetically that needs roughly T < G < 2T. Cells outside that
    // band are included to show the rule is then inert (ratio 1.000),
    // matching the Section 3 remark that it is removable when T < G/T.
    for (const auto& [G, T] : std::vector<std::pair<Cost, Time>>{
             {40, 4},    // T < G/T: immediates removable
             {9, 6},     // T < G < 2T: the rule's home turf
             {11, 6},    //   "
             {20, 12},   //   "
             {40, 24}}) {
      harness::SweepGrid grid;
      harness::WorkloadSpec spec;
      spec.kind = "poisson";
      spec.rate = 0.2;
      spec.steps = 200;
      spec.T = T;
      grid.workloads = {spec};
      grid.solvers = {"alg1", "alg1-noimm"};
      grid.G_values = {G};
      grid.seeds = 80;
      grid.base_seed = 911382323u + static_cast<std::uint64_t>(G);
      grid.collect_trace = false;
      const harness::SweepReport report =
          harness::SweepEngine(std::move(grid)).run();
      const double with_rule = solver_mean(report, "alg1", objective_of);
      const double without_rule =
          solver_mean(report, "alg1-noimm", objective_of);
      t1.row()
          .add(T < G / T ? "T < G/T" : (G > T && G < 2 * T ? "T < G < 2T"
                                                           : "other"))
          .add(static_cast<std::int64_t>(G))
          .add(static_cast<std::int64_t>(T))
          .add(with_rule, 1)
          .add(without_rule, 1)
          .add(without_rule / with_rule, 3);
    }
    t1.print(std::cout);

    std::cout << "\nE9.2 - Algorithm 2 queue order: Observation 2.1 "
                 "heaviest-first vs literal line-13 lightest-first "
                 "(mean objective, 80 seeds):\n";
    Table t2({"weights", "heaviest", "lightest", "lightest/heaviest"});
    for (const WeightModel weights :
         {WeightModel::kUniform, WeightModel::kZipf,
          WeightModel::kBimodal}) {
      harness::SweepGrid grid;
      harness::WorkloadSpec spec;
      spec.kind = "poisson";
      spec.rate = 0.35;
      spec.steps = 120;
      spec.weights = weights;
      spec.w_max = 9;
      spec.T = 5;
      grid.workloads = {spec};
      grid.solvers = {"alg2", "alg2-lightest"};
      grid.G_values = {15};
      grid.seeds = 80;
      grid.base_seed = 69069u + static_cast<std::uint64_t>(weights);
      grid.collect_trace = false;
      const harness::SweepReport report =
          harness::SweepEngine(std::move(grid)).run();
      const double heavy = solver_mean(report, "alg2", objective_of);
      const double light =
          solver_mean(report, "alg2-lightest", objective_of);
      t2.row()
          .add(weight_model_name(weights))
          .add(heavy, 1)
          .add(light, 1)
          .add(light / heavy, 3);
    }
    t2.print(std::cout);

    std::cout << "\nE9.3 - Algorithm 3: explicit placements vs "
                 "Observation 2.1 reassignment (mean flow, 60 seeds):\n";
    Table t3({"P", "explicit flow", "reassigned flow", "improvement %"});
    for (const int machines : {2, 4}) {
      // Heavy bursts force several calibrations in one step — the
      // situation where the paper warns explicit placement can park
      // jobs late in a largely-empty concurrent interval. G/T = 5:
      // step 13 commits jobs several slots deep into a new interval,
      // which is when greedy reassignment can do better.
      harness::SweepGrid grid;
      harness::WorkloadSpec spec;
      spec.kind = "bursty";
      spec.burst_probability = 0.08;
      spec.burst_length = 12;
      spec.burst_rate = 1.0;
      spec.steps = 120;
      spec.T = 8;
      spec.machines = machines;
      grid.workloads = {spec};
      grid.solvers = {"alg3"};
      grid.G_values = {40};
      grid.seeds = 60;
      grid.base_seed = 2246822519u + static_cast<std::uint64_t>(machines);
      grid.collect_trace = false;
      grid.extra_metric_name = "reassigned_flow";
      grid.extra_metric = [](const Instance& instance,
                             const Schedule& schedule, Cost) {
        return static_cast<double>(
            reassign_observation_2_1(instance, schedule)
                .weighted_flow(instance));
      };
      const harness::SweepReport report =
          harness::SweepEngine(std::move(grid)).run();
      const double explicit_flow = solver_mean(report, "alg3", flow_of);
      const double reassigned_flow = solver_mean(report, "alg3", extra_of);
      t3.row()
          .add(machines)
          .add(explicit_flow, 1)
          .add(reassigned_flow, 1)
          .add(100.0 * (1.0 - reassigned_flow / explicit_flow), 2);
    }
    // The paper's warning made concrete: two staggered five-job waves
    // trigger calibrations on different machines; step 13 strands the
    // second wave deep in the new interval while the first machine's
    // interval still has free earlier slots.
    {
      const Instance waves({Job{0, 1}, Job{0, 1}, Job{1, 1}, Job{1, 1},
                            Job{2, 1}, Job{3, 1}, Job{3, 1}, Job{4, 1},
                            Job{4, 1}, Job{5, 1}},
                           /*calibration_length=*/8, /*machines=*/2);
      Alg3Multi policy;
      const Schedule explicit_schedule = run_online(waves, 40, policy);
      const Schedule reassigned =
          reassign_observation_2_1(waves, explicit_schedule);
      t3.row()
          .add("2 (two-wave construction)")
          .add(static_cast<double>(explicit_schedule.weighted_flow(waves)),
               1)
          .add(static_cast<double>(reassigned.weighted_flow(waves)), 1)
          .add(100.0 *
                   (1.0 -
                    static_cast<double>(reassigned.weighted_flow(waves)) /
                        static_cast<double>(
                            explicit_schedule.weighted_flow(waves))),
               2);
    }
    t3.print(std::cout);
    std::cout << "(Random loads show no gap - the practical variant is "
                 "free; the construction shows the gap the paper warns "
                 "about exists.)\n";

    std::cout << "\nE9.4 - special regimes (Section 3 remarks), mean "
                 "competitive ratio vs exact OPT over 40 seeds:\n";
    Table t4({"regime", "G", "T", "alg1 ratio mean", "alg1 ratio max"});
    for (const auto& [label, G, T] :
         std::vector<std::tuple<const char*, Cost, Time>>{
             {"G/T < 1 (serve at release)", 3, 8},
             {"T < G/T (immediates removable)", 64, 4},
             {"balanced", 16, 4}}) {
      harness::SweepGrid grid;
      harness::WorkloadSpec spec;
      spec.kind = "sparse";
      spec.jobs = 10;
      spec.steps = 40;  // release span
      spec.T = T;
      grid.workloads = {spec};
      grid.solvers = {"alg1"};
      grid.G_values = {G};
      grid.seeds = 40;
      grid.base_seed = 123457u + static_cast<std::uint64_t>(G);
      grid.collect_trace = false;
      grid.compare_to_opt = true;
      const harness::SweepReport report =
          harness::SweepEngine(std::move(grid)).run();
      Summary ratios;
      for (const harness::SweepRow& row : report.rows) {
        ratios.add(row.ratio);
      }
      t4.row()
          .add(label)
          .add(static_cast<std::int64_t>(G))
          .add(static_cast<std::int64_t>(T))
          .add(ratios.mean(), 3)
          .add(ratios.max(), 3);
    }
    t4.print(std::cout);
  }
};
// Declared before `printer` so it is destroyed after it: the snapshot
// then includes everything the bench recorded. Opt in by exporting
// CALIBSCHED_METRICS=<dir>.
const benchutil::MetricsSidecar sidecar("bench_ablation");  // NOLINT(cert-err58-cpp)
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

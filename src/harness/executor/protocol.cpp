#include "harness/executor/protocol.hpp"

#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "harness/journal.hpp"
#include "obs/json_escape.hpp"

namespace calib::harness {
namespace {

// Same deterministic double format as the sweep writers: stable under a
// parse/re-format cycle, so a snapshot survives the pipe byte-exactly.
std::string fmt(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  return os.str();
}

}  // namespace

std::string encode_frame(FrameType type, std::string_view payload) {
  return calib::encode_frame(static_cast<std::uint32_t>(type), payload);
}

bool write_frame(int fd, FrameType type, std::string_view payload) {
  return calib::write_frame(fd, static_cast<std::uint32_t>(type), payload);
}

bool FrameReader::next(Frame& frame) {
  RawFrame raw;
  if (!raw_.next(raw)) return false;
  frame.type = static_cast<FrameType>(raw.type);
  frame.payload = std::move(raw.payload);
  return true;
}

std::string encode_metrics_payload(const obs::Snapshot& snapshot) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  const auto emit = [&](const std::string& key, const std::string& value) {
    if (!first) os << ',';
    first = false;
    os << '"' << obs::json_escape(key) << "\":" << value;
  };
  for (const auto& [name, value] : snapshot.counters) {
    emit("c:" + name, std::to_string(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    emit("g:" + name, std::to_string(value));
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    emit("h:" + name + ".count", std::to_string(stats.count));
    emit("h:" + name + ".sum", fmt(stats.sum));
    emit("h:" + name + ".min", fmt(stats.min));
    emit("h:" + name + ".max", fmt(stats.max));
    emit("h:" + name + ".p50", fmt(stats.p50));
    emit("h:" + name + ".p90", fmt(stats.p90));
    emit("h:" + name + ".p99", fmt(stats.p99));
    if (!stats.buckets.empty()) {
      // Sparse raw-bucket string ("idx=count,..."): the receiver merges
      // true distributions instead of re-averaging percentile
      // estimates.
      std::string sparse;
      for (std::size_t b = 0; b < stats.buckets.size(); ++b) {
        if (stats.buckets[b] == 0) continue;
        if (!sparse.empty()) sparse += ',';
        sparse += std::to_string(b) + "=" + std::to_string(stats.buckets[b]);
      }
      emit("h:" + name + ".buckets", '"' + sparse + '"');
    }
  }
  os << '}';
  return os.str();
}

obs::Snapshot decode_metrics_payload(const std::string& text) {
  const auto fields = parse_flat_json(text);
  obs::Snapshot snapshot;
  for (const auto& [key, value] : fields) {
    if (key.size() < 3 || key[1] != ':') {
      throw std::runtime_error("metrics payload: unprefixed key " + key);
    }
    const std::string name = key.substr(2);
    if (key[0] == 'c') {
      snapshot.counters[name] = std::stoull(value);
    } else if (key[0] == 'g') {
      snapshot.gauges[name] = std::stoll(value);
    } else if (key[0] == 'h') {
      const std::size_t dot = name.rfind('.');
      if (dot == std::string::npos) {
        throw std::runtime_error("metrics payload: bad histogram key " + key);
      }
      const std::string base = name.substr(0, dot);
      const std::string stat = name.substr(dot + 1);
      obs::HistogramStats& stats = snapshot.histograms[base];
      if (stat == "count") {
        stats.count = std::stoull(value);
      } else if (stat == "sum") {
        stats.sum = std::stod(value);
      } else if (stat == "min") {
        stats.min = std::stod(value);
      } else if (stat == "max") {
        stats.max = std::stod(value);
      } else if (stat == "p50") {
        stats.p50 = std::stod(value);
      } else if (stat == "p90") {
        stats.p90 = std::stod(value);
      } else if (stat == "p99") {
        stats.p99 = std::stod(value);
      } else if (stat == "buckets") {
        stats.buckets.assign(obs::kHistogramBuckets, 0);
        std::size_t i = 0;
        while (i < value.size()) {
          const std::size_t eq = value.find('=', i);
          std::size_t end = value.find(',', i);
          if (end == std::string::npos) end = value.size();
          if (eq == std::string::npos || eq >= end) {
            throw std::runtime_error("metrics payload: bad bucket pair in " +
                                     key);
          }
          const std::size_t bucket = std::stoull(value.substr(i, eq - i));
          if (bucket >= obs::kHistogramBuckets) {
            throw std::runtime_error("metrics payload: bucket index out of "
                                     "range in " +
                                     key);
          }
          stats.buckets[bucket] = std::stoull(value.substr(eq + 1, end - eq - 1));
          i = end + 1;
        }
      } else {
        throw std::runtime_error("metrics payload: unknown stat " + stat);
      }
    } else {
      throw std::runtime_error("metrics payload: unknown prefix in " + key);
    }
  }
  return snapshot;
}

std::string encode_trace_payload(int worker, std::int64_t pid,
                                 const obs::TraceChunk& chunk,
                                 std::size_t max_bytes) {
  if (max_bytes == 0) max_bytes = kMaxFrameBytes;
  // Event and thread-name lines are rendered first so the header —
  // written at the front — can carry the final dropped count including
  // anything truncation sheds here.
  std::string body;
  for (const auto& [tid, name] : chunk.thread_names) {
    body += "{\"tid\":" + std::to_string(tid) + ",\"tname\":\"" +
            obs::json_escape(name) + "\"}\n";
  }
  std::uint64_t dropped = chunk.dropped;
  for (const obs::TraceEvent& event : chunk.events) {
    std::string line = "{\"name\":\"" + obs::json_escape(event.name) + '"';
    if (!event.cat.empty()) {
      line += ",\"cat\":\"" + obs::json_escape(event.cat) + '"';
    }
    line += ",\"ts\":" + std::to_string(event.ts_ns);
    line += ",\"dur\":" + std::to_string(event.dur_ns);
    line += ",\"tid\":" + std::to_string(event.tid);
    for (const auto& [key, value] : event.args) {
      line += ",\"a:" + obs::json_escape(key) + "\":\"" +
              obs::json_escape(value) + '"';
    }
    line += "}\n";
    // Keep a generous margin for the header line itself.
    if (body.size() + line.size() + 128 > max_bytes) {
      ++dropped;
      continue;
    }
    body += line;
  }
  std::string out = "{\"worker\":" + std::to_string(worker) +
                    ",\"pid\":" + std::to_string(pid) +
                    ",\"now\":" + std::to_string(obs::now_ns()) +
                    ",\"dropped\":" + std::to_string(dropped) + "}\n";
  out += body;
  return out;
}

obs::ProcessTrace decode_trace_payload(const std::string& text) {
  obs::ProcessTrace trace;
  std::size_t start = 0;
  bool saw_header = false;
  const auto field = [](const std::map<std::string, std::string>& fields,
                        const char* key) -> const std::string& {
    const auto it = fields.find(key);
    if (it == fields.end()) {
      throw std::runtime_error(std::string("trace payload: missing field ") +
                               key);
    }
    return it->second;
  };
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const auto fields = parse_flat_json(line);
    if (!saw_header) {
      trace.worker = static_cast<int>(std::stol(field(fields, "worker")));
      trace.pid = std::stoll(field(fields, "pid"));
      trace.now_ns = std::stoull(field(fields, "now"));
      trace.dropped = std::stoull(field(fields, "dropped"));
      saw_header = true;
      continue;
    }
    if (fields.count("tname") != 0) {
      trace.thread_names.emplace_back(
          static_cast<std::uint32_t>(std::stoul(field(fields, "tid"))),
          field(fields, "tname"));
      continue;
    }
    obs::TraceEvent event;
    event.name = field(fields, "name");
    if (const auto it = fields.find("cat"); it != fields.end()) {
      event.cat = it->second;
    }
    event.ts_ns = std::stoull(field(fields, "ts"));
    event.dur_ns = std::stoull(field(fields, "dur"));
    event.tid = static_cast<std::uint32_t>(std::stoul(field(fields, "tid")));
    for (const auto& [key, value] : fields) {
      if (key.size() > 2 && key[0] == 'a' && key[1] == ':') {
        event.args.emplace_back(key.substr(2), value);
      }
    }
    trace.events.push_back(std::move(event));
  }
  if (!saw_header) {
    throw std::runtime_error("trace payload: empty (no header line)");
  }
  return trace;
}

}  // namespace calib::harness

#include "obs/timeline.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/json_escape.hpp"

namespace calib::obs {
namespace {

// Deterministic double format shared with the other obs writers.
std::string fmt(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  return os.str();
}

// Minimal flat-JSON object parser for load_jsonl. The obs layer sits
// below the harness (which owns the strict parse_flat_json), so the
// timeline reader carries its own: one {"key":value,...} object with
// string or bare-number values, no nesting. Returns false on anything
// it cannot parse — the caller skips (and counts) the line.
bool parse_line(const std::string& line,
                std::vector<std::pair<std::string, std::string>>& out) {
  out.clear();
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
  };
  const auto parse_string = [&](std::string& value) {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    value.clear();
    while (i < line.size() && line[i] != '"') {
      char c = line[i++];
      if (c == '\\') {
        if (i >= line.size()) return false;
        const char esc = line[i++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          default: return false;  // \uXXXX etc.: not produced by writers
        }
      }
      value.push_back(c);
    }
    if (i >= line.size()) return false;  // unterminated: a torn line
    ++i;
    return true;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
    skip_ws();
    return i == line.size();
  }
  while (true) {
    skip_ws();
    std::string key;
    if (!parse_string(key)) return false;
    skip_ws();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_ws();
    std::string value;
    if (i < line.size() && line[i] == '"') {
      if (!parse_string(value)) return false;
    } else {
      const std::size_t begin = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      value = line.substr(begin, i - begin);
      while (!value.empty() &&
             (value.back() == ' ' || value.back() == '\t')) {
        value.pop_back();
      }
      if (value.empty()) return false;
    }
    out.emplace_back(std::move(key), std::move(value));
    skip_ws();
    if (i >= line.size()) return false;  // torn before the close brace
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') {
      ++i;
      skip_ws();
      return i == line.size();
    }
    return false;
  }
}

}  // namespace

void Timeline::record(const std::string& source, double t_ms,
                      const Snapshot& cumulative) {
  if (samples_.size() >= kMaxSamples) {
    ++dropped_;
    return;
  }
  Snapshot& prev = last_[source];
  Sample sample;
  sample.t_ms = t_ms;
  sample.source = source;
  for (const auto& [name, value] : cumulative.counters) {
    const auto it = prev.counters.find(name);
    // A cumulative counter that went backwards means the source reset;
    // restart the baseline at the new value instead of underflowing.
    const std::uint64_t base =
        (it != prev.counters.end() && it->second <= value) ? it->second : 0;
    if (value - base != 0) sample.counters[name] = value - base;
  }
  for (const auto& [name, value] : cumulative.gauges) {
    sample.gauges[name] = value;  // levels, not deltas
  }
  for (const auto& [name, stats] : cumulative.histograms) {
    const auto it = prev.histograms.find(name);
    std::uint64_t base_count = 0;
    double base_sum = 0.0;
    if (it != prev.histograms.end() && it->second.count <= stats.count) {
      base_count = it->second.count;
      base_sum = it->second.sum;
    }
    if (stats.count - base_count != 0) {
      sample.histograms[name] = {stats.count - base_count,
                                 stats.sum - base_sum};
    }
  }
  prev = cumulative;
  samples_.push_back(std::move(sample));
}

void Timeline::write_jsonl(std::ostream& os) const {
  for (const Sample& sample : samples_) {
    os << "{\"t_ms\":" << fmt(sample.t_ms) << ",\"source\":\""
       << json_escape(sample.source) << '"';
    for (const auto& [name, value] : sample.counters) {
      os << ",\"c:" << json_escape(name) << "\":" << value;
    }
    for (const auto& [name, value] : sample.gauges) {
      os << ",\"g:" << json_escape(name) << "\":" << value;
    }
    for (const auto& [name, delta] : sample.histograms) {
      os << ",\"h:" << json_escape(name) << ".count\":" << delta.count
         << ",\"h:" << json_escape(name) << ".sum\":" << fmt(delta.sum);
    }
    os << "}\n";
  }
}

Timeline Timeline::load_jsonl(std::istream& is, std::size_t* skipped) {
  Timeline timeline;
  std::size_t bad = 0;
  std::string line;
  std::vector<std::pair<std::string, std::string>> fields;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (!parse_line(line, fields)) {
      ++bad;
      continue;
    }
    Sample sample;
    bool ok = false;  // a sample without t_ms/source is not one
    bool have_source = false;
    try {
      for (const auto& [key, value] : fields) {
        if (key == "t_ms") {
          sample.t_ms = std::stod(value);
          ok = true;
        } else if (key == "source") {
          sample.source = value;
          have_source = true;
        } else if (key.size() > 2 && key[1] == ':') {
          const std::string name = key.substr(2);
          if (key[0] == 'c') {
            sample.counters[name] = std::stoull(value);
          } else if (key[0] == 'g') {
            sample.gauges[name] = std::stoll(value);
          } else if (key[0] == 'h') {
            const std::size_t dot = name.rfind('.');
            if (dot == std::string::npos) throw std::invalid_argument(key);
            const std::string base = name.substr(0, dot);
            const std::string stat = name.substr(dot + 1);
            if (stat == "count") {
              sample.histograms[base].count = std::stoull(value);
            } else if (stat == "sum") {
              sample.histograms[base].sum = std::stod(value);
            } else {
              throw std::invalid_argument(key);
            }
          } else {
            throw std::invalid_argument(key);
          }
        } else {
          throw std::invalid_argument(key);
        }
      }
    } catch (const std::exception&) {
      ++bad;
      continue;
    }
    if (!ok || !have_source) {
      ++bad;
      continue;
    }
    timeline.samples_.push_back(std::move(sample));
  }
  if (skipped != nullptr) *skipped = bad;
  return timeline;
}

}  // namespace calib::obs

#include "harness/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "util/framing.hpp"

namespace calib::harness {
namespace {

[[noreturn]] void malformed(const std::string& line) {
  throw std::runtime_error("journal: malformed JSON line: " + line);
}

void skip_spaces(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

std::string parse_string(const std::string& s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') malformed(s);
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      ++i;
      if (i >= s.size()) malformed(s);
      switch (s[i]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          // Only \u00XX is ever emitted (control characters).
          if (i + 4 >= s.size()) malformed(s);
          const std::string hex = s.substr(i + 1, 4);
          out += static_cast<char>(std::stoi(hex, nullptr, 16));
          i += 4;
          break;
        }
        default: out += s[i]; break;
      }
    } else {
      out += s[i];
    }
    ++i;
  }
  if (i >= s.size()) malformed(s);
  ++i;  // closing quote
  return out;
}

}  // namespace

std::map<std::string, std::string> parse_flat_json(const std::string& line) {
  std::map<std::string, std::string> fields;
  std::size_t i = 0;
  skip_spaces(line, i);
  if (i >= line.size() || line[i] != '{') malformed(line);
  ++i;
  skip_spaces(line, i);
  if (i < line.size() && line[i] == '}') return fields;
  for (;;) {
    skip_spaces(line, i);
    const std::string key = parse_string(line, i);
    skip_spaces(line, i);
    if (i >= line.size() || line[i] != ':') malformed(line);
    ++i;
    skip_spaces(line, i);
    std::string value;
    if (i < line.size() && line[i] == '"') {
      value = parse_string(line, i);
    } else {
      // Bare token (number / true / false) up to ',' or '}'.
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      if (i >= line.size()) malformed(line);
      value = line.substr(start, i - start);
      while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
        value.pop_back();
      }
      if (value.empty()) malformed(line);
    }
    fields[key] = value;
    skip_spaces(line, i);
    if (i >= line.size()) malformed(line);
    if (line[i] == '}') break;
    if (line[i] != ',') malformed(line);
    ++i;
  }
  return fields;
}

std::string SweepJournal::fingerprint_hex(std::uint64_t value) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << value;
  return os.str();
}

SweepJournal::SweepJournal(const std::string& path, std::uint64_t fingerprint,
                           std::size_t cells, bool resume) {
  const std::string expected = fingerprint_hex(fingerprint);
  bool have_header = false;
  if (resume) {
    std::ifstream in(path);
    std::string line;
    bool first = true;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      if (first) {
        first = false;
        // A corrupt header is not recoverable — refusing is safer than
        // silently restarting over a file we cannot interpret.
        const auto header = parse_flat_json(line);
        const auto version = header.find("calibsched_journal");
        const auto print = header.find("fingerprint");
        if (version == header.end() || print == header.end()) {
          throw std::runtime_error("journal: " + path +
                                   " has no calibsched header");
        }
        if (print->second != expected) {
          throw std::runtime_error(
              "journal: " + path + " was written for a different grid "
              "(fingerprint " + print->second + ", expected " + expected +
              ")");
        }
        have_header = true;
        continue;
      }
      try {
        entries_.push_back(parse_flat_json(line));
      } catch (const std::exception&) {
        // Torn trailing write from a killed run: drop the line; that
        // cell re-runs. (Also drops interior corruption — equally safe.)
      }
    }
  }

  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (!have_header) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("journal: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  if (!have_header) {
    append("{\"calibsched_journal\":1,\"fingerprint\":\"" + expected +
           "\",\"cells\":" + std::to_string(cells) + "}");
  }
}

SweepJournal::~SweepJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void SweepJournal::append(const std::string& line) {
  const std::string out = line + "\n";
  const MutexLock lock(mutex_);
  if (!write_all(fd_, out.data(), out.size())) {
    throw std::runtime_error(std::string("journal: write failed: ") +
                             std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    throw std::runtime_error(std::string("journal: fsync failed: ") +
                             std::strerror(errno));
  }
}

}  // namespace calib::harness

#include "serve/session.hpp"

#include <algorithm>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/validate.hpp"
#include "online/registry.hpp"

namespace calib::serve {

TenantSession::TenantSession(const HelloRequest& hello,
                             const SessionLimits& limits)
    : hello_(hello), limits_(limits) {
  if (hello_.tenant.empty()) {
    throw std::runtime_error("serve: tenant name must be non-empty");
  }
  if (hello_.T < 1 || hello_.machines < 1 || hello_.G < 0) {
    throw std::runtime_error("serve: bad session dimensions (want T >= 1, "
                             "machines >= 1, G >= 0)");
  }
  const MutexLock lock(mutex_);
  policy_ = make_policy(hello_.policy,
                        PolicyParams{hello_.seed, hello_.period});
  if (limits_.step_budget > 0) {
    budget_.set_step_limit(limits_.step_budget);
  }
  driver_ = std::make_unique<OnlineDriver>(hello_.T, hello_.machines,
                                           hello_.G, *policy_);
  driver_->set_trace(&trace_);
  if (!budget_.unlimited()) driver_->set_budget(&budget_);
}

const char* TenantSession::state_name() const {
  switch (state()) {
    case State::kActive: return "active";
    case State::kDegraded: return "degraded";
    case State::kDrained: return "drained";
  }
  return "unknown";
}

Decision TenantSession::submit(const SubmitJob& job) {
  const MutexLock lock(mutex_);
  return submit_locked(job);
}

void TenantSession::replay(const SubmitJob& job) {
  const MutexLock lock(mutex_);
  (void)submit_locked(job);
}

Decision TenantSession::submit_locked(const SubmitJob& job) {
  if (drained_) {
    throw ServeError("BAD_REQUEST", "session already drained");
  }
  if (job.weight < 1) {
    throw ServeError("BAD_REQUEST", "job weight must be >= 1");
  }
  if (job.release < driver_->now() || job.release < last_release_) {
    throw ServeError("BAD_REQUEST",
                     "non-monotone release " + std::to_string(job.release) +
                         " (session clock is at " +
                         std::to_string(driver_->now()) + ")");
  }
  if (job.release >= driver_->T()) {
    throw ServeError("BAD_REQUEST",
                     "release " + std::to_string(job.release) +
                         " beyond session horizon T=" +
                         std::to_string(driver_->T()));
  }
  // Event-driven advance to the release, exactly as run_online does:
  // jump empty-queue spans, step through decision points. BudgetExceeded
  // from either call propagates to the daemon, which demotes the
  // session — the budget is the session-lifetime step cap.
  while (driver_->now() < job.release) {
    if (driver_->waiting_empty()) {
      driver_->advance_to(job.release);
    } else {
      driver_->step();
    }
  }
  (void)driver_->add_job(job.weight);
  last_release_ = job.release;

  Decision decision;
  decision.seq = seq_++;
  decision.now = driver_->now();
  decision.cost = driver_->running_cost();
  const auto& events = trace_.events();
  decision.events = encode_events(events, trace_watermark_, events.size());
  trace_watermark_ = events.size();
  return decision;
}

TenantStats TenantSession::drain() {
  const MutexLock lock(mutex_);
  if (!drained_) {
    try {
      driver_->drain();
      if (!driver_->jobs().empty()) {
        const Instance instance = driver_->realized_instance();
        const Schedule schedule = driver_->realized_schedule();
        const ValidationReport report =
            validate_schedule(instance, schedule, hello_.G);
        drain_violation_ = report.violation;
      }
    } catch (const std::exception& e) {
      drain_violation_ = std::string("drain failed: ") + e.what();
    }
    drained_ = true;
    trace_watermark_ = trace_.events().size();
    State active = State::kActive;
    (void)state_.compare_exchange_strong(active, State::kDrained,
                                         std::memory_order_acq_rel);
  }
  TenantStats out;
  out.tenant = hello_.tenant;
  out.state = state_name();
  out.jobs = driver_->jobs().size();
  out.placed = static_cast<std::uint64_t>(
      std::max(0, trace_.placements()));
  out.calibrations = static_cast<std::uint64_t>(
      std::max(0, trace_.calibrations()));
  out.cost = driver_->running_cost();
  out.steps_used = budget_.steps_used();
  out.violation = drain_violation_;
  return out;
}

TenantStats TenantSession::stats() {
  const MutexLock lock(mutex_);
  TenantStats out;
  out.tenant = hello_.tenant;
  out.state = state_name();
  out.jobs = driver_->jobs().size();
  out.placed = static_cast<std::uint64_t>(
      std::max(0, trace_.placements()));
  out.calibrations = static_cast<std::uint64_t>(
      std::max(0, trace_.calibrations()));
  out.cost = driver_->running_cost();
  out.steps_used = budget_.steps_used();
  out.violation = drain_violation_;
  return out;
}

bool TenantSession::admit_rate(double now_ms) {
  const MutexLock lock(mutex_);
  if (limits_.rate_per_sec <= 0.0) return true;
  if (last_refill_ms_ < 0.0) {
    // A fresh bucket starts full: one second of burst headroom.
    tokens_ = limits_.rate_per_sec;
    last_refill_ms_ = now_ms;
  }
  tokens_ = std::min(
      limits_.rate_per_sec,
      tokens_ + (now_ms - last_refill_ms_) / 1000.0 * limits_.rate_per_sec);
  last_refill_ms_ = now_ms;
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

}  // namespace calib::serve

// The Trace instrumentation: event recording through the driver, and
// the derived metrics.
#include <gtest/gtest.h>

#include "online/alg1_unweighted.hpp"
#include "online/alg2_weighted.hpp"
#include "online/driver.hpp"
#include "online/trace.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

/// Run a policy over an instance with a trace attached.
Trace traced_run(const Instance& instance, Cost G, OnlinePolicy& policy,
                 Schedule* schedule_out = nullptr) {
  Trace trace;
  OnlineDriver driver(instance.T(), instance.machines(), G, policy);
  driver.set_trace(&trace);
  JobId next = 0;
  while (next < instance.size() || !driver.all_placed()) {
    while (next < instance.size() &&
           instance.job(next).release == driver.now()) {
      driver.add_job(instance.job(next).weight);
      ++next;
    }
    if (next >= instance.size()) {
      driver.drain();
      break;
    }
    driver.step();
  }
  if (schedule_out != nullptr) *schedule_out = driver.realized_schedule();
  return trace;
}

TEST(Trace, CountsMatchTheRun) {
  const Instance instance = regression_instance();
  Alg2Weighted policy;
  Schedule schedule(Calendar(instance.T(), 1), instance.size());
  const Trace trace = traced_run(instance, 7, policy, &schedule);
  EXPECT_EQ(trace.arrivals(), instance.size());
  EXPECT_EQ(trace.placements(), instance.size());
  EXPECT_EQ(trace.calibrations(), schedule.calendar().count());
}

TEST(Trace, WaitingTimesMatchScheduleFlow) {
  const Instance instance = regression_instance();
  Alg2Weighted policy;
  Schedule schedule(Calendar(instance.T(), 1), instance.size());
  const Trace trace = traced_run(instance, 7, policy, &schedule);
  const Summary waits = trace.waiting_times();
  EXPECT_EQ(waits.count(), static_cast<std::size_t>(instance.size()));
  // Unweighted waiting total == flow - n for unit weights; for weighted
  // jobs compare against the schedule's per-job waits directly.
  double expected = 0.0;
  for (JobId j = 0; j < instance.size(); ++j) {
    expected += static_cast<double>(schedule.placement(j).start -
                                    instance.job(j).release);
  }
  EXPECT_DOUBLE_EQ(waits.mean() * static_cast<double>(waits.count()),
                   expected);
}

TEST(Trace, QueueSeriesRisesAndDrains) {
  // Three jobs at 0,1,2 with a late calibration: queue builds to 3,
  // then drains to 0.
  const Instance instance({Job{0, 1}, Job{1, 1}, Job{2, 1}}, 4);
  Alg1Unweighted policy;
  const Trace trace = traced_run(instance, 10, policy);
  const auto series = trace.queue_length_series(0, 10);
  EXPECT_EQ(series.front(), 1);
  EXPECT_EQ(series.back(), 0);
  // End-of-step semantics: the third arrival trips the count trigger
  // and is served within its own arrival step, so it never registers
  // as waiting — the peak is the two earlier jobs.
  EXPECT_EQ(trace.peak_queue_length(), 2);
  for (const int q : series) {
    EXPECT_GE(q, 0);
    EXPECT_LE(q, 2);
  }
}

TEST(Trace, UtilizationWithinUnitInterval) {
  Prng prng(2001);
  const Instance instance = sparse_uniform_instance(
      10, 30, 5, 1, WeightModel::kUnit, 1, prng);
  Alg1Unweighted policy;
  Schedule schedule(Calendar(instance.T(), 1), instance.size());
  const Trace trace = traced_run(instance, 12, policy, &schedule);
  const double utilization = trace.utilization(schedule.calendar());
  EXPECT_GT(utilization, 0.0);
  EXPECT_LE(utilization, 1.0);
}

TEST(Trace, SummaryMentionsAllSections) {
  const Instance instance = regression_instance();
  Alg2Weighted policy;
  Schedule schedule(Calendar(instance.T(), 1), instance.size());
  const Trace trace = traced_run(instance, 7, policy, &schedule);
  const std::string text = trace.summary(schedule.calendar());
  EXPECT_NE(text.find("arrivals"), std::string::npos);
  EXPECT_NE(text.find("waiting steps"), std::string::npos);
  EXPECT_NE(text.find("peak queue"), std::string::npos);
  EXPECT_NE(text.find("utilization"), std::string::npos);
}

TEST(Trace, ClearResets) {
  Trace trace;
  trace.record_arrival(0, 0, 1);
  trace.record_calibration(0, 0);
  trace.clear();
  EXPECT_EQ(trace.arrivals(), 0);
  EXPECT_EQ(trace.calibrations(), 0);
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.peak_queue_length(), 0);
}

TEST(Trace, DetachedDriverRecordsNothing) {
  const Instance instance = regression_instance();
  Alg2Weighted policy;
  const Schedule schedule = run_online(instance, 7, policy);
  EXPECT_EQ(schedule.validate(instance), std::nullopt);
  // run_online never attaches a trace; nothing to assert beyond "it
  // still works" — this is the no-observer fast path.
}

}  // namespace
}  // namespace calib

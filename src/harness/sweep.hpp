// The parallel sweep engine: run a SweepGrid's cross-product, emit
// structured rows.
//
// Design invariants (tested in tests/test_sweep.cpp and
// tests/test_sweep_faults.cpp):
//   * Determinism — every per-cell PRNG stream is derived from
//     (base_seed, cell coordinates) via fresh splitmix roots, rows are
//     stored at their cell index, and the writers can exclude wall-clock
//     fields; the JSONL/CSV output is then byte-identical at any thread
//     count.
//   * Instance sharing — all solvers and all G values of a given
//     (workload, seed) see the *same* instance, which is what makes
//     paired policy comparisons honest and lets the FlowCurveCache
//     compute the O(K n³) DP once per instance instead of once per cell.
//   * One result shape — each cell produces a SolveResult plus optional
//     opt/trace/extra columns, the same struct the CLI's `solve` prints.
//   * Cell isolation — a throwing or over-budget cell becomes a
//     structured error/timeout row (SweepRow::status); it never aborts
//     the sweep or discards completed cells. With SweepOptions::sandbox
//     the guarantee extends to crashes: each cell runs in a forked child
//     (harness/sandbox.hpp), a segfault/abort/OOM becomes a crashed row
//     naming the fatal signal and last obs-span phase, and a hung cell
//     is SIGKILLed by the parent watchdog (a timeout row) instead of
//     wedging a worker thread forever.
//   * Validated results — every ok cell of an online solver is re-checked
//     by the independent oracle in core/validate.hpp (feasibility plus a
//     from-scratch objective recomputation); a mismatch demotes the row
//     to status invalid rather than letting a silent wrong answer into
//     the results.
//   * Journaled resume — with SweepOptions::journal_path set, every
//     completed cell is fsync'd to an append-only JSONL journal keyed by
//     the grid fingerprint; a resumed run skips journaled cells and its
//     final JSONL/CSV output is byte-identical to an uninterrupted run
//     (cells are pure functions of their coordinates).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/solve_result.hpp"
#include "harness/dp_cache.hpp"
#include "harness/faults.hpp"
#include "harness/grid.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace calib::harness {

/// One cell's structured result. Optional groups (opt, trace, extra) are
/// present iff the corresponding grid switch was on *and* the cell
/// completed (status == kOk); failed cells keep their coordinates and a
/// zeroed result so every row serializes through the same columns.
struct SweepRow {
  // Coordinates (deterministic; identify the cell independent of order).
  std::size_t cell = 0;
  std::size_t workload_index = 0;
  std::string workload;  ///< WorkloadSpec::label()
  std::string solver;
  Cost G = 0;
  int seed = 0;
  int jobs = 0;  ///< instance size (0 if the cell never materialized it)

  RunStatus status = RunStatus::kOk;
  std::string error;  ///< what() of the failure; empty when status == kOk

  SolveResult result;

  bool has_opt = false;
  Cost opt_cost = 0;
  int opt_k = 0;
  double ratio = 0.0;  ///< result.objective / opt_cost

  bool has_trace = false;
  int peak_queue = 0;
  double utilization = 0.0;

  bool has_extra = false;
  double extra = 0.0;
};

/// The row's JSONL serialization (no trailing newline). This is both the
/// write_jsonl line and the journal line format, so a journaled row
/// replays byte-identically. `include_timing` adds the nondeterministic
/// "wall_ms" field.
[[nodiscard]] std::string row_to_json(const SweepRow& row,
                                      const std::string& extra_metric_name,
                                      bool include_timing);

/// Rebuild a row from one parsed row_to_json line (a journal entry or
/// an executor result frame). Coordinates come from the grid — the
/// caller has already established the entry belongs to `coords` — and
/// only the solve *outputs* are read from the entry. Returns false if
/// the entry is unusable; the cell then simply re-runs.
[[nodiscard]] bool restore_row_from_entry(
    const std::map<std::string, std::string>& entry, const CellCoords& coords,
    const SweepGrid& grid, SweepRow& row);

/// Execution options for one SweepEngine::run — everything here changes
/// *how* cells execute, never *what* a completed cell computes, so runs
/// with different options agree on all rows they both complete.
struct SweepOptions {
  /// Append-only checkpoint journal (empty = no journaling). One fsync'd
  /// line per completed cell; see harness/journal.hpp for the format.
  std::string journal_path;
  /// Skip cells already present in the journal (requires journal_path).
  bool resume = false;
  /// Re-run journaled error/timeout cells instead of replaying their
  /// failure rows. Implies resume (requires journal_path).
  bool retry_failed = false;

  /// Per-cell wall-clock budget in milliseconds (0 = unlimited). Over
  /// budget turns a cell into a timeout row. Nondeterministic by nature;
  /// prefer cell_step_budget where reproducibility matters.
  double cell_budget_ms = 0.0;
  /// Per-cell cooperative step budget (0 = unlimited): driver steps plus
  /// DP states, charged via calib::Budget. Deterministic.
  std::uint64_t cell_step_budget = 0;

  /// Run every cell in a forked child process (harness/sandbox.hpp):
  /// crashes become crashed rows, and cell_budget_ms gains a hard
  /// parent-side SIGKILL watchdog at 1.5x the budget (the cooperative
  /// in-child Budget still fires at 1x, so enforcement lands within 2x
  /// of the requested wall time). Crash-free cells produce rows
  /// byte-identical to in-process execution; the price is one fork per
  /// cell and no cross-cell DP cache sharing.
  bool sandbox = false;
  /// RLIMIT_AS for each sandboxed child, bytes (0 = inherit).
  std::uint64_t sandbox_memory_bytes = 0;
  /// RLIMIT_STACK for each sandboxed child, bytes (0 = inherit).
  std::uint64_t sandbox_stack_bytes = 0;

  /// Deterministic fault injection (tests, CLI --inject-faults). Crash
  /// kinds (segv/abort/hang) require sandbox mode; hang additionally
  /// requires cell_budget_ms, because only the watchdog can end it.
  FaultPlan faults;

  /// Stop attempting new cells once this many completed (simulates a
  /// killed run for checkpoint tests): remaining cells become skipped
  /// rows and are not journaled. Under the sharded executor, retries of
  /// a failed lease do not consume additional tickets.
  std::size_t max_cells = std::numeric_limits<std::size_t>::max();

  // ---- Sharded executor (harness/executor/executor.hpp) ------------
  // With workers > 0 the sweep runs across that many forked worker
  // processes instead of the thread pool: a coordinator leases cells
  // one at a time per worker, detects dead/stalled workers (pipe EOF,
  // heartbeat timeout, lease watchdog), re-queues their in-flight
  // leases onto survivors with capped exponential backoff, and is the
  // only process that appends to the journal. Crash-free cells produce
  // rows byte-identical to in-process execution.

  /// Worker process count (0 = in-process thread pool, the default).
  int workers = 0;
  /// How often each worker sends a heartbeat (liveness + cumulative
  /// metrics snapshot).
  double heartbeat_interval_ms = 100.0;
  /// Coordinator-side silence threshold: a worker whose last heartbeat
  /// is older than this is SIGKILLed and its lease re-queued.
  double heartbeat_timeout_ms = 2000.0;
  /// Total dispatch attempts per cell (first try + retries). A cell
  /// whose worker dies this many times becomes a terminal crashed or
  /// error row — the sweep degrades, it never deadlocks.
  int max_cell_attempts = 3;
  /// Backoff before re-dispatching a failed lease: doubles per attempt
  /// starting here, capped at retry_backoff_cap_ms.
  double retry_backoff_ms = 50.0;
  double retry_backoff_cap_ms = 2000.0;
  /// Deterministic worker-process fault injection (tests, CLI
  /// --worker-faults); requires workers > 0.
  WorkerFaultPlan worker_faults;

  /// Render a live coordinator status line to stderr every
  /// progress_interval_ms: cells resolved/failed/retried, a rolling
  /// throughput estimate with its ETA, per-worker health from heartbeat
  /// age. Requires workers > 0 (the thread-pool path has no
  /// coordinator to render from).
  bool progress = false;
  double progress_interval_ms = 500.0;
  /// Structured JSONL flight-recorder log of coordinator fleet events
  /// (worker spawn/death, lease, retry, backoff, shutdown) — what chaos
  /// tests assert against. Empty = off. Requires workers > 0.
  std::string events_path;
};

/// Wall-clock accounting for the whole sweep (never part of the
/// deterministic row serialization).
struct SweepTiming {
  double wall_seconds = 0.0;      ///< end-to-end engine time
  double cell_seconds = 0.0;      ///< sum of per-cell solve times
  std::size_t dp_cache_hits = 0;
  std::size_t dp_cache_misses = 0;
  double dp_seconds = 0.0;        ///< time inside DP computations
  std::size_t threads = 0;        ///< pool size actually used
  std::size_t resumed = 0;        ///< rows replayed from the journal
  std::size_t workers = 0;        ///< executor workers (0 = in-process)
  std::size_t retries = 0;        ///< leases re-queued after worker loss
  std::size_t workers_lost = 0;   ///< workers dead before clean shutdown
};

/// Row counts by status; `ok == rows.size()` for a healthy sweep.
struct SweepStatusCounts {
  std::size_t ok = 0;
  std::size_t error = 0;
  std::size_t timeout = 0;
  std::size_t skipped = 0;
  std::size_t crashed = 0;  ///< sandboxed child died on a signal
  std::size_t invalid = 0;  ///< validation oracle rejected an "ok" solve

  [[nodiscard]] bool all_ok() const {
    return error == 0 && timeout == 0 && skipped == 0 && crashed == 0 &&
           invalid == 0;
  }
};

struct SweepReport {
  std::vector<SweepRow> rows;  ///< always in cell order
  SweepTiming timing;
  std::string extra_metric_name;  ///< column name for SweepRow::extra
  /// Merged final metrics snapshots of the executor's worker processes
  /// (empty for in-process sweeps). The workers' counters die with
  /// their processes, so this is how their instrumentation reaches the
  /// parent — the CLI merges it into its own snapshot for --metrics.
  obs::Snapshot worker_metrics;
  /// Per-worker trace chunks shipped over the executor protocol,
  /// timestamps rebased onto this process's clock (empty unless span
  /// recording was on and workers > 0). Rendered with
  /// obs::write_merged_chrome_trace for the fleet-wide Perfetto view.
  std::vector<obs::ProcessTrace> worker_traces;
  /// Heartbeat metrics folded into per-worker delta samples (empty for
  /// in-process sweeps); exported by the CLI's --metrics-timeline.
  obs::Timeline timeline;
  /// True when a sharded run stopped early on SIGINT/SIGTERM: the
  /// unresolved cells are journaled skipped rows, re-runnable with
  /// --resume --retry-failed.
  bool interrupted = false;

  [[nodiscard]] SweepStatusCounts status_counts() const;

  /// One JSON object per row. `include_timing` adds the nondeterministic
  /// "wall_ms" field; leave it off when byte-stability matters.
  void write_jsonl(std::ostream& os, bool include_timing = false) const;
  /// Same rows as CSV with a header line; absent optionals are blank.
  void write_csv(std::ostream& os, bool include_timing = false) const;
  /// Human-readable timing + degradation digest (stderr material, not
  /// row data).
  [[nodiscard]] std::string timing_summary() const;
};

class SweepEngine {
 public:
  /// Validates the grid eagerly (unknown solver names or workload kinds,
  /// offline/opt with P > 1, empty axes) by throwing std::runtime_error.
  explicit SweepEngine(SweepGrid grid);

  /// Fan every cell across the pool (grid.threads == 0 → global_pool())
  /// and collect rows in cell order. With options: journal/resume, per-
  /// cell budgets, fault injection — see SweepOptions. Never throws for
  /// per-cell failures (they become rows); throws std::runtime_error for
  /// harness-level problems (bad options, unusable journal).
  [[nodiscard]] SweepReport run() { return run(SweepOptions{}); }
  [[nodiscard]] SweepReport run(const SweepOptions& options);

  [[nodiscard]] const SweepGrid& grid() const { return grid_; }

  /// Execute exactly one cell (in-process, or in a sandboxed child when
  /// options.sandbox) — the executor workers' entry point. Never throws
  /// for per-cell failures; they become degraded rows like everywhere
  /// else. `cache` carries the caller's cross-cell DP sharing.
  [[nodiscard]] SweepRow execute_cell(std::size_t index,
                                      FlowCurveCache& cache,
                                      const SweepOptions& options) const;

 private:
  [[nodiscard]] SweepRow run_cell(const CellCoords& coords,
                                  FlowCurveCache& cache,
                                  const SweepOptions& options) const;
  /// Fork-per-cell wrapper: runs run_cell in a sandboxed child, parses
  /// the returned frame back into a row, and maps child death (signal,
  /// watchdog kill, bad exit, torn frame) to crashed/timeout/error rows.
  [[nodiscard]] SweepRow run_cell_sandboxed(const CellCoords& coords,
                                            const SweepOptions& options) const;
  void solve_cell(const CellCoords& coords, FlowCurveCache& cache,
                  Budget* budget, bool corrupt, SweepRow& row) const;

  SweepGrid grid_;
};

}  // namespace calib::harness

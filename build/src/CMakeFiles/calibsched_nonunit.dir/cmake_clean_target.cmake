file(REMOVE_RECURSE
  "libcalibsched_nonunit.a"
)

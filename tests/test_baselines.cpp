// Baseline policies: validity everywhere, plus the failure modes that
// motivate the paper's algorithms (eager overpays calibrations,
// ski-rental overpays flow on trickles).
#include <gtest/gtest.h>

#include "offline/budget_search.hpp"
#include "online/alg1_unweighted.hpp"
#include "online/baselines.hpp"
#include "online/driver.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(Baselines, EagerRunsEveryJobAtRelease) {
  const Instance instance({Job{0, 2}, Job{4, 1}, Job{9, 3}}, 3);
  EagerPolicy policy;
  const Schedule schedule = run_online(instance, /*G=*/50, policy);
  ASSERT_EQ(schedule.validate(instance), std::nullopt);
  for (JobId j = 0; j < instance.size(); ++j) {
    EXPECT_EQ(schedule.placement(j).start, instance.job(j).release);
  }
}

TEST(Baselines, EagerOverpaysCalibrationsOnSparseJobs) {
  // Jobs spaced > T apart: eager pays one calibration each; OPT delays
  // jobs into batches of T. With T = 3 and G large the ratio tends to 3.
  std::vector<Job> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back(Job{8 * i, 1});
  const Instance instance(jobs, 3, 1);
  const Cost G = 300;
  EagerPolicy eager;
  Alg1Unweighted alg1;
  const Cost eager_cost = online_objective(instance, G, eager);
  const Cost alg1_cost = online_objective(instance, G, alg1);
  const Cost opt = offline_online_optimum(instance, G).best_cost;
  EXPECT_GT(eager_cost, 2 * opt);
  EXPECT_LE(alg1_cost, 3 * opt);
}

TEST(Baselines, SkiRentalHandlesSingleJobLikeAlg1) {
  // T = 5 keeps alg1's count trigger out of play (it needs 2 jobs), so
  // both policies reduce to the same delay-until-flow-G rule.
  const Instance instance({Job{0, 1}}, 5);
  SkiRentalPolicy ski;
  Alg1Unweighted alg1;
  EXPECT_EQ(online_objective(instance, 10, ski),
            online_objective(instance, 10, alg1));
}

TEST(Baselines, SkiRentalOverpaysOnTrickle) {
  // One job per step: without the count trigger, every batch waits for
  // flow G, paying ~2x per batch relative to calibrating early.
  const Instance instance = trickle_instance(30, 1);
  const Cost G = 30;
  SkiRentalPolicy ski;
  Alg1Unweighted alg1;
  const Cost ski_cost = online_objective(instance, G, ski);
  const Cost alg1_cost = online_objective(instance, G, alg1);
  EXPECT_GT(ski_cost, alg1_cost);
}

TEST(Baselines, PeriodicIsValidAndServesEverything) {
  Prng prng(801);
  for (const Time period : {1, 3, 7}) {
    const Instance instance = sparse_uniform_instance(
        8, 30, 4, 1, WeightModel::kUniform, 5, prng);
    PeriodicPolicy policy(period);
    const Schedule schedule = run_online(instance, 10, policy);
    EXPECT_EQ(schedule.validate(instance), std::nullopt);
  }
}

TEST(Baselines, AllBaselinesValidOnMultiMachine) {
  Prng prng(802);
  const Instance instance = sparse_uniform_instance(
      8, 16, 3, 2, WeightModel::kUnit, 1, prng);
  EagerPolicy eager;
  SkiRentalPolicy ski;
  PeriodicPolicy periodic(2);
  for (OnlinePolicy* policy :
       std::initializer_list<OnlinePolicy*>{&eager, &ski, &periodic}) {
    const Schedule schedule = run_online(instance, 5, *policy);
    EXPECT_EQ(schedule.validate(instance), std::nullopt) << policy->name();
  }
}

TEST(Baselines, NamesAreStable) {
  EXPECT_STREQ(EagerPolicy{}.name(), "eager");
  EXPECT_STREQ(SkiRentalPolicy{}.name(), "ski-rental");
  EXPECT_STREQ(PeriodicPolicy{3}.name(), "periodic");
}

}  // namespace
}  // namespace calib

#include "online/alg3_multi.hpp"

#include <algorithm>

#include "core/list_scheduler.hpp"
#include "util/check.hpp"

namespace calib {

void Alg3Multi::decide(DriverHandle& handle) {
  const Time t = handle.now();
  const Cost G = handle.G();
  const Time T = handle.T();
  // Step 13's per-interval quota: G/T jobs, at least one so the loop
  // always progresses (the G/T < 1 regime schedules arrivals at once),
  // and at most T (an interval has only T slots).
  const Time quota = std::clamp<Time>(G / T, 1, T);

  // Steps 10-14.
  for (;;) {
    if (handle.waiting_empty()) return;
    const Cost f = handle.queue_flow_from(t + 1, QueueOrder::kFifo);
    const auto queue_size = static_cast<Cost>(handle.waiting_count());
    if (!(queue_size * static_cast<Cost>(T) >= G || f >= G)) return;
    const MachineId m = handle.calibrate();  // step 12, round-robin
    // Step 13: commit up to `quota` queued jobs, release order, into the
    // earliest free slots of the new interval [t, t + T).
    for (Time placed = 0; placed < quota && !handle.waiting_empty();
         ++placed) {
      const JobId j = handle.front(QueueOrder::kFifo);
      const Time slot = handle.first_free_slot(m, t, t + T);
      if (slot == kUnscheduled) break;  // interval full (overlapping cals)
      handle.assign(j, m, slot);
    }
  }
}

Schedule reassign_observation_2_1(const Instance& instance,
                                  const Schedule& explicit_schedule) {
  const ListResult result =
      list_schedule(instance, explicit_schedule.calendar());
  CALIB_CHECK_MSG(result.feasible(),
                  "a calendar that carried an explicit schedule must be "
                  "feasible for the greedy too");
  return result.schedule;
}

}  // namespace calib

#include "serve/io.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace calib::serve {
namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

}  // namespace

int listen_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    fail(error, "socket");
    return -1;
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    fail(error, "bind " + path);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    fail(error, "listen " + path);
    ::close(fd);
    return -1;
  }
  return fd;
}

int listen_tcp(int port, int* bound_port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    fail(error, "socket");
    return -1;
  }
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    fail(error, "bind port " + std::to_string(port));
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    fail(error, "listen port " + std::to_string(port));
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      *bound_port = ntohs(bound.sin_port);
    }
  }
  return fd;
}

int accept_connection(int listener_fd) {
  const int fd = ::accept(listener_fd, nullptr, nullptr);
  if (fd < 0) return -1;
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    fail(error, "socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    fail(error, "connect " + path);
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    fail(error, "socket");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    fail(error, "connect port " + std::to_string(port));
    ::close(fd);
    return -1;
  }
  return fd;
}

void pump_reads(Connection& conn) {
  if (conn.dead || conn.fd < 0) return;
  // Bounded per call: at most 16 chunks, so one chatty peer cannot
  // starve the rest of the poll round.
  for (int chunk = 0; chunk < 16; ++chunk) {
    char buf[4096];
    const ssize_t n = ::read(conn.fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      conn.dead = true;
      return;
    }
    if (n == 0) {  // EOF
      conn.dead = true;
      return;
    }
    conn.reader.feed(buf, static_cast<std::size_t>(n));
    if (conn.reader.corrupted()) {
      conn.dead = true;
      return;
    }
    if (n < static_cast<ssize_t>(sizeof buf)) return;  // drained
  }
}

void pump_writes(Connection& conn) {
  if (conn.dead || conn.fd < 0) return;
  while (!conn.outbound.empty()) {
    const ssize_t n =
        ::write(conn.fd, conn.outbound.data(), conn.outbound.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      conn.dead = true;
      return;
    }
    conn.outbound.erase(0, static_cast<std::size_t>(n));
  }
  if (conn.want_close) conn.dead = true;
}

void close_connection(Connection& conn) {
  if (conn.fd >= 0) ::close(conn.fd);
  conn.fd = -1;
  conn.dead = true;
}

}  // namespace calib::serve

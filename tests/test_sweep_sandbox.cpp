// Fork-per-cell sandbox execution: the run_in_sandbox primitive, the
// sweep engine's --sandbox mode (crashed rows with signal names, the
// watchdog backstop for --cell-budget-ms), the differential guarantee
// that crash-free sandboxed runs are byte-identical to in-process runs,
// and journal/resume across crashed cells and killed parents.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "harness/journal.hpp"
#include "harness/sandbox.hpp"
#include "harness/sweep.hpp"
#include "obs/trace.hpp"
#include "workload/generators.hpp"

// ASan and TSan install their own SIGSEGV handler and turn the death
// into a report + plain exit(1), so segfault-specific assertions (the
// parent seeing "killed by SIGSEGV") only hold in unsanitized builds.
// SIGABRT is not intercepted and works everywhere. CALIBSCHED_TSAN is
// the CMake-level definition (CALIBSCHED_SANITIZE=thread); the feature
// probes cover builds that set -fsanitize directly.
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CALIBSCHED_TEST_SAN_SEGV 1
#endif
#endif
#if !defined(CALIBSCHED_TEST_SAN_SEGV) && \
    (defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
     defined(CALIBSCHED_TSAN))
#define CALIBSCHED_TEST_SAN_SEGV 1
#endif
#ifndef CALIBSCHED_TEST_SAN_SEGV
#define CALIBSCHED_TEST_SAN_SEGV 0
#endif

namespace calib {
namespace {

using harness::run_in_sandbox;
using harness::SandboxLimits;
using harness::SandboxOutcome;
using harness::signal_name;
using harness::SweepEngine;
using harness::SweepGrid;
using harness::SweepOptions;
using harness::SweepReport;
using harness::SweepRow;
using harness::WorkloadSpec;

SweepGrid tiny_grid() {
  WorkloadSpec spec;
  spec.kind = "poisson";
  spec.rate = 0.4;
  spec.steps = 16;
  spec.T = 3;
  SweepGrid grid;
  grid.workloads = {spec};
  grid.solvers = {"alg1", "alg2"};
  grid.G_values = {5, 9};
  grid.seeds = 2;
  grid.base_seed = 7;
  grid.compare_to_opt = true;
  grid.threads = 1;
  return grid;
}

std::string jsonl_of(const SweepReport& report) {
  std::ostringstream os;
  report.write_jsonl(os);
  return os.str();
}

std::string csv_of(const SweepReport& report) {
  std::ostringstream os;
  report.write_csv(os);
  return os.str();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "calibsched_" + name + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

// ---- run_in_sandbox unit tests ----------------------------------------

TEST(Sandbox, PayloadRoundTripsThroughTheFrame) {
  const SandboxOutcome outcome = run_in_sandbox(
      [] { return std::string("hello from the child \"quoted\"\n"); }, {});
  ASSERT_EQ(outcome.kind, SandboxOutcome::Kind::kOk)
      << outcome.detail << " exit=" << outcome.exit_code;
  EXPECT_EQ(outcome.payload, "hello from the child \"quoted\"\n");
}

TEST(Sandbox, EmptyPayloadIsAValidFrame) {
  const SandboxOutcome outcome =
      run_in_sandbox([] { return std::string(); }, {});
  ASSERT_EQ(outcome.kind, SandboxOutcome::Kind::kOk) << outcome.detail;
  EXPECT_TRUE(outcome.payload.empty());
}

TEST(Sandbox, ChildDeathBySignalIsReported) {
  const SandboxOutcome outcome = run_in_sandbox(
      []() -> std::string { std::abort(); }, {});
  ASSERT_EQ(outcome.kind, SandboxOutcome::Kind::kSignal);
  EXPECT_EQ(outcome.signal, SIGABRT);
  EXPECT_EQ(signal_name(outcome.signal), "SIGABRT");
}

TEST(Sandbox, BreadcrumbNamesTheDeepestSpanAtDeath) {
  const SandboxOutcome outcome = run_in_sandbox(
      []() -> std::string {
        const obs::ScopedSpan outer("outer.phase", "test");
        const obs::ScopedSpan inner("inner.phase", "test");
        std::abort();
      },
      {});
  ASSERT_EQ(outcome.kind, SandboxOutcome::Kind::kSignal);
  EXPECT_EQ(outcome.phase, "inner.phase");
}

TEST(Sandbox, BreadcrumbRestoresTheParentSpanOnExit) {
  const SandboxOutcome outcome = run_in_sandbox(
      []() -> std::string {
        const obs::ScopedSpan outer("outer.phase", "test");
        {
          const obs::ScopedSpan inner("inner.phase", "test");
        }
        std::abort();
      },
      {});
  ASSERT_EQ(outcome.kind, SandboxOutcome::Kind::kSignal);
  EXPECT_EQ(outcome.phase, "outer.phase");
}

TEST(Sandbox, WatchdogKillsAHungChild) {
  SandboxLimits limits;
  limits.watchdog_ms = 150.0;
  const auto start = std::chrono::steady_clock::now();
  const SandboxOutcome outcome = run_in_sandbox(
      []() -> std::string {
        for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(10));
      },
      limits);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(outcome.kind, SandboxOutcome::Kind::kWatchdog);
  EXPECT_GE(elapsed_ms, 150.0 * 0.9);
  EXPECT_LE(elapsed_ms, 150.0 * 4);  // kill + reap, generous CI slack
}

TEST(Sandbox, EscapingExceptionBecomesANonzeroExit) {
  const SandboxOutcome outcome = run_in_sandbox(
      []() -> std::string { throw std::runtime_error("escape"); }, {});
  ASSERT_EQ(outcome.kind, SandboxOutcome::Kind::kExit);
  EXPECT_NE(outcome.exit_code, 0);
}

TEST(Sandbox, SignalNamesCoverTheCommonFatalSet) {
  EXPECT_EQ(signal_name(SIGSEGV), "SIGSEGV");
  EXPECT_EQ(signal_name(SIGKILL), "SIGKILL");
  EXPECT_EQ(signal_name(SIGBUS), "SIGBUS");
  EXPECT_EQ(signal_name(250), "signal 250");
}

// ---- sweep --sandbox integration --------------------------------------

TEST(SweepSandbox, CrashFreeRunsAreByteIdenticalToInProcess) {
  const SweepReport in_process = SweepEngine(tiny_grid()).run();
  SweepOptions options;
  options.sandbox = true;
  const SweepReport sandboxed = SweepEngine(tiny_grid()).run(options);
  EXPECT_EQ(jsonl_of(sandboxed), jsonl_of(in_process));
  EXPECT_EQ(csv_of(sandboxed), csv_of(in_process));
  EXPECT_TRUE(sandboxed.status_counts().all_ok());
}

TEST(SweepSandbox, CrashFreeRunsAreByteIdenticalAcrossThreadCounts) {
  SweepGrid parallel = tiny_grid();
  parallel.threads = 4;
  SweepOptions options;
  options.sandbox = true;
  const SweepReport serial = SweepEngine(tiny_grid()).run(options);
  const SweepReport threaded = SweepEngine(parallel).run(options);
  EXPECT_EQ(jsonl_of(serial), jsonl_of(threaded));
}

TEST(SweepSandbox, InjectedAbortBecomesACrashedRowWithTheSignalName) {
  SweepOptions options;
  options.sandbox = true;
  options.faults.abort_cells = {2};
  const SweepReport clean = SweepEngine(tiny_grid()).run();
  const SweepReport report = SweepEngine(tiny_grid()).run(options);
  ASSERT_EQ(report.rows.size(), clean.rows.size());
  const SweepRow& crashed = report.rows[2];
  EXPECT_EQ(crashed.status, RunStatus::kCrashed);
  EXPECT_NE(crashed.error.find("SIGABRT"), std::string::npos)
      << crashed.error;
  // The breadcrumb attributes the crash to the phase it happened in.
  EXPECT_NE(crashed.error.find("in cell"), std::string::npos)
      << crashed.error;
  EXPECT_EQ(crashed.result.objective, 0);
  // Every remaining cell completed, untouched by the neighbor's death.
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    if (i == 2) continue;
    EXPECT_EQ(harness::row_to_json(report.rows[i], "", false),
              harness::row_to_json(clean.rows[i], "", false));
  }
  const harness::SweepStatusCounts counts = report.status_counts();
  EXPECT_EQ(counts.crashed, 1u);
  EXPECT_EQ(counts.ok, report.rows.size() - 1);
  EXPECT_NE(report.timing_summary().find("crashed"), std::string::npos);
}

TEST(SweepSandbox, InjectedSegvBecomesACrashedRow) {
  if (CALIBSCHED_TEST_SAN_SEGV) {
    GTEST_SKIP() << "sanitizer intercepts SIGSEGV; the child exits instead";
  }
  SweepOptions options;
  options.sandbox = true;
  options.faults.segv_cells = {0, 5};
  const SweepReport report = SweepEngine(tiny_grid()).run(options);
  for (const std::size_t i : {std::size_t{0}, std::size_t{5}}) {
    EXPECT_EQ(report.rows[i].status, RunStatus::kCrashed);
    EXPECT_NE(report.rows[i].error.find("SIGSEGV"), std::string::npos)
        << report.rows[i].error;
  }
  EXPECT_EQ(report.status_counts().crashed, 2u);
}

TEST(SweepSandbox, CrashedRowsAreDeterministic) {
  SweepOptions options;
  options.sandbox = true;
  options.faults.abort_cells = {1, 6};
  const SweepReport a = SweepEngine(tiny_grid()).run(options);
  const SweepReport b = SweepEngine(tiny_grid()).run(options);
  EXPECT_EQ(jsonl_of(a), jsonl_of(b));
  EXPECT_EQ(csv_of(a), csv_of(b));
}

TEST(SweepSandbox, WatchdogEnforcesTheCellBudgetWithinTwiceTheRequest) {
  constexpr double kBudgetMs = 250.0;
  SweepOptions options;
  options.sandbox = true;
  options.cell_budget_ms = kBudgetMs;
  options.faults.hang_cells = {3};
  const SweepReport report = SweepEngine(tiny_grid()).run(options);
  const SweepRow& killed = report.rows[3];
  EXPECT_EQ(killed.status, RunStatus::kTimeout);
  EXPECT_NE(killed.error.find("watchdog"), std::string::npos)
      << killed.error;
  // The hard guarantee: the hung cell was ended within 2x the budget
  // (the watchdog fires at 1.5x; the rest is fork/reap overhead).
  EXPECT_LE(killed.result.wall_ms, kBudgetMs * 2) << killed.result.wall_ms;
  EXPECT_GE(killed.result.wall_ms, kBudgetMs) << killed.result.wall_ms;
  // Every other cell still completed.
  EXPECT_EQ(report.status_counts().ok, report.rows.size() - 1);
}

TEST(SweepSandbox, CrashKindsWithoutSandboxAreRefused) {
  SweepOptions options;
  options.faults.segv_cells = {0};
  EXPECT_THROW((void)SweepEngine(tiny_grid()).run(options),
               std::runtime_error);
  options = SweepOptions{};
  options.faults.abort_probability = 0.5;
  EXPECT_THROW((void)SweepEngine(tiny_grid()).run(options),
               std::runtime_error);
}

TEST(SweepSandbox, HangsWithoutACellBudgetAreRefused) {
  SweepOptions options;
  options.sandbox = true;
  options.faults.hang_cells = {0};  // no cell_budget_ms: nothing ends it
  EXPECT_THROW((void)SweepEngine(tiny_grid()).run(options),
               std::runtime_error);
}

TEST(SweepSandbox, CrashedCellsAreJournaledAndRetriable) {
  const std::string path = temp_path("sandbox_retry");
  std::remove(path.c_str());

  SweepOptions faulted;
  faulted.sandbox = true;
  faulted.journal_path = path;
  faulted.faults.abort_cells = {1, 4};
  const SweepReport crashed = SweepEngine(tiny_grid()).run(faulted);
  EXPECT_EQ(crashed.status_counts().crashed, 2u);

  // A plain resume replays the crashed rows verbatim — a crash is a
  // recorded outcome, not a hole in the journal.
  SweepOptions replay;
  replay.sandbox = true;
  replay.journal_path = path;
  replay.resume = true;
  const SweepReport replayed = SweepEngine(tiny_grid()).run(replay);
  EXPECT_EQ(jsonl_of(replayed), jsonl_of(crashed));
  EXPECT_EQ(replayed.timing.resumed, replayed.rows.size());

  // retry_failed + a healthy plan re-runs exactly the crashed cells and
  // converges to the clean run, byte for byte.
  SweepOptions retry;
  retry.sandbox = true;
  retry.journal_path = path;
  retry.resume = true;
  retry.retry_failed = true;
  const SweepReport retried = SweepEngine(tiny_grid()).run(retry);
  EXPECT_TRUE(retried.status_counts().all_ok());
  EXPECT_EQ(retried.timing.resumed, retried.rows.size() - 2);
  EXPECT_EQ(jsonl_of(retried), jsonl_of(SweepEngine(tiny_grid()).run()));

  std::remove(path.c_str());
}

TEST(SweepSandbox, ResumeAfterAKilledParentIsByteIdentical) {
  // Simulate a SIGKILLed parent with max_cells: the journal ends
  // mid-sweep exactly as if the process died between cells (every
  // completed cell was fsync'd; nothing else was written).
  const std::string path = temp_path("sandbox_kill");
  std::remove(path.c_str());

  SweepOptions first;
  first.sandbox = true;
  first.journal_path = path;
  first.max_cells = 3;
  const SweepReport partial = SweepEngine(tiny_grid()).run(first);
  EXPECT_EQ(partial.status_counts().skipped, partial.rows.size() - 3);

  SweepOptions second;
  second.sandbox = true;
  second.journal_path = path;
  second.resume = true;
  const SweepReport resumed = SweepEngine(tiny_grid()).run(second);
  EXPECT_EQ(resumed.timing.resumed, 3u);
  EXPECT_TRUE(resumed.status_counts().all_ok());
  EXPECT_EQ(jsonl_of(resumed), jsonl_of(SweepEngine(tiny_grid()).run()));

  std::remove(path.c_str());
}

TEST(SweepSandbox, MixedFaultSweepCompletesEveryRemainingCell) {
  // The acceptance scenario: segv + hang cells in one sandboxed sweep;
  // every other cell still completes and the journal holds every
  // attempted cell's outcome.
  const std::string path = temp_path("sandbox_mixed");
  std::remove(path.c_str());

  SweepOptions options;
  options.sandbox = true;
  options.journal_path = path;
  options.cell_budget_ms = 400.0;
  options.faults.abort_cells = {0};
  options.faults.hang_cells = {5};
  if (!CALIBSCHED_TEST_SAN_SEGV) options.faults.segv_cells = {2};
  const SweepReport report = SweepEngine(tiny_grid()).run(options);

  const harness::SweepStatusCounts counts = report.status_counts();
  EXPECT_EQ(counts.crashed, CALIBSCHED_TEST_SAN_SEGV ? 1u : 2u);
  EXPECT_EQ(counts.timeout, 1u);
  EXPECT_EQ(counts.skipped, 0u);
  EXPECT_EQ(counts.ok, report.rows.size() - (CALIBSCHED_TEST_SAN_SEGV ? 2 : 3));

  // Journal: one line per attempted cell (header + rows), each parseable.
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // header
  std::size_t journaled = 0;
  while (std::getline(in, line)) {
    const auto entry = harness::parse_flat_json(line);
    EXPECT_EQ(entry.count("cell"), 1u);
    EXPECT_EQ(entry.count("status"), 1u);
    ++journaled;
  }
  EXPECT_EQ(journaled, report.rows.size());

  std::remove(path.c_str());
}

}  // namespace
}  // namespace calib

file(REMOVE_RECURSE
  "libcalibsched_online.a"
)

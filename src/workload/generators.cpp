#include "workload/generators.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace calib {

const char* weight_model_name(WeightModel model) {
  switch (model) {
    case WeightModel::kUnit:
      return "unit";
    case WeightModel::kUniform:
      return "uniform";
    case WeightModel::kZipf:
      return "zipf";
    case WeightModel::kBimodal:
      return "bimodal";
  }
  return "?";
}

WeightModel parse_weight_model(const std::string& name) {
  if (name == "unit") return WeightModel::kUnit;
  if (name == "uniform") return WeightModel::kUniform;
  if (name == "zipf") return WeightModel::kZipf;
  if (name == "bimodal") return WeightModel::kBimodal;
  throw std::runtime_error("unknown weight model: " + name);
}

Weight sample_weight(WeightModel model, Weight w_max, Prng& prng) {
  CALIB_CHECK(w_max >= 1);
  switch (model) {
    case WeightModel::kUnit:
      return 1;
    case WeightModel::kUniform:
      return prng.uniform_int(1, w_max);
    case WeightModel::kZipf:
      return prng.zipf(w_max, 1.1);
    case WeightModel::kBimodal:
      return prng.bernoulli(0.9) ? 1 : w_max;
  }
  CALIB_CHECK(false);
  return 1;
}

Instance poisson_instance(const PoissonConfig& config, Time T, int machines,
                          Prng& prng) {
  std::vector<Job> jobs;
  for (Time t = 0; t < config.steps; ++t) {
    const std::int64_t arrivals = prng.poisson(config.rate);
    for (std::int64_t i = 0; i < arrivals; ++i) {
      jobs.push_back(
          Job{t, sample_weight(config.weights, config.w_max, prng)});
    }
  }
  if (jobs.empty()) jobs.push_back(Job{0, 1});  // benches want >= 1 job
  return Instance(std::move(jobs), T, machines).normalized();
}

Instance bursty_instance(const BurstyConfig& config, Time T, int machines,
                         Prng& prng) {
  std::vector<Job> jobs;
  Time burst_remaining = 0;
  for (Time t = 0; t < config.steps; ++t) {
    if (burst_remaining == 0 && prng.bernoulli(config.burst_probability)) {
      burst_remaining = config.burst_length;
    }
    if (burst_remaining > 0) {
      --burst_remaining;
      if (prng.bernoulli(config.burst_rate)) {
        jobs.push_back(
            Job{t, sample_weight(config.weights, config.w_max, prng)});
      }
    }
  }
  if (jobs.empty()) jobs.push_back(Job{0, 1});
  return Instance(std::move(jobs), T, machines).normalized();
}

Instance sparse_uniform_instance(int count, Time span, Time T, int machines,
                                 WeightModel weights, Weight w_max,
                                 Prng& prng) {
  CALIB_CHECK(count >= 1);
  CALIB_CHECK_MSG(span >= count, "need span >= count for distinct releases");
  // Sample `count` distinct releases from [0, span) by shuffling a
  // partial Fisher-Yates over the window.
  std::vector<Time> releases;
  releases.reserve(static_cast<std::size_t>(count));
  // Floyd's algorithm for a uniform distinct sample.
  std::vector<Time> chosen;
  for (Time j = span - count; j < span; ++j) {
    const Time candidate = prng.uniform_int(0, j);
    if (std::find(chosen.begin(), chosen.end(), candidate) == chosen.end()) {
      chosen.push_back(candidate);
    } else {
      chosen.push_back(j);
    }
  }
  std::vector<Job> jobs;
  for (const Time r : chosen) {
    jobs.push_back(Job{r, sample_weight(weights, w_max, prng)});
  }
  return Instance(std::move(jobs), T, machines);
}

Instance trickle_instance(Time T, int machines) {
  std::vector<Job> jobs;
  for (Time t = 0; t < T; ++t) jobs.push_back(Job{t, 1});
  return Instance(std::move(jobs), T, machines);
}

DeadlineInstance deadline_uniform_instance(int count, Time span, Time T,
                                           Time window_max, Prng& prng) {
  CALIB_CHECK(count >= 1);
  CALIB_CHECK(window_max >= 1);
  std::vector<DeadlineJob> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const Time release = prng.uniform_int(0, span - 1);
    const Time window = prng.uniform_int(1, window_max);
    jobs.push_back(DeadlineJob{release, release + window});
  }
  return DeadlineInstance(std::move(jobs), T, 1);
}

Instance regression_instance() {
  return Instance(
      {
          Job{0, 3},
          Job{1, 1},
          Job{2, 5},
          Job{9, 1},
          Job{10, 2},
          Job{11, 4},
      },
      /*calibration_length=*/4, /*machines=*/1);
}

}  // namespace calib

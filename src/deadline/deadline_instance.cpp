#include "deadline/deadline_instance.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace calib {

DeadlineInstance::DeadlineInstance(std::vector<DeadlineJob> jobs,
                                   Time calibration_length, int machines)
    : jobs_(std::move(jobs)), T_(calibration_length), machines_(machines) {
  CALIB_CHECK(T_ >= 1);
  CALIB_CHECK(machines_ >= 1);
  for (const DeadlineJob& job : jobs_) {
    CALIB_CHECK_MSG(job.release + 1 <= job.deadline,
                    "window [" << job.release << ", " << job.deadline
                               << ") cannot fit a unit job");
  }
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const DeadlineJob& a, const DeadlineJob& b) {
                     if (a.deadline != b.deadline)
                       return a.deadline < b.deadline;
                     return a.release < b.release;
                   });
}

const DeadlineJob& DeadlineInstance::job(JobId j) const {
  CALIB_CHECK(j >= 0 && j < size());
  return jobs_[static_cast<std::size_t>(j)];
}

Time DeadlineInstance::min_release() const {
  CALIB_CHECK(!jobs_.empty());
  Time best = jobs_.front().release;
  for (const DeadlineJob& job : jobs_) best = std::min(best, job.release);
  return best;
}

Time DeadlineInstance::max_deadline() const {
  CALIB_CHECK(!jobs_.empty());
  return jobs_.back().deadline;
}

std::string DeadlineInstance::to_string() const {
  std::ostringstream os;
  os << "DeadlineInstance(T=" << T_ << ", P=" << machines_ << ", jobs=[";
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (i > 0) os << ", ";
    os << '[' << jobs_[i].release << ',' << jobs_[i].deadline << ')';
  }
  os << "])";
  return os.str();
}

}  // namespace calib

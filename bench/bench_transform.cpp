// E5 — Lemma 3.4: converting any schedule to release order never
// increases flow and at most doubles calibrations.
//
// Measures, over random valid schedules, the realized flow reduction
// and calibration inflation of the transformation, and — the lemma's
// use in Theorem 3.8 — the cost of the transformed *optimum* relative
// to OPT (must be <= 2, typically much closer to 1).
#include <benchmark/benchmark.h>

#include <iostream>
#include <mutex>
#include <optional>

#include "bench_common.hpp"
#include "core/list_scheduler.hpp"
#include "core/transform.hpp"
#include "offline/dp.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

std::optional<Schedule> random_schedule(const Instance& instance,
                                        Prng& prng) {
  std::vector<Time> starts;
  const auto calibrations =
      static_cast<int>(prng.uniform_int(2, instance.size()));
  for (int c = 0; c < calibrations; ++c) {
    starts.push_back(prng.uniform_int(
        instance.min_release() + 1 - instance.T(), instance.max_release()));
  }
  ListResult result = list_schedule(instance, starts);
  if (!result.feasible()) return std::nullopt;
  return std::move(result.schedule);
}

void BM_TransformThroughput(benchmark::State& state) {
  Prng prng(7);
  const Instance instance = sparse_uniform_instance(
      static_cast<int>(state.range(0)), state.range(0) * 3, 4, 1,
      WeightModel::kUniform, 6, prng);
  std::optional<Schedule> schedule;
  while (!schedule.has_value()) schedule = random_schedule(instance, prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(to_release_order(instance, *schedule));
  }
  state.SetItemsProcessed(state.iterations() * instance.size());
}

BENCHMARK(BM_TransformThroughput)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

struct TablePrinter {
  ~TablePrinter() {
    std::cout << "\nE5 / Lemma 3.4 - release-order transformation "
                 "(200 random schedules per row):\n";
    Table table({"jobs", "T", "flow ratio (<=1)", "calib ratio max (<=2)",
                 "ordered-OPT / OPT max (<=2)"});
    Prng master(515);
    for (const auto& [jobs, T] : std::vector<std::pair<int, Time>>{
             {6, 2}, {8, 3}, {10, 4}, {12, 3}, {16, 5}}) {
      Summary flow_ratio;
      Summary calib_ratio;
      Summary opt_ratio;
      std::mutex mutex;
      global_pool().parallel_for(200, [&, jobs, T](std::size_t seed) {
        Prng prng(seed * 104729u + static_cast<std::uint64_t>(jobs));
        const Instance instance = sparse_uniform_instance(
            jobs, jobs * 3, T, 1, WeightModel::kUniform, 6, prng);
        const auto schedule = random_schedule(instance, prng);
        if (!schedule.has_value()) return;
        const Schedule ordered = to_release_order(instance, *schedule);
        const double fr =
            static_cast<double>(ordered.weighted_flow(instance)) /
            static_cast<double>(schedule->weighted_flow(instance));
        const double cr =
            static_cast<double>(ordered.calendar().count()) /
            static_cast<double>(schedule->calendar().count());
        // Theorem 3.8's use: transform the true optimum for a random G
        // (the DP witness at the optimal budget).
        const Cost G = prng.uniform_int(2, 20);
        const BudgetSearchResult best = offline_online_optimum(instance, G);
        OfflineDp dp(instance);
        const auto opt_schedule = dp.solve(best.best_k);
        const Schedule ordered_opt =
            to_release_order(instance, *opt_schedule);
        const double oratio =
            static_cast<double>(ordered_opt.online_cost(instance, G)) /
            static_cast<double>(opt_schedule->online_cost(instance, G));
        const std::scoped_lock lock(mutex);
        flow_ratio.add(fr);
        calib_ratio.add(cr);
        opt_ratio.add(oratio);
      });
      table.row()
          .add(jobs)
          .add(T)
          .add(flow_ratio.mean(), 3)
          .add(calib_ratio.max(), 3)
          .add(opt_ratio.max(), 3);
    }
    table.print(std::cout);
  }
};
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

file(REMOVE_RECURSE
  "libcalibsched_offline.a"
)

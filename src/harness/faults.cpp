#include "harness/faults.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "util/prng.hpp"

namespace calib::harness {
namespace {

struct KindRef {
  FaultPlan::Action action;
  const std::vector<std::size_t>* cells;
  double probability;
};

// Enum order; both the listed-cell check and the cumulative draw walk
// this table, so precedence and band layout stay in one place.
std::array<KindRef, 6> kinds(const FaultPlan& plan) {
  return {{
      {FaultPlan::Action::kThrow, &plan.throw_cells, plan.throw_probability},
      {FaultPlan::Action::kTimeout, &plan.timeout_cells,
       plan.timeout_probability},
      {FaultPlan::Action::kSegv, &plan.segv_cells, plan.segv_probability},
      {FaultPlan::Action::kAbort, &plan.abort_cells, plan.abort_probability},
      {FaultPlan::Action::kHang, &plan.hang_cells, plan.hang_probability},
      {FaultPlan::Action::kCorrupt, &plan.corrupt_cells,
       plan.corrupt_probability},
  }};
}

}  // namespace

bool FaultPlan::empty() const {
  for (const KindRef& kind : kinds(*this)) {
    if (!kind.cells->empty() || kind.probability != 0.0) return false;
  }
  return true;
}

bool FaultPlan::has_crash_kinds() const {
  return !segv_cells.empty() || !abort_cells.empty() || !hang_cells.empty() ||
         segv_probability > 0.0 || abort_probability > 0.0 ||
         hang_probability > 0.0;
}

bool FaultPlan::has_hangs() const {
  return !hang_cells.empty() || hang_probability > 0.0;
}

FaultPlan::Action FaultPlan::action(const CellCoords& coords) const {
  const auto table = kinds(*this);
  for (const KindRef& kind : table) {
    if (std::find(kind.cells->begin(), kind.cells->end(), coords.index) !=
        kind.cells->end()) {
      return kind.action;
    }
  }
  double total = 0.0;
  for (const KindRef& kind : table) total += kind.probability;
  if (total == 0.0) return Action::kNone;
  // Fresh root per cell, exactly like the instance/policy streams: the
  // draw depends only on (seed, cell index), never on evaluation order.
  Prng root(seed);
  Prng stream = root.split(coords.index);
  const double draw = stream.uniform01();
  double cumulative = 0.0;
  for (const KindRef& kind : table) {
    cumulative += kind.probability;
    if (draw < cumulative) return kind.action;
  }
  return Action::kNone;
}

void FaultPlan::validate() const {
  double total = 0.0;
  for (const KindRef& kind : kinds(*this)) {
    if (kind.probability < 0.0 || kind.probability > 1.0) {
      throw std::runtime_error(
          "fault plan: probabilities must lie in [0, 1] and sum to <= 1");
    }
    total += kind.probability;
  }
  if (total > 1.0) {
    throw std::runtime_error(
        "fault plan: probabilities must lie in [0, 1] and sum to <= 1");
  }
}

void WorkerFaultPlan::validate(int workers) const {
  for (const WorkerFault& fault : faults) {
    if (fault.worker < 0 || fault.worker >= workers) {
      throw std::runtime_error(
          "worker fault plan: worker index " + std::to_string(fault.worker) +
          " outside [0, " + std::to_string(workers) + ")");
    }
  }
}

WorkerFaultPlan parse_worker_faults(const std::string& spec) {
  WorkerFaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(start, comma - start);
    start = comma + 1;
    if (part.empty()) continue;
    const std::size_t eq = part.find('=');
    const std::size_t at = part.find('@');
    if (eq == std::string::npos || at == std::string::npos || at < eq) {
      throw std::runtime_error(
          "worker faults: want kind=WORKER@AFTER, got '" + part + "'");
    }
    WorkerFault fault;
    const std::string kind = part.substr(0, eq);
    if (kind == "kill") {
      fault.kind = WorkerFault::Kind::kKill;
    } else if (kind == "stall") {
      fault.kind = WorkerFault::Kind::kStall;
    } else if (kind == "corrupt-frame") {
      fault.kind = WorkerFault::Kind::kCorruptFrame;
    } else {
      throw std::runtime_error("worker faults: unknown kind '" + kind +
                               "' (want kill|stall|corrupt-frame)");
    }
    try {
      fault.worker = std::stoi(part.substr(eq + 1, at - eq - 1));
      fault.after_cells = std::stoull(part.substr(at + 1));
    } catch (const std::exception&) {
      throw std::runtime_error(
          "worker faults: non-numeric WORKER@AFTER in '" + part + "'");
    }
    plan.faults.push_back(fault);
  }
  return plan;
}

const ServeFault* ServeFaultPlan::match(ServeFault::Kind kind,
                                        const std::string& tenant) const {
  for (const ServeFault& fault : faults) {
    if (fault.kind != kind) continue;
    if (fault.tenant.empty() || fault.tenant == tenant) return &fault;
  }
  return nullptr;
}

ServeFaultPlan parse_serve_faults(const std::string& spec) {
  ServeFaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(start, comma - start);
    start = comma + 1;
    if (part.empty()) continue;
    const std::size_t at = part.find('@');
    std::string head = at == std::string::npos ? part : part.substr(0, at);
    ServeFault fault;
    if (at != std::string::npos) fault.tenant = part.substr(at + 1);
    const std::size_t eq = head.find('=');
    if (eq != std::string::npos) {
      try {
        fault.param = std::stoll(head.substr(eq + 1));
      } catch (const std::exception&) {
        throw std::runtime_error("serve faults: non-numeric PARAM in '" +
                                 part + "'");
      }
      head = head.substr(0, eq);
    }
    if (head == "slow-tenant") {
      fault.kind = ServeFault::Kind::kSlowTenant;
      if (fault.param <= 0) fault.param = 50;
    } else if (head == "flood") {
      fault.kind = ServeFault::Kind::kFlood;
      if (fault.param <= 0) fault.param = 100;
    } else if (head == "disconnect-mid-frame") {
      fault.kind = ServeFault::Kind::kDisconnectMidFrame;
    } else if (head == "corrupt-frame") {
      fault.kind = ServeFault::Kind::kCorruptFrame;
    } else {
      throw std::runtime_error(
          "serve faults: unknown kind '" + head +
          "' (want slow-tenant|flood|disconnect-mid-frame|corrupt-frame)");
    }
    plan.faults.push_back(fault);
  }
  return plan;
}

}  // namespace calib::harness

#include "util/pending_set.hpp"

#include <limits>

#include "util/check.hpp"

namespace calib {
namespace {

/// splitmix64: deterministic, well-mixed treap priorities from the
/// insertion sequence number alone — identical operation sequences give
/// identical trees, which is what makes driver replays byte-stable.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool key_less(const OrderStatTree::Key& a, const OrderStatTree::Key& b) {
  if (a.primary != b.primary) return a.primary < b.primary;
  return a.secondary < b.secondary;
}

constexpr std::int64_t kMinKey = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMaxKey = std::numeric_limits<std::int64_t>::max();

}  // namespace

// ---- OrderStatTree -----------------------------------------------------

OrderStatTree::Agg OrderStatTree::node_agg(std::int32_t n) const {
  if (n < 0) return Agg{};
  const Node& node = nodes_[static_cast<std::size_t>(n)];
  return Agg{node.count, node.weight_sum};
}

void OrderStatTree::pull(std::int32_t n) {
  Node& node = nodes_[static_cast<std::size_t>(n)];
  const Agg left = node_agg(node.left);
  const Agg right = node_agg(node.right);
  node.count = left.count + 1 + right.count;
  node.weight_sum = left.weight_sum + node.weight + right.weight_sum;
}

std::int32_t OrderStatTree::merge(std::int32_t a, std::int32_t b) {
  if (a < 0) return b;
  if (b < 0) return a;
  Node& na = nodes_[static_cast<std::size_t>(a)];
  Node& nb = nodes_[static_cast<std::size_t>(b)];
  if (na.priority >= nb.priority) {
    na.right = merge(na.right, b);
    pull(a);
    return a;
  }
  nb.left = merge(a, nb.left);
  pull(b);
  return b;
}

void OrderStatTree::split(std::int32_t n, Key key, bool leq, std::int32_t& lo,
                          std::int32_t& hi) {
  if (n < 0) {
    lo = hi = -1;
    return;
  }
  Node& node = nodes_[static_cast<std::size_t>(n)];
  const bool goes_lo =
      leq ? !key_less(key, node.key) : key_less(node.key, key);
  if (goes_lo) {
    lo = n;
    split(node.right, key, leq, node.right, hi);
  } else {
    hi = n;
    split(node.left, key, leq, lo, node.left);
  }
  pull(n);
}

std::int32_t OrderStatTree::make_node(Key key, Weight weight) {
  std::int32_t n;
  if (!free_.empty()) {
    n = free_.back();
    free_.pop_back();
    nodes_[static_cast<std::size_t>(n)] = Node{};
  } else {
    n = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& node = nodes_[static_cast<std::size_t>(n)];
  node.key = key;
  node.priority = mix(++sequence_);
  node.weight = weight;
  node.weight_sum = weight;
  return n;
}

void OrderStatTree::free_node(std::int32_t n) { free_.push_back(n); }

void OrderStatTree::insert(Key key, Weight weight) {
  std::int32_t lo;
  std::int32_t hi;
  split(root_, key, /*leq=*/false, lo, hi);
  root_ = merge(merge(lo, make_node(key, weight)), hi);
}

void OrderStatTree::erase(Key key) {
  std::int32_t lo;
  std::int32_t mid;
  std::int32_t hi;
  split(root_, key, /*leq=*/false, lo, hi);
  split(hi, key, /*leq=*/true, mid, hi);
  CALIB_CHECK_MSG(mid >= 0 &&
                      nodes_[static_cast<std::size_t>(mid)].count == 1,
                  "OrderStatTree::erase: key not present exactly once");
  free_node(mid);
  root_ = merge(lo, hi);
}

std::int64_t OrderStatTree::size() const { return node_agg(root_).count; }

OrderStatTree::Agg OrderStatTree::total() const { return node_agg(root_); }

OrderStatTree::Agg OrderStatTree::prefix_less(Key key) const {
  Agg agg;
  std::int32_t n = root_;
  while (n >= 0) {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (key_less(node.key, key)) {
      const Agg left = node_agg(node.left);
      agg.count += left.count + 1;
      agg.weight_sum += left.weight_sum + node.weight;
      n = node.right;
    } else {
      n = node.left;
    }
  }
  return agg;
}

OrderStatTree::Agg OrderStatTree::prefix_leq(Key key) const {
  Agg agg;
  std::int32_t n = root_;
  while (n >= 0) {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (!key_less(key, node.key)) {
      const Agg left = node_agg(node.left);
      agg.count += left.count + 1;
      agg.weight_sum += left.weight_sum + node.weight;
      n = node.right;
    } else {
      n = node.left;
    }
  }
  return agg;
}

OrderStatTree::Key OrderStatTree::min_key() const {
  CALIB_CHECK_MSG(root_ >= 0, "min_key on empty OrderStatTree");
  std::int32_t n = root_;
  while (nodes_[static_cast<std::size_t>(n)].left >= 0) {
    n = nodes_[static_cast<std::size_t>(n)].left;
  }
  return nodes_[static_cast<std::size_t>(n)].key;
}

OrderStatTree::Key OrderStatTree::max_key() const {
  CALIB_CHECK_MSG(root_ >= 0, "max_key on empty OrderStatTree");
  std::int32_t n = root_;
  while (nodes_[static_cast<std::size_t>(n)].right >= 0) {
    n = nodes_[static_cast<std::size_t>(n)].right;
  }
  return nodes_[static_cast<std::size_t>(n)].key;
}

OrderStatTree::Key OrderStatTree::kth(std::int64_t rank) const {
  CALIB_CHECK_MSG(rank >= 0 && rank < size(),
                  "OrderStatTree::kth: rank out of range");
  std::int32_t n = root_;
  for (;;) {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    const std::int64_t left = node_agg(node.left).count;
    if (rank < left) {
      n = node.left;
    } else if (rank == left) {
      return node.key;
    } else {
      rank -= left + 1;
      n = node.right;
    }
  }
}

// ---- PendingSet --------------------------------------------------------

PendingSet::Delta PendingSet::delta(QueueOrder order, JobId id,
                                    Weight weight) const {
  const std::int64_t key_id = id;
  const Cost W = total_weight_;
  switch (order) {
    case QueueOrder::kFifo: {
      const OrderStatTree::Agg before = fifo_.prefix_less({key_id, 0});
      return Delta{before.count, W - before.weight_sum};
    }
    case QueueOrder::kHeaviestFirst:
    case QueueOrder::kLightestFirst: {
      const std::int64_t n = by_weight_.size();
      // Three prefix queries carve (weight, id) space around the key:
      //   A = {w' <  w}, B = A + {w' == w, id' < id}, C = {w' <= w}.
      const OrderStatTree::Agg a = by_weight_.prefix_less({weight, kMinKey});
      const OrderStatTree::Agg b = by_weight_.prefix_less({weight, key_id});
      const OrderStatTree::Agg c = by_weight_.prefix_leq({weight, kMaxKey});
      if (order == QueueOrder::kLightestFirst) {
        // Preceded by lighter jobs and equal-weight earlier arrivals.
        return Delta{b.count, W - b.weight_sum};
      }
      // Heaviest first: preceded by heavier jobs and equal-weight earlier
      // arrivals; followed by lighter jobs and equal-weight later arrivals.
      return Delta{(n - c.count) + (b.count - a.count),
                   a.weight_sum + (c.weight_sum - b.weight_sum)};
    }
  }
  CALIB_CHECK_MSG(false, "unreachable queue order");
  return Delta{};
}

void PendingSet::insert(JobId id, Weight weight, Time release) {
  CALIB_CHECK(id >= 0);
  CALIB_CHECK(weight >= 1);
  if (static_cast<std::size_t>(id) >= entries_.size()) {
    entries_.resize(static_cast<std::size_t>(id) + 1);
  }
  Entry& entry = entries_[static_cast<std::size_t>(id)];
  CALIB_CHECK_MSG(!entry.active, "PendingSet::insert: id already present");
  for (const QueueOrder order :
       {QueueOrder::kFifo, QueueOrder::kHeaviestFirst,
        QueueOrder::kLightestFirst}) {
    const Delta d = delta(order, id, weight);
    spread_[static_cast<int>(order)] +=
        static_cast<Cost>(weight) * d.rank + d.suffix_weight;
  }
  total_weight_ += weight;
  weighted_release_ += static_cast<Cost>(weight) * release;
  fifo_.insert({id, 0}, weight);
  by_weight_.insert({weight, id}, weight);
  entry = Entry{weight, release, true};
}

void PendingSet::erase(JobId id) {
  CALIB_CHECK_MSG(contains(id), "PendingSet::erase: id not present");
  Entry& entry = entries_[static_cast<std::size_t>(id)];
  fifo_.erase({id, 0});
  by_weight_.erase({entry.weight, id});
  total_weight_ -= entry.weight;
  weighted_release_ -= static_cast<Cost>(entry.weight) * entry.release;
  for (const QueueOrder order :
       {QueueOrder::kFifo, QueueOrder::kHeaviestFirst,
        QueueOrder::kLightestFirst}) {
    const Delta d = delta(order, id, entry.weight);
    spread_[static_cast<int>(order)] -=
        static_cast<Cost>(entry.weight) * d.rank + d.suffix_weight;
  }
  entry.active = false;
}

bool PendingSet::contains(JobId id) const {
  return id >= 0 && static_cast<std::size_t>(id) < entries_.size() &&
         entries_[static_cast<std::size_t>(id)].active;
}

std::size_t PendingSet::size() const {
  return static_cast<std::size_t>(fifo_.size());
}

JobId PendingSet::at(std::size_t rank) const {
  return static_cast<JobId>(fifo_.kth(static_cast<std::int64_t>(rank)).primary);
}

JobId PendingSet::first(QueueOrder order) const {
  CALIB_CHECK_MSG(!empty(), "PendingSet::first on empty set");
  switch (order) {
    case QueueOrder::kFifo:
      return static_cast<JobId>(fifo_.min_key().primary);
    case QueueOrder::kLightestFirst:
      // Tree order is (weight asc, id asc): the minimum is the lightest
      // job, earliest arrival among ties.
      return static_cast<JobId>(by_weight_.min_key().secondary);
    case QueueOrder::kHeaviestFirst: {
      const Weight heaviest = by_weight_.max_key().primary;
      const std::int64_t rank =
          by_weight_.prefix_less({heaviest, kMinKey}).count;
      return static_cast<JobId>(by_weight_.kth(rank).secondary);
    }
  }
  CALIB_CHECK_MSG(false, "unreachable queue order");
  return -1;
}

Cost PendingSet::queue_flow_from(Time start, QueueOrder order) const {
  // f(start) = (start + 1) * W + S - R; see the header derivation.
  return (static_cast<Cost>(start) + 1) * total_weight_ +
         spread_[static_cast<int>(order)] - weighted_release_;
}

}  // namespace calib

// Known-bad fixture: raw blocking syscalls outside the designated I/O
// layers. Each call below must trip raw-io-layering; the ::close() and
// the wrapper call must not (close is not on the syscall list, and
// calib::write_all is the sanctioned spelling).
#include <unistd.h>

#include "util/framing.hpp"

namespace calib::harness {

void leak_raw_io(int fd) {
  char byte = 0;
  ::read(fd, &byte, 1);        // finding: raw ::read
  ::write(fd, &byte, 1);       // finding: raw ::write
  ::poll(nullptr, 0, 0);       // finding: raw ::poll
  ::close(fd);                 // fine: not a blocking-I/O syscall
  calib::write_all(fd, &byte, 1);  // fine: the wrapper
}

}  // namespace calib::harness

// E13 — Section 5's open problem made executable: the connection
// between minimizing calibrations and machine minimization (Fineman &
// Sheridan). With machines free and calibrations costly, sweep T:
// small T forces many short calibrations; as T grows past the instance
// span, the minimum calibration count converges to the minimum machine
// count. Expected shape: a monotone non-increasing curve flattening at
// exactly min_machines.
#include <benchmark/benchmark.h>

#include <iostream>

#include "machmin/machine_min.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

void BM_MinMachines(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  Prng prng(static_cast<std::uint64_t>(jobs));
  const DeadlineInstance instance =
      deadline_uniform_instance(jobs, jobs * 2, 3, 6, prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_machines(instance));
  }
}

BENCHMARK(BM_MinMachines)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

struct TablePrinter {
  ~TablePrinter() {
    std::cout << "\nE13 - calibrations vs machines as T grows "
                 "(25 seeds; jobs on a 8-step span, windows <= 4):\n";
    Table table({"T", "mean min calibrations", "mean min machines",
                 "ratio", "converged (cal == mach)"});
    for (const Time T : {1, 2, 3, 5, 8, 12}) {
      Summary calibrations;
      Summary machines;
      int converged = 0;
      int total = 0;
      Prng prng(2026);
      for (int seed = 0; seed < 25; ++seed) {
        const DeadlineInstance base =
            deadline_uniform_instance(5, 8, 2, 4, prng);
        const DeadlineInstance instance(
            std::vector<DeadlineJob>(base.jobs()), T, 1);
        const auto cal = min_calibrations_unlimited_machines(instance);
        if (!cal.has_value()) continue;
        const int m = min_machines(instance);
        calibrations.add(static_cast<double>(cal->size()));
        machines.add(static_cast<double>(m));
        ++total;
        if (static_cast<int>(cal->size()) == m) ++converged;
      }
      table.row()
          .add(static_cast<std::int64_t>(T))
          .add(calibrations.mean(), 2)
          .add(machines.mean(), 2)
          .add(calibrations.mean() / machines.mean(), 2)
          .add(std::to_string(converged) + "/" + std::to_string(total));
    }
    table.print(std::cout);
    std::cout << "(ratio -> 1 as T covers the span: a calibration "
                 "becomes a machine, the Fineman-Sheridan limit.)\n";
  }
};
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

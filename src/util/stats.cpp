#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace calib {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void Summary::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

void Summary::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Summary::mean() const {
  CALIB_CHECK(!samples_.empty());
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double Summary::min() const {
  ensure_sorted();
  CALIB_CHECK(!sorted_.empty());
  return sorted_.front();
}

double Summary::max() const {
  ensure_sorted();
  CALIB_CHECK(!sorted_.empty());
  return sorted_.back();
}

double Summary::stddev() const {
  CALIB_CHECK(samples_.size() >= 2);
  const double m = mean();
  double ss = 0.0;
  for (double x : samples_) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double p) const {
  ensure_sorted();
  CALIB_CHECK(!sorted_.empty());
  CALIB_CHECK(p >= 0.0 && p <= 100.0);
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

LinearFit fit_line(const std::vector<double>& x,
                   const std::vector<double>& y) {
  CALIB_CHECK(x.size() == y.size());
  CALIB_CHECK(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (fit.intercept + fit.slope * x[i]);
      ss_res += e * e;
    }
    fit.r2 = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

PowerFit fit_power(const std::vector<double>& x,
                   const std::vector<double>& y) {
  CALIB_CHECK(x.size() == y.size());
  std::vector<double> lx;
  std::vector<double> ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    CALIB_CHECK(x[i] > 0.0 && y[i] > 0.0);
    lx.push_back(std::log(x[i]));
    ly.push_back(std::log(y[i]));
  }
  const LinearFit line = fit_line(lx, ly);
  return PowerFit{std::exp(line.intercept), line.slope, line.r2};
}

}  // namespace calib

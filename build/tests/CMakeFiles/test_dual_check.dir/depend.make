# Empty dependencies file for test_dual_check.
# This may be replaced when dependencies are built.

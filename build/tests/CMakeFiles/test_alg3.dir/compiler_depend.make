# Empty compiler generated dependencies file for test_alg3.
# This may be replaced when dependencies are built.

#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/check.hpp"

namespace calib {

int LpProblem::add_variable(double cost) {
  objective.push_back(cost);
  return num_vars++;
}

void LpProblem::add_row(LpRow row) {
  for (const auto& [var, coef] : row.coefficients) {
    CALIB_CHECK_MSG(var >= 0 && var < num_vars,
                    "row references undeclared variable " << var);
    (void)coef;
  }
  rows.push_back(std::move(row));
}

namespace {

/// Standard-form tableau: rows are equality constraints over structural
/// + slack + artificial variables, with a nonnegative rhs column.
class Tableau {
 public:
  Tableau(const LpProblem& problem, double eps) : eps_(eps) {
    const auto m = problem.rows.size();
    n_struct_ = static_cast<std::size_t>(problem.num_vars);
    // Normalize every row to rhs >= 0, flipping the relation when the
    // row is negated; additionally turn rhs-0 >= rows into <= rows so
    // their slack can start basic. Only >=-with-positive-rhs and
    // equality rows then need an artificial — a huge win on the
    // Figure 1 LP, whose rows are almost all ">= 0".
    std::vector<Relation> relation(m);
    std::vector<double> sign(m, 1.0);
    std::size_t slacks = 0;
    std::size_t artificials = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const LpRow& row = problem.rows[i];
      relation[i] = row.relation;
      if (row.rhs < 0.0 ||
          (row.rhs == 0.0 && row.relation == Relation::kGe)) {
        sign[i] = -1.0;
        if (row.relation == Relation::kLe) {
          relation[i] = Relation::kGe;
        } else if (row.relation == Relation::kGe) {
          relation[i] = Relation::kLe;
        }
      }
      if (relation[i] != Relation::kEq) ++slacks;
      if (relation[i] != Relation::kLe) ++artificials;
    }
    n_total_ = n_struct_ + slacks + artificials;
    a_.assign(m, std::vector<double>(n_total_ + 1, 0.0));
    basis_.assign(m, 0);

    std::size_t next_slack = n_struct_;
    std::size_t next_artificial = n_struct_ + slacks;
    artificial0_ = n_struct_ + slacks;
    for (std::size_t i = 0; i < m; ++i) {
      const LpRow& row = problem.rows[i];
      for (const auto& [var, coef] : row.coefficients) {
        a_[i][static_cast<std::size_t>(var)] += sign[i] * coef;
      }
      a_[i][n_total_] = sign[i] * row.rhs;
      if (relation[i] == Relation::kLe) {
        a_[i][next_slack] = 1.0;
        basis_[i] = next_slack;  // slack starts basic; no artificial
        ++next_slack;
      } else {
        if (relation[i] == Relation::kGe) {
          a_[i][next_slack++] = -1.0;  // surplus
        }
        a_[i][next_artificial] = 1.0;
        basis_[i] = next_artificial;
        ++next_artificial;
      }
    }
  }

  /// Minimize the given reduced objective (size n_total_) from the
  /// current basis. Returns false on unboundedness.
  bool optimize(std::vector<double> cost) {
    // Reduced costs z_j = c_j - c_B^T B^{-1} A_j maintained via the
    // tableau: start from cost and price out the basic columns.
    z_ = std::move(cost);
    z_.resize(n_total_ + 1, 0.0);
    for (std::size_t i = 0; i < a_.size(); ++i) {
      const double cb = z_[basis_[i]];
      if (cb != 0.0) {
        for (std::size_t col = 0; col <= n_total_; ++col) {
          z_[col] -= cb * a_[i][col];
        }
      }
    }
    // Dantzig pricing for speed; after a long degenerate stall, switch
    // *permanently* (for this optimize call) to Bland's rule, whose
    // termination guarantee then applies.
    long iterations = 0;
    long stalled = 0;
    bool bland = false;
    double last_objective = -z_[n_total_];
    for (;;) {
      if (++iterations % 50000 == 0 && std::getenv("CALIB_LP_DEBUG")) {
        std::fprintf(stderr, "simplex: %ld pivots, obj=%.6f bland=%d\n",
                     iterations, -z_[n_total_], bland ? 1 : 0);
      }
      std::size_t pivot_col = n_total_;
      double most_negative = -eps_;
      for (std::size_t col = 0; col < n_total_; ++col) {
        if (banned_[col] || z_[col] >= -eps_) continue;
        if (bland) {
          pivot_col = col;
          break;
        }
        if (z_[col] < most_negative) {
          most_negative = z_[col];
          pivot_col = col;
        }
      }
      if (pivot_col == n_total_) return true;  // optimal
      // Ratio test: exact minimum first; among rows within a *relative*
      // tolerance of it, prefer the largest pivot element (numerical
      // stability), breaking remaining ties by smallest basis index.
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < a_.size(); ++i) {
        if (a_[i][pivot_col] > eps_) {
          best_ratio =
              std::min(best_ratio, a_[i][n_total_] / a_[i][pivot_col]);
        }
      }
      if (best_ratio == std::numeric_limits<double>::infinity()) {
        return false;  // unbounded
      }
      const double tie_tol = eps_ * (1.0 + std::abs(best_ratio));
      std::size_t pivot_row = a_.size();
      for (std::size_t i = 0; i < a_.size(); ++i) {
        if (a_[i][pivot_col] <= eps_) continue;
        if (a_[i][n_total_] / a_[i][pivot_col] > best_ratio + tie_tol)
          continue;
        if (pivot_row == a_.size()) {
          pivot_row = i;
          continue;
        }
        const bool better =
            bland ? basis_[i] < basis_[pivot_row]
                  : a_[i][pivot_col] > a_[pivot_row][pivot_col];
        if (better) pivot_row = i;
      }
      pivot(pivot_row, pivot_col);
      const double objective = -z_[n_total_];
      if (objective < last_objective - eps_) {
        stalled = 0;
        last_objective = objective;
      } else if (++stalled > 256) {
        bland = true;  // sticky: Bland's termination proof now applies
      }
    }
  }

  void pivot(std::size_t row, std::size_t col) {
    const double p = a_[row][col];
    for (double& entry : a_[row]) entry /= p;
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (i == row) continue;
      const double factor = a_[i][col];
      if (std::abs(factor) < eps_ * eps_) continue;
      for (std::size_t jj = 0; jj <= n_total_; ++jj) {
        a_[i][jj] -= factor * a_[row][jj];
      }
    }
    const double zf = z_[col];
    if (zf != 0.0) {
      for (std::size_t jj = 0; jj <= n_total_; ++jj) {
        z_[jj] -= zf * a_[row][jj];
      }
    }
    basis_[row] = col;
  }

  LpSolution run(const LpProblem& problem) {
    banned_.assign(n_total_, false);
    // Phase 1: minimize the sum of artificials.
    std::vector<double> phase1(n_total_, 0.0);
    for (std::size_t col = artificial0_; col < n_total_; ++col) {
      phase1[col] = 1.0;
    }
    if (!optimize(std::move(phase1))) {
      return {LpStatus::kUnbounded, 0.0, {}};  // cannot happen in phase 1
    }
    double infeasibility = 0.0;
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (basis_[i] >= artificial0_) infeasibility += a_[i][n_total_];
    }
    if (infeasibility > 1e-6) return {LpStatus::kInfeasible, 0.0, {}};
    // Drive remaining degenerate artificials out of the basis.
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (basis_[i] < artificial0_) continue;
      std::size_t col = artificial0_;
      for (std::size_t candidate = 0; candidate < artificial0_;
           ++candidate) {
        if (std::abs(a_[i][candidate]) > eps_) {
          col = candidate;
          break;
        }
      }
      if (col < artificial0_) pivot(i, col);
      // else: the row is all-zero (redundant constraint); leave it.
    }
    // Phase 2: minimize the real objective with artificials banned.
    for (std::size_t col = artificial0_; col < n_total_; ++col) {
      banned_[col] = true;
    }
    std::vector<double> phase2(n_total_, 0.0);
    for (std::size_t col = 0; col < n_struct_; ++col) {
      phase2[col] = problem.objective[col];
    }
    if (!optimize(std::move(phase2))) {
      return {LpStatus::kUnbounded, 0.0, {}};
    }
    LpSolution solution;
    solution.status = LpStatus::kOptimal;
    solution.x.assign(n_struct_, 0.0);
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (basis_[i] < n_struct_) solution.x[basis_[i]] = a_[i][n_total_];
    }
    solution.value = 0.0;
    for (std::size_t col = 0; col < n_struct_; ++col) {
      solution.value += problem.objective[col] * solution.x[col];
    }
    return solution;
  }

 private:
  double eps_;
  std::size_t n_struct_ = 0;
  std::size_t n_total_ = 0;
  std::size_t artificial0_ = 0;
  std::vector<std::vector<double>> a_;
  std::vector<std::size_t> basis_;
  std::vector<double> z_;
  std::vector<bool> banned_;
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem, double eps) {
  CALIB_CHECK(static_cast<int>(problem.objective.size()) ==
              problem.num_vars);
  if (problem.rows.empty()) {
    // Without constraints the minimum of c^T x over x >= 0 is 0 unless
    // some cost is negative (then unbounded).
    for (const double cost : problem.objective) {
      if (cost < 0.0) return {LpStatus::kUnbounded, 0.0, {}};
    }
    return {LpStatus::kOptimal, 0.0,
            std::vector<double>(static_cast<std::size_t>(problem.num_vars),
                                0.0)};
  }
  Tableau tableau(problem, eps);
  return tableau.run(problem);
}

}  // namespace calib

// Deterministic pseudo-random number generation for reproducible
// experiments.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, so that any
// 64-bit seed — including 0 — yields a well-mixed state. Every workload
// generator and every benchmark derives its randomness from an explicit
// seed, so runs are bit-reproducible across machines.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace calib {

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Geometric-like Poisson sample with mean lambda (Knuth for small
  /// lambda, normal approximation above 30 — plenty for workload gen).
  std::int64_t poisson(double lambda);

  /// Zipf-distributed integer in [1, n] with exponent s > 0
  /// (inverse-CDF over precomputed weights would be heavy; we use
  /// rejection-free cumulative search, fine for n up to a few thousand).
  std::int64_t zipf(std::int64_t n, double s);

  /// Derive an independent child generator (for per-task streams in
  /// parallel sweeps): mixes the label into a fresh splitmix64 seed.
  Prng split(std::uint64_t label);

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace calib

// Nonblocking socket plumbing for the serve daemon.
//
// This file (with util/framing) is the only place in the tree allowed
// to issue raw read/write/poll syscalls (calib_lint rule
// raw-io-layering): the daemon's event loop stays honest by
// construction — everything it does is either a nonblocking pump here
// or a timeout-bounded poll through calib::poll_fds.
//
// A Connection owns one accepted socket: an incremental FrameReader on
// the inbound side and a bounded outbound byte queue on the other.
// Backpressure is explicit and two-leveled: past `soft_cap` the daemon
// stops reading from the peer (its submits queue in the kernel and
// eventually block the *client*, never the daemon); past `hard_cap`
// the connection is dropped outright — daemon memory per connection is
// bounded by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/protocol.hpp"
#include "util/framing.hpp"

namespace calib::serve {

/// One accepted client socket and its stream state.
struct Connection {
  int fd = -1;
  FrameReader reader = make_serve_reader();
  std::string outbound;        ///< bytes queued for the peer
  bool want_close = false;     ///< close once outbound drains
  bool dead = false;           ///< hard error / EOF seen; reap me
  bool fault_fired = false;    ///< once-per-connection fault already injected
  double last_activity_ms = 0; ///< run-clock stamp of last inbound byte
  std::string tenant;          ///< bound by kHello ("" until then)
};

/// Create, bind, and listen on a Unix-domain socket at `path`
/// (unlinking a stale file first). Returns the nonblocking listener fd,
/// or -1 with a message in *error.
[[nodiscard]] int listen_unix(const std::string& path, std::string* error);

/// Listen on TCP 127.0.0.1:port (port 0 = ephemeral). Returns the
/// nonblocking listener fd or -1; *bound_port receives the actual port.
[[nodiscard]] int listen_tcp(int port, int* bound_port, std::string* error);

/// Accept one pending connection as a nonblocking fd; -1 when none is
/// ready (or on error — accept errors on a healthy listener are
/// transient and treated as "none ready").
[[nodiscard]] int accept_connection(int listener_fd);

/// Blocking connect for the client side (the client is allowed to
/// block; only the daemon's loop is not). -1 with *error on failure.
[[nodiscard]] int connect_unix(const std::string& path, std::string* error);
[[nodiscard]] int connect_tcp(int port, std::string* error);

/// Drain whatever the socket currently has into conn.reader (bounded
/// per call). Marks the connection dead on EOF or a hard error, and
/// also when the reader reports a poisoned stream.
void pump_reads(Connection& conn);

/// Write as much queued outbound as the socket accepts right now.
/// Marks the connection dead on a hard error.
void pump_writes(Connection& conn);

/// Close the fd if open and mark the connection dead.
void close_connection(Connection& conn);

}  // namespace calib::serve

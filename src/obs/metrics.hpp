// calib::obs — process-wide metrics for the sweep/DP/online stack.
//
// A MetricsRegistry hands out named Counter, Gauge, and log-bucketed
// Histogram handles. Counters and histograms are sharded per thread:
// each thread owns a private shard it alone writes (relaxed atomic
// stores, no read-modify-write, no locks on the hot path), and
// snapshot() merges the shards. Gauges are a single shared atomic —
// "current level" semantics (queue depth) don't decompose per thread.
//
// Handle pattern for hot paths: resolve the handle once into a
// function-local static, then add()/record() freely —
//
//   static const obs::Counter hits = obs::metrics().counter("x.hits");
//   hits.add();
//
// Name resolution takes the registry mutex; add()/record() never do.
//
// Compile-time gating: with -DCALIBSCHED_OBS=0 (CMake option
// CALIBSCHED_OBS=OFF) every class here collapses to an inline no-op
// with the same API, so instrumentation sites need no #ifdefs and the
// instrumented hot loops compile to nothing.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/sync.hpp"

#ifndef CALIBSCHED_OBS
#define CALIBSCHED_OBS 1
#endif

namespace calib::obs {

/// Log2 bucket count shared by every histogram: bucket b >= 1 holds
/// values in [2^(b-1), 2^b); bucket 0 holds 0. Defined outside the
/// CALIBSCHED_OBS gate because snapshots (and the executor's heartbeat
/// payloads built from them) carry raw buckets in both configurations.
inline constexpr std::size_t kHistogramBuckets = 65;

/// Log2 bucket index of a sample (0 for 0, bit_width otherwise).
[[nodiscard]] std::size_t histogram_bucket_index(std::uint64_t value);

/// Bucket-interpolated q-quantile of a raw log2 bucket array holding
/// `total` samples. `buckets` may be any length up to kHistogramBuckets;
/// an empty array (or total == 0) yields 0.
[[nodiscard]] double histogram_percentile(
    const std::vector<std::uint64_t>& buckets, std::uint64_t total, double q);

/// Merged view of one histogram. Percentiles are bucket-interpolated
/// estimates (buckets are powers of two), clamped to [min, max].
struct HistogramStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// Raw log2 bucket counts (kHistogramBuckets entries when populated,
  /// empty when unknown — e.g. a snapshot parsed from a JSON file that
  /// only carried the derived stats). Carrying the buckets is what lets
  /// Snapshot::merge recompute cross-process percentiles exactly
  /// instead of averaging per-side estimates.
  std::vector<std::uint64_t> buckets;
};

/// Point-in-time merge of every metric. The JSON form is one *flat*
/// object (histograms expand to name.count / name.sum / ... keys) so it
/// round-trips through harness::parse_flat_json and one-line python.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramStats> histograms;

  void write_json(std::ostream& os) const;
  void write_text(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_text() const;

  /// Fold another process's snapshot into this one (the sharded sweep
  /// executor merges its workers' registries this way). Counters and
  /// gauges add; histograms add count/sum and widen min/max. When both
  /// sides carry raw log2 buckets (HistogramStats::buckets) the merged
  /// percentiles are bucket-interpolated from the true merged
  /// distribution — exact at bucket resolution. Only when a side lost
  /// its buckets (a snapshot re-parsed from derived stats) does the
  /// merge fall back to the count-weighted mean of the per-side
  /// estimates, and the merged entry then drops its buckets so the
  /// approximation is never mistaken for the real distribution.
  void merge(const Snapshot& other);

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

#if CALIBSCHED_OBS

class MetricsRegistry;

/// Monotone event count. Copyable value handle; add() is wait-free on
/// the calling thread's shard.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const;
  /// Sum across all shards (threads). Intended for snapshot-delta
  /// bookkeeping, not hot paths.
  [[nodiscard]] std::uint64_t value() const;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::size_t id)
      : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  std::size_t id_ = 0;
};

/// Signed level (queue depth, in-flight cells). One shared atomic:
/// add(+1)/add(-1) from any thread, or set() from a single owner.
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t value) const;
  void add(std::int64_t delta) const;
  [[nodiscard]] std::int64_t value() const;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, std::size_t id)
      : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  std::size_t id_ = 0;
};

/// Log2-bucketed distribution of nonnegative samples (by convention the
/// name carries the unit: *_us, *_ns). record() is wait-free on the
/// calling thread's shard.
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t value) const;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, std::size_t id)
      : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  std::size_t id_ = 0;
};

class MetricsRegistry {
 public:
  // Fixed shard capacity keeps shards lock-free: a shard is a flat
  // array of atomics that never reallocates, so snapshot() can read it
  // while its owner writes. Registration past a cap throws.
  static constexpr std::size_t kMaxCounters = 128;
  static constexpr std::size_t kMaxGauges = 32;
  static constexpr std::size_t kMaxHistograms = 64;
  // Bucket layout: see kHistogramBuckets (namespace scope).
  static constexpr std::size_t kHistBuckets = kHistogramBuckets;

  MetricsRegistry();
  ~MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-register a metric by name. Handles stay valid for the
  /// registry's lifetime; repeated calls with one name return handles
  /// to the same metric.
  [[nodiscard]] Counter counter(const std::string& name);
  [[nodiscard]] Gauge gauge(const std::string& name);
  [[nodiscard]] Histogram histogram(const std::string& name);

  /// Merge every shard into one consistent-enough view (relaxed reads;
  /// concurrent writers may or may not be included — fine for
  /// monitoring, and exact once writers are quiescent).
  [[nodiscard]] Snapshot snapshot() const;

  /// Zero all values (names and handles survive). Only meaningful while
  /// writers are quiescent; meant for tests.
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  // One thread's private slice of every counter/histogram. The owning
  // thread is the only writer, so it uses relaxed load+store (no lock
  // prefix); snapshot() reads the same atomics relaxed from outside.
  struct HistShard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
  };
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<HistShard, kMaxHistograms> histograms{};
  };

  [[nodiscard]] Shard& local_shard();
  [[nodiscard]] std::size_t register_name(std::vector<std::string>& names,
                                          const std::string& name,
                                          std::size_t cap, const char* kind)
      CALIB_REQUIRES(mutex_);

  const std::uint64_t uid_;  // never-reused registry identity (ABA-safe
                             // key for the per-thread shard cache)
  // Lock hierarchy: mutex_ is a leaf guarding *structure* only (names,
  // the shard list); the hot-path values live in the shards' atomics,
  // which are single-writer relaxed and never touched under the lock
  // (see DESIGN.md "Concurrency invariants & static analysis").
  mutable Mutex mutex_;
  std::vector<std::string> counter_names_ CALIB_GUARDED_BY(mutex_);
  std::vector<std::string> gauge_names_ CALIB_GUARDED_BY(mutex_);
  std::vector<std::string> histogram_names_ CALIB_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<Shard>> shards_ CALIB_GUARDED_BY(mutex_);
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges_{};
};

#else  // !CALIBSCHED_OBS — the whole layer is an inline no-op.

class MetricsRegistry;

class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t = 1) const {}
  [[nodiscard]] std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t) const {}
  void add(std::int64_t) const {}
  [[nodiscard]] std::int64_t value() const { return 0; }
};

class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t) const {}
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  [[nodiscard]] Counter counter(const std::string&) { return {}; }
  [[nodiscard]] Gauge gauge(const std::string&) { return {}; }
  [[nodiscard]] Histogram histogram(const std::string&) { return {}; }
  [[nodiscard]] Snapshot snapshot() const { return {}; }
  void reset() {}
};

#endif  // CALIBSCHED_OBS

/// The process-wide registry every instrumentation site records into.
MetricsRegistry& metrics();

}  // namespace calib::obs

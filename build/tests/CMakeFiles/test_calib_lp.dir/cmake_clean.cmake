file(REMOVE_RECURSE
  "CMakeFiles/test_calib_lp.dir/test_calib_lp.cpp.o"
  "CMakeFiles/test_calib_lp.dir/test_calib_lp.cpp.o.d"
  "test_calib_lp"
  "test_calib_lp.pdb"
  "test_calib_lp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calib_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Scheduling with multiple calibration types (single machine,
// unweighted): online heuristic + exact solvers for experiment E12.
#pragma once

#include <optional>
#include <vector>

#include "core/instance.hpp"
#include "multitype/typed_calendar.hpp"

namespace calib {

struct MultitypeSchedule {
  TypedCalendar calendar;
  std::vector<Time> start;  ///< per job (instance order)

  [[nodiscard]] Cost flow(const Instance& instance) const;
  [[nodiscard]] Cost total_cost(const Instance& instance) const {
    return calendar.calibration_cost() + flow(instance);
  }
  /// nullopt if correct; else the first violation.
  [[nodiscard]] std::optional<std::string> validate(
      const Instance& instance) const;
};

/// FIFO greedy assignment of an unweighted instance to a typed
/// calendar's covered slots (the Observation 2.1 analogue). Jobs that
/// find no slot have start == kUnscheduled.
MultitypeSchedule assign_multitype(const Instance& instance,
                                   const TypedCalendar& calendar);

/// Online generalization of Algorithm 1: delay until some type's
/// trigger fires (|Q| * T_k >= G_k or queue flow >= G_k), then buy the
/// type with the best cost per reachable job, G_k / min(T_k, |Q|).
/// Heuristic — no competitive claim; measured in E12.
MultitypeSchedule online_multitype(const Instance& instance,
                                   const std::vector<CalibrationType>& types);

/// Exact optimum of calibration cost + flow by exhaustive search over
/// (start, type) pairs; exponential, small instances only.
MultitypeSchedule optimal_multitype(const Instance& instance,
                                    const std::vector<CalibrationType>& types);

}  // namespace calib

# Empty dependencies file for stockpile_eval.
# This may be replaced when dependencies are built.

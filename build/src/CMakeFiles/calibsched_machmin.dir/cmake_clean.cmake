file(REMOVE_RECURSE
  "CMakeFiles/calibsched_machmin.dir/machmin/machine_min.cpp.o"
  "CMakeFiles/calibsched_machmin.dir/machmin/machine_min.cpp.o.d"
  "libcalibsched_machmin.a"
  "libcalibsched_machmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibsched_machmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Section 4 DP (Theorem 4.7): exact agreement with exhaustive search,
// witness reconstruction, monotonicity, and structural properties.
//
// These sweeps are the load-bearing validation of the whole offline
// section: the brute force (itself validated against fully exhaustive
// start enumeration in test_brute_force.cpp) defines ground truth.
#include <gtest/gtest.h>

#include "core/critical.hpp"
#include "offline/brute_force.hpp"
#include "offline/dp.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(OfflineDp, SingleJobSingleCalibration) {
  const Instance instance({Job{3, 2}}, 4);
  OfflineDp dp(instance);
  // Job can always run at its release with one calibration: flow w * 1.
  EXPECT_EQ(dp.min_flow(1), 2);
  EXPECT_EQ(dp.min_completion(1), 2 * 4);
}

TEST(OfflineDp, ZeroBudgetInfeasible) {
  const Instance instance({Job{0, 1}}, 2);
  OfflineDp dp(instance);
  EXPECT_EQ(dp.min_flow(0), kInfeasible);
}

TEST(OfflineDp, BudgetTooSmallForJobCountInfeasible) {
  // 5 jobs, T = 2: fewer than ceil(5/2) = 3 calibrations cannot work.
  const Instance instance(
      {Job{0, 1}, Job{1, 1}, Job{2, 1}, Job{3, 1}, Job{4, 1}}, 2);
  OfflineDp dp(instance);
  EXPECT_EQ(dp.min_flow(2), kInfeasible);
  EXPECT_NE(dp.min_flow(3), kInfeasible);
}

TEST(OfflineDp, TwoFarApartJobsWantTwoCalibrations) {
  const Instance instance({Job{0, 1}, Job{100, 1}}, 3);
  OfflineDp dp(instance);
  // One interval cannot cover both releases: with one calibration the
  // first job must wait until the second's neighborhood.
  EXPECT_EQ(dp.min_flow(2), 2);          // both at release
  EXPECT_EQ(dp.min_flow(1), (98 + 1) + 1);  // j1 at 98? No: interval
  // [98,101) covers both: job 0 runs at 98 (flow 99), job 1 at 100
  // (flow 1) -> 100.
}

TEST(OfflineDp, OneCalibrationCanStartBeforeTimeZero) {
  // Two jobs one step apart, one calibration: the interval [-2, 2)
  // covers both releases, so each job runs at release (flow 1 + 10).
  const Instance instance({Job{0, 1}, Job{1, 10}}, 4);
  OfflineDp dp(instance);
  EXPECT_EQ(dp.min_flow(1), 11);
}

TEST(OfflineDp, HeavyJobSchedulesFirstWithinInterval) {
  // Three tightly packed jobs, T = 2 forces queueing: the optimum never
  // delays the heavy job past a light one.
  const Instance instance({Job{0, 1}, Job{1, 10}, Job{2, 1}}, 2);
  OfflineDp dp(instance);
  // Two calibrations, e.g. [1,3) and [3,5): w10 at 1 (10), w1(r0) at 2
  // (3), w1(r2) at 3 (2) -> 15. (Brute force agrees via the sweep.)
  EXPECT_EQ(dp.min_flow(2), brute_force_budget(instance, 2).flow);
}

TEST(OfflineDp, FlowCurveIsNonIncreasing) {
  Prng prng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const Instance instance = sparse_uniform_instance(
        7, 18, 3, 1, WeightModel::kUniform, 6, prng);
    OfflineDp dp(instance);
    const auto curve = dp.flow_curve(7);
    for (std::size_t k = 1; k < curve.size(); ++k) {
      if (curve[k - 1] == kInfeasible) continue;
      ASSERT_NE(curve[k], kInfeasible);
      EXPECT_LE(curve[k], curve[k - 1]) << instance.to_string();
    }
  }
}

TEST(OfflineDp, WitnessMatchesValueAndValidates) {
  Prng prng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const Instance instance = sparse_uniform_instance(
        6, 14, 3, 1, WeightModel::kUniform, 5, prng);
    OfflineDp dp(instance);
    for (int k = 1; k <= 4; ++k) {
      const Cost flow = dp.min_flow(k);
      const auto witness = dp.solve(k);
      if (flow == kInfeasible) {
        EXPECT_FALSE(witness.has_value());
        continue;
      }
      ASSERT_TRUE(witness.has_value());
      // solve() CHECKs validity/cost/budget internally; re-assert the
      // essentials here so a regression shows up as a test failure.
      EXPECT_EQ(witness->validate(instance), std::nullopt);
      EXPECT_EQ(witness->weighted_flow(instance), flow);
      EXPECT_LE(witness->calendar().count(), k);
    }
  }
}

TEST(OfflineDp, OptimalWitnessSatisfiesStructuralLemmas) {
  // Lemma 4.1 / 4.2 structure holds for the DP's witnesses by
  // construction; verify on a deterministic instance.
  const Instance instance = regression_instance();
  OfflineDp dp(instance);
  const auto witness = dp.solve(2);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(satisfies_lemma_4_2(instance, *witness));
}

TEST(OfflineDp, RejectsMultiMachineInstances) {
  const Instance instance({Job{0, 1}}, 2, 2);
  EXPECT_DEATH(OfflineDp dp(instance), "single-machine");
}

TEST(OfflineDp, RejectsDuplicateReleases) {
  const Instance instance({Job{0, 1}, Job{0, 2}}, 2, 1);
  EXPECT_DEATH(OfflineDp dp(instance), "distinct");
}

TEST(OfflineDp, HelperNormalizesAutomatically) {
  const Instance instance({Job{0, 1}, Job{0, 2}, Job{5, 1}}, 3, 1);
  EXPECT_NE(optimal_flow_with_budget(instance, 2), kInfeasible);
}

// ---- The decisive sweep: DP == brute force on randomized instances ----

struct DpCrossCheckParams {
  int jobs;
  Time span;
  Time T;
  WeightModel weights;
  int trials;
  std::uint64_t seed;
};

class DpCrossCheck : public ::testing::TestWithParam<DpCrossCheckParams> {};

TEST_P(DpCrossCheck, MatchesBruteForceForEveryBudget) {
  const auto& p = GetParam();
  Prng prng(p.seed);
  for (int trial = 0; trial < p.trials; ++trial) {
    const Instance instance = sparse_uniform_instance(
        p.jobs, p.span, p.T, 1, p.weights, 5, prng);
    OfflineDp dp(instance);
    const int k_max = std::min(p.jobs, 5);
    for (int k = 1; k <= k_max; ++k) {
      const OfflineSolution truth = brute_force_budget(instance, k);
      const Cost dp_flow = dp.min_flow(k);
      if (!truth.feasible()) {
        EXPECT_EQ(dp_flow, kInfeasible)
            << instance.to_string() << " k=" << k;
      } else {
        EXPECT_EQ(dp_flow, truth.flow)
            << instance.to_string() << " k=" << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DpCrossCheck,
    ::testing::Values(
        DpCrossCheckParams{4, 9, 2, WeightModel::kUnit, 60, 1},
        DpCrossCheckParams{4, 9, 2, WeightModel::kUniform, 60, 2},
        DpCrossCheckParams{5, 11, 2, WeightModel::kUniform, 50, 3},
        DpCrossCheckParams{5, 11, 3, WeightModel::kUniform, 50, 4},
        DpCrossCheckParams{6, 13, 3, WeightModel::kUnit, 40, 5},
        DpCrossCheckParams{6, 13, 3, WeightModel::kUniform, 40, 6},
        DpCrossCheckParams{6, 10, 4, WeightModel::kZipf, 40, 7},
        DpCrossCheckParams{7, 15, 3, WeightModel::kUniform, 30, 8},
        DpCrossCheckParams{7, 12, 2, WeightModel::kBimodal, 30, 9},
        DpCrossCheckParams{8, 17, 4, WeightModel::kUniform, 20, 10},
        DpCrossCheckParams{8, 16, 5, WeightModel::kUnit, 20, 11},
        DpCrossCheckParams{8, 20, 2, WeightModel::kUniform, 20, 12},
        DpCrossCheckParams{9, 18, 3, WeightModel::kUniform, 12, 13},
        DpCrossCheckParams{9, 24, 6, WeightModel::kZipf, 12, 14}));

}  // namespace
}  // namespace calib

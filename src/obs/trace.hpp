// calib::obs — RAII spans and Chrome trace_event export.
//
// A ScopedSpan measures one scoped region (a sweep cell, one solver
// run, one DP curve). While the process-wide TraceCollector is enabled,
// the span's completed event — name, category, start, duration, small
// key/value args — lands in a bounded per-thread buffer; when the
// buffer fills, further events are counted as dropped rather than
// reallocating without bound. write_chrome_trace() emits the buffers as
// Chrome trace_event JSON ("ph":"X" complete events, one track per
// thread via tid + thread_name metadata) loadable in Perfetto or
// chrome://tracing; nesting falls out of time containment per track.
//
// Spans always measure time — even with the collector disabled (two
// steady_clock reads) and even with CALIBSCHED_OBS=0 — because the
// sweep engine uses the cell span as the single source of truth for the
// journal's wall_ms field.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"  // for the CALIBSCHED_OBS default
#include "util/sync.hpp"

namespace calib::obs {

/// Nanoseconds on the steady clock since the first call in the process
/// (one shared epoch, so timestamps compare across threads).
[[nodiscard]] std::uint64_t now_ns();

/// Fixed-size last-known-phase cell for crash forensics. The sandbox
/// (harness/sandbox.*) maps one of these MAP_SHARED before forking and
/// installs it in the child via set_phase_breadcrumb(); from then on
/// every ScopedSpan writes its name on entry and restores its parent's
/// on exit, so when the child dies on a signal the parent can read the
/// deepest span it was inside (e.g. "dp.flow_curve") straight off the
/// shared page. Present in both CALIBSCHED_OBS configurations — spans
/// always carry their name, and crash attribution must not disappear
/// with the metrics layer.
struct PhaseBreadcrumb {
  static constexpr std::size_t kCapacity = 96;
  char phase[kCapacity] = {};  ///< NUL-terminated, truncated to fit
};

/// Install (nullptr: remove) the process-wide breadcrumb sink. Intended
/// for the single-threaded sandbox child only: the span stack behind it
/// is deliberately unsynchronized, and the parent never installs one,
/// so multi-threaded processes pay exactly one branch per span.
void set_phase_breadcrumb(PhaseBreadcrumb* sink);

namespace detail {
void phase_enter(const char* name);
void phase_exit();
}  // namespace detail

#if CALIBSCHED_OBS

/// One completed span, timestamped relative to the now_ns() epoch.
struct TraceEvent {
  std::string name;
  std::string cat;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceCollector {
 public:
  /// Per-thread buffer capacity; events past this are dropped (and
  /// counted), never reallocated — recording stays O(1) and bounded.
  static constexpr std::size_t kMaxEventsPerThread = 1 << 16;

  TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Recording is off by default; ScopedSpan checks this once at
  /// construction (a span straddling the flip records per its start).
  void set_enabled(bool enabled) { enabled_.store(enabled); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Label the calling thread's track ("worker-3") in the export.
  void set_thread_name(const std::string& name);

  void record(TraceEvent event);

  /// All buffered events merged and sorted by (ts, dur desc) — so a
  /// parent precedes the children it encloses even on timestamp ties.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Drop all buffered events (thread names and tids survive).
  void clear();

  /// Chrome trace_event JSON: thread_name metadata + "X" events, ts/dur
  /// in microseconds. Valid (possibly empty) JSON even when disabled.
  void write_chrome_trace(std::ostream& os) const;

 private:
  struct Buffer {
    calib::Mutex mutex;  // leaf lock; never held while taking mutex_
    std::uint32_t tid = 0;  // written once before publication, then
                            // read-only — needs no lock
    std::string name CALIB_GUARDED_BY(mutex);
    std::vector<TraceEvent> events CALIB_GUARDED_BY(mutex);
    std::uint64_t dropped CALIB_GUARDED_BY(mutex) = 0;
  };

  [[nodiscard]] Buffer& local_buffer();

  const std::uint64_t uid_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> next_tid_{0};
  // Lock hierarchy: mutex_ (the buffer list) is acquired first, each
  // Buffer::mutex second; readers copy the shared_ptr list under mutex_
  // and only then lock individual buffers.
  mutable calib::Mutex mutex_;
  std::vector<std::shared_ptr<Buffer>> buffers_ CALIB_GUARDED_BY(mutex_);
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a key/value annotation (shown under the span in Perfetto).
  /// No-op unless the collector was enabled when the span started.
  void arg(const char* key, std::string value);

  [[nodiscard]] std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) * 1e-6;
  }

 private:
  const char* name_;
  const char* cat_;
  std::uint64_t start_;
  bool record_;
  std::vector<std::pair<std::string, std::string>> args_;
};

#else  // !CALIBSCHED_OBS

class TraceCollector {
 public:
  TraceCollector() = default;
  void set_enabled(bool) {}
  [[nodiscard]] bool enabled() const { return false; }
  void set_thread_name(const std::string&) {}
  [[nodiscard]] std::uint64_t dropped() const { return 0; }
  void clear() {}
  void write_chrome_trace(std::ostream& os) const {
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n";
  }
};

/// Still a (near-free) timer: the sweep engine reads wall_ms off it.
/// Also still a phase marker — the sandbox's crash breadcrumb works in
/// the no-op configuration too.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* = "")
      : start_(now_ns()) {
    detail::phase_enter(name);
  }
  ~ScopedSpan() { detail::phase_exit(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  void arg(const char*, const std::string&) {}
  [[nodiscard]] std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) * 1e-6;
  }

 private:
  std::uint64_t start_;
};

#endif  // CALIBSCHED_OBS

/// The process-wide collector every ScopedSpan records into.
TraceCollector& tracer();

}  // namespace calib::obs

// Earliest-deadline-first assignment of deadline jobs to a calendar's
// calibrated slots. For unit jobs, EDF is feasibility-optimal: if any
// assignment meets every deadline on the given calendar, EDF does
// (classical exchange argument; verified against exhaustive assignment
// in tests/test_deadline.cpp).
#pragma once

#include <vector>

#include "core/calendar.hpp"
#include "deadline/deadline_instance.hpp"

namespace calib {

struct EdfResult {
  bool feasible = false;
  /// Per job: start time and machine (valid only when feasible, but
  /// partially filled otherwise — useful to see which jobs fit).
  std::vector<Time> start;
  std::vector<MachineId> machine;
  /// Jobs that missed their deadline (empty iff feasible).
  std::vector<JobId> missed;
};

/// Run EDF over the calendar's slots in time order.
EdfResult edf_schedule(const DeadlineInstance& instance,
                       const Calendar& calendar);

/// Convenience: can every job meet its deadline on this calendar?
bool edf_feasible(const DeadlineInstance& instance,
                  const Calendar& calendar);

}  // namespace calib

// Known-bad fixture for rule fork-child-signal-safety: the marked child
// path allocates (std::string, new), uses stdio (fprintf), and locks —
// each one a distinct finding. Also respells the IPC magic in a .cpp
// (rule ipc-magic).
#include <cstdint>
#include <cstdio>
#include <string>

constexpr std::uint32_t kLocalMagic = 0x43414C42u;  // ipc-magic finding

void child_path(int fd) {
  // calib-lint: signal-safe-begin
  std::string message = "hello";           // 'string' finding
  std::fprintf(stderr, "in child %d", fd); // 'fprintf' finding
  char* buffer = new char[16];             // 'new' finding
  delete[] buffer;                         // 'delete' finding
  // calib-lint: signal-safe-end
  (void)kLocalMagic;
}

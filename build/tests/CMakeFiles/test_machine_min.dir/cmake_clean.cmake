file(REMOVE_RECURSE
  "CMakeFiles/test_machine_min.dir/test_machine_min.cpp.o"
  "CMakeFiles/test_machine_min.dir/test_machine_min.cpp.o.d"
  "test_machine_min"
  "test_machine_min.pdb"
  "test_machine_min[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

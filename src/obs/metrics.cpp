#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/json_escape.hpp"

namespace calib::obs {
namespace {

// Deterministic, locale-free double formatting (same contract as the
// sweep writers: fmt(stod(fmt(x))) == fmt(x)).
std::string fmt(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  return os.str();
}

// Flatten a snapshot into sorted (key, rendered-value) pairs — the one
// serialization both write_json and write_text speak.
std::map<std::string, std::string> flatten(const Snapshot& snapshot) {
  std::map<std::string, std::string> flat;
  for (const auto& [name, value] : snapshot.counters) {
    flat[name] = std::to_string(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    flat[name] = std::to_string(value);
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    flat[name + ".count"] = std::to_string(stats.count);
    flat[name + ".sum"] = fmt(stats.sum);
    flat[name + ".min"] = fmt(stats.min);
    flat[name + ".max"] = fmt(stats.max);
    flat[name + ".p50"] = fmt(stats.p50);
    flat[name + ".p90"] = fmt(stats.p90);
    flat[name + ".p99"] = fmt(stats.p99);
  }
  return flat;
}

double bucket_lower(std::size_t b) {
  return b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << (b - 1));
}

double bucket_upper(std::size_t b) {
  if (b == 0) return 0.0;
  if (b >= 64) return 18446744073709551616.0;  // 2^64
  return static_cast<double>(std::uint64_t{1} << b);
}

}  // namespace

std::size_t histogram_bucket_index(std::uint64_t value) {
  return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
}

double histogram_percentile(const std::vector<std::uint64_t>& buckets,
                            std::uint64_t total, double q) {
  if (total == 0) return 0.0;
  const double target = std::max(1.0, q * static_cast<double>(total));
  double cum = 0.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const auto in_bucket = static_cast<double>(buckets[b]);
    cum += in_bucket;
    if (cum >= target) {
      const double frac = (target - (cum - in_bucket)) / in_bucket;
      return bucket_lower(b) + (bucket_upper(b) - bucket_lower(b)) * frac;
    }
  }
  return buckets.empty() ? 0.0 : bucket_upper(buckets.size() - 1);
}

void Snapshot::write_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (const auto& [key, value] : flatten(*this)) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(key) << "\":" << value;
  }
  os << "}\n";
}

void Snapshot::write_text(std::ostream& os) const {
  std::size_t width = 0;
  const auto flat = flatten(*this);
  for (const auto& [key, value] : flat) width = std::max(width, key.size());
  for (const auto& [key, value] : flat) {
    os << key << std::string(width - key.size() + 2, ' ') << value << '\n';
  }
}

std::string Snapshot::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

std::string Snapshot::to_text() const {
  std::ostringstream os;
  write_text(os);
  return os.str();
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, theirs] : other.histograms) {
    if (theirs.count == 0) {
      histograms.try_emplace(name, theirs);
      continue;
    }
    auto [it, inserted] = histograms.try_emplace(name, theirs);
    if (inserted) continue;
    HistogramStats& mine = it->second;
    if (mine.count == 0) {
      mine = theirs;
      continue;
    }
    mine.min = std::min(mine.min, theirs.min);
    mine.max = std::max(mine.max, theirs.max);
    if (!mine.buckets.empty() && !theirs.buckets.empty()) {
      // Exact path: both sides carry raw buckets, so the merged
      // percentiles are interpolated from the merged distribution.
      if (mine.buckets.size() < theirs.buckets.size()) {
        mine.buckets.resize(theirs.buckets.size(), 0);
      }
      for (std::size_t b = 0; b < theirs.buckets.size(); ++b) {
        mine.buckets[b] += theirs.buckets[b];
      }
      mine.count += theirs.count;
      mine.sum += theirs.sum;
      const auto clamp = [&](double v) {
        return std::clamp(v, mine.min, std::max(mine.min, mine.max));
      };
      mine.p50 = clamp(histogram_percentile(mine.buckets, mine.count, 0.50));
      mine.p90 = clamp(histogram_percentile(mine.buckets, mine.count, 0.90));
      mine.p99 = clamp(histogram_percentile(mine.buckets, mine.count, 0.99));
      continue;
    }
    // Legacy path (a side lost its buckets): count-weight the per-side
    // estimates, and drop any surviving buckets — they no longer
    // describe the merged distribution.
    const auto mine_n = static_cast<double>(mine.count);
    const auto theirs_n = static_cast<double>(theirs.count);
    const double total = mine_n + theirs_n;
    mine.p50 = (mine.p50 * mine_n + theirs.p50 * theirs_n) / total;
    mine.p90 = (mine.p90 * mine_n + theirs.p90 * theirs_n) / total;
    mine.p99 = (mine.p99 * mine_n + theirs.p99 * theirs_n) / total;
    mine.count += theirs.count;
    mine.sum += theirs.sum;
    mine.buckets.clear();
  }
}

#if CALIBSCHED_OBS

namespace {

std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1);
}

// Single-writer add: the owning thread is the only writer of its shard
// slot, so plain load+store (no lock prefix) is enough; snapshot()
// reads the same atomic relaxed and may simply miss the in-flight add.
inline void shard_add(std::atomic<std::uint64_t>& slot, std::uint64_t n) {
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

}  // namespace

MetricsRegistry::MetricsRegistry() : uid_(next_registry_uid()) {}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  // Per-thread cache keyed by registry uid (not pointer: uids are never
  // reused, so a recycled registry address cannot alias a stale entry).
  // The cache must stay trivially destructible: benches record metrics
  // from static destructors (TablePrinter runs the sweep at exit), and a
  // thread_local with a destructor is torn down *before* those run —
  // re-entering it then corrupts the heap. A plain array registers no
  // TLS destructor, so it stays valid for the whole process. Raw
  // pointers are safe because entries are only dereferenced through a
  // live registry, whose shards_ vector owns the shard storage; on
  // overflow a slot is recycled round-robin (the orphaned shard stays
  // owned by its registry and is still merged on snapshot).
  struct TlEntry {
    std::uint64_t uid;
    Shard* shard;
  };
  constexpr std::size_t kTlCacheSlots = 8;
  thread_local TlEntry entries[kTlCacheSlots] = {};
  thread_local std::size_t used = 0;
  thread_local std::size_t next_evict = 0;
  for (std::size_t i = 0; i < used; ++i) {
    if (entries[i].uid == uid_) return *entries[i].shard;
  }
  auto shard = std::make_shared<Shard>();
  Shard* raw = shard.get();
  {
    const MutexLock lock(mutex_);
    shards_.push_back(std::move(shard));
  }
  std::size_t slot;
  if (used < kTlCacheSlots) {
    slot = used++;
  } else {
    slot = next_evict;
    next_evict = (next_evict + 1) % kTlCacheSlots;
  }
  entries[slot] = TlEntry{uid_, raw};
  return *raw;
}

std::size_t MetricsRegistry::register_name(std::vector<std::string>& names,
                                           const std::string& name,
                                           std::size_t cap,
                                           const char* kind) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  if (names.size() >= cap) {
    throw std::runtime_error(std::string("obs: too many ") + kind +
                             " metrics (cap " + std::to_string(cap) +
                             ") registering " + name);
  }
  names.push_back(name);
  return names.size() - 1;
}

Counter MetricsRegistry::counter(const std::string& name) {
  const MutexLock lock(mutex_);
  return Counter(this,
                 register_name(counter_names_, name, kMaxCounters, "counter"));
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  const MutexLock lock(mutex_);
  return Gauge(this, register_name(gauge_names_, name, kMaxGauges, "gauge"));
}

Histogram MetricsRegistry::histogram(const std::string& name) {
  const MutexLock lock(mutex_);
  return Histogram(
      this, register_name(histogram_names_, name, kMaxHistograms, "histogram"));
}

void Counter::add(std::uint64_t n) const {
  if (registry_ == nullptr) return;
  shard_add(registry_->local_shard().counters[id_], n);
}

std::uint64_t Counter::value() const {
  if (registry_ == nullptr) return 0;
  std::vector<std::shared_ptr<MetricsRegistry::Shard>> shards;
  {
    const MutexLock lock(registry_->mutex_);
    shards = registry_->shards_;
  }
  std::uint64_t total = 0;
  for (const auto& shard : shards) {
    total += shard->counters[id_].load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::set(std::int64_t value) const {
  if (registry_ == nullptr) return;
  registry_->gauges_[id_].store(value, std::memory_order_relaxed);
}

void Gauge::add(std::int64_t delta) const {
  if (registry_ == nullptr) return;
  registry_->gauges_[id_].fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t Gauge::value() const {
  if (registry_ == nullptr) return 0;
  return registry_->gauges_[id_].load(std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t value) const {
  if (registry_ == nullptr) return;
  MetricsRegistry::HistShard& h =
      registry_->local_shard().histograms[id_];
  shard_add(h.count, 1);
  shard_add(h.sum, value);
  shard_add(h.buckets[histogram_bucket_index(value)], 1);
  if (value < h.min.load(std::memory_order_relaxed)) {
    h.min.store(value, std::memory_order_relaxed);
  }
  if (value > h.max.load(std::memory_order_relaxed)) {
    h.max.store(value, std::memory_order_relaxed);
  }
}

Snapshot MetricsRegistry::snapshot() const {
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  std::vector<std::shared_ptr<Shard>> shards;
  {
    const MutexLock lock(mutex_);
    counter_names = counter_names_;
    gauge_names = gauge_names_;
    histogram_names = histogram_names_;
    shards = shards_;
  }

  Snapshot snapshot;
  for (std::size_t id = 0; id < counter_names.size(); ++id) {
    std::uint64_t total = 0;
    for (const auto& shard : shards) {
      total += shard->counters[id].load(std::memory_order_relaxed);
    }
    snapshot.counters[counter_names[id]] = total;
  }
  for (std::size_t id = 0; id < gauge_names.size(); ++id) {
    snapshot.gauges[gauge_names[id]] =
        gauges_[id].load(std::memory_order_relaxed);
  }
  for (std::size_t id = 0; id < histogram_names.size(); ++id) {
    std::vector<std::uint64_t> buckets(kHistBuckets, 0);
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t hi = 0;
    for (const auto& shard : shards) {
      const HistShard& h = shard->histograms[id];
      count += h.count.load(std::memory_order_relaxed);
      sum += h.sum.load(std::memory_order_relaxed);
      lo = std::min(lo, h.min.load(std::memory_order_relaxed));
      hi = std::max(hi, h.max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
    }
    HistogramStats stats;
    stats.count = count;
    stats.sum = static_cast<double>(sum);
    stats.min = count == 0 ? 0.0 : static_cast<double>(lo);
    stats.max = static_cast<double>(hi);
    const auto clamp = [&](double v) {
      return std::clamp(v, stats.min, std::max(stats.min, stats.max));
    };
    stats.p50 = clamp(histogram_percentile(buckets, count, 0.50));
    stats.p90 = clamp(histogram_percentile(buckets, count, 0.90));
    stats.p99 = clamp(histogram_percentile(buckets, count, 0.99));
    stats.buckets = std::move(buckets);
    snapshot.histograms[histogram_names[id]] = stats;
  }
  return snapshot;
}

void MetricsRegistry::reset() {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    const MutexLock lock(mutex_);
    shards = shards_;
  }
  for (const auto& shard : shards) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : shard->histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      h.min.store(std::numeric_limits<std::uint64_t>::max(),
                  std::memory_order_relaxed);
      h.max.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
}

#endif  // CALIBSCHED_OBS

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace calib::obs

file(REMOVE_RECURSE
  "CMakeFiles/calibsched_workload.dir/workload/generators.cpp.o"
  "CMakeFiles/calibsched_workload.dir/workload/generators.cpp.o.d"
  "libcalibsched_workload.a"
  "libcalibsched_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibsched_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "deadline/min_calibrations.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "deadline/edf.hpp"
#include "util/check.hpp"

namespace calib {
namespace {

/// DFS over candidate starts: pick `remaining` starts from
/// candidates[from..], test EDF feasibility at the leaves. On success
/// `chosen` holds the witness start set.
bool search(const DeadlineInstance& instance,
            const std::vector<Time>& candidates, std::size_t from,
            int remaining, std::vector<Time>& chosen) {
  if (remaining == 0) {
    Calendar calendar(instance.T(), 1);
    for (const Time start : chosen) calendar.add(0, start);
    return edf_feasible(instance, calendar);
  }
  if (candidates.size() - from < static_cast<std::size_t>(remaining)) {
    return false;
  }
  for (std::size_t i = from; i < candidates.size(); ++i) {
    chosen.push_back(candidates[i]);
    if (search(instance, candidates, i + 1, remaining - 1, chosen)) {
      return true;
    }
    chosen.pop_back();
  }
  return false;
}

std::optional<Calendar> minimize(const DeadlineInstance& instance,
                                 std::vector<Time> candidates,
                                 int max_calibrations) {
  CALIB_CHECK_MSG(instance.machines() == 1,
                  "deadline solvers cover the single-machine problem");
  if (instance.empty()) return Calendar(instance.T(), 1);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  const int cap =
      max_calibrations < 0 ? instance.size() : max_calibrations;
  const int lower =
      static_cast<int>((instance.size() + instance.T() - 1) / instance.T());
  for (int k = lower; k <= cap; ++k) {
    std::vector<Time> chosen;
    if (search(instance, candidates, 0, k, chosen)) {
      Calendar calendar(instance.T(), 1);
      for (const Time start : chosen) calendar.add(0, start);
      return calendar;
    }
  }
  return std::nullopt;
}

}  // namespace

namespace {

/// Can `jobs` all meet their deadlines if the machine is *fully
/// calibrated* from time `t` onward? EDF over the contiguous slots
/// t, t+1, ... (simulated; the horizon is bounded by the last deadline).
bool feasible_from(const std::vector<DeadlineJob>& jobs, Time t) {
  // Hall-style check via EDF simulation on contiguous slots.
  std::vector<DeadlineJob> sorted = jobs;
  std::sort(sorted.begin(), sorted.end(),
            [](const DeadlineJob& a, const DeadlineJob& b) {
              return a.release < b.release;
            });
  std::multiset<Time> deadlines;  // of released, waiting jobs
  std::size_t next = 0;
  Time clock = t;
  std::size_t done = 0;
  while (done < sorted.size()) {
    while (next < sorted.size() && sorted[next].release <= clock) {
      deadlines.insert(sorted[next].deadline);
      ++next;
    }
    if (deadlines.empty()) {
      CALIB_CHECK(next < sorted.size());
      clock = sorted[next].release;
      continue;
    }
    const Time earliest = *deadlines.begin();
    if (earliest <= clock) return false;  // already too late
    deadlines.erase(deadlines.begin());
    ++done;
    ++clock;
  }
  return true;
}

}  // namespace

std::optional<Calendar> lazy_binning(const DeadlineInstance& instance) {
  CALIB_CHECK_MSG(instance.machines() == 1,
                  "lazy binning covers the single-machine problem");
  Calendar calendar(instance.T(), 1);
  if (instance.empty()) return calendar;

  std::vector<DeadlineJob> remaining = instance.jobs();
  std::vector<JobId> ids(remaining.size());
  Time cursor = instance.min_release() + 1 - instance.T();
  while (!remaining.empty()) {
    if (!feasible_from(remaining, cursor)) return std::nullopt;
    // Lazy step: the *latest* t >= cursor such that the remainder is
    // still feasible with a fully calibrated machine from t. Feasibility
    // is monotone (smaller t only adds slots), so binary search works;
    // t never needs to pass the earliest remaining deadline.
    Time lo = cursor;
    Time hi = remaining.front().deadline - 1;
    for (const DeadlineJob& job : remaining) {
      hi = std::min(hi, job.deadline - 1);
    }
    while (lo < hi) {
      const Time mid = lo + (hi - lo + 1) / 2;
      if (feasible_from(remaining, mid)) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    const Time start = lo;
    calendar.add(0, start);
    // Commit the jobs the ideal (fully calibrated from `start`) EDF
    // schedule runs inside [start, start + T); the rest recur.
    std::vector<DeadlineJob> committed_pool = remaining;
    std::sort(committed_pool.begin(), committed_pool.end(),
              [](const DeadlineJob& a, const DeadlineJob& b) {
                return a.release < b.release;
              });
    std::vector<DeadlineJob> later;
    {
      // EDF over contiguous slots from `start`; jobs placed at slots
      // >= start + T stay in the pool.
      auto by_deadline = [](const DeadlineJob& a, const DeadlineJob& b) {
        if (a.deadline != b.deadline) return a.deadline > b.deadline;
        return a.release > b.release;
      };
      std::priority_queue<DeadlineJob, std::vector<DeadlineJob>,
                          decltype(by_deadline)>
          ready(by_deadline);
      std::size_t next = 0;
      std::size_t scheduled_in_interval = 0;
      for (Time slot = start; slot < start + instance.T(); ++slot) {
        while (next < committed_pool.size() &&
               committed_pool[next].release <= slot) {
          ready.push(committed_pool[next]);
          ++next;
        }
        if (!ready.empty()) {
          CALIB_CHECK_MSG(ready.top().deadline > slot,
                          "lazy binning committed an infeasible slot");
          ready.pop();
          ++scheduled_in_interval;
        }
      }
      CALIB_CHECK_MSG(scheduled_in_interval > 0,
                      "lazy binning made no progress on "
                          << instance.to_string());
      while (!ready.empty()) {
        later.push_back(ready.top());
        ready.pop();
      }
      for (std::size_t i = next; i < committed_pool.size(); ++i) {
        later.push_back(committed_pool[i]);
      }
    }
    remaining = std::move(later);
    cursor = start + instance.T();
  }
  // The committed calendar must actually work end to end.
  if (!edf_feasible(instance, calendar)) return std::nullopt;
  return calendar;
}

std::optional<Calendar> min_calibrations_exact(
    const DeadlineInstance& instance, int max_calibrations) {
  if (instance.empty()) return Calendar(instance.T(), 1);
  std::vector<Time> candidates;
  for (Time s = instance.min_release() + 1 - instance.T();
       s < instance.max_deadline(); ++s) {
    candidates.push_back(s);
  }
  return minimize(instance, std::move(candidates), max_calibrations);
}

}  // namespace calib

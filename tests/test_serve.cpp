// The `calibsched serve` daemon end to end over real Unix sockets: the
// hello/submit/decision/goodbye lifecycle, multi-tenant isolation
// (byte-identical streams with a noisy neighbor), admission sheds
// (pending cap and rate limit → RETRY_AFTER, never queued), watchdog
// demotion of a stalled tenant without blocking others, protocol-breach
// connection drops, graceful drain returning 0, and crash-consistent
// journal resume producing byte-identical continuations. The embedded
// chaos client (serve/client.hpp) is exercised against the same daemon.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/faults.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "util/framing.hpp"

namespace calib::serve {
namespace {

std::string temp_name(const std::string& stem) {
  static int counter = 0;
  return testing::TempDir() + "calibsched_" + stem + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++);
}

// Run a daemon on its own thread; stop() + join on destruction. The
// run() exit code is observable after stop_and_join().
class DaemonHarness {
 public:
  explicit DaemonHarness(ServeOptions options) : daemon_(std::move(options)) {
    thread_ = std::thread([this] { exit_code_ = daemon_.run(); });
    ready_ = daemon_.wait_ready(10000.0);
  }

  ~DaemonHarness() { (void)stop_and_join(); }

  [[nodiscard]] bool ready() const { return ready_; }

  int stop_and_join() {
    daemon_.stop();
    if (thread_.joinable()) thread_.join();
    return exit_code_;
  }

 private:
  ServeDaemon daemon_;
  std::thread thread_;
  bool ready_ = false;
  int exit_code_ = -1;
};

// A raw protocol client: framed request/reply over the Unix socket,
// with every reply byte captured so streams can be compared across
// daemon configurations.
class TestClient {
 public:
  explicit TestClient(const std::string& socket_path)
      : reader_(make_serve_reader()) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (fd_ >= 0 &&
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~TestClient() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  [[nodiscard]] bool send(ServeFrame type, const std::string& payload) {
    const std::string bytes = encode_serve_frame(type, payload);
    return write_all(fd_, bytes.data(), bytes.size());
  }

  [[nodiscard]] bool send_raw(const std::string& bytes) {
    return write_all(fd_, bytes.data(), bytes.size());
  }

  /// Next reply frame within `timeout_ms`; false on timeout, EOF, or a
  /// poisoned reply stream.
  [[nodiscard]] bool recv(RawFrame& frame, int timeout_ms = 10000) {
    for (int waited = 0; waited <= timeout_ms;) {
      if (reader_.next(frame)) return true;
      if (reader_.corrupted()) return false;
      const int ready = wait_readable(fd_, 50);
      if (ready < 0) return false;
      if (ready == 0) {
        waited += 50;
        continue;
      }
      char buffer[4096];
      const ssize_t n = read_some(fd_, buffer, sizeof buffer);
      if (n <= 0) return false;  // EOF or error
      reader_.feed(buffer, static_cast<std::size_t>(n));
    }
    return false;
  }

  /// True once the daemon has closed this connection (EOF observed).
  [[nodiscard]] bool at_eof(int timeout_ms = 10000) {
    for (int waited = 0; waited <= timeout_ms;) {
      const int ready = wait_readable(fd_, 50);
      if (ready < 0) return true;
      if (ready == 0) {
        waited += 50;
        continue;
      }
      char buffer[4096];
      const ssize_t n = read_some(fd_, buffer, sizeof buffer);
      if (n <= 0) return true;
      reader_.feed(buffer, static_cast<std::size_t>(n));
    }
    return false;
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

HelloRequest hello_for(const std::string& tenant) {
  HelloRequest hello;
  hello.tenant = tenant;
  hello.policy = "alg2";
  hello.T = 256;
  hello.G = 5;
  hello.seed = 1;
  hello.period = 5;
  return hello;
}

std::vector<SubmitJob> sample_jobs() {
  return {{0, 3}, {2, 1}, {5, 2}, {9, 1}};
}

// Open a session and expect the ack.
void open_session(TestClient& client, const HelloRequest& hello) {
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send(ServeFrame::kHello, encode_hello(hello)));
  RawFrame frame;
  ASSERT_TRUE(client.recv(frame));
  ASSERT_EQ(frame.type, static_cast<std::uint32_t>(ServeFrame::kHello))
      << frame.payload;
}

// Submit one job and return the reply frame (decision or error).
RawFrame submit_one(TestClient& client, const SubmitJob& job) {
  RawFrame frame;
  EXPECT_TRUE(client.send(ServeFrame::kSubmitJob, encode_submit(job)));
  EXPECT_TRUE(client.recv(frame));
  return frame;
}

// Drain via goodbye: returns the final stats payload (and checks the
// closing kGoodbye).
std::string drain_session(TestClient& client) {
  EXPECT_TRUE(client.send(ServeFrame::kGoodbye, ""));
  RawFrame frame;
  EXPECT_TRUE(client.recv(frame));
  EXPECT_EQ(frame.type, static_cast<std::uint32_t>(ServeFrame::kTenantStats))
      << frame.payload;
  const std::string stats = frame.payload;
  EXPECT_TRUE(client.recv(frame));
  EXPECT_EQ(frame.type, static_cast<std::uint32_t>(ServeFrame::kGoodbye));
  return stats;
}

// ---- Lifecycle ---------------------------------------------------------

TEST(Serve, SingleTenantLifecycleAndCleanDrain) {
  ServeOptions options;
  options.socket_path = temp_name("lifecycle") + ".sock";
  DaemonHarness daemon(options);
  ASSERT_TRUE(daemon.ready());

  TestClient client(options.socket_path);
  open_session(client, hello_for("t1"));

  std::uint64_t expected_seq = 0;
  Time last_now = 0;
  for (const SubmitJob& job : sample_jobs()) {
    const RawFrame reply = submit_one(client, job);
    ASSERT_EQ(reply.type, static_cast<std::uint32_t>(ServeFrame::kDecision))
        << reply.payload;
    const Decision decision = decode_decision(reply.payload);
    EXPECT_EQ(decision.seq, expected_seq++);
    EXPECT_GE(decision.now, last_now);
    last_now = decision.now;
  }

  const TenantStats stats = decode_stats(drain_session(client));
  EXPECT_EQ(stats.tenant, "t1");
  EXPECT_EQ(stats.state, "drained");
  EXPECT_EQ(stats.jobs, sample_jobs().size());
  EXPECT_EQ(stats.placed, sample_jobs().size());
  EXPECT_EQ(stats.violation, "");
  EXPECT_GT(stats.cost, 0);

  EXPECT_EQ(daemon.stop_and_join(), 0);
}

TEST(Serve, SubmitBeforeHelloIsAProtocolError) {
  ServeOptions options;
  options.socket_path = temp_name("nohello") + ".sock";
  DaemonHarness daemon(options);
  ASSERT_TRUE(daemon.ready());

  TestClient client(options.socket_path);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send(ServeFrame::kSubmitJob,
                          encode_submit({0, 1})));
  RawFrame frame;
  ASSERT_TRUE(client.recv(frame));
  ASSERT_EQ(frame.type, static_cast<std::uint32_t>(ServeFrame::kError));
  EXPECT_EQ(decode_error(frame.payload).code, "PROTOCOL");
}

// ---- Multi-tenant isolation --------------------------------------------

// Capture tenant `hello`'s full reply stream for `jobs` on a fresh
// connection to `socket`, with an optional noisy neighbor running
// concurrently. Every decision payload plus the final stats payload is
// returned for byte comparison.
std::vector<std::string> run_tenant_stream(const std::string& socket,
                                           const HelloRequest& hello,
                                           const std::vector<SubmitJob>& jobs) {
  std::vector<std::string> payloads;
  TestClient client(socket);
  open_session(client, hello);
  for (const SubmitJob& job : jobs) {
    const RawFrame reply = submit_one(client, job);
    EXPECT_EQ(reply.type, static_cast<std::uint32_t>(ServeFrame::kDecision))
        << reply.payload;
    payloads.push_back(reply.payload);
  }
  payloads.push_back(drain_session(client));
  return payloads;
}

TEST(Serve, TenantStreamIsByteIdenticalDespiteANoisyNeighbor) {
  // Reference: tenant alone on its own daemon.
  ServeOptions solo_options;
  solo_options.socket_path = temp_name("solo") + ".sock";
  std::vector<std::string> solo;
  {
    DaemonHarness daemon(solo_options);
    ASSERT_TRUE(daemon.ready());
    solo = run_tenant_stream(solo_options.socket_path, hello_for("quiet"),
                             sample_jobs());
    EXPECT_EQ(daemon.stop_and_join(), 0);
  }

  // Same tenant with a neighbor hammering its own session in parallel.
  ServeOptions shared_options;
  shared_options.socket_path = temp_name("shared") + ".sock";
  DaemonHarness daemon(shared_options);
  ASSERT_TRUE(daemon.ready());

  std::thread neighbor([&shared_options] {
    HelloRequest hello = hello_for("noisy");
    hello.G = 9;
    hello.policy = "alg1";
    std::vector<SubmitJob> jobs;
    for (Time t = 0; t < 60; ++t) jobs.push_back({t, 2});
    (void)run_tenant_stream(shared_options.socket_path, hello, jobs);
  });
  const std::vector<std::string> shared = run_tenant_stream(
      shared_options.socket_path, hello_for("quiet"), sample_jobs());
  neighbor.join();

  EXPECT_EQ(shared, solo);
  EXPECT_EQ(daemon.stop_and_join(), 0);
}

// ---- Admission ---------------------------------------------------------

TEST(Serve, PendingCapShedsWithRetryAfterInsteadOfQueueing) {
  ServeOptions options;
  options.socket_path = temp_name("pending") + ".sock";
  options.limits.max_pending = 2;
  // Slow every decision down so the pending window is reliably full
  // while the burst arrives.
  options.faults = harness::parse_serve_faults("slow-tenant=100");
  DaemonHarness daemon(options);
  ASSERT_TRUE(daemon.ready());

  TestClient client(options.socket_path);
  open_session(client, hello_for("burst"));

  constexpr int kBurst = 12;
  for (Time t = 0; t < kBurst; ++t) {
    ASSERT_TRUE(client.send(ServeFrame::kSubmitJob,
                            encode_submit({t, 1})));
  }
  std::size_t decisions = 0;
  std::size_t sheds = 0;
  for (int i = 0; i < kBurst; ++i) {
    RawFrame frame;
    ASSERT_TRUE(client.recv(frame)) << "reply " << i;
    if (frame.type == static_cast<std::uint32_t>(ServeFrame::kDecision)) {
      ++decisions;
      continue;
    }
    ASSERT_EQ(frame.type, static_cast<std::uint32_t>(ServeFrame::kError));
    const ErrorInfo error = decode_error(frame.payload);
    EXPECT_EQ(error.code, "RETRY_AFTER") << error.detail;
    EXPECT_GT(error.retry_after_ms, 0);
    ++sheds;
  }
  EXPECT_EQ(decisions + sheds, static_cast<std::size_t>(kBurst));
  EXPECT_GT(sheds, 0u);
  EXPECT_GT(decisions, 0u);  // admitted work still completes
  EXPECT_EQ(daemon.stop_and_join(), 0);
}

TEST(Serve, RateLimitShedsBurstsBeyondTheBucket) {
  ServeOptions options;
  options.socket_path = temp_name("rate") + ".sock";
  options.limits.rate_per_sec = 1.0;  // bucket starts with one token
  DaemonHarness daemon(options);
  ASSERT_TRUE(daemon.ready());

  TestClient client(options.socket_path);
  open_session(client, hello_for("bursty"));

  std::size_t sheds = 0;
  for (Time t = 0; t < 5; ++t) {
    const RawFrame reply = submit_one(client, {t, 1});
    if (reply.type == static_cast<std::uint32_t>(ServeFrame::kError)) {
      EXPECT_EQ(decode_error(reply.payload).code, "RETRY_AFTER");
      ++sheds;
    }
  }
  // One second of burst headroom, then the bucket is dry; even generous
  // CI jitter refills at most a token or two mid-test.
  EXPECT_GE(sheds, 2u);
  EXPECT_EQ(daemon.stop_and_join(), 0);
}

// ---- Watchdog / degradation --------------------------------------------

TEST(Serve, StalledTenantIsDemotedWithoutBlockingOthers) {
  ServeOptions options;
  options.socket_path = temp_name("watchdog") + ".sock";
  options.limits.decision_deadline_ms = 100.0;
  options.faults = harness::parse_serve_faults("slow-tenant=2000@stuck");
  options.threads = 2;  // the stall must not starve the pool
  DaemonHarness daemon(options);
  ASSERT_TRUE(daemon.ready());

  TestClient stuck(options.socket_path);
  open_session(stuck, hello_for("stuck"));
  TestClient healthy(options.socket_path);
  open_session(healthy, hello_for("healthy"));

  // Kick off the stalled decision; do not wait for its reply yet.
  ASSERT_TRUE(stuck.send(ServeFrame::kSubmitJob, encode_submit({0, 1})));

  // The healthy tenant keeps streaming while `stuck` wedges the pool
  // slot (each recv here is bounded well below the 2 s stall).
  for (const SubmitJob& job : sample_jobs()) {
    const RawFrame reply = submit_one(healthy, job);
    EXPECT_EQ(reply.type, static_cast<std::uint32_t>(ServeFrame::kDecision))
        << reply.payload;
  }

  // The stalled submit's reply is the demotion, not a late decision.
  RawFrame frame;
  ASSERT_TRUE(stuck.recv(frame));
  ASSERT_EQ(frame.type, static_cast<std::uint32_t>(ServeFrame::kError))
      << frame.payload;
  EXPECT_EQ(decode_error(frame.payload).code, "DEGRADED");

  // Demotion is sticky: the next submit is refused immediately.
  const RawFrame refused = submit_one(stuck, {5, 1});
  ASSERT_EQ(refused.type, static_cast<std::uint32_t>(ServeFrame::kError));
  EXPECT_EQ(decode_error(refused.payload).code, "DEGRADED");

  EXPECT_EQ(daemon.stop_and_join(), 0);
}

// ---- Protocol breaches -------------------------------------------------

TEST(Serve, GarbageBytesDropTheConnectionButNotTheDaemon) {
  ServeOptions options;
  options.socket_path = temp_name("garbage") + ".sock";
  DaemonHarness daemon(options);
  ASSERT_TRUE(daemon.ready());

  TestClient vandal(options.socket_path);
  ASSERT_TRUE(vandal.connected());
  ASSERT_TRUE(vandal.send_raw(std::string(64, 'Z')));
  EXPECT_TRUE(vandal.at_eof());

  // An executor-protocol frame (type 1) on the serve socket is equally
  // a poisoning breach.
  TestClient confused(options.socket_path);
  ASSERT_TRUE(confused.connected());
  ASSERT_TRUE(confused.send_raw(encode_frame(1, "lease")));
  EXPECT_TRUE(confused.at_eof());

  // The daemon survives both and serves a well-behaved client.
  TestClient client(options.socket_path);
  open_session(client, hello_for("fine"));
  const RawFrame reply = submit_one(client, {0, 2});
  EXPECT_EQ(reply.type, static_cast<std::uint32_t>(ServeFrame::kDecision));
  EXPECT_EQ(daemon.stop_and_join(), 0);
}

TEST(Serve, DuplicateHelloIsAProtocolError) {
  ServeOptions options;
  options.socket_path = temp_name("dup") + ".sock";
  DaemonHarness daemon(options);
  ASSERT_TRUE(daemon.ready());

  TestClient client(options.socket_path);
  open_session(client, hello_for("once"));
  ASSERT_TRUE(client.send(ServeFrame::kHello,
                          encode_hello(hello_for("twice"))));
  RawFrame frame;
  ASSERT_TRUE(client.recv(frame));
  ASSERT_EQ(frame.type, static_cast<std::uint32_t>(ServeFrame::kError));
  EXPECT_EQ(decode_error(frame.payload).code, "PROTOCOL");
  EXPECT_EQ(daemon.stop_and_join(), 0);
}

// ---- Journal / resume --------------------------------------------------

TEST(Serve, ResumeContinuesTheStreamByteIdentically) {
  const std::string journal = temp_name("journal") + ".jsonl";
  const std::vector<SubmitJob> jobs = sample_jobs();

  // Reference: the whole stream on one uninterrupted daemon.
  std::vector<std::string> reference;
  {
    ServeOptions options;
    options.socket_path = temp_name("ref") + ".sock";
    DaemonHarness daemon(options);
    ASSERT_TRUE(daemon.ready());
    reference = run_tenant_stream(options.socket_path, hello_for("t1"), jobs);
    EXPECT_EQ(daemon.stop_and_join(), 0);
  }

  // First half, then a SIGTERM-style drain with NO goodbye: the session
  // must survive in the journal.
  std::vector<std::string> stream;
  {
    ServeOptions options;
    options.socket_path = temp_name("half1") + ".sock";
    options.journal_path = journal;
    DaemonHarness daemon(options);
    ASSERT_TRUE(daemon.ready());
    TestClient client(options.socket_path);
    open_session(client, hello_for("t1"));
    for (std::size_t i = 0; i < 2; ++i) {
      const RawFrame reply = submit_one(client, jobs[i]);
      ASSERT_EQ(reply.type,
                static_cast<std::uint32_t>(ServeFrame::kDecision))
          << reply.payload;
      stream.push_back(reply.payload);
    }
    EXPECT_EQ(daemon.stop_and_join(), 0);
  }

  // Second half against `--resume`, reattaching to the restored session.
  {
    ServeOptions options;
    options.socket_path = temp_name("half2") + ".sock";
    options.journal_path = journal;
    options.resume = true;
    DaemonHarness daemon(options);
    ASSERT_TRUE(daemon.ready());
    TestClient client(options.socket_path);
    HelloRequest hello = hello_for("t1");
    hello.resume = true;
    open_session(client, hello);
    for (std::size_t i = 2; i < jobs.size(); ++i) {
      const RawFrame reply = submit_one(client, jobs[i]);
      ASSERT_EQ(reply.type,
                static_cast<std::uint32_t>(ServeFrame::kDecision))
          << reply.payload;
      stream.push_back(reply.payload);
    }
    stream.push_back(drain_session(client));
    EXPECT_EQ(daemon.stop_and_join(), 0);
  }

  EXPECT_EQ(stream, reference);
  std::remove(journal.c_str());
}

// ---- The embedded chaos client -----------------------------------------

TEST(ServeClient, WellBehavedRunReportsStatsAndExitZero) {
  ServeOptions options;
  options.socket_path = temp_name("client") + ".sock";
  DaemonHarness daemon(options);
  ASSERT_TRUE(daemon.ready());

  ClientOptions client;
  client.socket_path = options.socket_path;
  client.hello = hello_for("cli");
  client.jobs = sample_jobs();
  std::ostringstream out;
  client.out = &out;
  const ClientReport report = run_client(client);
  EXPECT_EQ(report.exit_code, 0) << report.last_error;
  EXPECT_EQ(report.decisions, sample_jobs().size());
  EXPECT_EQ(report.errors, 0u);
  ASSERT_TRUE(report.got_stats);
  EXPECT_EQ(report.final_stats.state, "drained");
  EXPECT_EQ(report.final_stats.violation, "");
  EXPECT_NE(out.str().find("\"cost\""), std::string::npos);
  EXPECT_EQ(daemon.stop_and_join(), 0);
}

TEST(ServeClient, ChaosModesLeaveTheDaemonServing) {
  ServeOptions options;
  options.socket_path = temp_name("chaos") + ".sock";
  DaemonHarness daemon(options);
  ASSERT_TRUE(daemon.ready());

  for (const ChaosMode mode :
       {ChaosMode::kCorrupt, ChaosMode::kDisconnect, ChaosMode::kFlood}) {
    ClientOptions client;
    client.socket_path = options.socket_path;
    client.hello = hello_for("chaos");
    client.hello.tenant += std::to_string(static_cast<int>(mode));
    client.jobs = sample_jobs();
    client.chaos = mode;
    const ClientReport report = run_client(client);
    EXPECT_NE(report.exit_code, 1) << report.last_error;  // never "cannot run"
  }

  // After the abuse, a clean tenant still gets a clean stream.
  ClientOptions client;
  client.socket_path = options.socket_path;
  client.hello = hello_for("after");
  client.jobs = sample_jobs();
  const ClientReport report = run_client(client);
  EXPECT_EQ(report.exit_code, 0) << report.last_error;
  EXPECT_EQ(report.decisions, sample_jobs().size());
  EXPECT_EQ(daemon.stop_and_join(), 0);
}

TEST(ServeClient, ChaosModeNamesParse) {
  EXPECT_EQ(parse_chaos_mode(""), ChaosMode::kNone);
  EXPECT_EQ(parse_chaos_mode("none"), ChaosMode::kNone);
  EXPECT_EQ(parse_chaos_mode("flood"), ChaosMode::kFlood);
  EXPECT_EQ(parse_chaos_mode("disconnect-mid-frame"), ChaosMode::kDisconnect);
  EXPECT_EQ(parse_chaos_mode("corrupt-frame"), ChaosMode::kCorrupt);
  EXPECT_EQ(parse_chaos_mode("slow"), ChaosMode::kSlow);
  EXPECT_THROW((void)parse_chaos_mode("nuke"), std::runtime_error);
}

}  // namespace
}  // namespace calib::serve

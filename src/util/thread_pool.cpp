#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "util/check.hpp"

namespace calib {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size() * 4);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    futures.push_back(submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace calib

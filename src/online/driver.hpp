// Time-stepped online simulation driver.
//
// The driver is the substrate every online experiment runs on: it owns
// the clock, the set of revealed jobs, the calendar built so far, and the
// placements. Jobs may be fed incrementally (add_job at the current
// step), which is what lets the Lemma 3.1 adversary adapt to the
// policy's observable decisions.
//
// State is maintained, not recomputed: the waiting set lives in a
// PendingSet (order-statistics trees + spread sums), so a full decision
// round — queue flows, prefix weights, best-job selection, slot search —
// costs O(log n) amortized instead of the seed driver's O(n log n).
// Occupancy carries job ids and calibration coverage is kept as merged
// runs, which makes last_interval_flow an O(1) read, online_cost an O(1)
// read, and first_free_slot a binary search that jumps occupied spans.
// run_online additionally fast-forwards the clock across empty-queue
// spans between arrivals (event-driven advance) rather than ticking
// through them; see DESIGN.md §9 for the architecture and the exact
// idle-skip semantics.
#pragma once

#include <cstddef>
#include <vector>

#include "core/calendar.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/solve_result.hpp"
#include "online/policy.hpp"
#include "online/trace.hpp"
#include "util/budget.hpp"
#include "util/pending_set.hpp"

namespace calib {

class OnlineDriver {
 public:
  OnlineDriver(Time T, int machines, Cost G, OnlinePolicy& policy);

  /// Release a job at the current time step. Must be called before
  /// step() processes that step.
  JobId add_job(Weight weight);

  /// Process the current time step (policy decision + assignments), then
  /// advance the clock by one.
  void step();

  /// Keep stepping until every revealed job is placed. CHECKs against
  /// runaway policies that never calibrate.
  void drain();

  /// Event-driven advance: jump the clock straight to `target` without
  /// invoking the policy. Legal only while the waiting queue is empty
  /// (no decision points exist in the skipped span — see the decide()
  /// contract in policy.hpp). Charges the budget one unit per skipped
  /// step, exactly as per-step ticking would.
  void advance_to(Time target);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] Cost G() const { return G_; }
  [[nodiscard]] Time T() const { return calendar_.T(); }
  [[nodiscard]] int machines() const { return calendar_.machines(); }
  [[nodiscard]] bool all_placed() const;

  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }
  [[nodiscard]] std::size_t waiting_count() const;
  [[nodiscard]] bool waiting_empty() const { return waiting_count() == 0; }
  [[nodiscard]] Weight waiting_weight() const;
  /// The waiting job `rank` positions into the arrival (FIFO) order.
  [[nodiscard]] JobId waiting_at(std::size_t rank) const;
  /// First waiting job under `order` (stable: arrival breaks ties).
  [[nodiscard]] JobId front(QueueOrder order) const;
  [[nodiscard]] bool arrived_now() const { return arrived_now_; }
  [[nodiscard]] const Calendar& calendar() const { return calendar_; }
  /// Is step t calibrated on machine m? O(log #runs) over maintained
  /// merged coverage runs (faster than Calendar::covers on hot paths).
  [[nodiscard]] bool covers(MachineId m, Time t) const;
  [[nodiscard]] Time start_of(JobId j) const;
  [[nodiscard]] MachineId machine_of(JobId j) const;

  /// The realized instance (jobs in arrival order, re-sorted by the
  /// Instance constructor) and the realized schedule. Call after drain().
  [[nodiscard]] Instance realized_instance() const;
  [[nodiscard]] Schedule realized_schedule() const;

  /// G * #calibrations + weighted flow of what has been placed so far.
  /// CHECKs that every revealed job is placed — call after drain().
  [[nodiscard]] Cost online_cost() const;

  /// The same objective mid-run: the realized-prefix cost with jobs
  /// still waiting simply not counted yet. The serve daemon reports
  /// this per decision; it converges to online_cost() at drain.
  [[nodiscard]] Cost running_cost() const {
    return G_ * calendar_.count() + placed_flow_;
  }

  /// Flow of jobs in the latest completed interval; -1 if none yet.
  [[nodiscard]] Cost last_interval_flow() const;

  [[nodiscard]] Cost queue_flow_from(Time start, QueueOrder order) const;
  [[nodiscard]] Time first_free_slot(MachineId m, Time from, Time to) const;

  // Mutations used by DriverHandle on behalf of the policy.
  MachineId calibrate_round_robin();
  void assign(JobId j, MachineId m, Time start);

  /// Attach an event trace (nullptr detaches). Not owned; must outlive
  /// the driver while attached.
  void set_trace(Trace* trace) { trace_ = trace; }

  /// Attach a cooperative budget (nullptr detaches). Charged one unit
  /// per step(); BudgetExceeded propagates to the caller mid-simulation,
  /// which is how the harness turns runaway cells into timeout rows.
  void set_budget(Budget* budget) { budget_ = budget; }

 private:
  /// A machine's maximal calibrated [begin, end) span. Calibrations are
  /// only ever opened at now_ (monotone), so merging happens at the back
  /// and the run list stays sorted — coverage checks are binary searches.
  struct CoverageRun {
    Time begin;
    Time end;  // exclusive
  };
  /// One booked slot. Carrying the job id is what lets
  /// last_interval_flow re-aggregate an interval in O(slots in interval)
  /// when a calibration opens, instead of rescanning all placements per
  /// query.
  struct OccupiedSlot {
    Time start;
    JobId job;
  };

  void auto_assign();
  [[nodiscard]] bool occupied_at(MachineId m, Time t) const;
  /// Recompute the maintained last-interval flow for the interval opened
  /// at `start` on machine `m` (slots may already be booked in it when
  /// calibrations overlap).
  [[nodiscard]] Cost interval_flow(MachineId m, Time start) const;

  OnlinePolicy& policy_;
  Cost G_;
  Calendar calendar_;
  Time now_ = 0;
  bool arrived_now_ = false;
  std::vector<Job> jobs_;
  std::vector<Placement> placements_;
  PendingSet pending_;  // the waiting set (released, unassigned)
  std::vector<std::vector<OccupiedSlot>> occupied_;  // per machine, sorted
  std::vector<std::vector<CoverageRun>> coverage_;   // per machine, sorted
  MachineId next_rr_machine_ = 0;
  // Maintained aggregates (incremental backend reads).
  std::size_t placed_count_ = 0;
  Cost placed_flow_ = 0;
  // Most recent calibration and its maintained interval flow.
  Time last_cal_start_ = kUnscheduled;
  MachineId last_cal_machine_ = 0;
  Cost last_cal_flow_ = 0;
  Trace* trace_ = nullptr;
  Budget* budget_ = nullptr;
};

/// Run `policy` over a fixed instance: feed arrivals at their release
/// times, drain, and return the realized schedule (validated). If
/// `trace` is non-null it records the run's event stream (for derived
/// metrics — queue lengths, utilization). If `budget` is non-null it is
/// charged once per simulated step (skipped spans included);
/// BudgetExceeded propagates out.
Schedule run_online(const Instance& instance, Cost G, OnlinePolicy& policy,
                    Trace* trace = nullptr, Budget* budget = nullptr);

/// Convenience: the online objective value achieved by `policy`.
Cost online_objective(const Instance& instance, Cost G, OnlinePolicy& policy);

/// Run `policy` and report the uniform SolveResult (timed internally).
SolveResult run_online_result(const Instance& instance, Cost G,
                              OnlinePolicy& policy, Trace* trace = nullptr);

}  // namespace calib

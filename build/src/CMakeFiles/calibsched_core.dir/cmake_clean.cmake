file(REMOVE_RECURSE
  "CMakeFiles/calibsched_core.dir/core/calendar.cpp.o"
  "CMakeFiles/calibsched_core.dir/core/calendar.cpp.o.d"
  "CMakeFiles/calibsched_core.dir/core/critical.cpp.o"
  "CMakeFiles/calibsched_core.dir/core/critical.cpp.o.d"
  "CMakeFiles/calibsched_core.dir/core/instance.cpp.o"
  "CMakeFiles/calibsched_core.dir/core/instance.cpp.o.d"
  "CMakeFiles/calibsched_core.dir/core/list_scheduler.cpp.o"
  "CMakeFiles/calibsched_core.dir/core/list_scheduler.cpp.o.d"
  "CMakeFiles/calibsched_core.dir/core/schedule.cpp.o"
  "CMakeFiles/calibsched_core.dir/core/schedule.cpp.o.d"
  "CMakeFiles/calibsched_core.dir/core/schedule_io.cpp.o"
  "CMakeFiles/calibsched_core.dir/core/schedule_io.cpp.o.d"
  "CMakeFiles/calibsched_core.dir/core/svg.cpp.o"
  "CMakeFiles/calibsched_core.dir/core/svg.cpp.o.d"
  "CMakeFiles/calibsched_core.dir/core/transform.cpp.o"
  "CMakeFiles/calibsched_core.dir/core/transform.cpp.o.d"
  "libcalibsched_core.a"
  "libcalibsched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibsched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

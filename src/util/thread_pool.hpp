// Fixed-size thread pool for embarrassingly parallel harness work.
//
// The scheduling algorithms themselves are sequential (they are online,
// time-stepped state machines); all parallelism in this project lives at
// the outermost independent loop — fanning a parameter sweep or a seed
// ensemble across cores. parallel_for partitions [0, n) into contiguous
// chunks, which keeps per-index state cache-local. Worker exceptions are
// rethrown on the caller thread: a single failure is rethrown as-is
// (preserving its type); multiple failures are aggregated into one
// std::runtime_error carrying the count and each task's message.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "util/sync.hpp"

namespace calib {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue an arbitrary task; the future carries its result/exception.
  /// Each task is stamped at enqueue so the obs layer can report queue
  /// depth and queue-wait time (pool.queue_depth / pool.queue_wait_us).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    const std::uint64_t enqueued_ns = obs::now_ns();
    {
      const MutexLock lock(mutex_);
      queue_.emplace([task, enqueued_ns] {
        note_dequeued(obs::now_ns() - enqueued_ns);
        (*task)();
      });
    }
    note_enqueued();
    cv_.notify_one();
    return result;
  }

  /// Run body(i) for all i in [0, n), blocking until every index is done.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  // Metrics hooks (no-ops when CALIBSCHED_OBS=0); process-wide, since
  // queue pressure is a property of the host, not of one pool.
  static void note_enqueued();
  static void note_dequeued(std::uint64_t wait_ns);

  // Lock hierarchy: mutex_ is a leaf — no code path acquires another
  // lock while holding it (tasks run after it is released).
  std::vector<std::thread> workers_;  // written only in ctor/dtor
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ CALIB_GUARDED_BY(mutex_);
  bool stopping_ CALIB_GUARDED_BY(mutex_) = false;
};

/// Process-wide pool for benches/examples that don't want to own one.
ThreadPool& global_pool();

}  // namespace calib

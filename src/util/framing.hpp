// The one definition of the project's length-prefixed wire format and
// of the low-level POSIX I/O loops that move it.
//
// Three consumers speak this framing today — the sandbox result pipe
// (harness/sandbox.cpp), the sharded-sweep executor pipes
// (harness/executor/protocol.cpp), and the `calibsched serve` daemon
// socket (serve/protocol.cpp) — and each used to carry its own copy of
// the read/write loops. They now all route through here:
//
//   magic   u32 LE  kFrameMagic
//   type    u32 LE  protocol-specific frame type (omitted by the
//                   sandbox's one-shot result frame, which is
//                   magic+length only)
//   length  u32 LE  payload byte count (capped at kMaxFrameBytes)
//   payload bytes   protocol-specific
//
// A malformed header (wrong magic, out-of-range type, oversized
// length) poisons a FrameReader permanently: inside a corrupted byte
// stream, "the next frame boundary" is not a well-defined place, so
// there is deliberately no resynchronization.
//
// Layering rule (tools/lint/calib_lint.py, rule raw-io-layering): raw
// blocking read/write/poll syscalls live only here and in serve/io.cpp.
// Everything else calls these EINTR-safe wrappers.
#pragma once

#include <poll.h>
#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

namespace calib {

/// Payloads above this are a protocol error (a sweep row is < 4 KiB; a
/// frame this large means the peer went haywire, not that rows grew).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// The IPC frame magic ("BLAC" on disk, "CALB" in register order). This
/// header is the single point of truth for the literal: every framed
/// protocol (the sandbox result pipe, the executor pipes, the
/// `calibsched serve` stream) must reference kFrameMagic rather than
/// repeat the constant — enforced by tools/lint/calib_lint.py (rule
/// ipc-magic).
inline constexpr std::uint32_t kFrameMagic = 0x43414C42u;

/// Bytes in a typed frame header: magic + type + length.
inline constexpr std::size_t kFrameHeaderBytes = 12;

/// Blocking write(2) of the whole buffer, retrying on EINTR and short
/// writes. Returns false (with errno set) on any other error — EPIPE
/// after the peer died, typically. Async-signal-safe: no heap, no
/// locks, no stdio, so the sandbox's forked child may call it between
/// fork() and _exit().
[[nodiscard]] bool write_all(int fd, const void* data,
                             std::size_t size) noexcept;

/// Blocking read(2) of up to `capacity` bytes, retrying on EINTR.
/// Returns the byte count (0 = EOF), or -1 with errno set on any
/// non-EINTR error. Async-signal-safe.
[[nodiscard]] ssize_t read_some(int fd, void* buffer,
                                std::size_t capacity) noexcept;

/// poll(2) retrying on EINTR (with the same timeout — callers that
/// need a precise deadline recompute it per call, so the worst case is
/// one interrupted tick stretching). Returns the ready count (0 =
/// timeout); any negative return is a real error, never EINTR.
[[nodiscard]] int poll_fds(pollfd* fds, std::size_t count,
                           int timeout_ms) noexcept;

/// One-fd POLLIN convenience over poll_fds: >0 readable (or HUP/ERR),
/// 0 timeout, <0 real error.
[[nodiscard]] int wait_readable(int fd, int timeout_ms) noexcept;

/// Append `value` to `out` as u32 LE.
void put_u32(std::string& out, std::uint32_t value);

/// Read a u32 LE from `p` (must have 4 readable bytes).
[[nodiscard]] std::uint32_t get_u32(const char* p) noexcept;

/// Serialize one typed frame (header + payload) into a byte string
/// ready for a single write. Throws std::runtime_error on an oversized
/// payload.
[[nodiscard]] std::string encode_frame(std::uint32_t type,
                                       std::string_view payload);

/// Encode + write_all one typed frame. Returns false on write error.
[[nodiscard]] bool write_frame(int fd, std::uint32_t type,
                               std::string_view payload);

/// One decoded typed frame. The type word is protocol-specific; typed
/// wrappers (harness::FrameReader, serve::protocol) narrow it to their
/// own enum.
struct RawFrame {
  std::uint32_t type = 0;
  std::string payload;
};

/// Incremental typed-frame decoder for one stream. Feed raw bytes as
/// they arrive; pop complete frames with next(). Once a malformed
/// header is seen the reader is poisoned: corrupted() stays true,
/// next() never yields again, and error() names the reason.
///
/// The [min_type, max_type] window is the caller's protocol range —
/// the executor speaks 1..5, the serve daemon 6..11 — so a frame from
/// the wrong protocol is a poisoning breach, not a silent skip.
class FrameReader {
 public:
  FrameReader(std::uint32_t min_type, std::uint32_t max_type)
      : min_type_(min_type), max_type_(max_type) {}

  void feed(const char* data, std::size_t n);
  [[nodiscard]] bool next(RawFrame& frame);
  [[nodiscard]] bool corrupted() const { return corrupted_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Bytes currently buffered awaiting a complete frame. The hostility
  /// tests assert this never tracks a hostile *declared* length — the
  /// reader buffers only bytes actually received, and poisons on any
  /// declared length past kMaxFrameBytes before allocating for it.
  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  void decode();

  std::uint32_t min_type_;
  std::uint32_t max_type_;
  std::string buffer_;
  std::deque<RawFrame> ready_;
  bool corrupted_ = false;
  std::string error_;
};

}  // namespace calib

// Shared helpers for the experiment harness: ratio measurement against
// the exact offline optimum, seed-ensemble averaging on the thread pool.
#pragma once

#include <functional>
#include <memory>
#include <mutex>

#include "offline/budget_search.hpp"
#include "online/driver.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace calib::benchutil {

/// Competitive ratio of `policy` on `instance` against the exact
/// offline optimum (Section 4 DP searched over budgets).
inline double ratio_vs_opt(const Instance& instance, Cost G,
                           OnlinePolicy& policy) {
  const Cost alg = online_objective(instance, G, policy);
  const Cost opt = offline_online_optimum(instance, G).best_cost;
  return static_cast<double>(alg) / static_cast<double>(opt);
}

/// Run `trial(seed_index)` for `trials` seeds in parallel; returns the
/// pooled summary of its returned statistic.
inline Summary ensemble(int trials,
                        const std::function<double(std::uint64_t)>& trial) {
  Summary summary;
  std::mutex mutex;
  global_pool().parallel_for(static_cast<std::size_t>(trials),
                             [&](std::size_t i) {
                               const double value =
                                   trial(static_cast<std::uint64_t>(i));
                               const std::scoped_lock lock(mutex);
                               summary.add(value);
                             });
  return summary;
}

}  // namespace calib::benchutil

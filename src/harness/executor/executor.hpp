// The sharded sweep executor: a coordinator and N forked worker
// processes, with failure detection, retry/backoff, and elastic
// re-balancing.
//
// The thread-pool sweep (sweep.cpp) contains cell *crashes* only when
// every cell pays for its own fork (--sandbox). The executor moves the
// process boundary up one level: long-lived workers each solve many
// cells, the coordinator leases cells one at a time over the framed
// pipe protocol (executor/protocol.hpp), and a dying worker costs one
// lease, not the sweep. Concretely:
//
//   * Failure detection is three-way — a worker is declared dead on
//     (a) heartbeat silence past SweepOptions::heartbeat_timeout_ms,
//     (b) EOF/garbage on its result pipe, or (c) the coordinator's
//     lease watchdog (3x cell_budget_ms: past both the in-cell
//     cooperative budget at 1x and the per-cell sandbox watchdog at
//     1.5x, so it only fires when the worker itself is wedged).
//   * A dead worker's in-flight lease returns to the queue and is
//     re-dispatched to a surviving worker after capped exponential
//     backoff, up to max_cell_attempts total tries; exhaustion turns
//     the cell into a terminal crashed/error row. Workers are not
//     respawned — elasticity means the remaining lease stream
//     re-balances onto survivors, and when no workers remain every
//     unfinished cell becomes an error row. The sweep degrades; it
//     never deadlocks.
//   * The coordinator is the only journal writer, so the journal keeps
//     its byte-exact append-per-completed-cell contract and a
//     mid-sweep coordinator kill resumes exactly like a thread-pool
//     run (torn trailing line dropped, unjournaled cells re-run).
//   * Workers stream cumulative obs-metrics snapshots inside their
//     heartbeats; the coordinator merges the final snapshot of every
//     worker into SweepReport::worker_metrics (obs::Snapshot::merge),
//     so cross-process instrumentation survives the workers' exit.
//     Every heartbeat also lands in ShardedRunStats::timeline as a
//     per-worker delta sample (obs::Timeline), and — when span
//     recording is on — each worker drains its TraceCollector buffer
//     into kTrace frames that the coordinator rebases onto its own
//     clock and accumulates per worker, so one merged Perfetto trace
//     covers the whole fleet.
//
// Crash-free cells produce rows byte-identical to in-process execution:
// a cell is a pure function of its coordinates, and SweepOptions only
// ever changes *how* cells execute.
#pragma once

#include <cstddef>
#include <vector>

#include "harness/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace calib::harness {

class SweepJournal;

/// What the coordinator learned beyond the rows themselves.
struct ShardedRunStats {
  obs::Snapshot worker_metrics;   ///< merged final worker snapshots
  std::size_t retries = 0;        ///< leases re-queued after a failure
  std::size_t workers_lost = 0;   ///< workers dead before clean shutdown
  /// True when the run stopped early on SIGINT/SIGTERM (or the
  /// request_sweep_interrupt test hook): every unresolved cell was
  /// journaled as a skipped row and the fleet was shut down cleanly.
  bool interrupted = false;
  /// Per-worker span chunks shipped over kTrace frames, timestamps
  /// already rebased onto the coordinator clock. Empty unless span
  /// recording (obs::tracer()) was enabled during the run. Feed to
  /// obs::write_merged_chrome_trace for the fleet-wide Perfetto view.
  std::vector<obs::ProcessTrace> worker_traces;
  /// Every heartbeat snapshot folded into a per-worker delta series
  /// ("worker-0", "worker-1", ...). Always recorded (bounded); the CLI
  /// exports it only when asked (--metrics-timeline).
  obs::Timeline timeline;
};

/// Coordinator entry point, called by SweepEngine::run when
/// options.workers > 0. Fills rows[i] for every cell with done[i] == 0
/// (rows is pre-sized to grid.cells()), appending each completed or
/// terminal row to `journal` (may be null). Throws std::runtime_error
/// only for harness-level failures (pipe/fork exhaustion); per-cell and
/// per-worker failures become rows.
ShardedRunStats run_sharded_sweep(const SweepEngine& engine,
                                  const SweepOptions& options,
                                  const std::vector<char>& done,
                                  std::vector<SweepRow>& rows,
                                  SweepJournal* journal);

/// Ask a running run_sharded_sweep to stop gracefully: stop leasing,
/// journal every unresolved cell as `skipped`, shut the fleet down, and
/// return with ShardedRunStats::interrupted set. This is exactly what
/// the coordinator's SIGINT/SIGTERM handlers call; tests call it
/// directly from another thread to avoid signal plumbing. Safe to call
/// at any time (a no-op when no sharded run is active).
void request_sweep_interrupt();

/// Force registration of the executor's parent-side metric handles —
/// called before the first worker fork for the same reason as
/// sandbox_metrics_warmup() (no child may inherit the registry mutex
/// locked).
void executor_metrics_warmup();

}  // namespace calib::harness

// Known-good fixture: everything here is allowed and must produce zero
// findings — placement new, `= delete` declarations, static_assert,
// <sstream> (only <iostream> is banned), and the words assert/new in
// comments and strings.
#include <memory>
#include <new>
#include <sstream>

static_assert(sizeof(int) >= 4, "static_assert is compile-time, allowed");

struct Pinned {
  Pinned() = default;
  Pinned(const Pinned&) = delete;
  Pinned& operator=(const Pinned&) = delete;
};

void construct_at(void* page) {
  Pinned* p = new (page) Pinned{};  // placement new: exempt
  p->~Pinned();
}

std::string render(int x) {
  auto owned = std::make_unique<int>(x);  // sanctioned ownership
  std::ostringstream os;
  os << "a new beginning, no assert here" << *owned;
  return os.str();
}

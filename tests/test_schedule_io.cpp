// Schedule serialization round trips and error handling.
#include <gtest/gtest.h>

#include <sstream>

#include "core/schedule_io.hpp"
#include "offline/dp.hpp"
#include "online/alg2_weighted.hpp"
#include "online/driver.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(ScheduleIo, RoundTripsOnlineSchedule) {
  const Instance instance = regression_instance();
  Alg2Weighted policy;
  const Schedule original = run_online(instance, 7, policy);
  std::stringstream buffer;
  save_schedule_csv(original, buffer);
  const Schedule loaded = load_schedule_csv(buffer);
  EXPECT_EQ(loaded, original);
  EXPECT_EQ(loaded.validate(instance), std::nullopt);
  EXPECT_EQ(loaded.online_cost(instance, 7),
            original.online_cost(instance, 7));
}

TEST(ScheduleIo, RoundTripsMultiMachineAndDpWitness) {
  // DP witness.
  const Instance instance = regression_instance();
  OfflineDp dp(instance);
  const auto witness = dp.solve(3);
  ASSERT_TRUE(witness.has_value());
  std::stringstream buffer;
  save_schedule_csv(*witness, buffer);
  EXPECT_EQ(load_schedule_csv(buffer), *witness);

  // Multi-machine schedule.
  Prng prng(2501);
  const Instance multi = sparse_uniform_instance(
      6, 10, 3, 2, WeightModel::kUnit, 1, prng);
  Calendar calendar(3, 2);
  calendar.add(0, 0);
  calendar.add(1, 4);
  calendar.add(0, 8);
  Schedule schedule(calendar, multi.size());
  // Any placement set round-trips, valid or not; use a trivial one.
  for (JobId j = 0; j < multi.size(); ++j) {
    schedule.place(j, j % 2, 100 + j);
  }
  std::stringstream multi_buffer;
  save_schedule_csv(schedule, multi_buffer);
  EXPECT_EQ(load_schedule_csv(multi_buffer), schedule);
}

TEST(ScheduleIo, RejectsBadHeader) {
  std::istringstream is("bogus\n");
  EXPECT_THROW(load_schedule_csv(is), std::runtime_error);
}

TEST(ScheduleIo, RejectsMalformedRows) {
  std::istringstream missing_field("# T=3 P=1 N=1\ncalibration,0\n");
  EXPECT_THROW(load_schedule_csv(missing_field), std::runtime_error);
  std::istringstream bad_kind("# T=3 P=1 N=1\nfrobnicate,1,2,3\n");
  EXPECT_THROW(load_schedule_csv(bad_kind), std::runtime_error);
  std::istringstream bad_job("# T=3 P=1 N=1\nplacement,7,0,0\n");
  EXPECT_THROW(load_schedule_csv(bad_job), std::runtime_error);
}

TEST(ScheduleIo, EmptyScheduleRoundTrips) {
  const Schedule empty(Calendar(4, 2), 0);
  std::stringstream buffer;
  save_schedule_csv(empty, buffer);
  const Schedule loaded = load_schedule_csv(buffer);
  EXPECT_EQ(loaded, empty);
}

}  // namespace
}  // namespace calib

#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <utility>

#include "obs/json_escape.hpp"

namespace calib::obs {

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

// ---- Phase breadcrumb (sandbox crash forensics) -----------------------
//
// The sink pointer is a relaxed atomic: every span on every thread
// tests it, while install/remove happens on one thread (a test, or the
// sandbox child right after fork) — an atomic makes that publication
// race-free without ordering cost. The span *stack* behind it stays
// deliberately unsynchronized: it is only touched once a sink is
// installed, and the contract (see the header) is that only the
// single-threaded sandbox child installs one; the parent reads the
// shared page only after reaping the child.
namespace {

std::atomic<PhaseBreadcrumb*> g_phase_sink{nullptr};
std::vector<const char*> g_phase_stack;

void write_phase(PhaseBreadcrumb* sink, const char* name) {
  std::size_t i = 0;
  for (; name[i] != '\0' && i + 1 < PhaseBreadcrumb::kCapacity; ++i) {
    sink->phase[i] = name[i];
  }
  sink->phase[i] = '\0';
}

}  // namespace

void set_phase_breadcrumb(PhaseBreadcrumb* sink) {
  g_phase_sink.store(sink, std::memory_order_relaxed);
  g_phase_stack.clear();
  if (sink != nullptr) write_phase(sink, "");
}

namespace detail {

void phase_enter(const char* name) {
  PhaseBreadcrumb* sink = g_phase_sink.load(std::memory_order_relaxed);
  if (sink == nullptr) return;
  g_phase_stack.push_back(name);
  write_phase(sink, name);
}

void phase_exit() {
  PhaseBreadcrumb* sink = g_phase_sink.load(std::memory_order_relaxed);
  if (sink == nullptr) return;
  if (!g_phase_stack.empty()) g_phase_stack.pop_back();
  write_phase(sink, g_phase_stack.empty() ? "" : g_phase_stack.back());
}

}  // namespace detail

// ---- Shared trace_event JSON helpers (both configurations: the merged
// writer renders worker chunks even when the local collector is a
// no-op) ----------------------------------------------------------------
namespace {

// ts/dur in microseconds with nanosecond precision, as the trace_event
// format expects.
void write_us(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << std::setw(3) << std::setfill('0') << ns % 1000
     << std::setfill(' ');
}

// One "ph":"X" complete event on an explicit Perfetto process.
void write_complete_event(std::ostream& os, int pid, const TraceEvent& event) {
  os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << event.tid
     << ",\"name\":\"" << json_escape(event.name) << '"';
  if (!event.cat.empty()) {
    os << ",\"cat\":\"" << json_escape(event.cat) << '"';
  }
  os << ",\"ts\":";
  write_us(os, event.ts_ns);
  os << ",\"dur\":";
  write_us(os, event.dur_ns);
  if (!event.args.empty()) {
    os << ",\"args\":{";
    bool first_arg = true;
    for (const auto& [key, value] : event.args) {
      if (!first_arg) os << ',';
      first_arg = false;
      os << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
    }
    os << '}';
  }
  os << '}';
}

void write_metadata(std::ostream& os, int pid, std::uint32_t tid,
                    const char* what, const std::string& name) {
  os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"name\":\"" << what << "\",\"args\":{\"name\":\""
     << json_escape(name) << "\"}}";
}

// Spans are recorded at *end* time; sort to start order. Ties go to the
// longer span so an enclosing parent precedes its children.
void sort_events(std::vector<TraceEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     return a.dur_ns > b.dur_ns;
                   });
}

const char* arg_value(const TraceEvent& event, const char* key) {
  for (const auto& [k, v] : event.args) {
    if (k == key) return v.c_str();
  }
  return nullptr;
}

}  // namespace

#if CALIBSCHED_OBS

namespace {

std::uint64_t next_collector_uid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1);
}

}  // namespace

TraceCollector::TraceCollector() : uid_(next_collector_uid()) {}

TraceCollector::Buffer& TraceCollector::local_buffer() {
  // Same uid-keyed, trivially-destructible per-thread cache as
  // MetricsRegistry::local_shard — see the rationale there.
  struct TlEntry {
    std::uint64_t uid;
    Buffer* buffer;
  };
  constexpr std::size_t kTlCacheSlots = 8;
  thread_local TlEntry entries[kTlCacheSlots] = {};
  thread_local std::size_t used = 0;
  thread_local std::size_t next_evict = 0;
  for (std::size_t i = 0; i < used; ++i) {
    if (entries[i].uid == uid_) return *entries[i].buffer;
  }
  auto buffer = std::make_shared<Buffer>();
  buffer->tid = next_tid_.fetch_add(1);
  Buffer* raw = buffer.get();
  {
    const MutexLock lock(mutex_);
    buffers_.push_back(std::move(buffer));
  }
  std::size_t slot;
  if (used < kTlCacheSlots) {
    slot = used++;
  } else {
    slot = next_evict;
    next_evict = (next_evict + 1) % kTlCacheSlots;
  }
  entries[slot] = TlEntry{uid_, raw};
  return *raw;
}

void TraceCollector::set_thread_name(const std::string& name) {
  Buffer& buffer = local_buffer();
  const MutexLock lock(buffer.mutex);
  buffer.name = name;
}

void TraceCollector::record(TraceEvent event) {
  Buffer& buffer = local_buffer();
  event.tid = buffer.tid;
  const MutexLock lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceCollector::events() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    const MutexLock lock(mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> merged;
  for (const auto& buffer : buffers) {
    const MutexLock lock(buffer->mutex);
    merged.insert(merged.end(), buffer->events.begin(),
                  buffer->events.end());
  }
  sort_events(merged);
  return merged;
}

std::vector<std::pair<std::uint32_t, std::string>>
TraceCollector::thread_names() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    const MutexLock lock(mutex_);
    buffers = buffers_;
  }
  std::vector<std::pair<std::uint32_t, std::string>> names;
  for (const auto& buffer : buffers) {
    const MutexLock lock(buffer->mutex);
    if (!buffer->name.empty()) names.emplace_back(buffer->tid, buffer->name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

TraceChunk TraceCollector::drain() {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    const MutexLock lock(mutex_);
    buffers = buffers_;
  }
  TraceChunk chunk;
  for (const auto& buffer : buffers) {
    const MutexLock lock(buffer->mutex);
    if (!buffer->name.empty()) {
      chunk.thread_names.emplace_back(buffer->tid, buffer->name);
    }
    chunk.dropped += buffer->dropped;
    buffer->dropped = 0;
    chunk.events.insert(chunk.events.end(),
                        std::make_move_iterator(buffer->events.begin()),
                        std::make_move_iterator(buffer->events.end()));
    buffer->events.clear();
  }
  std::sort(chunk.thread_names.begin(), chunk.thread_names.end());
  return chunk;
}

std::uint64_t TraceCollector::dropped() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    const MutexLock lock(mutex_);
    buffers = buffers_;
  }
  std::uint64_t total = 0;
  for (const auto& buffer : buffers) {
    const MutexLock lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void TraceCollector::clear() {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    const MutexLock lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    const MutexLock lock(buffer->mutex);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

void TraceCollector::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ',';
    first = false;
    os << "\n";
  };

  // One thread_name metadata record per track, so Perfetto labels the
  // rows "worker-0", "worker-1", ... instead of bare tids.
  for (const auto& [tid, name] : thread_names()) {
    comma();
    write_metadata(os, 1, tid, "thread_name", name);
  }

  for (const TraceEvent& event : events()) {
    comma();
    write_complete_event(os, 1, event);
  }
  os << "\n]}\n";
}

ScopedSpan::ScopedSpan(const char* name, const char* cat)
    : name_(name),
      cat_(cat),
      start_(now_ns()),
      record_(tracer().enabled()) {
  detail::phase_enter(name);
}

void ScopedSpan::arg(const char* key, std::string value) {
  if (record_) args_.emplace_back(key, std::move(value));
}

ScopedSpan::~ScopedSpan() {
  detail::phase_exit();
  if (!record_) return;
  TraceEvent event;
  event.name = name_;
  event.cat = cat_;
  event.ts_ns = start_;
  event.dur_ns = now_ns() - start_;
  event.args = std::move(args_);
  tracer().record(std::move(event));
}

#endif  // CALIBSCHED_OBS

TraceCollector& tracer() {
  static TraceCollector collector;
  return collector;
}

void write_merged_chrome_trace(std::ostream& os,
                               const std::vector<ProcessTrace>& workers) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ',';
    first = false;
    os << "\n";
  };

  // Process 1 is the calling process (the coordinator); each worker is
  // its own Perfetto process so its threads get their own track group.
  const auto worker_pid = [](const ProcessTrace& w) {
    return 2 + std::max(w.worker, 0);
  };
  comma();
  write_metadata(os, 1, 0, "process_name", "coordinator");
  for (const auto& [tid, name] : tracer().thread_names()) {
    comma();
    write_metadata(os, 1, tid, "thread_name", name);
  }
  for (const ProcessTrace& w : workers) {
    comma();
    std::string label = "worker-" + std::to_string(std::max(w.worker, 0));
    if (w.pid > 0) label += " (pid " + std::to_string(w.pid) + ")";
    if (w.dropped > 0) {
      label += " [" + std::to_string(w.dropped) + " dropped]";
    }
    write_metadata(os, worker_pid(w), 0, "process_name", label);
    for (const auto& [tid, name] : w.thread_names) {
      comma();
      write_metadata(os, worker_pid(w), tid, "thread_name", name);
    }
  }

  // Complete events: coordinator first, then each worker's rebased
  // chunks (concatenated drains arrive unsorted; sort per process).
  std::vector<TraceEvent> local = tracer().events();
  for (const TraceEvent& event : local) {
    comma();
    write_complete_event(os, 1, event);
  }
  // Index worker "cell" spans by (worker, cell) for flow matching. A
  // (worker, cell) pair is unique per run: a retried cell only ever
  // lands on a different worker (its previous holder is dead).
  struct CellSpan {
    int pid = 0;
    std::uint32_t tid = 0;
    std::uint64_t ts_ns = 0;
  };
  std::map<std::pair<int, std::string>, CellSpan> cell_spans;
  for (const ProcessTrace& w : workers) {
    std::vector<TraceEvent> events = w.events;
    sort_events(events);
    for (const TraceEvent& event : events) {
      comma();
      write_complete_event(os, worker_pid(w), event);
      if (event.name == "cell") {
        if (const char* cell = arg_value(event, "cell")) {
          cell_spans.emplace(
              std::make_pair(w.worker, std::string(cell)),
              CellSpan{worker_pid(w), event.tid, event.ts_ns});
        }
      }
    }
  }

  // Flow events: a coordinator "lease" span names the (cell, attempt,
  // worker) it dispatched; if that worker shipped the matching cell
  // span, emit an s/f pair so Perfetto draws the arrow between them.
  int flow_id = 0;
  for (const TraceEvent& event : local) {
    if (event.name != "lease") continue;
    const char* cell = arg_value(event, "cell");
    const char* worker = arg_value(event, "worker");
    const char* attempt = arg_value(event, "attempt");
    if (cell == nullptr || worker == nullptr) continue;
    const auto it =
        cell_spans.find(std::make_pair(std::atoi(worker), std::string(cell)));
    if (it == cell_spans.end()) continue;
    ++flow_id;
    const std::string name = std::string("cell ") + cell + " attempt " +
                             (attempt != nullptr ? attempt : "1");
    comma();
    os << "{\"ph\":\"s\",\"id\":" << flow_id << ",\"pid\":1,\"tid\":"
       << event.tid << ",\"name\":\"" << json_escape(name)
       << "\",\"cat\":\"lease\",\"ts\":";
    write_us(os, event.ts_ns);
    os << "}";
    comma();
    os << "{\"ph\":\"f\",\"bp\":\"e\",\"id\":" << flow_id
       << ",\"pid\":" << it->second.pid << ",\"tid\":" << it->second.tid
       << ",\"name\":\"" << json_escape(name) << "\",\"cat\":\"lease\",\"ts\":";
    write_us(os, it->second.ts_ns);
    os << "}";
  }
  os << "\n]}\n";
}

}  // namespace calib::obs

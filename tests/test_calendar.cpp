// Calendar: coverage queries, run merging, round-robin distribution,
// slot enumeration.
#include <gtest/gtest.h>

#include "core/calendar.hpp"
#include "util/prng.hpp"

namespace calib {
namespace {

TEST(Calendar, CoversExactlyTSteps) {
  Calendar calendar(3, 1);
  calendar.add(0, 10);
  EXPECT_FALSE(calendar.covers(0, 9));
  EXPECT_TRUE(calendar.covers(0, 10));
  EXPECT_TRUE(calendar.covers(0, 11));
  EXPECT_TRUE(calendar.covers(0, 12));
  EXPECT_FALSE(calendar.covers(0, 13));
}

TEST(Calendar, CoversHandlesNegativeStarts) {
  Calendar calendar(4, 1);
  calendar.add(0, -2);
  EXPECT_TRUE(calendar.covers(0, -2));
  EXPECT_TRUE(calendar.covers(0, 1));
  EXPECT_FALSE(calendar.covers(0, 2));
}

TEST(Calendar, OverlappingIntervalsMergeIntoRuns) {
  Calendar calendar(3, 1);
  calendar.add(0, 0);
  calendar.add(0, 2);  // overlaps [0,3)
  calendar.add(0, 10);
  const auto runs = calendar.runs(0);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (Calendar::Run{0, 5}));
  EXPECT_EQ(runs[1], (Calendar::Run{10, 13}));
}

TEST(Calendar, BackToBackIntervalsMerge) {
  Calendar calendar(2, 1);
  calendar.add(0, 0);
  calendar.add(0, 2);
  const auto runs = calendar.runs(0);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (Calendar::Run{0, 4}));
}

TEST(Calendar, CountAcrossMachines) {
  Calendar calendar(2, 3);
  calendar.add(0, 0);
  calendar.add(2, 5);
  calendar.add(2, 1);
  EXPECT_EQ(calendar.count(), 3);
  EXPECT_EQ(calendar.starts(2), (std::vector<Time>{1, 5}));
}

TEST(Calendar, AllStartsSortedWithMultiplicity) {
  Calendar calendar(2, 2);
  calendar.add(0, 4);
  calendar.add(1, 4);
  calendar.add(0, 1);
  EXPECT_EQ(calendar.all_starts(), (std::vector<Time>{1, 4, 4}));
}

TEST(Calendar, RoundRobinCyclesMachines) {
  const Calendar calendar =
      Calendar::round_robin({5, 1, 3, 7}, /*T=*/2, /*machines=*/2);
  // Sorted starts 1,3,5,7 alternate over machines 0,1,0,1.
  EXPECT_EQ(calendar.starts(0), (std::vector<Time>{1, 5}));
  EXPECT_EQ(calendar.starts(1), (std::vector<Time>{3, 7}));
}

TEST(Calendar, NextCalibratedFindsCurrentOrFuture) {
  Calendar calendar(2, 1);
  calendar.add(0, 4);
  EXPECT_EQ(calendar.next_calibrated(0, 0), 4);
  EXPECT_EQ(calendar.next_calibrated(0, 5), 5);
  EXPECT_EQ(calendar.next_calibrated(0, 6), kUnscheduled);
}

TEST(Calendar, SlotsOrderedByTimeThenMachine) {
  Calendar calendar(2, 2);
  calendar.add(1, 0);
  calendar.add(0, 1);
  const auto slots = calendar.slots();
  ASSERT_EQ(slots.size(), 4u);
  EXPECT_EQ(slots[0], (Calendar::Slot{0, 1}));
  EXPECT_EQ(slots[1], (Calendar::Slot{1, 0}));
  EXPECT_EQ(slots[2], (Calendar::Slot{1, 1}));
  EXPECT_EQ(slots[3], (Calendar::Slot{2, 0}));
}

TEST(Calendar, SlotsDeduplicateOverlaps) {
  Calendar calendar(3, 1);
  calendar.add(0, 0);
  calendar.add(0, 1);
  // Union is [0, 4): 4 slots, no duplicates.
  EXPECT_EQ(calendar.slots().size(), 4u);
}

TEST(Calendar, HorizonIsLastIntervalEnd) {
  Calendar calendar(3, 2);
  EXPECT_EQ(calendar.horizon(), 0);
  calendar.add(0, 2);
  calendar.add(1, 7);
  EXPECT_EQ(calendar.horizon(), 10);
}

// Observation 2.1 / [8, Lemma 7]: distributing a global list of
// calibration times round-robin maximizes the number of distinct
// calibrated (machine, step) slots, over any other machine assignment.
TEST(Calendar, RoundRobinMaximizesUsableSlots) {
  Prng prng(777);
  for (int trial = 0; trial < 60; ++trial) {
    const Time T = prng.uniform_int(2, 5);
    const int machines = static_cast<int>(prng.uniform_int(2, 4));
    const int count = static_cast<int>(prng.uniform_int(2, 6));
    std::vector<Time> starts;
    for (int c = 0; c < count; ++c) {
      starts.push_back(prng.uniform_int(0, 8));
    }
    const auto round_robin_slots =
        Calendar::round_robin(starts, T, machines).slots().size();
    // Compare against random machine assignments of the same starts.
    for (int probe = 0; probe < 30; ++probe) {
      Calendar other(T, machines);
      for (const Time start : starts) {
        other.add(static_cast<MachineId>(
                      prng.uniform_int(0, machines - 1)),
                  start);
      }
      EXPECT_GE(round_robin_slots, other.slots().size());
    }
  }
}

TEST(Calendar, EqualityAndToString) {
  Calendar a(2, 1);
  Calendar b(2, 1);
  EXPECT_EQ(a, b);
  a.add(0, 3);
  EXPECT_NE(a, b);
  EXPECT_NE(a.to_string().find("3"), std::string::npos);
}

}  // namespace
}  // namespace calib

file(REMOVE_RECURSE
  "CMakeFiles/calibsched_lp.dir/lp/calib_lp.cpp.o"
  "CMakeFiles/calibsched_lp.dir/lp/calib_lp.cpp.o.d"
  "CMakeFiles/calibsched_lp.dir/lp/dual_check.cpp.o"
  "CMakeFiles/calibsched_lp.dir/lp/dual_check.cpp.o.d"
  "CMakeFiles/calibsched_lp.dir/lp/simplex.cpp.o"
  "CMakeFiles/calibsched_lp.dir/lp/simplex.cpp.o.d"
  "libcalibsched_lp.a"
  "libcalibsched_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibsched_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// OnlineDriver corner cases: the simulation substrate's own contract,
// independent of any particular policy.
#include <gtest/gtest.h>

#include "online/driver.hpp"
#include "online/policy.hpp"

namespace calib {
namespace {

/// Never calibrates — must trip the drain guard.
class StarvingPolicy final : public OnlinePolicy {
 public:
  void decide(DriverHandle&) override {}
  [[nodiscard]] const char* name() const override { return "starving"; }
};

/// Calibrates on every uncalibrated step with waiting jobs.
class PromptPolicy final : public OnlinePolicy {
 public:
  void decide(DriverHandle& handle) override {
    if (handle.waiting_empty()) return;
    for (MachineId m = 0; m < handle.machines(); ++m) {
      if (handle.calibrated(m, handle.now())) return;
    }
    handle.calibrate();
  }
  [[nodiscard]] const char* name() const override { return "prompt"; }
};

TEST(Driver, DrainGuardTripsOnStarvingPolicy) {
  StarvingPolicy policy;
  OnlineDriver driver(/*T=*/3, /*machines=*/1, /*G=*/5, policy);
  driver.add_job(1);
  EXPECT_DEATH(driver.drain(), "failed to drain");
}

TEST(Driver, QueueFlowRespectsOrder) {
  PromptPolicy policy;
  OnlineDriver driver(/*T=*/5, /*machines=*/1, /*G=*/100, policy);
  // Two jobs at t=0 (multi-arrival is legal at the driver level).
  driver.add_job(1);
  driver.add_job(10);
  // FIFO from t+1: 1*(2) + 10*(3) = 32. Heaviest first: 10*2 + 1*3 = 23.
  EXPECT_EQ(driver.queue_flow_from(1, QueueOrder::kFifo), 32);
  EXPECT_EQ(driver.queue_flow_from(1, QueueOrder::kHeaviestFirst), 23);
  EXPECT_EQ(driver.queue_flow_from(1, QueueOrder::kLightestFirst), 32);
}

TEST(Driver, LastIntervalFlowUndefinedBeforeFirstCalibration) {
  PromptPolicy policy;
  OnlineDriver driver(3, 1, 5, policy);
  EXPECT_EQ(driver.last_interval_flow(), -1);
  driver.add_job(2);
  driver.step();  // calibrates and runs the job
  EXPECT_EQ(driver.last_interval_flow(), 2);  // w=2, flow 1 step
}

TEST(Driver, AssignRejectsPastAndUncalibratedSlots) {
  StarvingPolicy policy;
  OnlineDriver driver(3, 1, 5, policy);
  const JobId j = driver.add_job(1);
  EXPECT_DEATH(driver.assign(j, 0, 0), "not calibrated");
  driver.calibrate_round_robin();
  driver.assign(j, 0, 1);  // fine: future calibrated slot
  EXPECT_EQ(driver.start_of(j), 1);
  EXPECT_EQ(driver.machine_of(j), 0);
}

TEST(Driver, AssignRejectsDoubleBooking) {
  StarvingPolicy policy;
  OnlineDriver driver(3, 1, 5, policy);
  const JobId a = driver.add_job(1);
  const JobId b = driver.add_job(1);
  driver.calibrate_round_robin();
  driver.assign(a, 0, 1);
  EXPECT_DEATH(driver.assign(b, 0, 1), "already occupied");
}

TEST(Driver, RoundRobinCyclesThroughMachines) {
  StarvingPolicy policy;
  OnlineDriver driver(3, /*machines=*/3, 5, policy);
  EXPECT_EQ(driver.calibrate_round_robin(), 0);
  EXPECT_EQ(driver.calibrate_round_robin(), 1);
  EXPECT_EQ(driver.calibrate_round_robin(), 2);
  EXPECT_EQ(driver.calibrate_round_robin(), 0);
}

TEST(Driver, RealizedScheduleAlignsSortedTies) {
  // Two same-release jobs, lighter added first: the realized instance
  // sorts weight-descending, and placements must follow the jobs.
  PromptPolicy policy;
  OnlineDriver driver(4, 2, 3, policy);
  const JobId light = driver.add_job(1);
  const JobId heavy = driver.add_job(7);
  driver.drain();
  const Instance instance = driver.realized_instance();
  const Schedule schedule = driver.realized_schedule();
  ASSERT_EQ(schedule.validate(instance), std::nullopt);
  // Index 0 of the instance is the heavy job.
  EXPECT_EQ(instance.job(0).weight, 7);
  EXPECT_EQ(schedule.placement(0).start, driver.start_of(heavy));
  EXPECT_EQ(schedule.placement(1).start, driver.start_of(light));
}

TEST(Driver, OnlineCostMatchesScheduleCost) {
  PromptPolicy policy;
  OnlineDriver driver(4, 1, 9, policy);
  driver.add_job(3);
  driver.step();
  driver.add_job(2);
  driver.drain();
  const Instance instance = driver.realized_instance();
  const Schedule schedule = driver.realized_schedule();
  EXPECT_EQ(driver.online_cost(), schedule.online_cost(instance, 9));
}

TEST(Driver, ArrivedNowResetsAfterStep) {
  PromptPolicy policy;
  OnlineDriver driver(3, 1, 5, policy);
  driver.add_job(1);
  EXPECT_TRUE(driver.arrived_now());
  driver.step();
  EXPECT_FALSE(driver.arrived_now());
}

TEST(Driver, RejectsNonPositiveG) {
  StarvingPolicy policy;
  EXPECT_DEATH(OnlineDriver(3, 1, 0, policy), "G >= 1");
}

}  // namespace
}  // namespace calib

#include "online/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace calib {

void Trace::record_arrival(Time at, JobId job, Weight weight) {
  events_.push_back(TraceEvent{TraceEvent::Kind::kArrival, at, job, weight,
                               0, kUnscheduled});
  ++arrivals_;
}

void Trace::record_calibration(Time at, MachineId machine) {
  events_.push_back(TraceEvent{TraceEvent::Kind::kCalibration, at, -1, 0,
                               machine, kUnscheduled});
  ++calibrations_;
}

void Trace::record_placement(Time at, JobId job, MachineId machine,
                             Time start) {
  events_.push_back(
      TraceEvent{TraceEvent::Kind::kPlacement, at, job, 0, machine, start});
  ++placements_;
}

void Trace::clear() {
  events_.clear();
  arrivals_ = calibrations_ = placements_ = 0;
}

std::vector<int> Trace::queue_length_series(Time from, Time to) const {
  CALIB_CHECK(from <= to);
  // Queue delta per step: +1 on arrival at t, -1 when a job *starts*
  // at its slot time (the job stops waiting when it runs, which for
  // explicit placements can be later than the decision step).
  std::map<Time, int> delta;
  std::map<JobId, Time> release;
  for (const TraceEvent& event : events_) {
    if (event.kind == TraceEvent::Kind::kArrival) {
      delta[event.at] += 1;
      release[event.job] = event.at;
    } else if (event.kind == TraceEvent::Kind::kPlacement) {
      delta[event.start] -= 1;
    }
  }
  std::vector<int> series;
  series.reserve(static_cast<std::size_t>(to - from));
  int running = 0;
  auto it = delta.begin();
  for (Time t = from; t < to; ++t) {
    while (it != delta.end() && it->first <= t) {
      running += it->second;
      ++it;
    }
    series.push_back(running);
  }
  return series;
}

int Trace::peak_queue_length() const {
  Time lo = 0;
  Time hi = 0;
  bool any = false;
  for (const TraceEvent& event : events_) {
    const Time t = std::max(event.at, event.start);
    if (!any) {
      lo = hi = t;
      any = true;
    }
    lo = std::min(lo, event.at);
    hi = std::max(hi, t);
  }
  if (!any) return 0;
  const auto series = queue_length_series(lo, hi + 1);
  return series.empty() ? 0
                        : *std::max_element(series.begin(), series.end());
}

Summary Trace::waiting_times() const {
  std::map<JobId, Time> release;
  Summary waits;
  for (const TraceEvent& event : events_) {
    if (event.kind == TraceEvent::Kind::kArrival) {
      release[event.job] = event.at;
    } else if (event.kind == TraceEvent::Kind::kPlacement) {
      const auto it = release.find(event.job);
      CALIB_CHECK_MSG(it != release.end(),
                      "placement without arrival for job " << event.job);
      waits.add(static_cast<double>(event.start - it->second));
    }
  }
  return waits;
}

double Trace::utilization(const Calendar& calendar) const {
  const auto slots = calendar.slots().size();
  if (slots == 0) return 0.0;
  return static_cast<double>(placements_) / static_cast<double>(slots);
}

std::string Trace::summary(const Calendar& calendar) const {
  std::ostringstream os;
  os << "trace: " << arrivals_ << " arrivals, " << calibrations_
     << " calibrations, " << placements_ << " placements\n";
  if (placements_ > 0) {
    const Summary waits = waiting_times();
    os << "waiting steps: mean " << waits.mean() << ", median "
       << waits.median() << ", max " << waits.max() << '\n';
  }
  os << "peak queue: " << peak_queue_length() << '\n';
  os << "slot utilization: " << utilization(calendar) << '\n';
  return os.str();
}

}  // namespace calib

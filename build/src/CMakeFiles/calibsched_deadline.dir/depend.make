# Empty dependencies file for calibsched_deadline.
# This may be replaced when dependencies are built.

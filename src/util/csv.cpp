#include "util/csv.hpp"

#include <stdexcept>

namespace calib {
namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& field) {
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << (needs_quoting(cells[i]) ? quote(cells[i]) : cells[i]);
  }
  os_ << '\n';
}

std::vector<std::vector<std::string>> read_csv(std::istream& is) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_started = false;
  char ch = 0;
  while (is.get(ch)) {
    row_started = true;
    if (in_quotes) {
      if (ch == '"') {
        if (is.peek() == '"') {
          is.get(ch);
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      row.push_back(std::move(field));
      field.clear();
      rows.push_back(std::move(row));
      row.clear();
      row_started = false;
    } else if (ch != '\r') {
      field += ch;
    }
  }
  if (in_quotes) throw std::runtime_error("csv: unterminated quoted field");
  if (row_started) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace calib

// Minimizing the number of calibrations subject to deadlines — the
// SPAA'13 problem (single machine, unit jobs).
//
// Two solvers:
//   * lazy_binning — the push-intervals-late greedy in the spirit of
//     Bender et al.'s optimal "lazy binning": whenever EDF misses a
//     deadline, open a new interval as late as possible while still
//     rescuing the earliest miss. Optimality is probed empirically
//     against the exact solver in tests and bench E10.
//   * min_calibrations_exact — iterative-deepening search over every
//     integer start in [min release + 1 - T, max deadline), with EDF as
//     the feasibility oracle. Exponential; intended for small instances
//     (it is the ground truth lazy binning is validated against).
//     Note: the tempting push-late restriction to starts
//     { d_j - q : q in [1, T] } is *incomplete* — contiguous interval
//     blocks can lock against each other, shifting starts by whole
//     multiples of T (e.g. jobs [0,4), [1,4), [2,4) with T = 2 need
//     intervals at 1 and 3, and 1 is not d - q for q <= 2).
#pragma once

#include <optional>

#include "core/calendar.hpp"
#include "deadline/deadline_instance.hpp"

namespace calib {

/// Greedy lazy binning. Returns the calendar (count() is the number of
/// calibrations), or nullopt if some window is overfull (more jobs than
/// slots fit between common release and deadline) so no calendar works.
std::optional<Calendar> lazy_binning(const DeadlineInstance& instance);

/// Exact minimum number of calibrations; nullopt when infeasible.
/// `max_calibrations` caps the search depth (default: one interval per
/// job always suffices when feasible).
std::optional<Calendar> min_calibrations_exact(
    const DeadlineInstance& instance, int max_calibrations = -1);

}  // namespace calib

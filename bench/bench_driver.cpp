// E17 — driver microbenchmark: decision-round throughput vs queue depth.
//
// The incremental driver's claim is that one decision round — queue
// flows, prefix weights, best-job selection — costs O(log n) against
// maintained state (the seed driver re-sorted and re-scanned the
// waiting set per query; it is gone, removed after test_driver_equiv
// proved the rewrite byte-identical). This bench measures the claim
// directly: steps/second and per-decision latency while `depth` jobs
// wait, at depths up to 10^5. The committed expectation (gated by
// scripts/bench_compare.py --min) is near-flat scaling: throughput at
// depth 10^5 stays within a small factor of throughput at depth 10^2,
// which an O(n log n) round cannot do.
//
// Metrics sidecar (CALIBSCHED_METRICS=<dir>): gauges
//   driver.steps_per_sec.incremental.d<depth>
//   driver.depth_scaling_speedup_x100     (sps(1e5) / sps(1e2) * 100)
// plus the driver's own online.* counters.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "online/alg4_weighted_multi.hpp"
#include "online/driver.hpp"
#include "util/timer.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

const benchutil::MetricsSidecar sidecar("bench_driver");  // NOLINT

/// A policy whose decide() is one full query round (the three queue
/// flows, the aggregate weight, the front job) but which never
/// calibrates or assigns — so the queue depth stays constant and the
/// bench isolates query cost at a fixed n.
class QueryRoundPolicy final : public OnlinePolicy {
 public:
  void decide(DriverHandle& handle) override {
    if (handle.waiting_empty()) return;
    Cost probe = handle.queue_flow_from(handle.now() + 1, QueueOrder::kFifo);
    probe += handle.queue_flow_from(handle.now() + 1,
                                    QueueOrder::kHeaviestFirst);
    probe += handle.queue_flow_from(handle.now() + 1,
                                    QueueOrder::kLightestFirst);
    probe += handle.waiting_weight();
    probe += handle.front(QueueOrder::kHeaviestFirst);
    benchmark::DoNotOptimize(probe);
  }
  [[nodiscard]] const char* name() const override { return "query-round"; }
};

/// Driver with `depth` jobs waiting at t=0 and no calendar. Weights
/// cycle so the by-weight structures see real ordering work.
std::unique_ptr<OnlineDriver> loaded_driver(OnlinePolicy& policy, int depth) {
  auto driver = std::make_unique<OnlineDriver>(/*T=*/8, /*machines=*/4,
                                               /*G=*/1 << 30, policy);
  for (int j = 0; j < depth; ++j) {
    driver->add_job(1 + (j * 7919) % 97);
  }
  return driver;
}

void BM_DecisionStep(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  QueryRoundPolicy policy;
  const auto driver = loaded_driver(policy, depth);
  for (auto _ : state) {
    driver->step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["depth"] = depth;
}

BENCHMARK(BM_DecisionStep)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

/// End-to-end run_online throughput on a bursty multi-machine workload:
/// exercises arrivals, calibrations, assignment, and the event-driven
/// advance together (items = jobs placed).
void BM_RunOnline(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  Prng prng(20260808);
  BurstyConfig config;
  config.burst_probability = 0.08;
  config.burst_length = 8;
  config.steps = std::max(64, jobs / 2);
  const Instance instance =
      bursty_instance(config, /*T=*/6, /*machines=*/3, prng);
  for (auto _ : state) {
    Alg4WeightedMulti policy;
    const Schedule schedule = run_online(instance, /*G=*/24, policy);
    benchmark::DoNotOptimize(schedule.online_cost(instance, 24));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(instance.size()));
  state.counters["jobs"] = static_cast<double>(instance.size());
}

BENCHMARK(BM_RunOnline)
    ->Arg(256)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

/// Measures steps/sec at one depth with a steady-state loaded driver
/// (outside google-benchmark so the number lands in the metrics
/// registry for the bench_compare gate).
double steps_per_second(int depth) {
  QueryRoundPolicy policy;
  const auto driver = loaded_driver(policy, depth);
  // Warm up one step, then time enough rounds for a stable estimate:
  // cheap rounds get many iterations, expensive ones fewer.
  driver->step();
  const int rounds = std::max(8, 2'000'000 / (depth + 1));
  const Timer timer;
  for (int i = 0; i < rounds; ++i) driver->step();
  const double seconds = timer.millis() / 1000.0;
  return static_cast<double>(rounds) / std::max(seconds, 1e-9);
}

/// Computes the committed perf trajectory at exit: steps/sec per depth
/// and the depth-scaling ratio (x100, as an integer gauge) that
/// scripts/bench_compare.py --min gates on. A throughput at depth 1e5
/// that holds >= 5% of the depth-1e2 throughput is only reachable with
/// O(log n) rounds; the seed driver's O(n log n) rounds sat near 0.1%.
struct SpeedupReporter {
  ~SpeedupReporter() {
    std::cout << "\nE17 - decision-round throughput (steps/sec) by queue "
                 "depth:\n";
    double sps_100 = 0.0;
    double sps_100000 = 0.0;
    for (const int depth : {100, 1000, 10000, 100000}) {
      const double inc = steps_per_second(depth);
      if (depth == 100) sps_100 = inc;
      if (depth == 100000) sps_100000 = inc;
      const std::string suffix = ".d" + std::to_string(depth);
      obs::metrics()
          .gauge("driver.steps_per_sec.incremental" + suffix)
          .set(static_cast<std::int64_t>(inc));
      std::cout << "  depth " << depth << ": incremental "
                << static_cast<std::int64_t>(inc) << "\n";
    }
    const double scaling = sps_100000 / std::max(sps_100, 1e-9) * 100.0;
    obs::metrics()
        .gauge("driver.depth_scaling_speedup_x100")
        .set(static_cast<std::int64_t>(scaling));
    std::cout << "  depth-scaling (d1e5 / d1e2): " << scaling / 100.0
              << "x\n";
  }
};
const SpeedupReporter reporter;  // NOLINT(cert-err58-cpp)

}  // namespace

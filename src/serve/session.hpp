// One tenant's isolated scheduling session.
//
// A TenantSession wraps exactly the state a single-tenant online run
// would have — an OnlineDriver, its policy, a Trace, a Budget — so the
// decision stream a tenant sees from the daemon is byte-identical to
// what it would get running the CLI alone on the same job sequence.
// That isolation is the daemon's core correctness property, and the
// chaos tests assert it with one tenant flooding and another stalled.
//
// Sessions are driven from thread-pool workers (one decision at a time
// per session — the daemon serializes dispatch) while the daemon's
// event loop reads admission state concurrently, so all mutable state
// is behind a per-session mutex; the cheap flags the watchdog polls
// (state, busy-since) are atomics.
//
// The clock model: a submitted job's release fast-forwards the driver
// — advance_to across empty-queue spans, step() otherwise — exactly
// like run_online's event-driven advance. The decision returned for a
// submit is the span of trace events that fast-forward revealed. Final
// placements for late jobs materialize at drain (kGoodbye or SIGTERM),
// where the realized schedule is checked by the independent oracle
// (core/validate) before the final kTenantStats goes out.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "online/driver.hpp"
#include "online/policy.hpp"
#include "online/trace.hpp"
#include "serve/protocol.hpp"
#include "util/budget.hpp"
#include "util/sync.hpp"

namespace calib::serve {

/// Per-tenant admission budgets, enforced by the daemon at submit time.
struct SessionLimits {
  std::size_t max_pending = 64;   ///< queued-but-undecided submits
  double rate_per_sec = 0.0;      ///< token bucket on submits (0 = off)
  std::uint64_t step_budget = 0;  ///< session-lifetime driver steps (0 = off)
  double decision_deadline_ms = 0.0;  ///< watchdog demotion bound (0 = off)
};

/// Structured rejection thrown by session operations; the daemon turns
/// it into a kError frame with this code/detail.
class ServeError : public std::runtime_error {
 public:
  ServeError(std::string code, const std::string& detail,
             std::int64_t retry_after_ms = 0)
      : std::runtime_error(detail),
        code_(std::move(code)),
        retry_after_ms_(retry_after_ms) {}

  [[nodiscard]] const std::string& code() const { return code_; }
  [[nodiscard]] std::int64_t retry_after_ms() const { return retry_after_ms_; }

 private:
  std::string code_;
  std::int64_t retry_after_ms_;
};

class TenantSession {
 public:
  enum class State { kActive, kDegraded, kDrained };

  /// Throws std::runtime_error on an unknown policy or bad dimensions.
  TenantSession(const HelloRequest& hello, const SessionLimits& limits);

  [[nodiscard]] const std::string& tenant() const { return hello_.tenant; }
  [[nodiscard]] const HelloRequest& hello() const { return hello_; }

  [[nodiscard]] State state() const {
    return state_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const char* state_name() const;

  /// Demote to degraded (watchdog / budget breach). Sticky: a degraded
  /// session answers every later submit with kError{DEGRADED} — the
  /// tenant's stream is no longer byte-faithful, so pretending
  /// otherwise would be worse than refusing.
  void demote() { state_.store(State::kDegraded, std::memory_order_release); }

  /// Process one accepted job release. Thread-pool context; the daemon
  /// guarantees one in-flight submit per session. Throws ServeError on
  /// a semantic rejection (non-monotone release, release >= T,
  /// exhausted step budget) and never on policy internals — those are
  /// wrapped into BUDGET_EXCEEDED/DEGRADED demotions by the caller.
  [[nodiscard]] Decision submit(const SubmitJob& job);

  /// Re-apply one journaled job during --resume: the exact submit path
  /// (same driver calls, same budget charges) with the decision
  /// discarded, so a restored session continues byte-identically.
  void replay(const SubmitJob& job);

  /// Drain the driver (place everything revealed), validate the
  /// realized schedule with the independent oracle, and return final
  /// stats. Idempotent; after it the session is kDrained.
  [[nodiscard]] TenantStats drain();

  /// Current session summary (no drain, no validation).
  [[nodiscard]] TenantStats stats();

  // -- admission bookkeeping, owned by the daemon's event loop --------

  /// Pending (dispatched-or-queued) submit count, maintained by the
  /// daemon under its own lock; stored here so sheds can be tested per
  /// session.
  std::atomic<std::size_t> pending{0};

  /// Wall-clock ms stamp when the in-flight decision started; < 0 when
  /// idle. The watchdog compares it against decision_deadline_ms.
  std::atomic<double> busy_since_ms{-1.0};

  [[nodiscard]] const SessionLimits& limits() const { return limits_; }

  /// Token-bucket admission for one submit at wall-clock `now_ms`;
  /// false = rate-limited (shed with RETRY_AFTER).
  [[nodiscard]] bool admit_rate(double now_ms);

 private:
  [[nodiscard]] Decision submit_locked(const SubmitJob& job)
      CALIB_REQUIRES(mutex_);

  HelloRequest hello_;
  SessionLimits limits_;
  std::atomic<State> state_{State::kActive};

  Mutex mutex_;
  std::unique_ptr<OnlinePolicy> policy_ CALIB_GUARDED_BY(mutex_);
  Trace trace_ CALIB_GUARDED_BY(mutex_);
  Budget budget_ CALIB_GUARDED_BY(mutex_);
  std::unique_ptr<OnlineDriver> driver_ CALIB_GUARDED_BY(mutex_);
  std::size_t trace_watermark_ CALIB_GUARDED_BY(mutex_) = 0;
  std::uint64_t seq_ CALIB_GUARDED_BY(mutex_) = 0;
  Time last_release_ CALIB_GUARDED_BY(mutex_) = 0;
  std::string drain_violation_ CALIB_GUARDED_BY(mutex_);
  bool drained_ CALIB_GUARDED_BY(mutex_) = false;
  // Token bucket (event-loop thread only, but kept under mutex_ for
  // simplicity — admission is not a hot path).
  double tokens_ CALIB_GUARDED_BY(mutex_) = 0.0;
  double last_refill_ms_ CALIB_GUARDED_BY(mutex_) = -1.0;
};

}  // namespace calib::serve

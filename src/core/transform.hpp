// Lemma 3.4: any schedule can be converted to one that runs jobs in
// release-time order, never increasing any job's start time and at most
// doubling the number of calibrations. Single machine, distinct release
// times (the paper's P=1 normalization).
#pragma once

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace calib {

/// Apply the Lemma 3.4 transformation. Requires: P == 1, distinct
/// release times, `schedule` valid for `instance`. The result is valid,
/// schedules jobs in release order, has weighted flow <= the input's,
/// and uses at most 2x the input's calibrations.
Schedule to_release_order(const Instance& instance, const Schedule& schedule);

/// True if jobs run in release-time order (start times ascending with
/// release times), across all machines by start time.
bool is_release_ordered(const Instance& instance, const Schedule& schedule);

}  // namespace calib

// Multiple calibration types (extension E12, Angel et al. FAW'17):
// typed calendar coverage, greedy assignment, the online heuristic's
// validity and adaptivity, and the exhaustive optimum.
#include <gtest/gtest.h>

#include "multitype/multitype_sched.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

// A quick touch-up that is cheap in absolute terms but pricey per slot,
// vs a full recalibration that amortizes over long queues. (With a
// too-cheap quick type the quick trigger fires before a queue can ever
// build, and the myopic online heuristic would never choose full.)
const std::vector<CalibrationType> kQuickAndFull = {
    {/*length=*/2, /*cost=*/6},   // quick touch-up
    {/*length=*/8, /*cost=*/12},  // full recalibration
};

TEST(TypedCalendar, CoverageAndCost) {
  TypedCalendar calendar(kQuickAndFull);
  calendar.add(0, 0);   // quick: [0, 2)
  calendar.add(10, 1);  // full: [10, 18)
  EXPECT_TRUE(calendar.covers(0));
  EXPECT_TRUE(calendar.covers(1));
  EXPECT_FALSE(calendar.covers(2));
  EXPECT_TRUE(calendar.covers(17));
  EXPECT_FALSE(calendar.covers(18));
  EXPECT_EQ(calendar.calibration_cost(), 18);
  EXPECT_EQ(calendar.count(), 2);
  EXPECT_EQ(calendar.covered_slots().size(), 10u);
}

TEST(TypedCalendar, OverlapsMergeInCoveredSlots) {
  TypedCalendar calendar(kQuickAndFull);
  calendar.add(0, 1);  // [0, 8)
  calendar.add(4, 0);  // [4, 6) inside
  EXPECT_EQ(calendar.covered_slots().size(), 8u);
  EXPECT_EQ(calendar.calibration_cost(), 18);  // both still paid
}

TEST(TypedCalendar, RejectsUnknownType) {
  TypedCalendar calendar(kQuickAndFull);
  EXPECT_DEATH(calendar.add(0, 2), "type");
}

TEST(Multitype, AssignIsFifoOverCoveredSlots) {
  const Instance instance({Job{0, 1}, Job{1, 1}}, 2, 1);
  TypedCalendar calendar(kQuickAndFull);
  calendar.add(1, 0);  // [1, 3)
  const MultitypeSchedule schedule = assign_multitype(instance, calendar);
  EXPECT_EQ(schedule.start[0], 1);
  EXPECT_EQ(schedule.start[1], 2);
  EXPECT_EQ(schedule.validate(instance), std::nullopt);
  EXPECT_EQ(schedule.flow(instance), 2 + 2);
}

TEST(Multitype, OnlineProducesValidSchedules) {
  Prng prng(1801);
  for (int trial = 0; trial < 25; ++trial) {
    const Instance instance = sparse_uniform_instance(
        8, 24, 2, 1, WeightModel::kUnit, 1, prng);
    const MultitypeSchedule schedule =
        online_multitype(instance, kQuickAndFull);
    EXPECT_EQ(schedule.validate(instance), std::nullopt)
        << instance.to_string();
  }
}

TEST(Multitype, OnlinePrefersFullCalibrationForLongQueues) {
  // Six jobs back to back: one full (8-slot) calibration serves them
  // all; six quick ones would cost 18. The heuristic must choose full.
  std::vector<Job> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back(Job{i, 1});
  const Instance instance(jobs, 2, 1);
  const MultitypeSchedule schedule =
      online_multitype(instance, kQuickAndFull);
  ASSERT_EQ(schedule.validate(instance), std::nullopt);
  bool used_full = false;
  for (const auto& entry : schedule.calendar.entries()) {
    if (entry.type == 1) used_full = true;
  }
  EXPECT_TRUE(used_full);
}

TEST(Multitype, OnlinePrefersQuickForLoneJobs) {
  const Instance instance({Job{0, 1}}, 2, 1);
  const MultitypeSchedule schedule =
      online_multitype(instance, kQuickAndFull);
  ASSERT_EQ(schedule.validate(instance), std::nullopt);
  ASSERT_EQ(schedule.calendar.count(), 1);
  EXPECT_EQ(schedule.calendar.entries()[0].type, 0);
}

TEST(Multitype, OptimalSingleJobBuysCheapestType) {
  const Instance instance({Job{3, 1}}, 2, 1);
  const MultitypeSchedule best =
      optimal_multitype(instance, kQuickAndFull);
  ASSERT_EQ(best.validate(instance), std::nullopt);
  EXPECT_EQ(best.calendar.count(), 1);
  EXPECT_EQ(best.calendar.entries()[0].type, 0);
  EXPECT_EQ(best.total_cost(instance), 6 + 1);
}

TEST(Multitype, OptimalMixesTypesWhenItPays) {
  // A dense six-job batch (full calibration amortizes: 12 + flow 6 vs
  // three quicks at 18 + flow 6) plus one distant straggler (quick:
  // 6 + 1 vs full: 12 + 1).
  const Instance instance({Job{0, 1}, Job{1, 1}, Job{2, 1}, Job{3, 1},
                           Job{4, 1}, Job{5, 1}, Job{20, 1}},
                          2, 1);
  const MultitypeSchedule best =
      optimal_multitype(instance, kQuickAndFull);
  ASSERT_EQ(best.validate(instance), std::nullopt);
  std::set<int> used;
  for (const auto& entry : best.calendar.entries()) used.insert(entry.type);
  EXPECT_EQ(used.size(), 2u) << best.calendar.to_string();
}

TEST(Multitype, OnlineWithinSmallFactorOfOptimal) {
  Prng prng(1802);
  double worst = 0.0;
  for (int trial = 0; trial < 15; ++trial) {
    const Instance instance = sparse_uniform_instance(
        5, 10, 2, 1, WeightModel::kUnit, 1, prng);
    const MultitypeSchedule online =
        online_multitype(instance, kQuickAndFull);
    const MultitypeSchedule best =
        optimal_multitype(instance, kQuickAndFull);
    const double ratio =
        static_cast<double>(online.total_cost(instance)) /
        static_cast<double>(best.total_cost(instance));
    worst = std::max(worst, ratio);
    // Loose regression bound; E12 reports the real distribution.
    EXPECT_LE(ratio, 6.0) << instance.to_string();
  }
  EXPECT_GE(worst, 1.0);
}

TEST(Multitype, SingleTypeReducesToClassicModel) {
  // With one type the typed model is the Section 3 model; the optimal
  // multitype cost must match the classic brute force.
  const Instance instance({Job{0, 1}, Job{4, 1}, Job{9, 1}}, 3, 1);
  const std::vector<CalibrationType> single = {{3, 5}};
  const MultitypeSchedule best = optimal_multitype(instance, single);
  // Best: intervals [2,5) (jobs 0 and 4, flows 3 + 1) and [9,12)
  // (job 9, flow 1): 2 * 5 + 5 = 15. Matches the classic model's
  // offline optimum for (T=3, G=5).
  EXPECT_EQ(best.total_cost(instance), 15);
}

}  // namespace
}  // namespace calib

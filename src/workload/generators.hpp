// Workload families for the benchmark harness (DESIGN.md substitution
// #4: the paper ran no experiments, so synthetic families sweep the
// regimes its analysis distinguishes).
//
// All generators are deterministic functions of their Prng; jobs respect
// the Section 2 normalization (at most P per release time, enforced via
// Instance::normalized()).
#pragma once

#include <cstdint>
#include <string>

#include "core/instance.hpp"
#include "deadline/deadline_instance.hpp"
#include "util/prng.hpp"

namespace calib {

/// Weight models for the weighted experiments.
enum class WeightModel {
  kUnit,     ///< w = 1 (Algorithms 1 and 3)
  kUniform,  ///< uniform on [1, w_max]
  kZipf,     ///< Zipf(1.1) on [1, w_max] — heavy tail
  kBimodal,  ///< 1 with prob 0.9, w_max otherwise (rare urgent jobs)
};

/// "unit" / "uniform" / "zipf" / "bimodal" — the flag spelling every
/// front end accepts. parse throws std::runtime_error on unknown names.
[[nodiscard]] const char* weight_model_name(WeightModel model);
[[nodiscard]] WeightModel parse_weight_model(const std::string& name);

struct PoissonConfig {
  double rate = 0.3;     ///< expected arrivals per step
  Time steps = 200;      ///< arrival window [0, steps)
  WeightModel weights = WeightModel::kUnit;
  Weight w_max = 10;
};

/// Memoryless arrivals — the "steady fab" workload.
Instance poisson_instance(const PoissonConfig& config, Time T, int machines,
                          Prng& prng);

struct BurstyConfig {
  double burst_probability = 0.05;  ///< chance a burst starts per step
  Time burst_length = 8;            ///< arrivals per step while bursting
  double burst_rate = 1.0;          ///< arrival prob per step in a burst
  Time steps = 200;
  WeightModel weights = WeightModel::kUnit;
  Weight w_max = 10;
};

/// On/off arrivals — stresses the G/T count trigger (Case 2 of the
/// Theorem 3.3/3.10 analyses).
Instance bursty_instance(const BurstyConfig& config, Time T, int machines,
                         Prng& prng);

/// `count` jobs with distinct releases drawn uniformly from a window of
/// `span` steps — the random small instances the solver cross-checks use.
Instance sparse_uniform_instance(int count, Time span, Time T, int machines,
                                 WeightModel weights, Weight w_max,
                                 Prng& prng);

/// The Lemma 3.1 adversarial family, branch 2 shape: one job per step
/// for `T` steps (what an algorithm that never calibrates early pays
/// for). Deterministic.
Instance trickle_instance(Time T, int machines);

/// Deterministic regression instance used by docs and tests: 6 jobs,
/// two bursts, mixed weights, T = 4.
Instance regression_instance();

/// Deadline-world workload (the SPAA'13 baseline model, E10): `count`
/// jobs with releases uniform in [0, span) and window lengths uniform
/// in [1, window_max].
DeadlineInstance deadline_uniform_instance(int count, Time span, Time T,
                                           Time window_max, Prng& prng);

Weight sample_weight(WeightModel model, Weight w_max, Prng& prng);

}  // namespace calib

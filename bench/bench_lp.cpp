// E7 — Figures 1 and 2: the LP relaxation and its dual as executable
// lower bounds.
//
// For each instance: LP optimum (simplex on the Figure 1 primal), the
// static Theorem 3.10 dual certificate (Figure 2), the exact OPT, and
// Algorithm 1/3's online cost. Expected shape:
//   dual certificate <= LP optimum <= OPT <= online cost,
// with the LP recovering a large fraction of OPT (it pays flow exactly
// but calibrations fractionally).
#include <benchmark/benchmark.h>

#include <iostream>
#include <mutex>
#include <tuple>

#include "bench_common.hpp"
#include "lp/calib_lp.hpp"
#include "offline/brute_force.hpp"
#include "lp/dual_check.hpp"
#include "online/alg1_unweighted.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

void BM_LpSolve(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  Prng prng(static_cast<std::uint64_t>(jobs));
  const Instance instance = sparse_uniform_instance(
      jobs, jobs * 2, 3, 1, WeightModel::kUnit, 1, prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp_lower_bound(instance, 6));
  }
  state.counters["lp_vars"] =
      static_cast<double>(CalibrationLp(instance, 6).problem().num_vars);
}

BENCHMARK(BM_LpSolve)->Arg(3)->Arg(5)->Arg(7)->Unit(benchmark::kMillisecond);

struct TablePrinter {
  ~TablePrinter() {
    std::cout << "\nE7 / Figures 1+2 - certified lower-bound chain "
                 "dual <= LP <= OPT <= online (8 seeds per row):\n";
    Table table({"n", "P", "G", "dual/OPT", "LP/OPT", "online/OPT",
                 "chain violations"});
    for (const auto& [jobs, machines, G] :
         std::vector<std::tuple<int, int, Cost>>{
             {4, 1, 4}, {5, 1, 8}, {6, 1, 6}, {4, 2, 4}, {6, 2, 8}}) {
      Summary dual_frac;
      Summary lp_frac;
      Summary online_frac;
      int violations = 0;
      std::mutex mutex;
      global_pool().parallel_for(8, [&, jobs, machines, G](
                                        std::size_t seed) {
        Prng prng(seed * 52361u + static_cast<std::uint64_t>(jobs * 3 +
                                                             machines));
        const Instance instance = sparse_uniform_instance(
            jobs, jobs * 2, 3, machines, WeightModel::kUnit, 1, prng);
        const CalibrationLp lp(instance, G);
        const DualChecker checker(lp);
        const DualPoint certificate = checker.static_point();
        const double dual_value =
            checker.max_violation(certificate) < 1e-9
                ? certificate.objective()
                : 0.0;
        const double lp_value = lp.solve().value;
        // Exact OPT: exhaustive for multi-machine, DP otherwise.
        double opt = 0.0;
        if (machines == 1) {
          opt = static_cast<double>(
              offline_online_optimum(instance, G).best_cost);
        } else {
          const OfflineSolution solution = brute_force_online_objective(
              instance, G, StartCandidates::kExhaustive);
          opt = static_cast<double>(
              solution.schedule->online_cost(instance, G));
        }
        Alg1Unweighted alg1;
        double online = opt;
        if (machines == 1) {
          online =
              static_cast<double>(online_objective(instance, G, alg1));
        }
        const std::scoped_lock lock(mutex);
        dual_frac.add(dual_value / opt);
        lp_frac.add(lp_value / opt);
        online_frac.add(online / opt);
        if (dual_value > lp_value + 1e-6 || lp_value > opt + 1e-6 ||
            opt > online + 1e-6) {
          ++violations;
        }
      });
      table.row()
          .add(jobs)
          .add(machines)
          .add(G)
          .add(dual_frac.mean(), 3)
          .add(lp_frac.mean(), 3)
          .add(online_frac.mean(), 3)
          .add(violations);
    }
    table.print(std::cout);
    std::cout << "(chain violations must be 0; dual/LP fractions < 1 show "
                 "how much the relaxations give up.)\n";
  }
};
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

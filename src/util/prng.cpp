#include "util/prng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace calib {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Prng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Prng::result_type Prng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Prng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CALIB_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto l = static_cast<std::uint64_t>(m);
  if (l < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * span;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Prng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Prng::bernoulli(double p) { return uniform01() < p; }

std::int64_t Prng::poisson(double lambda) {
  CALIB_CHECK(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double prod = uniform01();
    std::int64_t k = 0;
    while (prod > limit) {
      ++k;
      prod *= uniform01();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for
  // workload generation at high rates.
  const double u1 = uniform01();
  const double u2 = uniform01();
  const double z =
      std::sqrt(-2.0 * std::log(1.0 - u1)) * std::cos(6.283185307179586 * u2);
  const double sample = lambda + std::sqrt(lambda) * z + 0.5;
  return sample < 0.0 ? 0 : static_cast<std::int64_t>(sample);
}

std::int64_t Prng::zipf(std::int64_t n, double s) {
  CALIB_CHECK(n >= 1);
  CALIB_CHECK(s > 0.0);
  // Cumulative inverse transform; O(n) per draw but n is small in all of
  // our weight models.
  double norm = 0.0;
  for (std::int64_t k = 1; k <= n; ++k)
    norm += 1.0 / std::pow(static_cast<double>(k), s);
  double target = uniform01() * norm;
  for (std::int64_t k = 1; k <= n; ++k) {
    target -= 1.0 / std::pow(static_cast<double>(k), s);
    if (target <= 0.0) return k;
  }
  return n;
}

Prng Prng::split(std::uint64_t label) {
  std::uint64_t mix = (*this)() ^ (label * 0x9e3779b97f4a7c15ULL);
  return Prng(splitmix64(mix));
}

}  // namespace calib

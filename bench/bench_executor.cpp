// E18 — sharded-executor scaling and failure-handling accounting.
//
// Timed side (BM_ShardedSweep): end-to-end sweep throughput across
// worker-process counts, against the same grid solved in-process — the
// executor's value is crash containment, so the interesting number is
// how little the coordinator/lease protocol costs when nothing fails.
//
// Deterministic side (the exit reporter, what the bench-gate pins):
// the executor's lease/retry/loss counters after one clean sharded run
// and one run with an injected worker kill. Worker scheduling is free
// to vary; the *accounting* may not — every cell is leased exactly
// once per attempt, a killed worker costs exactly one retry, and the
// workers' merged metrics account for every cell.
//
// Metrics sidecar (CALIBSCHED_METRICS=<dir>): counters executor.leases,
// executor.results, executor.retries, executor.workers_lost,
// executor.corrupt_frames (exact, gated at tolerance 0.05), gauge
// executor.worker_cells_ok (merged from the workers' snapshots), plus
// executor.cells_per_sec.w<N> throughput gauges (skipped by the gate's
// nondeterminism patterns, like every *_per_sec reading). The clean
// run also writes its per-worker metrics timeline next to the sidecar
// (<dir>/bench_executor.timeline.jsonl) — heartbeat-resolution deltas
// for `calibsched_cli stats --timeline`, not gated (timing-shaped).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "harness/sweep.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace {

using namespace calib;

const benchutil::MetricsSidecar sidecar("bench_executor");  // NOLINT

harness::SweepGrid bench_grid() {
  harness::WorkloadSpec spec;
  spec.kind = "poisson";
  spec.rate = 0.35;
  spec.steps = benchutil::small_mode() ? 24 : 64;
  spec.T = 4;
  harness::SweepGrid grid;
  grid.workloads = {spec};
  grid.solvers = {"alg1", "alg2"};
  grid.G_values = {6, 18};
  grid.seeds = benchutil::small_mode() ? 4 : 16;
  grid.base_seed = 11;
  grid.compare_to_opt = true;
  grid.threads = 1;
  return grid;
}

harness::SweepOptions executor_options(int workers) {
  harness::SweepOptions options;
  options.workers = workers;
  options.heartbeat_interval_ms = 25.0;
  options.retry_backoff_ms = 2.0;
  options.retry_backoff_cap_ms = 20.0;
  return options;
}

void BM_ShardedSweep(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  harness::SweepEngine engine(bench_grid());
  const std::size_t cells = engine.grid().cells();
  for (auto _ : state) {
    const harness::SweepReport report =
        workers == 0 ? engine.run() : engine.run(executor_options(workers));
    benchmark::DoNotOptimize(report.rows.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cells));
  state.counters["workers"] = workers;
}

BENCHMARK(BM_ShardedSweep)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// The deterministic accounting table, computed at exit so the numbers
/// land in the sidecar the bench-gate diffs (the BM_* timing loops are
/// filtered out in gate runs and never touch these runs' counters).
struct AccountingReporter {
  ~AccountingReporter() {
    std::cout << "\nE18 - sharded executor accounting "
              << (benchutil::small_mode() ? "(small mode)" : "") << ":\n";
    std::uint64_t worker_cells_ok = 0;

    // One clean run: leases == results == cells, nothing lost.
    {
      harness::SweepEngine engine(bench_grid());
      const Timer timer;
      const harness::SweepReport report = engine.run(executor_options(2));
      const double seconds = timer.millis() / 1000.0;
      const auto cells = static_cast<double>(report.rows.size());
      obs::metrics()
          .gauge("executor.cells_per_sec.w2")
          .set(static_cast<std::int64_t>(cells / std::max(seconds, 1e-9)));
      if (const auto it =
              report.worker_metrics.counters.find("sweep.cells_ok");
          it != report.worker_metrics.counters.end()) {
        worker_cells_ok += it->second;
      }
      std::cout << "  clean (2 workers): " << report.rows.size()
                << " cells, " << report.timing.retries << " retries, "
                << report.timing.workers_lost << " workers lost\n";
      benchutil::write_timeline_sidecar("bench_executor", report.timeline);
    }

    // One faulted run: worker 1 is killed at its third lease, so the
    // fleet loses exactly one worker and retries exactly one cell.
    {
      harness::SweepEngine engine(bench_grid());
      harness::SweepOptions options = executor_options(3);
      options.worker_faults = harness::parse_worker_faults("kill=1@2");
      const Timer timer;
      const harness::SweepReport report = engine.run(options);
      const double seconds = timer.millis() / 1000.0;
      const auto cells = static_cast<double>(report.rows.size());
      obs::metrics()
          .gauge("executor.cells_per_sec.w3_faulted")
          .set(static_cast<std::int64_t>(cells / std::max(seconds, 1e-9)));
      if (const auto it =
              report.worker_metrics.counters.find("sweep.cells_ok");
          it != report.worker_metrics.counters.end()) {
        worker_cells_ok += it->second;
      }
      std::cout << "  kill=1@2 (3 workers): " << report.rows.size()
                << " cells, " << report.timing.retries << " retries, "
                << report.timing.workers_lost << " workers lost\n";
    }

    // Cross-process instrumentation check: the workers' merged final
    // snapshots account for every ok cell of the clean run exactly; a
    // SIGKILLed worker's counts since its last heartbeat die with it,
    // so the faulted run undercounts by at most the fault's two
    // pre-kill cells — well inside the gate's 5% tolerance.
    obs::metrics()
        .gauge("executor.worker_cells_ok")
        .set(static_cast<std::int64_t>(worker_cells_ok));
    std::cout << "  worker-merged cells_ok: " << worker_cells_ok << "\n";
  }
};

const AccountingReporter reporter;  // NOLINT(cert-err58-cpp)

}  // namespace

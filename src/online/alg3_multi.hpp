// Algorithm 3 (paper Section 3.3): online unweighted calibration on P
// machines, 12-competitive (Theorem 3.10, via the primal-dual analysis
// of the Figure 1 / Figure 2 LP pair).
//
// Waits until G/T jobs wait or their hypothetical flow reaches G, then
// calibrates machines round-robin, committing up to G/T queued jobs to
// each new interval explicitly (step 13). The paper notes that in
// practice one would keep only the calibration times and reassign via
// Observation 2.1; `reassign_observation_2_1` implements that variant
// for the E9 ablation.
#pragma once

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "online/policy.hpp"

namespace calib {

class Alg3Multi final : public OnlinePolicy {
 public:
  Alg3Multi() = default;

  [[nodiscard]] QueueOrder order() const override {
    return QueueOrder::kFifo;
  }
  // Steps 6-9 run before the calibration loop; new intervals receive
  // their jobs explicitly inside decide(), so no post-assignment.
  [[nodiscard]] bool assign_before_decide() const override { return true; }
  [[nodiscard]] bool assign_after_decide() const override { return false; }
  void decide(DriverHandle& handle) override;
  [[nodiscard]] const char* name() const override { return "alg3"; }
};

/// The paper's practical variant: keep Algorithm 3's calibration times,
/// discard its explicit placements, and re-run Observation 2.1's greedy.
/// Never worse than the explicit schedule on total flow.
Schedule reassign_observation_2_1(const Instance& instance,
                                  const Schedule& explicit_schedule);

}  // namespace calib

file(REMOVE_RECURSE
  "CMakeFiles/shift_report.dir/shift_report.cpp.o"
  "CMakeFiles/shift_report.dir/shift_report.cpp.o.d"
  "shift_report"
  "shift_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shift_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// PendingSet differential tests: the order-statistics waiting set must
// agree with a brute-force reference model on every query, across
// randomized insert/erase histories — flows are closed-form sums, so a
// single off-by-one in a rank/suffix delta shows up as an exact integer
// mismatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/pending_set.hpp"
#include "util/prng.hpp"

namespace calib {
namespace {

struct RefJob {
  JobId id;
  Weight weight;
  Time release;
};

constexpr QueueOrder kAllOrders[] = {QueueOrder::kFifo,
                                     QueueOrder::kHeaviestFirst,
                                     QueueOrder::kLightestFirst};

/// Seed-driver semantics: the queue is the arrival-ordered (ascending
/// id) list, stable-sorted by weight for the non-FIFO orders.
std::vector<RefJob> ordered(std::vector<RefJob> queue, QueueOrder order) {
  switch (order) {
    case QueueOrder::kFifo:
      break;
    case QueueOrder::kHeaviestFirst:
      std::stable_sort(queue.begin(), queue.end(),
                       [](const RefJob& a, const RefJob& b) {
                         return a.weight > b.weight;
                       });
      break;
    case QueueOrder::kLightestFirst:
      std::stable_sort(queue.begin(), queue.end(),
                       [](const RefJob& a, const RefJob& b) {
                         return a.weight < b.weight;
                       });
      break;
  }
  return queue;
}

Cost brute_flow(const std::vector<RefJob>& arrival_order, Time start,
                QueueOrder order) {
  Cost flow = 0;
  Time t = start;
  for (const RefJob& job : ordered(arrival_order, order)) {
    flow += job.weight * (t + 1 - job.release);
    ++t;
  }
  return flow;
}

TEST(PendingSet, EmptySet) {
  PendingSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.total_weight(), 0);
  for (const QueueOrder order : kAllOrders) {
    EXPECT_EQ(set.queue_flow_from(7, order), 0);
  }
}

TEST(PendingSet, ClosedFormMatchesHandComputedFlows) {
  // The pinned example from test_driver: w=1 at r=0, then w=10 at r=0.
  PendingSet set;
  set.insert(0, 1, 0);
  set.insert(1, 10, 0);
  EXPECT_EQ(set.queue_flow_from(1, QueueOrder::kFifo), 32);
  EXPECT_EQ(set.queue_flow_from(1, QueueOrder::kHeaviestFirst), 23);
  EXPECT_EQ(set.queue_flow_from(1, QueueOrder::kLightestFirst), 32);
  set.erase(1);
  EXPECT_EQ(set.queue_flow_from(1, QueueOrder::kFifo), 2);
}

TEST(PendingSet, TiesBreakToEarliestArrival) {
  PendingSet set;
  set.insert(3, 5, 0);
  set.insert(7, 5, 1);
  set.insert(9, 2, 2);
  // Equal weights: the earlier id wins in both weight orders.
  EXPECT_EQ(set.first(QueueOrder::kHeaviestFirst), 3);
  EXPECT_EQ(set.first(QueueOrder::kLightestFirst), 9);
  EXPECT_EQ(set.first(QueueOrder::kFifo), 3);
  set.erase(9);
  EXPECT_EQ(set.first(QueueOrder::kLightestFirst), 3);
}

TEST(PendingSet, RanksFollowArrivalOrder) {
  PendingSet set;
  set.insert(2, 9, 0);
  set.insert(5, 1, 1);
  set.insert(8, 4, 2);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.at(0), 2);
  EXPECT_EQ(set.at(1), 5);
  EXPECT_EQ(set.at(2), 8);
  set.erase(5);
  EXPECT_EQ(set.at(1), 8);
}

TEST(PendingSet, DifferentialAgainstBruteForce) {
  for (const std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    Prng prng(seed);
    PendingSet set;
    std::vector<RefJob> reference;  // kept in ascending-id order
    JobId next_id = 0;
    for (int op = 0; op < 400; ++op) {
      const bool do_insert =
          reference.empty() || prng.bernoulli(0.6);
      if (do_insert) {
        const Weight weight = prng.uniform_int(1, 9);
        const Time release = prng.uniform_int(0, 50);
        set.insert(next_id, weight, release);
        reference.push_back(RefJob{next_id, weight, release});
        ++next_id;
      } else {
        const auto pick = static_cast<std::size_t>(prng.uniform_int(
            0, static_cast<std::int64_t>(reference.size()) - 1));
        set.erase(reference[pick].id);
        reference.erase(reference.begin() +
                        static_cast<std::ptrdiff_t>(pick));
      }

      ASSERT_EQ(set.size(), reference.size());
      Weight total = 0;
      for (const RefJob& job : reference) total += job.weight;
      ASSERT_EQ(set.total_weight(), total);
      for (const QueueOrder order : kAllOrders) {
        for (const Time start : {0, 3, 60}) {
          ASSERT_EQ(set.queue_flow_from(start, order),
                    brute_flow(reference, start, order))
              << "seed " << seed << " op " << op << " order "
              << static_cast<int>(order) << " start " << start;
        }
        if (!reference.empty()) {
          ASSERT_EQ(set.first(order), ordered(reference, order).front().id)
              << "seed " << seed << " op " << op << " order "
              << static_cast<int>(order);
        }
      }
      if (!reference.empty()) {
        const auto rank = static_cast<std::size_t>(prng.uniform_int(
            0, static_cast<std::int64_t>(reference.size()) - 1));
        ASSERT_EQ(set.at(rank), reference[rank].id);
        ASSERT_TRUE(set.contains(reference[rank].id));
      }
      ASSERT_FALSE(set.contains(next_id));
    }
  }
}

TEST(PendingSetDeath, RejectsDuplicateInsertAndMissingErase) {
  PendingSet set;
  set.insert(1, 2, 0);
  EXPECT_DEATH(set.insert(1, 5, 3), "already present");
  EXPECT_DEATH(set.erase(0), "not present");
  set.erase(1);
  EXPECT_DEATH(set.erase(1), "not present");
  EXPECT_DEATH((void)set.first(QueueOrder::kFifo), "empty");
}

}  // namespace
}  // namespace calib

#include "core/instance.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace calib {
namespace {

void sort_jobs(std::vector<Job>& jobs) {
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    if (a.release != b.release) return a.release < b.release;
    return a.weight > b.weight;
  });
}

}  // namespace

Instance::Instance(std::vector<Job> jobs, Time calibration_length,
                   int machines)
    : jobs_(std::move(jobs)), T_(calibration_length), machines_(machines) {
  CALIB_CHECK_MSG(T_ >= 1, "calibration length T must be >= 1, got " << T_);
  CALIB_CHECK_MSG(machines_ >= 1, "machine count must be >= 1");
  for (const Job& job : jobs_) {
    CALIB_CHECK_MSG(job.weight >= 1, "job weights must be >= 1");
    CALIB_CHECK_MSG(job.release >= 0, "release times must be >= 0");
  }
  sort_jobs(jobs_);
}

const Job& Instance::job(JobId j) const {
  CALIB_CHECK(j >= 0 && j < size());
  return jobs_[static_cast<std::size_t>(j)];
}

Time Instance::min_release() const {
  CALIB_CHECK(!jobs_.empty());
  return jobs_.front().release;
}

Time Instance::max_release() const {
  CALIB_CHECK(!jobs_.empty());
  return jobs_.back().release;
}

Weight Instance::total_weight() const {
  Weight sum = 0;
  for (const Job& job : jobs_) sum += job.weight;
  return sum;
}

bool Instance::is_unweighted() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const Job& job) { return job.weight == 1; });
}

bool Instance::releases_normalized() const {
  std::map<Time, int> counts;
  for (const Job& job : jobs_) ++counts[job.release];
  return std::all_of(counts.begin(), counts.end(), [&](const auto& entry) {
    return entry.second <= machines_;
  });
}

Instance Instance::normalized() const {
  std::vector<Job> jobs = jobs_;
  sort_jobs(jobs);
  // Repeatedly bump the lightest of any over-full release group by one
  // time step. Jobs stay sorted by (release, weight desc), so the group
  // for a release is a contiguous run and its lightest member is last.
  bool changed = true;
  while (changed) {
    changed = false;
    std::size_t run_begin = 0;
    for (std::size_t i = 1; i <= jobs.size(); ++i) {
      if (i == jobs.size() || jobs[i].release != jobs[run_begin].release) {
        if (i - run_begin > static_cast<std::size_t>(machines_)) {
          jobs[i - 1].release += 1;
          changed = true;
        }
        run_begin = i;
      }
    }
    if (changed) sort_jobs(jobs);
  }
  return Instance(std::move(jobs), T_, machines_);
}

Time Instance::horizon() const {
  if (jobs_.empty()) return T_;
  return max_release() + static_cast<Time>(jobs_.size()) + T_;
}

void Instance::save_csv(std::ostream& os) const {
  os << "# T=" << T_ << " P=" << machines_ << '\n';
  CsvWriter writer(os);
  writer.write_row({"release", "weight"});
  for (const Job& job : jobs_) {
    writer.write_row({std::to_string(job.release),
                      std::to_string(job.weight)});
  }
}

Instance Instance::load_csv(std::istream& is) {
  std::string header;
  std::getline(is, header);
  Time calibration_length = 0;
  int machines = 0;
  {
    std::istringstream hs(header);
    std::string tag;
    std::string t_field;
    std::string p_field;
    hs >> tag >> t_field >> p_field;
    if (tag != "#" || t_field.rfind("T=", 0) != 0 ||
        p_field.rfind("P=", 0) != 0) {
      throw std::runtime_error("instance csv: bad header line: " + header);
    }
    calibration_length = std::stoll(t_field.substr(2));
    machines = std::stoi(p_field.substr(2));
  }
  const auto rows = read_csv(is);
  std::vector<Job> jobs;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (r == 0 && !rows[r].empty() && rows[r][0] == "release") continue;
    if (rows[r].size() != 2) {
      throw std::runtime_error("instance csv: expected 2 fields per row");
    }
    jobs.push_back(Job{std::stoll(rows[r][0]), std::stoll(rows[r][1])});
  }
  return Instance(std::move(jobs), calibration_length, machines);
}

std::string Instance::to_string() const {
  std::ostringstream os;
  os << "Instance(T=" << T_ << ", P=" << machines_ << ", jobs=[";
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (i > 0) os << ", ";
    os << '(' << jobs_[i].release << ", w" << jobs_[i].weight << ')';
  }
  os << "])";
  return os.str();
}

}  // namespace calib

// The machine-minimization connection (paper Section 5, citing Fineman
// and Sheridan SPAA'15): minimizing calibrations for deadline jobs
// generalizes machine minimization — as T grows, one calibration
// behaves like one always-available machine.
//
// This module makes the connection executable (experiment E13):
//   * min_machines          — fewest identical machines on which every
//                             unit job meets its deadline (EDF-m +
//                             binary search; EDF is feasibility-optimal
//                             for unit jobs on identical machines).
//   * min_calibrations_unlimited_machines
//                           — fewest length-T calibrations, each on its
//                             own machine (machines are free, only
//                             calibrations cost), meeting all deadlines.
// For T >= the whole instance span the two quantities coincide; the
// bench sweeps T to show the convergence.
#pragma once

#include <optional>
#include <vector>

#include "deadline/deadline_instance.hpp"

namespace calib {

/// Can all jobs meet their deadlines on `machines` identical,
/// always-available machines? (EDF-m simulation.)
bool edf_feasible_machines(const DeadlineInstance& instance, int machines);

/// Fewest machines for feasibility. At most n machines ever help.
int min_machines(const DeadlineInstance& instance);

/// Can all jobs meet their deadlines given intervals of length
/// instance.T() at the given start times, each interval on its own
/// machine? (Capacity at step t = number of intervals covering t.)
bool edf_feasible_intervals(const DeadlineInstance& instance,
                            const std::vector<Time>& starts);

/// Fewest calibrations with unlimited machines (exhaustive search over
/// start multisets; exponential, small instances only). nullopt never
/// happens for valid windows — n calibrations always suffice.
std::optional<std::vector<Time>> min_calibrations_unlimited_machines(
    const DeadlineInstance& instance, int max_calibrations = -1);

}  // namespace calib

// Deterministic fault injection for the sweep engine.
//
// A FaultPlan decides, per cell, whether to force a failure — and which
// kind — as a pure function of (plan seed, cell coordinates), never of
// wall clock or thread scheduling. That determinism is the point: the
// same plan injects the same faults on every run at every thread count,
// so tests can drive every degradation path (error rows, timeout rows,
// crashed rows, invalid rows, journal resume around failed cells) and
// byte-compare the results.
//
// Fault kinds:
//   throw    in-process: the solver throws std::runtime_error
//   timeout  in-process: the cell's Budget deadline is forced to expire
//   segv     crash: raise(SIGSEGV) mid-cell — requires --sandbox
//   abort    crash: std::abort() mid-cell — requires --sandbox
//   hang     crash: spin/pause forever — requires --sandbox and a cell
//            budget (the parent watchdog is the only thing that ends it)
//   corrupt  silent wrong answer: the solved schedule is tampered with
//            after the solver returns, so the validation oracle must
//            catch it and demote the row to `invalid`
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/grid.hpp"

namespace calib::harness {

struct FaultPlan {
  enum class Action { kNone, kThrow, kTimeout, kSegv, kAbort, kHang, kCorrupt };

  /// Explicit cell indices (grid enumeration order) to fail. Checked
  /// before the probabilistic draw, in the Action enum's order — a cell
  /// listed under several kinds gets the first one.
  std::vector<std::size_t> throw_cells;
  std::vector<std::size_t> timeout_cells;
  std::vector<std::size_t> segv_cells;
  std::vector<std::size_t> abort_cells;
  std::vector<std::size_t> hang_cells;
  std::vector<std::size_t> corrupt_cells;

  /// Independent per-cell probabilities, resolved from one uniform draw
  /// on a PRNG stream derived from (seed, cell index): the draw walks
  /// the kinds in enum order and picks the first whose cumulative band
  /// contains it. All zero = no random faults.
  double throw_probability = 0.0;
  double timeout_probability = 0.0;
  double segv_probability = 0.0;
  double abort_probability = 0.0;
  double hang_probability = 0.0;
  double corrupt_probability = 0.0;
  std::uint64_t seed = 0;

  [[nodiscard]] bool empty() const;

  /// True when the plan can produce a fault that kills or wedges the
  /// process (segv, abort, hang) — those are only survivable under
  /// --sandbox, and the sweep engine refuses them in-process.
  [[nodiscard]] bool has_crash_kinds() const;

  /// True when the plan can produce a hang — which additionally needs a
  /// cell budget, because only the watchdog SIGKILL ends a hung child.
  [[nodiscard]] bool has_hangs() const;

  /// The action for one cell. Pure; callable concurrently.
  [[nodiscard]] Action action(const CellCoords& coords) const;

  /// Throws std::runtime_error if any probability is outside [0, 1] or
  /// they sum above 1.
  void validate() const;
};

/// One worker-process fault for the sharded executor (executor.hpp) —
/// the process-level counterpart of FaultPlan's cell faults. Each fault
/// fires exactly once, on the named worker, when it receives its next
/// lease after completing `after_cells` cells; the trigger is a pure
/// function of that worker's own lease sequence, never of wall clock,
/// so the same plan kills the same lease on every run.
struct WorkerFault {
  enum class Kind {
    kKill,          ///< SIGKILL self on the next lease (in-flight cell dies)
    kStall,         ///< SIGSTOP self: heartbeats freeze, watchdog must act
    kCorruptFrame,  ///< answer the next lease with a garbage frame
  };
  Kind kind = Kind::kKill;
  int worker = 0;                 ///< worker index in [0, workers)
  std::size_t after_cells = 0;    ///< completed-cell count that arms it
};

struct WorkerFaultPlan {
  std::vector<WorkerFault> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }

  /// Throws std::runtime_error when a fault names a worker outside
  /// [0, workers) — a plan that can never fire is a harness bug.
  void validate(int workers) const;
};

/// Parse the CLI spec `kind=WORKER@AFTER[,kind=WORKER@AFTER...]` with
/// kinds kill | stall | corrupt-frame, e.g. "kill=1@2,stall=2@3" (kill
/// worker 1 on its 3rd lease, stall worker 2 on its 4th). Throws
/// std::runtime_error on malformed specs.
[[nodiscard]] WorkerFaultPlan parse_worker_faults(const std::string& spec);

/// One daemon-side fault for `calibsched serve --inject-faults` — the
/// serve counterpart of WorkerFault. Faults target a tenant by name
/// ("" = every tenant) and fire on that tenant's decision path, which
/// is what lets chaos tests drive the daemon's degradation machinery
/// (watchdog demotion, client-reader poisoning, backpressure) without a
/// misbehaving network:
///   slow-tenant          sleep `param` ms inside each decision (drives
///                        the decision-deadline watchdog)
///   flood                append `param` redundant kTenantStats frames
///                        per decision (drives outbound backpressure)
///   disconnect-mid-frame truncate the next decision frame and close
///                        the connection (drives client torn-frame
///                        handling)
///   corrupt-frame        prepend garbage bytes to the next decision
///                        (drives client reader poisoning)
struct ServeFault {
  enum class Kind { kSlowTenant, kFlood, kDisconnectMidFrame, kCorruptFrame };
  Kind kind = Kind::kSlowTenant;
  std::int64_t param = 0;  ///< kind-specific (ms to sleep, frames to flood)
  std::string tenant;      ///< "" = all tenants
};

struct ServeFaultPlan {
  std::vector<ServeFault> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }

  /// First fault of `kind` matching `tenant` (exact name or the ""
  /// wildcard); nullptr when none applies.
  [[nodiscard]] const ServeFault* match(ServeFault::Kind kind,
                                        const std::string& tenant) const;
};

/// Parse the CLI spec `kind[=PARAM][@TENANT][,...]` with kinds
/// slow-tenant | flood | disconnect-mid-frame | corrupt-frame, e.g.
/// "slow-tenant=50@t1,flood=100" (sleep 50 ms in every t1 decision;
/// flood every tenant with 100 junk frames per decision). Throws
/// std::runtime_error on malformed specs.
[[nodiscard]] ServeFaultPlan parse_serve_faults(const std::string& spec);

}  // namespace calib::harness

// Name → factory registry for online policies.
//
// Every front end (CLI, benches, the sweep engine) used to hand-roll the
// same if-chain mapping "alg2" to Alg2Weighted; the registry is the one
// place that mapping lives. Names are enumerable so tools can list what
// is runnable, and construction goes through PolicyParams so per-policy
// knobs (randomized seed, periodic cadence, ablation toggles) are plumbed
// uniformly instead of growing per-binary flag parsing.
//
// External baselines (e.g. the arbitrary-calibration-length policies of
// Angel et al., or Azar–Touitou-style flow algorithms) plug in through
// PolicyRegistry::add without touching any front end.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "online/policy.hpp"

namespace calib {

/// Per-policy construction knobs. Policies read only the fields they
/// care about; unused fields are ignored.
struct PolicyParams {
  std::uint64_t seed = 1;  ///< randomized policies (rand-ski)
  Time period = 5;         ///< periodic baseline cadence
};

class PolicyRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<OnlinePolicy>(const PolicyParams&)>;

  /// The process-wide registry, pre-populated with the built-ins:
  /// alg1, alg1-noimm, alg2, alg2-lightest, alg3, alg4, eager, ski,
  /// periodic, random.
  static PolicyRegistry& instance();

  /// Register a policy. Throws std::runtime_error on duplicate names.
  void add(const std::string& name, const std::string& description,
           Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Registered names in registration order (built-ins first).
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }
  [[nodiscard]] const std::string& description(const std::string& name) const;

  /// Construct by name. Throws std::runtime_error on unknown names.
  [[nodiscard]] std::unique_ptr<OnlinePolicy> make(
      const std::string& name, const PolicyParams& params = {}) const;

 private:
  PolicyRegistry();

  struct Entry {
    std::string description;
    Factory factory;
  };
  std::vector<std::string> names_;
  std::vector<Entry> entries_;  // parallel to names_
  [[nodiscard]] const Entry* find(const std::string& name) const;
};

/// Shorthand for PolicyRegistry::instance().make(...).
[[nodiscard]] std::unique_ptr<OnlinePolicy> make_policy(
    const std::string& name, const PolicyParams& params = {});

/// "alg1|alg1-noimm|..." — for usage strings.
[[nodiscard]] std::string policy_names_joined(char separator = '|');

}  // namespace calib

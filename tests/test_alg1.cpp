// Algorithm 1 (Theorem 3.3): behavioral unit tests plus the headline
// property — online cost <= 3x the exact offline optimum — swept over
// random and adversarial workloads.
#include <gtest/gtest.h>

#include "offline/budget_search.hpp"
#include "online/alg1_unweighted.hpp"
#include "online/driver.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(Alg1, SchedulesSingleJob) {
  const Instance instance({Job{0, 1}}, 4);
  Alg1Unweighted policy;
  const Schedule schedule = run_online(instance, /*G=*/3, policy);
  EXPECT_EQ(schedule.calendar().count(), 1);
  EXPECT_EQ(schedule.validate(instance), std::nullopt);
}

TEST(Alg1, DelaysUntilFlowReachesG) {
  // Single job, G = 10, T = 5 (so the count trigger needs two jobs):
  // flow if scheduled at t+1 is t+2, so the calibration fires at the
  // first t with t + 2 >= 10, i.e. t = 8.
  const Instance instance({Job{0, 1}}, 5);
  Alg1Unweighted policy;
  const Schedule schedule = run_online(instance, /*G=*/10, policy);
  EXPECT_EQ(schedule.calendar().starts(0), (std::vector<Time>{8}));
  EXPECT_EQ(schedule.placement(0).start, 8);
}

TEST(Alg1, CountTriggerDominatesWhenTExceedsG) {
  // G/T < 1: one waiting job already satisfies |Q| * T >= G, so every
  // job is served at its release (the paper's G/T < 1 remark).
  const Instance instance({Job{0, 1}}, 100);
  Alg1Unweighted policy;
  const Schedule schedule = run_online(instance, /*G=*/10, policy);
  EXPECT_EQ(schedule.placement(0).start, 0);
}

TEST(Alg1, CountTriggerFiresWithSmallTRatio) {
  // G/T = 2: the second waiting job forces a calibration even though
  // total flow is far below G.
  const Instance instance({Job{0, 1}, Job{1, 1}}, 2);
  Alg1Unweighted policy;
  const Schedule schedule = run_online(instance, /*G=*/4, policy);
  ASSERT_GE(schedule.calendar().count(), 1);
  EXPECT_EQ(schedule.calendar().starts(0).front(), 1);
}

TEST(Alg1, ImmediateCalibrationAfterLightInterval) {
  // T = 10, G = 20: two quick jobs trip the count trigger at t = 1 and
  // finish with interval flow 4 < G/2 = 10 (a light interval). The job
  // arriving at 12 — after that interval ends — must trigger an
  // immediate calibration (line 13) rather than a fresh delay loop.
  const Instance instance({Job{0, 1}, Job{1, 1}, Job{12, 1}}, 10);
  const Cost G = 20;
  Alg1Unweighted with_immediate(true);
  const Schedule a = run_online(instance, G, with_immediate);
  Alg1Unweighted without_immediate(false);
  const Schedule b = run_online(instance, G, without_immediate);
  EXPECT_EQ(a.placement(2).start, 12);
  // Without the rule, the lone job waits for flow G: t + 2 - 12 >= 20.
  EXPECT_EQ(b.placement(2).start, 30);
}

TEST(Alg1, NeverCalibratesWhileCalibrated) {
  const Instance instance = trickle_instance(6, 1);
  Alg1Unweighted policy;
  const Schedule schedule = run_online(instance, /*G=*/6, policy);
  const auto starts = schedule.calendar().starts(0);
  for (std::size_t i = 1; i < starts.size(); ++i) {
    EXPECT_GE(starts[i], starts[i - 1] + instance.T());
  }
}

TEST(Alg1, GOverTLessThanOneSchedulesImmediately) {
  // G < T: any waiting job trips |Q| * T >= G at its arrival step.
  const Instance instance({Job{0, 1}, Job{5, 1}, Job{11, 1}}, 10);
  Alg1Unweighted policy;
  const Schedule schedule = run_online(instance, /*G=*/2, policy);
  for (JobId j = 0; j < instance.size(); ++j) {
    EXPECT_EQ(schedule.placement(j).start, instance.job(j).release);
  }
}

struct Alg1SweepParams {
  int jobs;
  Time span;
  Time T;
  Cost G;
  int trials;
  std::uint64_t seed;
};

class Alg1Competitive : public ::testing::TestWithParam<Alg1SweepParams> {};

TEST_P(Alg1Competitive, WithinThreeTimesOpt) {
  const auto& p = GetParam();
  Prng prng(p.seed);
  double worst = 0.0;
  for (int trial = 0; trial < p.trials; ++trial) {
    const Instance instance = sparse_uniform_instance(
        p.jobs, p.span, p.T, 1, WeightModel::kUnit, 1, prng);
    Alg1Unweighted policy;
    const Cost alg = online_objective(instance, p.G, policy);
    const Cost opt = offline_online_optimum(instance, p.G).best_cost;
    const double ratio =
        static_cast<double>(alg) / static_cast<double>(opt);
    worst = std::max(worst, ratio);
    EXPECT_LE(alg, 3 * opt) << instance.to_string() << " G=" << p.G;
  }
  RecordProperty("worst_ratio", std::to_string(worst));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Alg1Competitive,
    ::testing::Values(Alg1SweepParams{6, 20, 3, 5, 30, 501},
                      Alg1SweepParams{6, 20, 3, 12, 30, 502},
                      Alg1SweepParams{8, 30, 4, 8, 25, 503},
                      Alg1SweepParams{8, 16, 2, 20, 25, 504},
                      Alg1SweepParams{10, 40, 5, 15, 20, 505},
                      Alg1SweepParams{10, 25, 6, 30, 20, 506},
                      Alg1SweepParams{12, 48, 4, 10, 15, 507},
                      Alg1SweepParams{12, 30, 8, 50, 15, 508},
                      Alg1SweepParams{14, 56, 3, 6, 10, 509},
                      Alg1SweepParams{14, 40, 10, 40, 10, 510}));

TEST(Alg1, TrickleWorkloadStaysUnderThree) {
  // The Lemma 3.1 branch-2 shape, across G/T regimes.
  for (const Time T : {4, 8, 16}) {
    for (const Cost G : {2, 6, 12, 40}) {
      const Instance instance = trickle_instance(T, 1);
      Alg1Unweighted policy;
      const Cost alg = online_objective(instance, G, policy);
      const Cost opt = offline_online_optimum(instance, G).best_cost;
      EXPECT_LE(alg, 3 * opt) << "T=" << T << " G=" << G;
    }
  }
}

TEST(Alg1, DisablingImmediateCalibrationsStaysValid) {
  Prng prng(511);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance instance = sparse_uniform_instance(
        8, 24, 4, 1, WeightModel::kUnit, 1, prng);
    Alg1Unweighted policy(false);
    const Schedule schedule = run_online(instance, 9, policy);
    EXPECT_EQ(schedule.validate(instance), std::nullopt);
  }
}

TEST(Alg1, RejectsMultiMachine) {
  OnlinePolicy* policy = new Alg1Unweighted();
  OnlineDriver driver(/*T=*/3, /*machines=*/2, /*G=*/5, *policy);
  driver.add_job(1);
  EXPECT_DEATH(driver.step(), "single-machine");
  delete policy;
}

}  // namespace
}  // namespace calib

// Workload generators: determinism, normalization, distribution shape.
#include <gtest/gtest.h>

#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(Workload, PoissonDeterministicPerSeed) {
  PoissonConfig config;
  Prng a(5);
  Prng b(5);
  EXPECT_EQ(poisson_instance(config, 3, 1, a),
            poisson_instance(config, 3, 1, b));
}

TEST(Workload, PoissonRespectsNormalization) {
  PoissonConfig config;
  config.rate = 2.5;  // frequent collisions before normalization
  config.steps = 50;
  Prng prng(6);
  const Instance instance = poisson_instance(config, 4, 2, prng);
  EXPECT_TRUE(instance.releases_normalized());
  EXPECT_EQ(instance.machines(), 2);
}

TEST(Workload, PoissonArrivalCountTracksRate) {
  PoissonConfig config;
  config.rate = 0.4;
  config.steps = 1000;
  Prng prng(7);
  const Instance instance = poisson_instance(config, 3, 1, prng);
  EXPECT_GT(instance.size(), 300);
  EXPECT_LT(instance.size(), 520);
}

TEST(Workload, PoissonNeverEmpty) {
  PoissonConfig config;
  config.rate = 0.0;
  config.steps = 5;
  Prng prng(8);
  EXPECT_GE(poisson_instance(config, 2, 1, prng).size(), 1);
}

TEST(Workload, BurstyProducesClusters) {
  BurstyConfig config;
  config.burst_probability = 0.1;
  config.burst_length = 6;
  config.steps = 400;
  Prng prng(9);
  const Instance instance = bursty_instance(config, 3, 1, prng);
  ASSERT_GT(instance.size(), 10);
  // Clustering: mean gap within the smallest quartile of gaps is 1
  // (consecutive arrivals) while the max gap is much larger.
  Time max_gap = 0;
  int unit_gaps = 0;
  for (JobId j = 1; j < instance.size(); ++j) {
    const Time gap = instance.job(j).release - instance.job(j - 1).release;
    max_gap = std::max(max_gap, gap);
    if (gap <= 1) ++unit_gaps;
  }
  EXPECT_GT(unit_gaps, instance.size() / 3);
  EXPECT_GT(max_gap, 5);
}

TEST(Workload, SparseUniformHasDistinctReleases) {
  Prng prng(10);
  for (int trial = 0; trial < 20; ++trial) {
    const Instance instance = sparse_uniform_instance(
        8, 15, 3, 1, WeightModel::kUniform, 5, prng);
    EXPECT_EQ(instance.size(), 8);
    EXPECT_TRUE(instance.releases_normalized());
    for (JobId j = 1; j < instance.size(); ++j) {
      EXPECT_LT(instance.job(j - 1).release, instance.job(j).release);
    }
    for (JobId j = 0; j < instance.size(); ++j) {
      EXPECT_GE(instance.job(j).release, 0);
      EXPECT_LT(instance.job(j).release, 15);
      EXPECT_GE(instance.job(j).weight, 1);
      EXPECT_LE(instance.job(j).weight, 5);
    }
  }
}

TEST(Workload, TrickleMatchesLemma31Branch2) {
  const Instance instance = trickle_instance(5, 1);
  ASSERT_EQ(instance.size(), 5);
  for (JobId j = 0; j < 5; ++j) {
    EXPECT_EQ(instance.job(j).release, j);
    EXPECT_EQ(instance.job(j).weight, 1);
  }
}

TEST(Workload, WeightModelsRespectBounds) {
  Prng prng(11);
  for (const WeightModel model :
       {WeightModel::kUnit, WeightModel::kUniform, WeightModel::kZipf,
        WeightModel::kBimodal}) {
    for (int i = 0; i < 200; ++i) {
      const Weight w = sample_weight(model, 7, prng);
      EXPECT_GE(w, 1);
      EXPECT_LE(w, 7);
    }
  }
}

TEST(Workload, BimodalIsMostlyLight) {
  Prng prng(12);
  int heavy = 0;
  for (int i = 0; i < 2000; ++i) {
    if (sample_weight(WeightModel::kBimodal, 50, prng) == 50) ++heavy;
  }
  EXPECT_GT(heavy, 100);
  EXPECT_LT(heavy, 350);
}

TEST(Workload, RegressionInstanceIsStable) {
  const Instance instance = regression_instance();
  EXPECT_EQ(instance.size(), 6);
  EXPECT_EQ(instance.T(), 4);
  EXPECT_TRUE(instance.releases_normalized());
  EXPECT_EQ(instance.job(2).weight, 5);
}

}  // namespace
}  // namespace calib

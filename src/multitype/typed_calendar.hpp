// Multiple calibration types — the Angel, Bampis, Chau, Zissimopoulos
// (FAW'17) generalization the paper cites in Related Work: each
// calibration type k has its own length T_k and cost G_k (e.g. a quick
// cheap touch-up vs a full expensive recalibration).
//
// This subsystem carries the extension experiment E12: an online policy
// that picks types adaptively, against single-type baselines and a
// brute-force optimum on small instances.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace calib {

struct CalibrationType {
  Time length = 2;  ///< steps the machine stays calibrated
  Cost cost = 1;    ///< price of one calibration of this type

  friend bool operator==(const CalibrationType&,
                         const CalibrationType&) = default;
};

/// A calendar whose calibrations carry a type. Single machine (the
/// FAW'17 setting); overlaps are legal and merge for coverage.
class TypedCalendar {
 public:
  explicit TypedCalendar(std::vector<CalibrationType> types);

  [[nodiscard]] const std::vector<CalibrationType>& types() const {
    return types_;
  }

  void add(Time start, int type);

  struct Entry {
    Time start;
    int type;
    friend bool operator==(const Entry&, const Entry&) = default;
  };
  [[nodiscard]] const std::vector<Entry>& entries() const {
    return entries_;
  }
  [[nodiscard]] int count() const {
    return static_cast<int>(entries_.size());
  }

  /// Sum of the costs of all calibrations.
  [[nodiscard]] Cost calibration_cost() const;

  /// Is step t covered by any calibration?
  [[nodiscard]] bool covers(Time t) const;

  /// All covered steps, ascending, deduplicated.
  [[nodiscard]] std::vector<Time> covered_slots() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<CalibrationType> types_;
  std::vector<Entry> entries_;  // sorted by start
};

}  // namespace calib

// E14 — non-unit preemptible jobs (Fineman-Sheridan / Angel et al.):
// how well does the lazy-binning generalization track the exact
// minimum, and how tight is the workload lower bound ceil(sum p / T)?
// Expected shape: lazy == exact on nearly all instances; the workload
// bound is loose exactly when windows are tight (forced fragmentation).
#include <benchmark/benchmark.h>

#include <iostream>

#include "nonunit/nonunit.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace calib;

NonUnitInstance random_nonunit(int count, Time span, Time T, Time p_max,
                               Time slack_max, Prng& prng) {
  std::vector<NonUnitJob> jobs;
  for (int i = 0; i < count; ++i) {
    const Time release = prng.uniform_int(0, span - 1);
    const Time processing = prng.uniform_int(1, p_max);
    const Time slack = prng.uniform_int(0, slack_max);
    jobs.push_back(
        NonUnitJob{release, release + processing + slack, processing});
  }
  return NonUnitInstance(std::move(jobs), T);
}

void BM_LazyNonunit(benchmark::State& state) {
  // Wide slack keeps large instances feasible, so the timing measures
  // real work rather than an early infeasibility bail-out.
  Prng prng(3);
  const int jobs = static_cast<int>(state.range(0));
  const NonUnitInstance instance = random_nonunit(
      jobs, static_cast<Time>(jobs) * 5, 4, 3, static_cast<Time>(jobs) * 3,
      prng);
  const auto lazy = lazy_binning_nonunit(instance);
  CALIB_CHECK(lazy.has_value());
  for (auto _ : state) {
    benchmark::DoNotOptimize(lazy_binning_nonunit(instance));
  }
}

BENCHMARK(BM_LazyNonunit)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

struct TablePrinter {
  ~TablePrinter() {
    std::cout << "\nE14 - non-unit preemptible jobs: lazy binning vs "
                 "exact minimum calibrations (50 seeds per row):\n";
    Table table({"T", "slack", "lazy == exact", "mean calibrations",
                 "mean workload bound"});
    for (const auto& [T, slack] : std::vector<std::pair<Time, Time>>{
             {2, 1}, {3, 2}, {3, 6}, {4, 3}, {5, 8}}) {
      int agree = 0;
      int total = 0;
      Summary calibrations;
      Summary bound;
      Prng prng(static_cast<std::uint64_t>(T * 37 + slack));
      for (int seed = 0; seed < 50; ++seed) {
        const NonUnitInstance instance =
            random_nonunit(4, 8, T, 3, slack, prng);
        const auto lazy = lazy_binning_nonunit(instance);
        const auto exact = min_calibrations_nonunit(instance);
        if (lazy.has_value() != exact.has_value()) continue;
        if (!lazy.has_value()) continue;
        ++total;
        if (lazy->count() == exact->count()) ++agree;
        calibrations.add(static_cast<double>(exact->count()));
        bound.add(static_cast<double>(
            (instance.total_processing() + T - 1) / T));
      }
      table.row()
          .add(static_cast<std::int64_t>(T))
          .add(static_cast<std::int64_t>(slack))
          .add(std::to_string(agree) + "/" + std::to_string(total))
          .add(calibrations.mean(), 2)
          .add(bound.mean(), 2);
    }
    table.print(std::cout);
    std::cout << "(fragmentation = mean calibrations above the workload "
                 "bound; grows as windows tighten.)\n";
  }
};
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

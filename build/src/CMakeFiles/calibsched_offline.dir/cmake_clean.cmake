file(REMOVE_RECURSE
  "CMakeFiles/calibsched_offline.dir/offline/brute_force.cpp.o"
  "CMakeFiles/calibsched_offline.dir/offline/brute_force.cpp.o.d"
  "CMakeFiles/calibsched_offline.dir/offline/budget_search.cpp.o"
  "CMakeFiles/calibsched_offline.dir/offline/budget_search.cpp.o.d"
  "CMakeFiles/calibsched_offline.dir/offline/dp.cpp.o"
  "CMakeFiles/calibsched_offline.dir/offline/dp.cpp.o.d"
  "CMakeFiles/calibsched_offline.dir/offline/local_search.cpp.o"
  "CMakeFiles/calibsched_offline.dir/offline/local_search.cpp.o.d"
  "libcalibsched_offline.a"
  "libcalibsched_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibsched_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

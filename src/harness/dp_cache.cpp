#include "harness/dp_cache.hpp"

#include <sstream>
#include <utility>

#include "offline/dp.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace calib::harness {
namespace {

// Exact content key; a 64-bit hash would risk silent collisions, and the
// serialized form is tiny next to the DP tables it guards.
std::string instance_key(const Instance& instance) {
  std::ostringstream os;
  os << instance.T() << ';' << instance.machines() << ';';
  for (const Job& job : instance.jobs()) {
    os << job.release << ',' << job.weight << ';';
  }
  return os.str();
}

}  // namespace

CurveOptimum optimum_from_curve(const std::vector<Cost>& curve, Cost G) {
  CALIB_CHECK(G >= 1);
  CurveOptimum best;
  bool found = false;
  for (std::size_t k = 1; k < curve.size(); ++k) {
    const Cost flow = curve[k];
    if (flow == kInfeasible) continue;
    const Cost value = G * static_cast<Cost>(k) + flow;
    if (!found || value < best.best_cost) {
      found = true;
      best.best_k = static_cast<int>(k);
      best.best_cost = value;
      best.flow = flow;
    }
  }
  CALIB_CHECK_MSG(found, "flow curve has no feasible budget");
  return best;
}

std::shared_ptr<const std::vector<Cost>> FlowCurveCache::curve(
    const Instance& instance, Budget* budget) {
  CALIB_CHECK_MSG(instance.machines() == 1,
                  "the Section 4 DP requires P == 1");
  const std::string key = instance_key(instance);

  std::promise<CurvePtr> promise;
  std::shared_future<CurvePtr> future;
  bool owner = false;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = curves_.find(key);
    if (it != curves_.end()) {
      hits_.fetch_add(1);
      future = it->second;
    } else {
      misses_.fetch_add(1);
      owner = true;
      future = promise.get_future().share();
      curves_.emplace(key, future);
    }
  }

  if (owner) {
    try {
      const Timer timer;
      OfflineDp dp(instance.releases_normalized() ? instance
                                                  : instance.normalized());
      dp.set_budget(budget);
      auto curve = std::make_shared<const std::vector<Cost>>(
          dp.flow_curve(dp.instance().size()));
      compute_micros_.fetch_add(
          static_cast<std::int64_t>(timer.seconds() * 1e6));
      promise.set_value(std::move(curve));
    } catch (...) {
      // Evict before publishing the failure so later requests retry
      // instead of inheriting this cell's exception forever.
      {
        const std::scoped_lock lock(mutex_);
        curves_.erase(key);
      }
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

double FlowCurveCache::compute_seconds() const {
  return static_cast<double>(compute_micros_.load()) * 1e-6;
}

}  // namespace calib::harness

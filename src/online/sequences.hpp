// Sequences — the charging structure behind Theorem 3.8 (Section 3.2).
//
// A *sequence* is a maximal group of consecutive intervals in a
// single-machine schedule such that every interval but the last is
// *full* (runs a job in all T of its steps). Lemma 3.6 relates each
// sequence's intervals to intervals of OPT_r (the optimal schedule
// restricted to release order); this module computes the partition and
// the release-ordered optimum so the lemma can be checked empirically.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace calib {

struct Sequence {
  /// Interval start times of this sequence, ascending.
  std::vector<Time> interval_starts;
  Time begin = 0;  ///< b_I: one step after the previous sequence ends
  Time end = 0;    ///< e_I: end of the last interval
};

/// Partition a single-machine schedule's intervals into sequences.
/// Requires non-overlapping intervals (the paper's online algorithms
/// only produce such calendars).
std::vector<Sequence> partition_into_sequences(const Instance& instance,
                                               const Schedule& schedule);

/// Is the interval starting at `start` full (a job in every step)?
bool interval_full(const Instance& instance, const Schedule& schedule,
                   Time start);

/// OPT_r: the minimum online objective over schedules that process jobs
/// in release order (FIFO assignment over every candidate calendar;
/// exhaustive, small instances only). Returns the optimal schedule.
Schedule release_order_optimum(const Instance& instance, Cost G);

}  // namespace calib

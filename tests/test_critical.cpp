// Critical jobs (Definition 4.4) and the Lemma 4.1 / 4.2 predicates.
#include <gtest/gtest.h>

#include "core/critical.hpp"
#include "offline/brute_force.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

Instance three_jobs() {
  return Instance({Job{0, 1}, Job{2, 1}, Job{5, 1}}, 3);
}

TEST(Critical, JobAtReleaseWithClearedBacklogIsCritical) {
  const Instance instance = three_jobs();
  Calendar calendar(3, 1);
  calendar.add(0, 0);
  calendar.add(0, 5);
  Schedule schedule(calendar, 3);
  schedule.place(0, 0, 0);
  schedule.place(1, 0, 2);
  schedule.place(2, 0, 5);
  EXPECT_TRUE(is_critical(instance, schedule, 0));
  EXPECT_TRUE(is_critical(instance, schedule, 1));
  EXPECT_TRUE(is_critical(instance, schedule, 2));
  EXPECT_EQ(critical_jobs(instance, schedule),
            (std::vector<JobId>{0, 1, 2}));
}

TEST(Critical, DelayedJobIsNotCritical) {
  const Instance instance = three_jobs();
  Calendar calendar(3, 1);
  calendar.add(0, 1);
  calendar.add(0, 5);
  Schedule schedule(calendar, 3);
  schedule.place(0, 0, 1);  // delayed past release 0
  schedule.place(1, 0, 2);
  schedule.place(2, 0, 5);
  EXPECT_FALSE(is_critical(instance, schedule, 0));
  EXPECT_TRUE(is_critical(instance, schedule, 1));
}

TEST(Critical, AtReleaseButBacklogPendingIsNotCritical) {
  // Job 1 runs at its release, but job 0 (released earlier) is still
  // waiting at that moment -> not critical.
  const Instance instance = three_jobs();
  Calendar calendar(3, 1);
  calendar.add(0, 2);
  calendar.add(0, 5);
  Schedule schedule(calendar, 3);
  schedule.place(1, 0, 2);
  schedule.place(0, 0, 3);
  schedule.place(2, 0, 5);
  EXPECT_FALSE(is_critical(instance, schedule, 1));
}

TEST(Critical, Lemma41ViolatedByGratuitousIdle) {
  const Instance instance = three_jobs();
  Calendar calendar(3, 1);
  calendar.add(0, 0);
  calendar.add(0, 3);
  Schedule schedule(calendar, 3);
  schedule.place(0, 0, 0);
  schedule.place(1, 0, 4);  // idle at 2..3 although released at 2
  schedule.place(2, 0, 5);
  EXPECT_FALSE(satisfies_lemma_4_1(instance, schedule));
}

TEST(Critical, Lemma42RequiresAtReleaseJobAtRunEnd) {
  const Instance instance = three_jobs();
  Calendar calendar(3, 1);
  calendar.add(0, 0);  // run [0, 3): last step 2 hosts job released at 2
  calendar.add(0, 5);  // run [5, 8): last step 7 idle
  Schedule schedule(calendar, 3);
  schedule.place(0, 0, 0);
  schedule.place(1, 0, 2);
  schedule.place(2, 0, 5);
  EXPECT_FALSE(satisfies_lemma_4_2(instance, schedule));
}

// Lemma 4.2 (existence form): for random instances, *some* optimal
// budget schedule satisfies the predicate. The restricted brute force
// constructs its calendars from { r_j + 1 - T } starts, so its witness
// often does; instead we assert the theorem's consequence — the
// restricted search already achieves the optimum (see
// test_brute_force.cpp) — and that at least one optimal witness from
// the restricted search has every run ending at an at-release job when
// the greedy fills it. Weak form: predicate holds for a majority of
// witnesses.
TEST(Critical, RestrictedOptimaOftenSatisfyLemma42) {
  Prng prng(410);
  int holds = 0;
  int total = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const Instance instance = sparse_uniform_instance(
        5, 12, 3, 1, WeightModel::kUniform, 4, prng);
    const OfflineSolution solution = brute_force_budget(instance, 2);
    if (!solution.feasible()) continue;
    ++total;
    if (satisfies_lemma_4_2(instance, *solution.schedule)) ++holds;
  }
  ASSERT_GT(total, 10);
  EXPECT_GT(holds * 2, total);
}

}  // namespace
}  // namespace calib

// Memoized Section-4 DP flow curves, shared across sweep cells.
//
// The flow curve F(k), k = 0..n, is a property of the *instance* alone —
// G only enters afterwards, as min_k (G·k + F(k)). A ratio-vs-opt sweep
// over |G_values| budgets therefore needs the O(K n³) DP once per
// instance, not once per (instance, G) cell; this cache is what turns a
// 4-G sweep into ~1× the single-G DP cost instead of 4×.
//
// Thread-safe with compute-once semantics: concurrent requests for the
// same instance block on a single computation instead of duplicating it
// (duplication would erase exactly the saving the cache exists for).
//
// Failure semantics: if the computing thread throws (including
// BudgetExceeded from its cell budget), every waiter currently blocked
// on that computation receives the same exception — their cells degrade
// to error/timeout rows together — but the failed entry is evicted, so
// any *later* request recomputes from scratch (possibly under a larger
// budget) instead of inheriting a stale failure forever.
//
// Accounting lives in the obs registry (dp_cache.hits / .misses /
// .evictions / .wait_us / .compute_us); the per-instance accessors
// report this cache's share as deltas against values captured at
// construction, so one process can run many sweeps and each report
// still sees only its own cache traffic. With CALIBSCHED_OBS=0 the
// registry stores nothing, so the cache keeps plain per-instance
// atomics instead — the accessors are exact in every configuration.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "util/budget.hpp"
#include "util/sync.hpp"

namespace calib::harness {

/// Optimum of the online objective read off a cached curve — the same
/// argmin offline_online_optimum() computes, without re-running the DP.
struct CurveOptimum {
  int best_k = 0;
  Cost best_cost = 0;
  Cost flow = 0;  ///< curve[best_k]
};

[[nodiscard]] CurveOptimum optimum_from_curve(const std::vector<Cost>& curve,
                                              Cost G);

class FlowCurveCache {
 public:
  FlowCurveCache();

  /// The flow curve F(0..n) of `instance` (normalized internally, like
  /// offline_online_optimum). Computes on first request; every later
  /// request for an identical instance returns the shared copy. A
  /// non-null `budget` is charged per DP state while *this* call owns
  /// the computation (see the failure semantics above).
  [[nodiscard]] std::shared_ptr<const std::vector<Cost>> curve(
      const Instance& instance, Budget* budget = nullptr);

  /// Requests served from a present (or in-flight) entry.
  [[nodiscard]] std::size_t hits() const;
  /// Requests that had to start the DP themselves.
  [[nodiscard]] std::size_t misses() const;
  /// Failed computations evicted so later requests retry.
  [[nodiscard]] std::size_t evictions() const;
  /// Cumulative wall time non-owning requests spent blocked on an
  /// in-flight computation (summed across threads).
  [[nodiscard]] double wait_seconds() const;
  /// Total wall time spent inside DP computations (summed across
  /// threads; the saving of a hit is its instance's share of this).
  [[nodiscard]] double compute_seconds() const;

 private:
  using CurvePtr = std::shared_ptr<const std::vector<Cost>>;

  // Accounting seams so curve() stays #if-free in both configurations.
  void note_hit();
  void note_miss();
  void note_eviction();
  void note_wait_us(std::uint64_t us);
  void note_compute_us(std::uint64_t us);

  // Lock hierarchy: mutex_ is a leaf held only for map lookup/insert/
  // erase; the DP itself (and every wait on the shared_future) runs
  // outside it, so waiters never block a concurrent lookup.
  Mutex mutex_;
  std::unordered_map<std::string, std::shared_future<CurvePtr>> curves_
      CALIB_GUARDED_BY(mutex_);

#if CALIBSCHED_OBS
  // Registry handles plus construction-time baselines for the deltas.
  obs::Counter hits_counter_;
  obs::Counter misses_counter_;
  obs::Counter evictions_counter_;
  obs::Counter wait_us_counter_;
  obs::Counter compute_us_counter_;
  std::uint64_t hits_base_ = 0;
  std::uint64_t misses_base_ = 0;
  std::uint64_t evictions_base_ = 0;
  std::uint64_t wait_us_base_ = 0;
  std::uint64_t compute_us_base_ = 0;
#else
  // With the obs layer compiled out the registry stores nothing, so the
  // cache falls back to plain per-instance atomics: the accessors (and
  // the sweep report's cache columns) stay exact in every build.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> wait_us_{0};
  std::atomic<std::uint64_t> compute_us_{0};
#endif
};

}  // namespace calib::harness

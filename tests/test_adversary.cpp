// The Lemma 3.1 adversary: branch selection, closed-form optimum
// agreement with the exact DP, and the (2 - o(1)) bound's shape.
#include <gtest/gtest.h>

#include "offline/budget_search.hpp"
#include "online/adversary.hpp"
#include "online/alg1_unweighted.hpp"
#include "online/baselines.hpp"

namespace calib {
namespace {

TEST(Adversary, EagerTakesBranchOne) {
  EagerPolicy policy;
  const AdversaryOutcome outcome =
      run_lower_bound_adversary(policy, /*G=*/10, /*T=*/5);
  EXPECT_TRUE(outcome.calibrated_at_zero);
  EXPECT_EQ(outcome.instance.size(), 2);
  EXPECT_EQ(outcome.instance.job(1).release, 5);
  // Eager pays two calibrations and flow 2: exactly the lemma's 2G + 2.
  EXPECT_EQ(outcome.algorithm_cost, 2 * 10 + 2);
  EXPECT_EQ(outcome.lemma_opt_cost, 10 + 3);
}

TEST(Adversary, PatientPolicyTakesBranchTwo) {
  SkiRentalPolicy policy;  // waits until flow G = large
  const AdversaryOutcome outcome =
      run_lower_bound_adversary(policy, /*G=*/50, /*T=*/6);
  EXPECT_FALSE(outcome.calibrated_at_zero);
  EXPECT_EQ(outcome.instance.size(), 6);  // jobs at 0..T-1
  EXPECT_EQ(outcome.lemma_opt_cost, 6 + 50);
}

TEST(Adversary, ClosedFormMatchesExactDpOptimum) {
  // The lemma's hand schedules are optimal: for both branches and a
  // range of (G, T), the DP-based exact optimum equals lemma_opt_cost.
  for (const Cost G : {2, 5, 9, 20, 33}) {
    for (const Time T : {2, 3, 7, 12}) {
      for (const bool eager_branch : {true, false}) {
        AdversaryOutcome outcome;
        if (eager_branch) {
          EagerPolicy policy;
          outcome = run_lower_bound_adversary(policy, G, T);
        } else {
          SkiRentalPolicy policy;
          outcome = run_lower_bound_adversary(policy, G, T);
        }
        if (!eager_branch && outcome.calibrated_at_zero) continue;
        const Cost exact =
            offline_online_optimum(outcome.instance, G).best_cost;
        EXPECT_EQ(exact, outcome.lemma_opt_cost)
            << "G=" << G << " T=" << T << " branch1=" << eager_branch;
      }
    }
  }
}

TEST(Adversary, RatioApproachesTwoForLargeGAndHugeT) {
  // 2 - 4/(G+3) on branch 1: with G = 997 the ratio must exceed 1.99.
  EagerPolicy policy;
  const AdversaryOutcome outcome =
      run_lower_bound_adversary(policy, /*G=*/997, /*T=*/50);
  const double ratio =
      static_cast<double>(outcome.algorithm_cost) /
      static_cast<double>(outcome.lemma_opt_cost);
  EXPECT_GT(ratio, 1.99);
  EXPECT_LT(ratio, 2.0);
}

TEST(Adversary, Alg1StaysBelowTwoAgainstTheAdversary) {
  for (const Cost G : {3, 10, 40, 100}) {
    for (const Time T : {2, 8, 32}) {
      Alg1Unweighted policy;
      const AdversaryOutcome outcome =
          run_lower_bound_adversary(policy, G, T);
      const Cost opt =
          offline_online_optimum(outcome.instance, G).best_cost;
      // Alg1's guarantee is 3; on this particular family it stays < 2G+2.
      EXPECT_LE(outcome.algorithm_cost, 3 * opt) << "G=" << G << " T=" << T;
    }
  }
}

TEST(Adversary, RequiresTAtLeastTwo) {
  EagerPolicy policy;
  EXPECT_DEATH(run_lower_bound_adversary(policy, 5, 1), "T >= 2");
}

}  // namespace
}  // namespace calib

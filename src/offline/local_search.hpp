// Offline local search for the online objective G * #calibrations +
// weighted flow, on any number of machines.
//
// The paper gives an exact DP for P = 1 only; for P > 1 no offline
// algorithm is known (brute force explodes). This hill climber is the
// practical fallback: start from one calibration per job at its
// release (always feasible), then repeatedly try removing a calibration
// and shifting one by up to T steps, re-deriving the assignment through
// Observation 2.1's greedy after every move. Monotone improvement, so
// it terminates; quality is measured in bench_local_search (E16)
// against the exact DP (P = 1) and the Figure 1 LP bound (P > 1).
#pragma once

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace calib {

struct LocalSearchOptions {
  int max_rounds = 256;      ///< safety cap on improvement sweeps
  Time max_shift = 0;        ///< 0 = use the instance's T
};

/// Returns a valid schedule; cost is locally minimal under
/// remove-one / shift-one moves.
Schedule local_search_offline(const Instance& instance, Cost G,
                              const LocalSearchOptions& options = {});

}  // namespace calib

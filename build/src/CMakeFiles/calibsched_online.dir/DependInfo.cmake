
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/online/adversary.cpp" "src/CMakeFiles/calibsched_online.dir/online/adversary.cpp.o" "gcc" "src/CMakeFiles/calibsched_online.dir/online/adversary.cpp.o.d"
  "/root/repo/src/online/alg1_unweighted.cpp" "src/CMakeFiles/calibsched_online.dir/online/alg1_unweighted.cpp.o" "gcc" "src/CMakeFiles/calibsched_online.dir/online/alg1_unweighted.cpp.o.d"
  "/root/repo/src/online/alg2_weighted.cpp" "src/CMakeFiles/calibsched_online.dir/online/alg2_weighted.cpp.o" "gcc" "src/CMakeFiles/calibsched_online.dir/online/alg2_weighted.cpp.o.d"
  "/root/repo/src/online/alg3_multi.cpp" "src/CMakeFiles/calibsched_online.dir/online/alg3_multi.cpp.o" "gcc" "src/CMakeFiles/calibsched_online.dir/online/alg3_multi.cpp.o.d"
  "/root/repo/src/online/alg4_weighted_multi.cpp" "src/CMakeFiles/calibsched_online.dir/online/alg4_weighted_multi.cpp.o" "gcc" "src/CMakeFiles/calibsched_online.dir/online/alg4_weighted_multi.cpp.o.d"
  "/root/repo/src/online/baselines.cpp" "src/CMakeFiles/calibsched_online.dir/online/baselines.cpp.o" "gcc" "src/CMakeFiles/calibsched_online.dir/online/baselines.cpp.o.d"
  "/root/repo/src/online/driver.cpp" "src/CMakeFiles/calibsched_online.dir/online/driver.cpp.o" "gcc" "src/CMakeFiles/calibsched_online.dir/online/driver.cpp.o.d"
  "/root/repo/src/online/randomized.cpp" "src/CMakeFiles/calibsched_online.dir/online/randomized.cpp.o" "gcc" "src/CMakeFiles/calibsched_online.dir/online/randomized.cpp.o.d"
  "/root/repo/src/online/sequences.cpp" "src/CMakeFiles/calibsched_online.dir/online/sequences.cpp.o" "gcc" "src/CMakeFiles/calibsched_online.dir/online/sequences.cpp.o.d"
  "/root/repo/src/online/trace.cpp" "src/CMakeFiles/calibsched_online.dir/online/trace.cpp.o" "gcc" "src/CMakeFiles/calibsched_online.dir/online/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/calibsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/calibsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

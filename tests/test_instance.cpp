// Instance: construction invariants, footnote-1 normalization, CSV
// round trip.
#include <gtest/gtest.h>

#include <sstream>

#include "core/instance.hpp"

namespace calib {
namespace {

TEST(Instance, SortsJobsByReleaseThenWeightDesc) {
  const Instance instance({Job{5, 1}, Job{2, 3}, Job{2, 7}}, 3);
  EXPECT_EQ(instance.job(0).release, 2);
  EXPECT_EQ(instance.job(0).weight, 7);
  EXPECT_EQ(instance.job(1).release, 2);
  EXPECT_EQ(instance.job(1).weight, 3);
  EXPECT_EQ(instance.job(2).release, 5);
}

TEST(Instance, BasicAccessors) {
  const Instance instance({Job{1, 2}, Job{4, 3}}, 5, 2);
  EXPECT_EQ(instance.size(), 2);
  EXPECT_EQ(instance.T(), 5);
  EXPECT_EQ(instance.machines(), 2);
  EXPECT_EQ(instance.min_release(), 1);
  EXPECT_EQ(instance.max_release(), 4);
  EXPECT_EQ(instance.total_weight(), 5);
  EXPECT_FALSE(instance.is_unweighted());
  EXPECT_FALSE(instance.empty());
}

TEST(Instance, UnweightedDetection) {
  EXPECT_TRUE(Instance({Job{0, 1}, Job{1, 1}}, 2).is_unweighted());
  EXPECT_FALSE(Instance({Job{0, 1}, Job{1, 2}}, 2).is_unweighted());
}

TEST(Instance, ReleasesNormalizedDetection) {
  EXPECT_TRUE(Instance({Job{0, 1}, Job{1, 1}}, 2, 1).releases_normalized());
  EXPECT_FALSE(Instance({Job{0, 1}, Job{0, 1}}, 2, 1).releases_normalized());
  EXPECT_TRUE(Instance({Job{0, 1}, Job{0, 1}}, 2, 2).releases_normalized());
}

TEST(Instance, NormalizedBumpsLightestJob) {
  // Footnote 1: the lightest of a colliding group moves one step later.
  const Instance instance({Job{0, 5}, Job{0, 2}, Job{3, 1}}, 2, 1);
  const Instance normalized = instance.normalized();
  EXPECT_TRUE(normalized.releases_normalized());
  EXPECT_EQ(normalized.job(0).release, 0);
  EXPECT_EQ(normalized.job(0).weight, 5);
  EXPECT_EQ(normalized.job(1).release, 1);
  EXPECT_EQ(normalized.job(1).weight, 2);
  EXPECT_EQ(normalized.job(2).release, 3);
}

TEST(Instance, NormalizedCascades) {
  // Three colliding unit jobs need two bumps, and the bumped job can
  // collide again with a later release.
  const Instance instance({Job{0, 1}, Job{0, 1}, Job{0, 1}, Job{1, 1}}, 2,
                          1);
  const Instance normalized = instance.normalized();
  EXPECT_TRUE(normalized.releases_normalized());
  EXPECT_EQ(normalized.size(), 4);
  // Releases must be 0, 1, 2, 3 after cascading.
  for (JobId j = 0; j < 4; ++j) {
    EXPECT_EQ(normalized.job(j).release, j);
  }
}

TEST(Instance, NormalizedRespectsMachineCount) {
  const Instance instance({Job{0, 1}, Job{0, 1}, Job{0, 1}}, 2, 2);
  const Instance normalized = instance.normalized();
  EXPECT_TRUE(normalized.releases_normalized());
  // Two may stay at 0, the third (lightest = any of the unit jobs)
  // moves to 1.
  EXPECT_EQ(normalized.job(0).release, 0);
  EXPECT_EQ(normalized.job(1).release, 0);
  EXPECT_EQ(normalized.job(2).release, 1);
}

TEST(Instance, NormalizedIsIdempotentOnCleanInput) {
  const Instance instance({Job{0, 2}, Job{4, 1}}, 3, 1);
  EXPECT_EQ(instance.normalized(), instance);
}

TEST(Instance, HorizonBoundsGreedyCompletion) {
  const Instance instance({Job{0, 1}, Job{9, 1}}, 4, 1);
  EXPECT_EQ(instance.horizon(), 9 + 2 + 4);
}

TEST(Instance, CsvRoundTrip) {
  const Instance instance({Job{0, 3}, Job{5, 1}}, 7, 2);
  std::ostringstream os;
  instance.save_csv(os);
  std::istringstream is(os.str());
  const Instance loaded = Instance::load_csv(is);
  EXPECT_EQ(loaded, instance);
}

TEST(Instance, CsvRejectsBadHeader) {
  std::istringstream is("bogus\n1,2\n");
  EXPECT_THROW(Instance::load_csv(is), std::runtime_error);
}

TEST(Instance, ToStringMentionsParameters) {
  const Instance instance({Job{1, 2}}, 3, 1);
  const std::string repr = instance.to_string();
  EXPECT_NE(repr.find("T=3"), std::string::npos);
  EXPECT_NE(repr.find("(1, w2)"), std::string::npos);
}

}  // namespace
}  // namespace calib

file(REMOVE_RECURSE
  "CMakeFiles/test_nonunit.dir/test_nonunit.cpp.o"
  "CMakeFiles/test_nonunit.dir/test_nonunit.cpp.o.d"
  "test_nonunit"
  "test_nonunit.pdb"
  "test_nonunit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nonunit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "serve/daemon.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <deque>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/executor/recorder.hpp"
#include "harness/journal.hpp"
#include "obs/json_escape.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/io.hpp"
#include "util/framing.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace calib::serve {
namespace {

using harness::FlightRecorder;
using harness::ServeFault;
using harness::SweepJournal;

/// Journal identity for serve session journals: resuming a sweep
/// journal (or vice versa) must fail the fingerprint check.
constexpr std::uint64_t kServeJournalFingerprint = 0x53455256454A4C31ull;

// Handle bundle resolved once (serve_metrics_warmup) so no fork or
// contended first-use can land inside the registry mutex.
struct ServeMetrics {
  obs::Counter conns_opened = obs::metrics().counter("serve.conns_opened");
  obs::Counter conns_dropped = obs::metrics().counter("serve.conns_dropped");
  obs::Counter sessions_opened =
      obs::metrics().counter("serve.sessions_opened");
  obs::Counter submits = obs::metrics().counter("serve.submits");
  obs::Counter sheds = obs::metrics().counter("serve.sheds");
  obs::Counter degraded = obs::metrics().counter("serve.degraded");
  obs::Counter late_decisions =
      obs::metrics().counter("serve.late_decisions");
  obs::Counter journal_replays =
      obs::metrics().counter("serve.journal_replays");
  obs::Gauge sessions_active = obs::metrics().gauge("serve.sessions_active");
  obs::Gauge conns_active = obs::metrics().gauge("serve.conns_active");
  obs::Histogram decision_us = obs::metrics().histogram("serve.decision_us");
};

ServeMetrics& metrics_bundle() {
  static ServeMetrics metrics;
  return metrics;
}

void ignore_sigpipe() {
  static const bool installed = [] {
    (void)std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)installed;
}

// The SIGTERM/SIGINT disposition: poke the active daemon's wake pipe.
// write_all is async-signal-safe; the loop translates the 'S' byte
// into a graceful drain.
std::atomic<int> g_signal_wake_fd{-1};

void on_terminate_signal(int /*sig*/) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) (void)write_all(fd, "S", 1);
}

std::string hello_journal_line(const HelloRequest& hello) {
  return "{\"event\":\"hello\",\"tenant\":\"" +
         obs::json_escape(hello.tenant) + "\",\"policy\":\"" +
         obs::json_escape(hello.policy) +
         "\",\"T\":" + std::to_string(hello.T) +
         ",\"machines\":" + std::to_string(hello.machines) +
         ",\"G\":" + std::to_string(hello.G) +
         ",\"seed\":" + std::to_string(hello.seed) +
         ",\"period\":" + std::to_string(hello.period) + "}";
}

std::string job_journal_line(const std::string& tenant, const SubmitJob& job) {
  return "{\"event\":\"job\",\"tenant\":\"" + obs::json_escape(tenant) +
         "\",\"release\":" + std::to_string(job.release) +
         ",\"weight\":" + std::to_string(job.weight) + "}";
}

std::string bye_journal_line(const std::string& tenant) {
  return "{\"event\":\"bye\",\"tenant\":\"" + obs::json_escape(tenant) +
         "\"}";
}

/// One decision's (or drain's) result, handed from a pool worker back
/// to the event loop.
struct Completion {
  std::uint64_t conn_id = 0;
  std::string tenant;
  std::vector<std::pair<ServeFrame, std::string>> frames;
  std::string journal_line;  ///< appended before the frames are sent
  bool demote = false;       ///< budget/internal failure: degrade tenant
  bool session_done = false; ///< goodbye drain: retire the session
  double started_ms = 0.0;
};

/// Daemon-side per-session dispatch state (the session itself is in
/// serve/session.hpp; this is the loop's bookkeeping around it).
struct SessionRuntime {
  std::shared_ptr<TenantSession> session;
  std::deque<SubmitJob> queue;  ///< admitted, not yet dispatched
  bool busy = false;            ///< one in-flight pool task
  bool goodbye = false;         ///< drain requested by the client
  bool goodbye_dispatched = false;
  std::uint64_t conn_id = 0;  ///< bound connection (0 = detached)
};

}  // namespace

void serve_metrics_warmup() { (void)metrics_bundle(); }

ServeDaemon::ServeDaemon(ServeOptions options)
    : options_(std::move(options)) {}

ServeDaemon::~ServeDaemon() = default;

void ServeDaemon::stop() {
  stop_requested_.store(true, std::memory_order_release);
  const MutexLock lock(wake_mutex_);
  if (wake_fd_ >= 0) (void)write_all(wake_fd_, "S", 1);
}

bool ServeDaemon::wait_ready(double timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  while (!ready_.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

int ServeDaemon::run() {
  ignore_sigpipe();
  serve_metrics_warmup();
  ServeMetrics& metrics = metrics_bundle();

  FlightRecorder flight(options_.events);
  const std::uint64_t start_ns = obs::now_ns();
  const auto run_ms = [start_ns] {
    return static_cast<double>(obs::now_ns() - start_ns) * 1e-6;
  };
  const auto note = [this](const std::string& line) {
    if (options_.log != nullptr) {
      *options_.log << "serve: " << line << '\n';
      options_.log->flush();
    }
  };

  // ---- Journal (open before listeners: a bad journal is a startup
  // failure, not a half-up daemon).
  std::unique_ptr<SweepJournal> journal;
  if (!options_.journal_path.empty()) {
    try {
      journal = std::make_unique<SweepJournal>(
          options_.journal_path, kServeJournalFingerprint, /*cells=*/0,
          options_.resume);
    } catch (const std::exception& e) {
      note(std::string("journal open failed: ") + e.what());
      return 1;
    }
  }

  // ---- Session table, restored from the journal on --resume. Replay
  // runs the exact submit path, so a restored session continues
  // byte-identically from where the journal left off.
  std::map<std::string, SessionRuntime> tenants;
  if (journal != nullptr && options_.resume) {
    for (const auto& entry : journal->entries()) {
      const auto event = entry.find("event");
      if (event == entry.end()) continue;
      try {
        if (event->second == "hello") {
          HelloRequest hello;
          hello.tenant = entry.at("tenant");
          hello.policy = entry.at("policy");
          hello.T = std::stoll(entry.at("T"));
          hello.machines = static_cast<int>(std::stol(entry.at("machines")));
          hello.G = std::stoll(entry.at("G"));
          hello.seed = std::stoull(entry.at("seed"));
          hello.period = std::stoll(entry.at("period"));
          SessionRuntime rt;
          rt.session =
              std::make_shared<TenantSession>(hello, options_.limits);
          tenants.insert_or_assign(hello.tenant, std::move(rt));
        } else if (event->second == "job") {
          const auto it = tenants.find(entry.at("tenant"));
          if (it == tenants.end()) continue;  // torn journal tail
          SubmitJob job;
          job.release = std::stoll(entry.at("release"));
          job.weight = std::stoll(entry.at("weight"));
          it->second.session->replay(job);
          metrics.journal_replays.add();
        } else if (event->second == "bye") {
          tenants.erase(entry.at("tenant"));
        }
      } catch (const std::exception& e) {
        note(std::string("journal replay: skipping entry: ") + e.what());
      }
    }
    note("resumed " + std::to_string(tenants.size()) + " session(s)");
    flight.event(run_ms(), "resume",
                 {{"sessions", std::to_string(tenants.size())}});
  }
  metrics.sessions_active.set(static_cast<std::int64_t>(tenants.size()));

  // ---- Listeners.
  std::vector<int> listeners;
  std::string error;
  if (!options_.socket_path.empty()) {
    const int fd = listen_unix(options_.socket_path, &error);
    if (fd < 0) {
      note("listen failed: " + error);
      return 1;
    }
    listeners.push_back(fd);
    flight.event(run_ms(), "listen", {{"unix", options_.socket_path}});
  }
  if (options_.tcp_port >= 0) {
    int bound = -1;
    const int fd = listen_tcp(options_.tcp_port, &bound, &error);
    if (fd < 0) {
      note("listen failed: " + error);
      for (const int l : listeners) ::close(l);
      return 1;
    }
    listeners.push_back(fd);
    bound_tcp_port_.store(bound, std::memory_order_release);
    flight.event(run_ms(), "listen", {{"tcp", std::to_string(bound)}});
  }
  if (listeners.empty()) {
    note("no listener configured (need --socket or --tcp)");
    return 1;
  }

  // ---- Wake pipe: completions and signals poke the poll loop.
  int wake[2] = {-1, -1};
  if (::pipe(wake) != 0) {
    note("pipe failed");
    for (const int l : listeners) ::close(l);
    return 1;
  }
  {
    const MutexLock lock(wake_mutex_);
    wake_fd_ = wake[1];
  }
  g_signal_wake_fd.store(wake[1], std::memory_order_release);
  using SignalHandler = void (*)(int);
  const SignalHandler old_term = std::signal(SIGTERM, on_terminate_signal);
  const SignalHandler old_int = std::signal(SIGINT, on_terminate_signal);

  // Completion queue (locals precede the pool so worker tasks can hold
  // references; the pool is reset before any of this goes away).
  Mutex completion_mutex;
  std::vector<Completion> completions;
  const int wake_wr = wake[1];
  auto pool = std::make_unique<ThreadPool>(options_.threads);

  std::map<std::uint64_t, Connection> conns;
  std::uint64_t next_conn_id = 1;
  bool draining = false;
  double drain_deadline_ms = 0.0;

  // ---- Helpers (event-loop thread only). --------------------------

  const auto enqueue = [&](Connection& conn, ServeFrame type,
                           const std::string& payload) {
    if (conn.dead) return;
    conn.outbound += encode_serve_frame(type, payload);
    if (conn.outbound.size() > options_.outbound_hard_cap) {
      metrics.conns_dropped.add();
      flight.event(run_ms(), "conn_drop", {{"why", "outbound_hard_cap"}});
      close_connection(conn);
    }
  };

  const auto shed = [&](Connection& conn, const std::string& detail,
                        std::int64_t retry_after_ms) {
    metrics.sheds.add();
    flight.event(run_ms(), "shed", {{"tenant", conn.tenant}});
    enqueue(conn, ServeFrame::kError,
            encode_error({"RETRY_AFTER", detail, retry_after_ms}));
  };

  const auto dispatch_next = [&](const std::string& tenant) {
    const auto it = tenants.find(tenant);
    if (it == tenants.end()) return;
    SessionRuntime& rt = it->second;
    if (rt.busy) return;
    if (!rt.queue.empty()) {
      const SubmitJob job = rt.queue.front();
      rt.queue.pop_front();
      rt.busy = true;
      const double started = run_ms();
      rt.session->busy_since_ms.store(started, std::memory_order_release);
      std::shared_ptr<TenantSession> session = rt.session;
      const std::uint64_t conn_id = rt.conn_id;
      const ServeFault* slow =
          options_.faults.match(ServeFault::Kind::kSlowTenant, tenant);
      const std::int64_t slow_ms = slow != nullptr ? slow->param : 0;
      pool->submit([session, job, conn_id, tenant, started, slow_ms,
                    &completion_mutex, &completions, wake_wr] {
        if (slow_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(slow_ms));
        }
        Completion c;
        c.conn_id = conn_id;
        c.tenant = tenant;
        c.started_ms = started;
        try {
          const Decision decision = session->submit(job);
          c.frames.emplace_back(ServeFrame::kDecision,
                                encode_decision(decision));
          c.journal_line = job_journal_line(tenant, job);
        } catch (const ServeError& e) {
          c.frames.emplace_back(
              ServeFrame::kError,
              encode_error({e.code(), e.what(), e.retry_after_ms()}));
        } catch (const BudgetExceeded& e) {
          c.demote = true;
          c.frames.emplace_back(ServeFrame::kError,
                                encode_error({"BUDGET_EXCEEDED", e.what(), 0}));
        } catch (const std::exception& e) {
          c.demote = true;
          c.frames.emplace_back(ServeFrame::kError,
                                encode_error({"INTERNAL", e.what(), 0}));
        }
        {
          const MutexLock lock(completion_mutex);
          completions.push_back(std::move(c));
        }
        (void)write_all(wake_wr, "C", 1);
      });
      return;
    }
    if (rt.goodbye && !rt.goodbye_dispatched) {
      rt.goodbye_dispatched = true;
      rt.busy = true;
      const double started = run_ms();
      rt.session->busy_since_ms.store(started, std::memory_order_release);
      std::shared_ptr<TenantSession> session = rt.session;
      const std::uint64_t conn_id = rt.conn_id;
      pool->submit([session, conn_id, tenant, started, &completion_mutex,
                    &completions, wake_wr] {
        Completion c;
        c.conn_id = conn_id;
        c.tenant = tenant;
        c.started_ms = started;
        c.session_done = true;
        const TenantStats stats = session->drain();  // never throws
        c.frames.emplace_back(ServeFrame::kTenantStats, encode_stats(stats));
        c.frames.emplace_back(ServeFrame::kGoodbye, "");
        c.journal_line = bye_journal_line(tenant);
        {
          const MutexLock lock(completion_mutex);
          completions.push_back(std::move(c));
        }
        (void)write_all(wake_wr, "C", 1);
      });
    }
  };

  // Deliver one completion's frames, applying delivery-side fault
  // injection (disconnect-mid-frame, corrupt-frame, flood).
  const auto deliver = [&](Connection& conn, Completion& c,
                           SessionRuntime* rt) {
    bool has_decision = false;
    for (const auto& [type, payload] : c.frames) {
      if (type == ServeFrame::kDecision) has_decision = true;
    }
    if (has_decision && !conn.fault_fired) {
      if (const ServeFault* f = options_.faults.match(
              ServeFault::Kind::kDisconnectMidFrame, c.tenant)) {
        (void)f;
        conn.fault_fired = true;
        const std::string bytes =
            encode_serve_frame(c.frames.front().first, c.frames.front().second);
        conn.outbound += bytes.substr(0, bytes.size() / 2);
        conn.want_close = true;
        flight.event(run_ms(), "fault",
                     {{"kind", "disconnect-mid-frame"}, {"tenant", c.tenant}});
        return;
      }
      if (options_.faults.match(ServeFault::Kind::kCorruptFrame, c.tenant) !=
          nullptr) {
        conn.fault_fired = true;
        conn.outbound += "\x7fGARBAGE!\x01\x02\x03";
        flight.event(run_ms(), "fault",
                     {{"kind", "corrupt-frame"}, {"tenant", c.tenant}});
      }
    }
    for (const auto& [type, payload] : c.frames) {
      enqueue(conn, type, payload);
    }
    if (has_decision && rt != nullptr) {
      if (const ServeFault* f =
              options_.faults.match(ServeFault::Kind::kFlood, c.tenant)) {
        const std::string stats = encode_stats(rt->session->stats());
        for (std::int64_t i = 0; i < f->param && !conn.dead; ++i) {
          enqueue(conn, ServeFrame::kTenantStats, stats);
        }
      }
    }
  };

  const auto process_completions = [&] {
    std::vector<Completion> batch;
    {
      const MutexLock lock(completion_mutex);
      batch.swap(completions);
    }
    for (Completion& c : batch) {
      const auto it = tenants.find(c.tenant);
      SessionRuntime* rt = it != tenants.end() ? &it->second : nullptr;
      if (rt != nullptr) {
        rt->busy = false;
        rt->session->busy_since_ms.store(-1.0, std::memory_order_release);
        const std::size_t pending =
            rt->session->pending.load(std::memory_order_acquire);
        if (pending > 0) rt->session->pending.store(pending - 1);
      }
      if (c.demote && rt != nullptr &&
          rt->session->state() == TenantSession::State::kActive) {
        rt->session->demote();
        metrics.degraded.add();
        flight.event(run_ms(), "degraded",
                     {{"tenant", c.tenant}, {"why", "decision_failed"}});
      }
      // A decision that finished after the watchdog demoted its tenant
      // is late: the stream is no longer byte-faithful, so the result
      // is replaced by an explicit error instead of delivered.
      bool late = false;
      if (rt != nullptr && !c.demote && !c.session_done &&
          rt->session->state() == TenantSession::State::kDegraded) {
        for (const auto& [type, payload] : c.frames) {
          if (type == ServeFrame::kDecision) late = true;
        }
      }
      if (late) {
        metrics.late_decisions.add();
        c.frames.clear();
        c.frames.emplace_back(
            ServeFrame::kError,
            encode_error({"DEGRADED", "decision exceeded deadline", 0}));
        c.journal_line.clear();
      }
      if (journal != nullptr && !c.journal_line.empty()) {
        try {
          journal->append(c.journal_line);
        } catch (const std::exception& e) {
          note(std::string("journal append failed: ") + e.what());
        }
      }
      metrics.decision_us.record(static_cast<std::uint64_t>(
          std::max(0.0, (run_ms() - c.started_ms) * 1000.0)));
      const auto cit = conns.find(c.conn_id);
      if (cit != conns.end() && !cit->second.dead) {
        deliver(cit->second, c, rt);
        pump_writes(cit->second);
        if (c.session_done) cit->second.want_close = true;
      }
      if (c.session_done) {
        tenants.erase(c.tenant);
        metrics.sessions_active.add(-1);
        flight.event(run_ms(), "session_done", {{"tenant", c.tenant}});
      } else if (rt != nullptr) {
        dispatch_next(c.tenant);
      }
    }
  };

  const auto handle_frame = [&](std::uint64_t conn_id, Connection& conn,
                                const RawFrame& raw) {
    switch (static_cast<ServeFrame>(raw.type)) {
      case ServeFrame::kHello: {
        if (!conn.tenant.empty()) {
          enqueue(conn, ServeFrame::kError,
                  encode_error({"PROTOCOL", "duplicate hello", 0}));
          conn.want_close = true;
          return;
        }
        HelloRequest hello;
        try {
          hello = decode_hello(raw.payload);
        } catch (const std::exception& e) {
          enqueue(conn, ServeFrame::kError,
                  encode_error({"PROTOCOL", e.what(), 0}));
          conn.want_close = true;
          return;
        }
        const auto it = tenants.find(hello.tenant);
        if (it != tenants.end()) {
          SessionRuntime& rt = it->second;
          if (!hello.resume) {
            enqueue(conn, ServeFrame::kError,
                    encode_error({"BAD_REQUEST",
                                  "tenant '" + hello.tenant +
                                      "' already exists (hello with "
                                      "resume=1 to reattach)",
                                  0}));
            conn.want_close = true;
            return;
          }
          const auto bound = conns.find(rt.conn_id);
          if (rt.conn_id != 0 && bound != conns.end() &&
              !bound->second.dead) {
            shed(conn, "tenant already connected", 1000);
            conn.want_close = true;
            return;
          }
          rt.conn_id = conn_id;
          conn.tenant = hello.tenant;
          HelloRequest ack = rt.session->hello();
          ack.resume = true;
          enqueue(conn, ServeFrame::kHello, encode_hello(ack));
          flight.event(run_ms(), "hello",
                       {{"tenant", hello.tenant}, {"resumed", "1"}});
          return;
        }
        if (tenants.size() >= options_.max_sessions) {
          shed(conn, "session table full", 1000);
          conn.want_close = true;
          return;
        }
        try {
          SessionRuntime rt;
          rt.session =
              std::make_shared<TenantSession>(hello, options_.limits);
          rt.conn_id = conn_id;
          tenants.insert_or_assign(hello.tenant, std::move(rt));
        } catch (const std::exception& e) {
          enqueue(conn, ServeFrame::kError,
                  encode_error({"BAD_REQUEST", e.what(), 0}));
          conn.want_close = true;
          return;
        }
        conn.tenant = hello.tenant;
        metrics.sessions_opened.add();
        metrics.sessions_active.add(1);
        if (journal != nullptr) {
          try {
            journal->append(hello_journal_line(hello));
          } catch (const std::exception& e) {
            note(std::string("journal append failed: ") + e.what());
          }
        }
        hello.resume = false;
        enqueue(conn, ServeFrame::kHello, encode_hello(hello));
        flight.event(run_ms(), "hello", {{"tenant", hello.tenant}});
        return;
      }
      case ServeFrame::kSubmitJob: {
        if (conn.tenant.empty()) {
          enqueue(conn, ServeFrame::kError,
                  encode_error({"PROTOCOL", "submit before hello", 0}));
          conn.want_close = true;
          return;
        }
        const auto it = tenants.find(conn.tenant);
        if (it == tenants.end()) {
          enqueue(conn, ServeFrame::kError,
                  encode_error({"UNKNOWN_TENANT", conn.tenant, 0}));
          conn.want_close = true;
          return;
        }
        SessionRuntime& rt = it->second;
        metrics.submits.add();
        if (rt.goodbye) {
          enqueue(conn, ServeFrame::kError,
                  encode_error({"BAD_REQUEST", "submit after goodbye", 0}));
          return;
        }
        if (rt.session->state() == TenantSession::State::kDegraded) {
          enqueue(conn, ServeFrame::kError,
                  encode_error({"DEGRADED", "session is degraded", 0}));
          return;
        }
        SubmitJob job;
        try {
          job = decode_submit(raw.payload);
        } catch (const std::exception& e) {
          enqueue(conn, ServeFrame::kError,
                  encode_error({"PROTOCOL", e.what(), 0}));
          conn.want_close = true;
          return;
        }
        const std::size_t in_flight = rt.queue.size() + (rt.busy ? 1 : 0);
        if (in_flight >= rt.session->limits().max_pending) {
          shed(conn, "pending budget exhausted", 100);
          return;
        }
        if (!rt.session->admit_rate(run_ms())) {
          shed(conn, "rate limit", 100);
          return;
        }
        rt.session->pending.fetch_add(1, std::memory_order_acq_rel);
        rt.queue.push_back(job);
        dispatch_next(conn.tenant);
        return;
      }
      case ServeFrame::kGoodbye: {
        if (conn.tenant.empty()) {
          conn.want_close = true;
          return;
        }
        const auto it = tenants.find(conn.tenant);
        if (it == tenants.end()) {
          conn.want_close = true;
          return;
        }
        it->second.goodbye = true;
        dispatch_next(conn.tenant);
        return;
      }
      default:
        // Clients never send kDecision/kTenantStats/kError.
        metrics.conns_dropped.add();
        flight.event(run_ms(), "conn_drop", {{"why", "protocol_breach"}});
        close_connection(conn);
        return;
    }
  };

  // ---- Event loop. -------------------------------------------------

  ready_.store(true, std::memory_order_release);
  note("listening" +
       (options_.socket_path.empty() ? "" : " unix:" + options_.socket_path) +
       (tcp_port() < 0 ? "" : " tcp:" + std::to_string(tcp_port())));

  while (true) {
    if (stop_requested_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      drain_deadline_ms = run_ms() + options_.drain_grace_ms;
      for (const int fd : listeners) ::close(fd);
      listeners.clear();
      flight.event(run_ms(), "drain", {});
      note("draining (grace " +
           std::to_string(static_cast<long>(options_.drain_grace_ms)) +
           " ms)");
    }
    if (draining) {
      bool idle = true;
      for (const auto& [tenant, rt] : tenants) {
        if (rt.busy || !rt.queue.empty()) idle = false;
      }
      if (idle || run_ms() > drain_deadline_ms) break;
    }

    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (0 = other)
    fds.push_back(pollfd{wake[0], POLLIN, 0});
    fd_conn.push_back(0);
    for (const int fd : listeners) {
      fds.push_back(pollfd{fd, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (auto& [id, conn] : conns) {
      if (conn.dead || conn.fd < 0) continue;
      short events = 0;
      // Backpressure: past the soft cap the daemon stops reading this
      // peer entirely — its floods back up in the kernel, not here.
      if (!draining && conn.outbound.size() < options_.outbound_soft_cap) {
        events |= POLLIN;
      }
      if (!conn.outbound.empty()) events |= POLLOUT;
      if (events == 0) events = POLLERR;  // still notice hangups
      fds.push_back(pollfd{conn.fd, events, 0});
      fd_conn.push_back(id);
    }

    const int npoll = poll_fds(fds.data(), fds.size(), 20);
    if (npoll < 0) {
      note("poll failed");
      break;
    }

    // Wake pipe: drain it; 'S' bytes are stop requests (from stop() or
    // a signal handler), 'C' bytes are completion pokes.
    if (fds[0].revents != 0) {
      char buf[256];
      const ssize_t n = read_some(wake[0], buf, sizeof buf);
      for (ssize_t i = 0; i < n; ++i) {
        if (buf[i] == 'S') {
          stop_requested_.store(true, std::memory_order_release);
        }
      }
    }

    // Listeners.
    std::size_t fd_index = 1;
    for (std::size_t l = 0; l < listeners.size(); ++l, ++fd_index) {
      if (fds[fd_index].revents == 0) continue;
      while (true) {
        const int fd = accept_connection(listeners[l]);
        if (fd < 0) break;
        Connection conn;
        conn.fd = fd;
        conn.last_activity_ms = run_ms();
        conns.emplace(next_conn_id, std::move(conn));
        metrics.conns_opened.add();
        metrics.conns_active.add(1);
        flight.event(run_ms(), "conn_open",
                     {{"id", std::to_string(next_conn_id)}});
        ++next_conn_id;
      }
    }

    // Connection I/O.
    for (std::size_t k = fd_index; k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      const auto cit = conns.find(fd_conn[k]);
      if (cit == conns.end()) continue;
      Connection& conn = cit->second;
      if ((fds[k].revents & POLLOUT) != 0) pump_writes(conn);
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          !conn.dead) {
        pump_reads(conn);
        conn.last_activity_ms = run_ms();
        RawFrame raw;
        while (!conn.dead && conn.reader.next(raw)) {
          handle_frame(fd_conn[k], conn, raw);
        }
        if (conn.reader.corrupted()) {
          metrics.conns_dropped.add();
          flight.event(run_ms(), "conn_drop",
                       {{"why", "corrupt_frame"},
                        {"error", conn.reader.error()}});
          close_connection(conn);
        }
        if (!conn.dead) pump_writes(conn);
      }
    }

    process_completions();

    // Decision-deadline watchdog: a tenant stuck past its deadline is
    // demoted; the pool thread keeps running (cooperative budgets end
    // it eventually) but its late result will be discarded.
    const double deadline = options_.limits.decision_deadline_ms;
    if (deadline > 0.0) {
      const double now_ms = run_ms();
      for (auto& [tenant, rt] : tenants) {
        if (!rt.busy) continue;
        if (rt.session->state() != TenantSession::State::kActive) continue;
        const double since =
            rt.session->busy_since_ms.load(std::memory_order_acquire);
        if (since >= 0.0 && now_ms - since > deadline) {
          rt.session->demote();
          metrics.degraded.add();
          flight.event(run_ms(), "degraded",
                       {{"tenant", tenant}, {"why", "deadline"}});
        }
      }
    }

    // Connection reaper: idle and half-open sockets are closed; the
    // session survives for a later resume-hello.
    if (options_.idle_timeout_ms > 0.0) {
      const double now_ms = run_ms();
      for (auto& [id, conn] : conns) {
        if (conn.dead) continue;
        if (now_ms - conn.last_activity_ms > options_.idle_timeout_ms) {
          flight.event(run_ms(), "conn_reap", {{"tenant", conn.tenant}});
          close_connection(conn);
        }
      }
    }

    // Sweep dead connections: detach their session binding and close.
    for (auto it = conns.begin(); it != conns.end();) {
      if (!it->second.dead) {
        ++it;
        continue;
      }
      if (!it->second.tenant.empty()) {
        const auto tit = tenants.find(it->second.tenant);
        if (tit != tenants.end() && tit->second.conn_id == it->first) {
          tit->second.conn_id = 0;
        }
      }
      close_connection(it->second);
      metrics.conns_active.add(-1);
      flight.event(run_ms(), "conn_close", {{"id", std::to_string(it->first)}});
      it = conns.erase(it);
    }
  }

  // ---- Graceful drain tail: wait for stragglers, emit final stats,
  // flush, exit 0.
  pool.reset();  // joins workers; every admitted decision has completed
  process_completions();

  for (auto& [tenant, rt] : tenants) {
    const auto cit = conns.find(rt.conn_id);
    if (rt.conn_id == 0 || cit == conns.end() || cit->second.dead) continue;
    enqueue(cit->second, ServeFrame::kTenantStats,
            encode_stats(rt.session->stats()));
    enqueue(cit->second, ServeFrame::kGoodbye, "");
  }
  const double flush_deadline = run_ms() + 1000.0;
  while (run_ms() < flush_deadline) {
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn;
    for (auto& [id, conn] : conns) {
      if (conn.dead || conn.fd < 0 || conn.outbound.empty()) continue;
      fds.push_back(pollfd{conn.fd, POLLOUT, 0});
      fd_conn.push_back(id);
    }
    if (fds.empty()) break;
    if (poll_fds(fds.data(), fds.size(), 50) <= 0) continue;
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      const auto cit = conns.find(fd_conn[k]);
      if (cit != conns.end()) pump_writes(cit->second);
    }
  }

  for (auto& [id, conn] : conns) close_connection(conn);
  for (const int fd : listeners) ::close(fd);
  flight.event(run_ms(), "shutdown",
               {{"sessions", std::to_string(tenants.size())}});
  note("drained; exiting");

  g_signal_wake_fd.store(-1, std::memory_order_release);
  (void)std::signal(SIGTERM, old_term);
  (void)std::signal(SIGINT, old_int);
  ::close(wake[0]);
  {
    const MutexLock lock(wake_mutex_);
    wake_fd_ = -1;
    ::close(wake[1]);
  }
  ready_.store(false, std::memory_order_release);
  return 0;
}

}  // namespace calib::serve

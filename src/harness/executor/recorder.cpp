#include "harness/executor/recorder.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/json_escape.hpp"

namespace calib::harness {
namespace {

// Deterministic double format shared with the other harness writers.
std::string fmt(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  return os.str();
}

// Fixed-point seconds for the human status line ("12.3s").
std::string secs(double ms) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << ms / 1000.0 << 's';
  return os.str();
}

}  // namespace

void FlightRecorder::event(
    double t_ms, const char* kind,
    std::initializer_list<std::pair<const char*, std::string>> fields) {
  if (os_ == nullptr) return;
  *os_ << "{\"t_ms\":" << fmt(t_ms) << ",\"event\":\""
       << obs::json_escape(kind) << '"';
  for (const auto& [key, value] : fields) {
    *os_ << ",\"" << obs::json_escape(key) << "\":\"" << obs::json_escape(value)
         << '"';
  }
  *os_ << "}\n";
  os_->flush();
}

ProgressMeter::ProgressMeter(std::ostream* os, std::size_t total,
                             double interval_ms, double stale_after_ms)
    : os_(os),
      total_(total),
      interval_ms_(interval_ms > 0.0 ? interval_ms : 500.0),
      stale_after_ms_(stale_after_ms) {}

bool ProgressMeter::due(double now_ms) const {
  return os_ != nullptr && now_ms - last_render_ms_ >= interval_ms_;
}

void ProgressMeter::render(double now_ms, std::size_t done, std::size_t failed,
                           std::size_t retries,
                           const std::vector<WorkerHealth>& workers) {
  if (os_ == nullptr) return;
  last_render_ms_ = now_ms;

  // Rolling rate: completions across the sample window (the window
  // spans ~10 render intervals, so the estimate follows the current
  // fleet, not the run's lifetime average).
  window_.emplace_back(now_ms, done);
  while (window_.size() > 10) window_.pop_front();
  double rate = 0.0;  // cells per second
  if (window_.size() >= 2) {
    const double dt_ms = window_.back().first - window_.front().first;
    const auto dn = static_cast<double>(window_.back().second -
                                        window_.front().second);
    if (dt_ms > 0.0) rate = dn * 1000.0 / dt_ms;
  }

  std::ostringstream line;
  line << "[sweep +" << secs(now_ms) << "] " << done << '/' << total_
       << " cells";
  line << " (" << (done - failed) << " ok, " << failed << " failed, "
       << retries << " retried)";
  line << " | " << std::fixed << std::setprecision(1) << rate << "/s";
  if (rate > 0.0 && done < total_) {
    line << " | eta " << secs(static_cast<double>(total_ - done) / rate *
                              1000.0);
  } else {
    line << " | eta --";
  }
  line << " |";
  for (const WorkerHealth& w : workers) {
    line << " w" << w.worker << ':';
    if (!w.alive) {
      line << (w.lost ? "dead" : "done");
    } else if (stale_after_ms_ > 0.0 && w.heartbeat_age_ms > stale_after_ms_) {
      line << "stale(" << secs(w.heartbeat_age_ms) << ')';
    } else {
      line << (w.lease >= 0 ? "busy" : "idle");
    }
  }
  *os_ << line.str() << '\n';
  os_->flush();
}

}  // namespace calib::harness

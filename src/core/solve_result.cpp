#include "core/solve_result.hpp"

#include <stdexcept>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace calib {

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kError:
      return "error";
    case RunStatus::kTimeout:
      return "timeout";
    case RunStatus::kSkipped:
      return "skipped";
    case RunStatus::kCrashed:
      return "crashed";
    case RunStatus::kInvalid:
      return "invalid";
  }
  return "error";  // unreachable; keeps -Wreturn-type quiet
}

RunStatus parse_run_status(const std::string& name) {
  if (name == "ok") return RunStatus::kOk;
  if (name == "error") return RunStatus::kError;
  if (name == "timeout") return RunStatus::kTimeout;
  if (name == "skipped") return RunStatus::kSkipped;
  if (name == "crashed") return RunStatus::kCrashed;
  if (name == "invalid") return RunStatus::kInvalid;
  throw std::runtime_error("unknown run status: " + name);
}

SolveResult summarize_schedule(const std::string& solver,
                               const Instance& instance,
                               const Schedule& schedule, Cost G,
                               double wall_ms) {
  SolveResult result;
  result.solver = solver;
  result.calibrations = static_cast<int>(schedule.calendar().count());
  result.flow = schedule.weighted_flow(instance);
  result.objective = schedule.online_cost(instance, G);
  result.wall_ms = wall_ms;
  return result;
}

}  // namespace calib

#include "core/calendar.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace calib {

Calendar::Calendar(Time T, int machines) : T_(T) {
  CALIB_CHECK(T >= 1);
  CALIB_CHECK(machines >= 1);
  starts_.resize(static_cast<std::size_t>(machines));
}

Calendar Calendar::round_robin(std::vector<Time> global_starts, Time T,
                               int machines) {
  std::sort(global_starts.begin(), global_starts.end());
  Calendar calendar(T, machines);
  MachineId m = 0;
  for (const Time start : global_starts) {
    calendar.add(m, start);
    m = static_cast<MachineId>((m + 1) % machines);
  }
  return calendar;
}

void Calendar::add(MachineId m, Time start) {
  CALIB_CHECK(m >= 0 && m < machines());
  auto& list = starts_[static_cast<std::size_t>(m)];
  list.insert(std::upper_bound(list.begin(), list.end(), start), start);
}

int Calendar::count() const {
  std::size_t total = 0;
  for (const auto& list : starts_) total += list.size();
  return static_cast<int>(total);
}

const std::vector<Time>& Calendar::starts(MachineId m) const {
  CALIB_CHECK(m >= 0 && m < machines());
  return starts_[static_cast<std::size_t>(m)];
}

std::vector<Time> Calendar::all_starts() const {
  std::vector<Time> all;
  for (const auto& list : starts_) all.insert(all.end(), list.begin(), list.end());
  std::sort(all.begin(), all.end());
  return all;
}

bool Calendar::covers(MachineId m, Time t) const {
  const auto& list = starts(m);
  // Any start in (t - T, t] covers t.
  auto it = std::upper_bound(list.begin(), list.end(), t);
  return it != list.begin() && *(it - 1) > t - T_;
}

Time Calendar::next_calibrated(MachineId m, Time t) const {
  if (covers(m, t)) return t;
  const auto& list = starts(m);
  auto it = std::lower_bound(list.begin(), list.end(), t);
  if (it == list.end()) return kUnscheduled;
  return *it;
}

std::vector<Calendar::Run> Calendar::runs(MachineId m) const {
  const auto& list = starts(m);
  std::vector<Run> result;
  for (const Time start : list) {
    if (!result.empty() && start <= result.back().end) {
      result.back().end = std::max(result.back().end, start + T_);
    } else {
      result.push_back(Run{start, start + T_});
    }
  }
  return result;
}

std::vector<Calendar::Slot> Calendar::slots() const {
  std::vector<Slot> result;
  for (MachineId m = 0; m < machines(); ++m) {
    for (const Run& run : runs(m)) {
      for (Time t = run.begin; t < run.end; ++t) {
        result.push_back(Slot{t, m});
      }
    }
  }
  std::sort(result.begin(), result.end(), [](const Slot& a, const Slot& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.machine < b.machine;
  });
  return result;
}

Time Calendar::horizon() const {
  Time best = 0;
  for (const auto& list : starts_) {
    if (!list.empty()) best = std::max(best, list.back() + T_);
  }
  return best;
}

std::string Calendar::to_string() const {
  std::ostringstream os;
  os << "Calendar(T=" << T_ << ',';
  for (MachineId m = 0; m < machines(); ++m) {
    os << " m" << m << ":[";
    const auto& list = starts(m);
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (i > 0) os << ' ';
      os << list[i];
    }
    os << ']';
  }
  os << ')';
  return os.str();
}

}  // namespace calib

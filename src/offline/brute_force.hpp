// Exhaustive offline solvers — the ground truth every other solver is
// validated against. Exponential in the number of calibrations; intended
// for small instances only.
//
// Two candidate regimes for calibration start times:
//   * kLemma42: starts restricted to { r_j + 1 - T } (Lemma 4.2 says
//     some optimal single-machine schedule ends every interval with an
//     at-release job). Sound for P = 1.
//   * kExhaustive: every integer start in [min release + 1 - T,
//     max release]. Sound always; used to validate the Lemma 4.2
//     restriction itself and for multi-machine instances.
#pragma once

#include <optional>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "offline/dp.hpp"  // kInfeasible

namespace calib {

enum class StartCandidates { kLemma42, kExhaustive };

struct OfflineSolution {
  Cost flow = kInfeasible;          ///< weighted flow; kInfeasible if none
  std::optional<Schedule> schedule;  ///< a witness if feasible

  [[nodiscard]] bool feasible() const { return flow != kInfeasible; }
};

/// Minimum weighted flow using at most `budget` calibrations. Supports
/// multiple machines: calibration multisets (multiplicity up to P per
/// start) are assigned round-robin per Observation 2.1.
OfflineSolution brute_force_budget(
    const Instance& instance, int budget,
    StartCandidates candidates = StartCandidates::kLemma42);

/// Minimum of G * #calibrations + weighted flow over every calibration
/// count up to n (the Section 3 online objective, solved offline).
OfflineSolution brute_force_online_objective(
    const Instance& instance, Cost G,
    StartCandidates candidates = StartCandidates::kLemma42);

}  // namespace calib

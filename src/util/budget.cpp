#include "util/budget.hpp"

#include <string>

namespace calib {

Budget Budget::deadline_ms(double ms) {
  Budget budget;
  budget.set_deadline_ms(ms);
  return budget;
}

Budget Budget::steps(std::uint64_t limit) {
  Budget budget;
  budget.set_step_limit(limit);
  return budget;
}

void Budget::set_deadline_ms(double ms) {
  has_deadline_ = true;
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(ms));
}

void Budget::set_step_limit(std::uint64_t limit) { step_limit_ = limit; }

void Budget::charge(std::uint64_t n) {
  if (unlimited()) return;
  used_ += n;
  if (used_ > step_limit_) {
    throw BudgetExceeded("step budget exhausted (limit " +
                         std::to_string(step_limit_) + ")");
  }
  if (!has_deadline_) return;
  since_clock_check_ += n;
  if (since_clock_check_ < kClockCheckPeriod && used_ != n) return;
  since_clock_check_ = 0;
  if (std::chrono::steady_clock::now() > deadline_) {
    throw BudgetExceeded("deadline exceeded");
  }
}

}  // namespace calib

// E10 — the deadline world (SPAA'13) as baseline, and the paper's two
// claims about it:
//   (a) Section 1: flow time relaxes hard deadlines into a tradeoff —
//       compare calibration counts and waiting across the two worlds on
//       matched workloads;
//   (b) footnote 5: an online algorithm with a calibration *budget* is
//       helpless — the minimax regret of any decision time grows
//       without bound in the horizon, whereas the cost objective admits
//       3-competitive algorithms (E2).
// Expected shape: lazy binning matches the exact optimum everywhere;
// the budgeted online regret table grows linearly with the horizon.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "deadline/edf.hpp"
#include "deadline/min_calibrations.hpp"
#include "offline/budget_search.hpp"
#include "online/alg1_unweighted.hpp"
#include "online/driver.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

void BM_LazyBinning(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  Prng prng(static_cast<std::uint64_t>(jobs));
  const DeadlineInstance instance =
      deadline_uniform_instance(jobs, jobs * 3, 4, 8, prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lazy_binning(instance));
  }
}

BENCHMARK(BM_LazyBinning)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

/// Footnote 5, quantified. One job arrives at 0; the online algorithm
/// holds a budget of exactly 1 calibration and picks a time t to spend
/// it. The adversary then either sends nothing (OPT calibrates at 0:
/// every delay step is pure regret) or sends a batch of T jobs right
/// after the interval [t, t+T) expires, with deadlines the spent budget
/// can no longer cover. Any finite t loses by an unbounded factor as
/// the horizon grows; we report the minimax deadline-miss count and
/// flow regret of the best fixed t.
struct BudgetRegret {
  Time best_t;
  double regret;  // minimax (misses in branch B, delay in branch A)
};

BudgetRegret budgeted_online_regret(Time T, Time horizon) {
  BudgetRegret best{0, 1e18};
  for (Time t = 0; t <= horizon; ++t) {
    // Branch A: nothing else arrives. Online flow = t + 1, OPT flow 1.
    const double regret_a = static_cast<double>(t + 1);
    // Branch B: T jobs arrive at horizon (after [t, t+T) has expired
    // whenever t + T <= horizon); budget spent -> all T jobs miss.
    const double regret_b =
        (t + T > horizon) ? 1.0 : static_cast<double>(T) * 1e6;
    const double worst = std::max(regret_a, regret_b);
    if (worst < best.regret) best = BudgetRegret{t, worst};
  }
  return best;
}

struct TablePrinter {
  ~TablePrinter() {
    std::cout << "\nE10a - deadline world: lazy binning vs exact minimum "
                 "calibrations (40 seeds per row):\n";
    Table a({"jobs", "T", "window", "lazy == exact", "mean calibrations"});
    for (const auto& [jobs, T, window] :
         std::vector<std::tuple<int, Time, Time>>{
             {4, 2, 4}, {5, 3, 6}, {6, 3, 5}, {6, 4, 8}}) {
      int agree = 0;
      int total = 0;
      double calibration_sum = 0.0;
      Prng prng(static_cast<std::uint64_t>(jobs * 131 + T));
      for (int seed = 0; seed < 40; ++seed) {
        const DeadlineInstance instance = deadline_uniform_instance(
            jobs, jobs * 2, T, window, prng);
        const auto lazy = lazy_binning(instance);
        const auto exact = min_calibrations_exact(instance);
        if (lazy.has_value() != exact.has_value()) continue;
        if (!lazy.has_value()) continue;
        ++total;
        if (lazy->count() == exact->count()) ++agree;
        calibration_sum += exact->count();
      }
      a.row()
          .add(jobs)
          .add(static_cast<std::int64_t>(T))
          .add(static_cast<std::int64_t>(window))
          .add(std::to_string(agree) + "/" + std::to_string(total))
          .add(calibration_sum / std::max(total, 1), 2);
    }
    a.print(std::cout);

    std::cout << "\nE10b - footnote 5: minimax regret of a budgeted "
                 "online scheduler vs horizon (unbounded), next to the "
                 "cost-model alternative (Theorem 3.3: ratio <= 3, "
                 "measured on the same single-job prefix):\n";
    Table b({"T", "horizon", "budget: best t", "budget: minimax regret",
             "cost model: alg1 ratio"});
    for (const Time T : {4, 16}) {
      for (const Time horizon : {8, 32, 128, 512}) {
        if (horizon <= T) continue;
        const BudgetRegret regret = budgeted_online_regret(T, horizon);
        // Cost-model comparison: same lone job, G = T (comparable
        // scale); Algorithm 1 vs exact OPT.
        const Instance lone({Job{0, 1}}, T);
        Alg1Unweighted policy;
        const Cost alg = online_objective(lone, /*G=*/T, policy);
        const Cost opt = offline_online_optimum(lone, T).best_cost;
        b.row()
            .add(static_cast<std::int64_t>(T))
            .add(static_cast<std::int64_t>(horizon))
            .add(static_cast<std::int64_t>(regret.best_t))
            .add(regret.regret, 1)
            .add(static_cast<double>(alg) / static_cast<double>(opt), 3);
      }
    }
    b.print(std::cout);
    std::cout << "(the budget column grows ~ horizon - T + 1; the cost "
                 "column is a constant <= 3 — the paper's case for the "
                 "flow-time objective.)\n";
  }
};
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

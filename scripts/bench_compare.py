#!/usr/bin/env python3
"""bench_compare — diff a fresh metrics sidecar against a committed
baseline, with tolerance, and gate minimum-performance claims.

The benches write flat-JSON metrics sidecars (CALIBSCHED_METRICS=<dir>,
see bench/bench_common.hpp). In CALIBSCHED_BENCH_SMALL=1 mode their
headline tables run reduced, fully deterministic grids, so the
*non-timing* metrics (work counters: steps, calibrations, DP cells,
cache hits) must reproduce run to run. This script is the gate:

  bench_compare.py --baseline bench/baselines/BENCH_alg1.json \
                   --current  /tmp/metrics/bench_alg1.metrics.json

Comparison rules:
  * Keys matching a timing/nondeterminism pattern (durations, wall
    clock, queue-depth gauges, pool scheduling, throughput readings)
    are skipped — they measure the machine, not the code.
  * Remaining numeric keys must agree within --tolerance (relative).
  * Keys present on one side only are findings (a silently vanished
    counter usually means an instrumented path stopped running).
  * --min KEY=VALUE asserts current[KEY] >= VALUE — the committed perf
    trajectory (e.g. the driver speedup gauge) is enforced here.

Exit status: 0 = within tolerance and all --min gates hold, 1 =
regression/drift, 2 = usage error (missing files, bad keys).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# Metrics whose values depend on wall clock, machine speed, or thread
# scheduling rather than on the code path taken. Matched as substrings
# of the (dotted) metric name.
NONDETERMINISTIC_PATTERNS = [
    r"_ns(\.|$)",        # nanosecond histograms (decide_ns, span_ns, ...)
    r"_us(\.|$)",
    r"_ms(\.|$)",
    r"seconds",
    r"wall",
    r"wait",             # queue waits depend on pool scheduling
    r"queue_depth",      # gauge sampled mid-flight
    r"per_sec",          # throughput readings (gated via --min instead)
    r"speedup",          # ditto
    r"dp_cache",         # cross-thread eviction order varies
    r"pool\.",           # thread-pool internals
    r"heartbeat",        # executor heartbeat count scales with wall time
]
NONDETERMINISTIC_RE = re.compile("|".join(NONDETERMINISTIC_PATTERNS))


def load_flat(path: Path) -> dict[str, float]:
    try:
        data = json.loads(path.read_text())
    except OSError as error:
        print(f"bench_compare: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as error:
        print(f"bench_compare: {path} is not JSON: {error}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict):
        print(f"bench_compare: {path} must hold one flat JSON object",
              file=sys.stderr)
        sys.exit(2)
    flat: dict[str, float] = {}
    for key, value in data.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[key] = float(value)
    return flat


def relative_delta(old: float, new: float) -> float:
    if old == new:
        return 0.0
    scale = max(abs(old), abs(new), 1.0)
    return abs(new - old) / scale


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed BENCH_*.json baseline")
    parser.add_argument("--current", required=True, type=Path,
                        help="freshly generated *.metrics.json sidecar")
    parser.add_argument("--tolerance", type=float, default=0.0,
                        help="allowed relative drift for compared keys "
                        "(default %(default)s — exact match)")
    parser.add_argument("--min", action="append", default=[],
                        metavar="KEY=VALUE", dest="minimums",
                        help="require current[KEY] >= VALUE; repeatable "
                        "(perf-trajectory gates)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail on keys present in only one file "
                        "(for transitional metric renames)")
    args = parser.parse_args()

    baseline = load_flat(args.baseline)
    current = load_flat(args.current)

    failures: list[str] = []
    compared = 0
    skipped = 0
    for key in sorted(set(baseline) | set(current)):
        if NONDETERMINISTIC_RE.search(key):
            skipped += 1
            continue
        if key not in current:
            if not args.allow_missing:
                failures.append(f"{key}: present in baseline, missing from "
                                "current run")
            continue
        if key not in baseline:
            if not args.allow_missing:
                failures.append(f"{key}: new metric not in baseline "
                                "(regenerate the baseline to adopt it)")
            continue
        compared += 1
        delta = relative_delta(baseline[key], current[key])
        if delta > args.tolerance:
            failures.append(
                f"{key}: baseline {baseline[key]:g} vs current "
                f"{current[key]:g} (drift {delta:.2%} > "
                f"{args.tolerance:.2%})")

    for gate in args.minimums:
        key, sep, value_text = gate.partition("=")
        if not sep:
            print(f"bench_compare: --min needs KEY=VALUE, got '{gate}'",
                  file=sys.stderr)
            return 2
        try:
            threshold = float(value_text)
        except ValueError:
            print(f"bench_compare: --min value not numeric: '{gate}'",
                  file=sys.stderr)
            return 2
        actual = current.get(key)
        if actual is None:
            failures.append(f"--min {key}: metric absent from current run")
        elif actual < threshold:
            failures.append(f"--min {key}: {actual:g} < required "
                            f"{threshold:g}")

    for failure in failures:
        print(f"bench_compare: {failure}")
    status = "FAIL" if failures else "OK"
    print(f"bench_compare: {status} — {compared} compared, {skipped} "
          f"timing keys skipped, {len(args.minimums)} min-gate(s), "
          f"{len(failures)} failure(s)", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

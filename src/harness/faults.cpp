#include "harness/faults.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/prng.hpp"

namespace calib::harness {

bool FaultPlan::empty() const {
  return throw_cells.empty() && timeout_cells.empty() &&
         throw_probability == 0.0 && timeout_probability == 0.0;
}

FaultPlan::Action FaultPlan::action(const CellCoords& coords) const {
  const auto listed = [&](const std::vector<std::size_t>& cells) {
    return std::find(cells.begin(), cells.end(), coords.index) != cells.end();
  };
  if (listed(throw_cells)) return Action::kThrow;
  if (listed(timeout_cells)) return Action::kTimeout;
  if (throw_probability == 0.0 && timeout_probability == 0.0) {
    return Action::kNone;
  }
  // Fresh root per cell, exactly like the instance/policy streams: the
  // draw depends only on (seed, cell index), never on evaluation order.
  Prng root(seed);
  Prng stream = root.split(coords.index);
  const double draw = stream.uniform01();
  if (draw < throw_probability) return Action::kThrow;
  if (draw < throw_probability + timeout_probability) {
    return Action::kTimeout;
  }
  return Action::kNone;
}

void FaultPlan::validate() const {
  if (throw_probability < 0.0 || throw_probability > 1.0 ||
      timeout_probability < 0.0 || timeout_probability > 1.0 ||
      throw_probability + timeout_probability > 1.0) {
    throw std::runtime_error(
        "fault plan: probabilities must lie in [0, 1] and sum to <= 1");
  }
}

}  // namespace calib::harness

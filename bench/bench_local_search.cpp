// E16 — the practical offline fallback: local search on the online
// objective, where the paper's DP does not reach (P > 1) and online
// algorithms leave constant factors on the table.
// Expected shape: within a few percent of the exact DP at P = 1; close
// to the LP lower bound at P in {2, 4}; always below Algorithm 2/3's
// online cost (offline information helps).
#include <benchmark/benchmark.h>

#include <iostream>
#include <mutex>

#include "bench_common.hpp"
#include "lp/calib_lp.hpp"
#include "offline/local_search.hpp"
#include "online/alg3_multi.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

void BM_LocalSearch(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  Prng prng(static_cast<std::uint64_t>(jobs));
  const Instance instance = sparse_uniform_instance(
      jobs, jobs * 3, 4, 2, WeightModel::kUniform, 5, prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(local_search_offline(instance, 12));
  }
}

BENCHMARK(BM_LocalSearch)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

struct TablePrinter {
  ~TablePrinter() {
    std::cout << "\nE16 - offline local search (20 seeds per row):\n";
    Table table({"P", "G", "vs exact OPT (P=1) mean/max",
                 "vs LP bound mean/max", "vs online alg3 mean"});
    for (const auto& [machines, G] :
         std::vector<std::pair<int, Cost>>{{1, 8}, {1, 20}, {2, 8},
                                           {4, 8}}) {
      Summary vs_opt;
      Summary vs_lp;
      Summary vs_online;
      std::mutex mutex;
      global_pool().parallel_for(20, [&, machines, G](std::size_t seed) {
        Prng prng(seed * 16127u +
                  static_cast<std::uint64_t>(machines * 7 + G));
        const Instance instance = sparse_uniform_instance(
            8, 16, 3, machines, WeightModel::kUnit, 1, prng);
        const Schedule schedule = local_search_offline(instance, G);
        const auto cost =
            static_cast<double>(schedule.online_cost(instance, G));
        double opt_ratio = 0.0;
        if (machines == 1) {
          opt_ratio = cost / static_cast<double>(
                                 offline_online_optimum(instance, G)
                                     .best_cost);
        }
        const double lp_ratio = cost / lp_lower_bound(instance, G);
        Alg3Multi policy;
        const double online_ratio =
            cost /
            static_cast<double>(online_objective(instance, G, policy));
        const std::scoped_lock lock(mutex);
        if (machines == 1) vs_opt.add(opt_ratio);
        vs_lp.add(lp_ratio);
        vs_online.add(online_ratio);
      });
      table.row()
          .add(machines)
          .add(static_cast<std::int64_t>(G))
          .add(vs_opt.empty()
                   ? std::string("-")
                   : (std::to_string(vs_opt.mean()).substr(0, 5) + " / " +
                      std::to_string(vs_opt.max()).substr(0, 5)))
          .add(std::to_string(vs_lp.mean()).substr(0, 5) + " / " +
               std::to_string(vs_lp.max()).substr(0, 5))
          .add(vs_online.mean(), 3);
    }
    table.print(std::cout);
    std::cout << "(vs-online < 1 means hindsight helps; vs-LP is an "
                 "upper bound on the true gap.)\n";
  }
};
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

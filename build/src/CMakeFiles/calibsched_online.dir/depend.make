# Empty dependencies file for calibsched_online.
# This may be replaced when dependencies are built.

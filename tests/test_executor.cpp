// The sharded sweep executor: the frame protocol (encode/decode, the
// poisoned-reader contract, metrics payload round-trips), Snapshot
// merging, and the coordinator/worker integration — byte-identity with
// in-process runs, the three failure-detection layers under injected
// worker faults (kill, stall, corrupt-frame), retry exhaustion, total
// fleet loss, and journal resume (including torn-line recovery) with
// the coordinator as the only journal writer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/executor/executor.hpp"
#include "harness/executor/protocol.hpp"
#include "harness/faults.hpp"
#include "harness/journal.hpp"
#include "harness/sandbox.hpp"
#include "harness/sweep.hpp"
#include "obs/metrics.hpp"

// Sanitizers intercept SIGSEGV (the report turns the death into a plain
// exit), so assertions that name SIGSEGV only hold unsanitized — same
// gate as test_sweep_sandbox.cpp.
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CALIBSCHED_TEST_SAN_SEGV 1
#endif
#endif
#if !defined(CALIBSCHED_TEST_SAN_SEGV) && \
    (defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
     defined(CALIBSCHED_TSAN))
#define CALIBSCHED_TEST_SAN_SEGV 1
#endif
#ifndef CALIBSCHED_TEST_SAN_SEGV
#define CALIBSCHED_TEST_SAN_SEGV 0
#endif

namespace calib {
namespace {

using harness::decode_metrics_payload;
using harness::decode_trace_payload;
using harness::encode_frame;
using harness::encode_metrics_payload;
using harness::Frame;
using harness::FrameReader;
using harness::FrameType;
using harness::parse_worker_faults;
using harness::SweepEngine;
using harness::SweepGrid;
using harness::SweepOptions;
using harness::SweepReport;
using harness::SweepRow;
using harness::WorkerFault;
using harness::WorkloadSpec;

SweepGrid tiny_grid(int seeds = 2) {
  WorkloadSpec spec;
  spec.kind = "poisson";
  spec.rate = 0.4;
  spec.steps = 16;
  spec.T = 3;
  SweepGrid grid;
  grid.workloads = {spec};
  grid.solvers = {"alg1", "alg2"};
  grid.G_values = {5, 9};
  grid.seeds = seeds;
  grid.base_seed = 7;
  grid.compare_to_opt = true;
  grid.threads = 1;
  return grid;
}

// Fast failure handling for tests: near-zero backoff, short heartbeats.
SweepOptions executor_options(int workers) {
  SweepOptions options;
  options.workers = workers;
  options.heartbeat_interval_ms = 20.0;
  options.heartbeat_timeout_ms = 2000.0;
  options.retry_backoff_ms = 2.0;
  options.retry_backoff_cap_ms = 20.0;
  return options;
}

std::string jsonl_of(const SweepReport& report) {
  std::ostringstream os;
  report.write_jsonl(os);
  return os.str();
}

std::string csv_of(const SweepReport& report) {
  std::ostringstream os;
  report.write_csv(os);
  return os.str();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "calibsched_" + name + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

// ---- Frame protocol ---------------------------------------------------

TEST(ExecutorProtocol, FramesRoundTripThroughTheReader) {
  const std::string bytes =
      encode_frame(FrameType::kLease, "42") +
      encode_frame(FrameType::kResult, "{\"cell\":42}") +
      encode_frame(FrameType::kShutdown, "");
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, FrameType::kLease);
  EXPECT_EQ(frame.payload, "42");
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, FrameType::kResult);
  EXPECT_EQ(frame.payload, "{\"cell\":42}");
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, FrameType::kShutdown);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_FALSE(reader.next(frame));
  EXPECT_FALSE(reader.corrupted());
}

TEST(ExecutorProtocol, ByteAtATimeFeedingReassemblesFrames) {
  const std::string bytes = encode_frame(FrameType::kHeartbeat, "{\"a\":1}");
  FrameReader reader;
  Frame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    reader.feed(bytes.data() + i, 1);
    EXPECT_FALSE(reader.next(frame)) << "frame completed early at " << i;
  }
  reader.feed(bytes.data() + bytes.size() - 1, 1);
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.payload, "{\"a\":1}");
}

TEST(ExecutorProtocol, BadMagicPoisonsTheReaderPermanently) {
  FrameReader reader;
  const char garbage[] = "not a frame at all";
  reader.feed(garbage, sizeof garbage - 1);
  EXPECT_TRUE(reader.corrupted());
  EXPECT_EQ(reader.error(), "bad frame magic");
  // Feeding a perfectly valid frame afterwards must not resurrect it:
  // inside a corrupted stream there is no trustworthy frame boundary.
  const std::string valid = encode_frame(FrameType::kLease, "1");
  reader.feed(valid.data(), valid.size());
  Frame frame;
  EXPECT_FALSE(reader.next(frame));
  EXPECT_TRUE(reader.corrupted());
}

TEST(ExecutorProtocol, UnknownTypeAndOversizedLengthArePoison) {
  {
    std::string bytes = encode_frame(FrameType::kLease, "1");
    bytes[4] = 99;  // type word
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_TRUE(reader.corrupted());
  }
  {
    std::string bytes = encode_frame(FrameType::kLease, "1");
    bytes[11] = '\x7f';  // length's high byte: claims a ~2 GiB payload
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_TRUE(reader.corrupted());
  }
}

TEST(ExecutorProtocol, OversizedPayloadIsRejectedAtEncodeTime) {
  EXPECT_THROW(
      (void)encode_frame(FrameType::kResult,
                         std::string(calib::kMaxFrameBytes + 1, 'x')),
      std::runtime_error);
}

TEST(ExecutorProtocol, MetricsPayloadRoundTrips) {
  obs::Snapshot snapshot;
  snapshot.counters["sweep.cells_ok"] = 12;
  snapshot.counters["dp.curve_states"] = 34567;
  snapshot.gauges["executor.workers"] = -3;
  obs::HistogramStats h;
  h.count = 4;
  h.sum = 123.5;
  h.min = 1.0;
  h.max = 100.25;
  h.p50 = 12.5;
  h.p90 = 90.0;
  h.p99 = 99.0;
  snapshot.histograms["sweep.cell_us"] = h;

  const obs::Snapshot back =
      decode_metrics_payload(encode_metrics_payload(snapshot));
  EXPECT_EQ(back.counters, snapshot.counters);
  EXPECT_EQ(back.gauges, snapshot.gauges);
  ASSERT_EQ(back.histograms.count("sweep.cell_us"), 1u);
  const obs::HistogramStats& r = back.histograms.at("sweep.cell_us");
  EXPECT_EQ(r.count, h.count);
  EXPECT_DOUBLE_EQ(r.sum, h.sum);
  EXPECT_DOUBLE_EQ(r.min, h.min);
  EXPECT_DOUBLE_EQ(r.max, h.max);
  EXPECT_DOUBLE_EQ(r.p50, h.p50);
  EXPECT_DOUBLE_EQ(r.p99, h.p99);
}

TEST(ExecutorProtocol, MetricsPayloadRejectsGarbage) {
  EXPECT_THROW((void)decode_metrics_payload("not json"), std::runtime_error);
  EXPECT_THROW((void)decode_metrics_payload("{\"noprefix\":1}"),
               std::runtime_error);
  EXPECT_THROW((void)decode_metrics_payload("{\"h:x.bogus\":1}"),
               std::runtime_error);
}

TEST(ExecutorProtocol, MetricsPayloadShipsRawHistogramBuckets) {
  obs::Snapshot snapshot;
  obs::HistogramStats h;
  h.count = 3;
  h.sum = 7.0;
  h.min = 1.0;
  h.max = 4.0;
  h.buckets.assign(obs::kHistogramBuckets, 0);
  h.buckets[obs::histogram_bucket_index(1)] += 1;
  h.buckets[obs::histogram_bucket_index(2)] += 1;
  h.buckets[obs::histogram_bucket_index(4)] += 1;
  snapshot.histograms["cell_us"] = h;

  const obs::Snapshot back =
      decode_metrics_payload(encode_metrics_payload(snapshot));
  const obs::HistogramStats& r = back.histograms.at("cell_us");
  ASSERT_EQ(r.buckets.size(), obs::kHistogramBuckets);
  EXPECT_EQ(r.buckets, h.buckets);
  EXPECT_EQ(r.count, 3u);
}

// ---- kTrace payloads --------------------------------------------------

obs::TraceChunk sample_chunk(std::size_t events) {
  obs::TraceChunk chunk;
  chunk.thread_names = {{0, "main"}, {1, "heartbeat"}};
  chunk.dropped = 2;
  for (std::size_t i = 0; i < events; ++i) {
    obs::TraceEvent event;
    event.name = "cell";
    event.cat = "sweep";
    event.ts_ns = 1000 * (i + 1);
    event.dur_ns = 500 + i;
    event.tid = static_cast<std::uint32_t>(i % 2);
    event.args.emplace_back("cell", std::to_string(i));
    event.args.emplace_back("note", "a \"quoted\"\nvalue");
    chunk.events.push_back(std::move(event));
  }
  return chunk;
}

TEST(ExecutorProtocol, TracePayloadRoundTrips) {
  const obs::ProcessTrace back =
      decode_trace_payload(harness::encode_trace_payload(7, 4242,
                                                         sample_chunk(3)));
  EXPECT_EQ(back.worker, 7);
  EXPECT_EQ(back.pid, 4242);
  EXPECT_EQ(back.dropped, 2u);
  EXPECT_GT(back.now_ns, 0u);
  ASSERT_EQ(back.thread_names.size(), 2u);
  EXPECT_EQ(back.thread_names[1].second, "heartbeat");
  ASSERT_EQ(back.events.size(), 3u);
  const obs::TraceEvent& e = back.events[1];
  EXPECT_EQ(e.name, "cell");
  EXPECT_EQ(e.cat, "sweep");
  EXPECT_EQ(e.ts_ns, 2000u);  // un-rebased: still the sender's clock
  EXPECT_EQ(e.dur_ns, 501u);
  EXPECT_EQ(e.tid, 1u);
  ASSERT_EQ(e.args.size(), 2u);
  EXPECT_EQ(e.args[0], (std::pair<std::string, std::string>{"cell", "1"}));
  EXPECT_EQ(e.args[1].second, "a \"quoted\"\nvalue");  // escaping survived
}

TEST(ExecutorProtocol, OversizedTraceBuffersTruncateIntoDropped) {
  const obs::TraceChunk chunk = sample_chunk(64);
  const std::string full = harness::encode_trace_payload(0, 1, chunk);
  const std::size_t cap = full.size() / 2;
  const std::string tight = harness::encode_trace_payload(0, 1, chunk, cap);
  EXPECT_LE(tight.size(), cap);
  const obs::ProcessTrace back = decode_trace_payload(tight);
  EXPECT_LT(back.events.size(), 64u);
  EXPECT_GT(back.events.size(), 0u);
  // Conservation: every event the cap shed was counted, never lost.
  EXPECT_EQ(back.events.size() + back.dropped,
            chunk.events.size() + chunk.dropped);
}

TEST(ExecutorProtocol, TracePayloadRejectsGarbage) {
  EXPECT_THROW((void)decode_trace_payload(""), std::runtime_error);
  EXPECT_THROW((void)decode_trace_payload("not json\n"), std::runtime_error);
  // Event line before any header.
  EXPECT_THROW((void)decode_trace_payload(
                   "{\"name\":\"x\",\"ts\":1,\"dur\":1,\"tid\":0}\n"),
               std::runtime_error);
  // Valid payload with a torn trailing line: still a protocol breach.
  const std::string good = harness::encode_trace_payload(0, 1, sample_chunk(1));
  EXPECT_THROW((void)decode_trace_payload(good + "{\"name\":\"x\",\"ts\":"),
               std::runtime_error);
}

TEST(ExecutorProtocol, TraceFramesAreKnownToTheReaderButTypeSixIsNot) {
  const std::string bytes = encode_frame(
      FrameType::kTrace, harness::encode_trace_payload(1, 2, sample_chunk(1)));
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, FrameType::kTrace);
  EXPECT_FALSE(reader.corrupted());

  std::string bad = encode_frame(FrameType::kLease, "1");
  bad[4] = 6;  // one past kTrace: still poison
  FrameReader poisoned;
  poisoned.feed(bad.data(), bad.size());
  EXPECT_TRUE(poisoned.corrupted());
}

// ---- Snapshot::merge --------------------------------------------------

TEST(SnapshotMerge, CountersAndGaugesAdd) {
  obs::Snapshot a;
  a.counters["x"] = 3;
  a.gauges["g"] = 5;
  obs::Snapshot b;
  b.counters["x"] = 4;
  b.counters["only_b"] = 7;
  b.gauges["g"] = -2;
  a.merge(b);
  EXPECT_EQ(a.counters.at("x"), 7u);
  EXPECT_EQ(a.counters.at("only_b"), 7u);
  EXPECT_EQ(a.gauges.at("g"), 3);
}

TEST(SnapshotMerge, HistogramsWidenAndWeightPercentiles) {
  obs::Snapshot a;
  obs::HistogramStats ha;
  ha.count = 1;
  ha.sum = 10.0;
  ha.min = 10.0;
  ha.max = 10.0;
  ha.p50 = 10.0;
  ha.p90 = 10.0;
  ha.p99 = 10.0;
  a.histograms["h"] = ha;
  obs::Snapshot b;
  obs::HistogramStats hb;
  hb.count = 3;
  hb.sum = 6.0;
  hb.min = 1.0;
  hb.max = 4.0;
  hb.p50 = 2.0;
  hb.p90 = 2.0;
  hb.p99 = 2.0;
  b.histograms["h"] = hb;
  a.merge(b);
  const obs::HistogramStats& m = a.histograms.at("h");
  EXPECT_EQ(m.count, 4u);
  EXPECT_DOUBLE_EQ(m.sum, 16.0);
  EXPECT_DOUBLE_EQ(m.min, 1.0);
  EXPECT_DOUBLE_EQ(m.max, 10.0);
  // Count-weighted mean: (10*1 + 2*3) / 4.
  EXPECT_DOUBLE_EQ(m.p50, 4.0);
}

TEST(SnapshotMerge, MergingIntoEmptyIsExact) {
  obs::Snapshot a;
  obs::Snapshot b;
  obs::HistogramStats hb;
  hb.count = 2;
  hb.sum = 3.0;
  hb.min = 1.0;
  hb.max = 2.0;
  hb.p50 = 1.5;
  hb.p90 = 2.0;
  hb.p99 = 2.0;
  b.histograms["h"] = hb;
  b.counters["c"] = 9;
  a.merge(b);
  EXPECT_EQ(a.counters.at("c"), 9u);
  EXPECT_DOUBLE_EQ(a.histograms.at("h").p50, 1.5);
  EXPECT_DOUBLE_EQ(a.histograms.at("h").min, 1.0);
}

// Build one merge side from explicit samples, with self-consistent raw
// buckets and bucket-interpolated percentiles.
obs::HistogramStats side_of(const std::vector<std::uint64_t>& values) {
  obs::HistogramStats h;
  h.buckets.assign(obs::kHistogramBuckets, 0);
  h.min = static_cast<double>(
      *std::min_element(values.begin(), values.end()));
  h.max = static_cast<double>(
      *std::max_element(values.begin(), values.end()));
  for (const std::uint64_t v : values) {
    ++h.buckets[obs::histogram_bucket_index(v)];
    ++h.count;
    h.sum += static_cast<double>(v);
  }
  h.p50 = obs::histogram_percentile(h.buckets, h.count, 0.50);
  h.p90 = obs::histogram_percentile(h.buckets, h.count, 0.90);
  h.p99 = obs::histogram_percentile(h.buckets, h.count, 0.99);
  return h;
}

TEST(SnapshotMerge, RawBucketsMakeMergedPercentilesExact) {
  // Two heavily skewed sides. A count-weighted mean of the per-side p50
  // estimates would land mid-range; the true combined distribution has
  // its median inside the small-value cluster.
  obs::Snapshot a;
  a.histograms["h"] = side_of({1, 1, 2, 2, 2});
  obs::Snapshot b;
  b.histograms["h"] = side_of({1000, 1000, 1000});
  a.merge(b);

  const obs::HistogramStats& m = a.histograms.at("h");
  EXPECT_EQ(m.count, 8u);
  ASSERT_EQ(m.buckets.size(), obs::kHistogramBuckets);
  const obs::HistogramStats combined =
      side_of({1, 1, 2, 2, 2, 1000, 1000, 1000});
  EXPECT_EQ(m.buckets, combined.buckets);
  // Merged percentiles are interpolated from the combined buckets and
  // clamped to the merged [min, max].
  EXPECT_DOUBLE_EQ(m.p50, std::clamp(combined.p50, 1.0, 1000.0));
  EXPECT_DOUBLE_EQ(m.p90, std::clamp(combined.p90, 1.0, 1000.0));
  EXPECT_DOUBLE_EQ(m.p99, std::clamp(combined.p99, 1.0, 1000.0));
  // And this is genuinely different from the weighted-mean fallback.
  const double fallback = (side_of({1, 1, 2, 2, 2}).p50 * 5 +
                           side_of({1000, 1000, 1000}).p50 * 3) /
                          8;
  EXPECT_NE(m.p50, fallback);
}

TEST(SnapshotMerge, MissingBucketsFallBackAndDropTheBuckets) {
  obs::Snapshot a;
  a.histograms["h"] = side_of({1, 1, 2, 2});
  obs::Snapshot b;
  obs::HistogramStats hb = side_of({8, 8, 8, 8});
  hb.buckets.clear();  // e.g. re-parsed from a JSON file of derived stats
  b.histograms["h"] = hb;
  a.merge(b);
  const obs::HistogramStats& m = a.histograms.at("h");
  EXPECT_EQ(m.count, 8u);
  // The approximation must not masquerade as a real distribution.
  EXPECT_TRUE(m.buckets.empty());
  // Count-weighted mean of the per-side estimates.
  EXPECT_DOUBLE_EQ(m.p50,
                   (side_of({1, 1, 2, 2}).p50 + side_of({8, 8, 8, 8}).p50) / 2);
}

// ---- Worker fault spec parsing ----------------------------------------

TEST(WorkerFaults, SpecParsesKindsWorkersAndTriggers) {
  const auto plan = parse_worker_faults("kill=1@2,stall=0@0,corrupt-frame=3@5");
  ASSERT_EQ(plan.faults.size(), 3u);
  EXPECT_EQ(plan.faults[0].kind, WorkerFault::Kind::kKill);
  EXPECT_EQ(plan.faults[0].worker, 1);
  EXPECT_EQ(plan.faults[0].after_cells, 2u);
  EXPECT_EQ(plan.faults[1].kind, WorkerFault::Kind::kStall);
  EXPECT_EQ(plan.faults[2].kind, WorkerFault::Kind::kCorruptFrame);
  EXPECT_EQ(plan.faults[2].worker, 3);
  plan.validate(4);
  EXPECT_THROW(plan.validate(3), std::runtime_error);  // worker 3 outside
}

TEST(WorkerFaults, MalformedSpecsThrow) {
  EXPECT_THROW((void)parse_worker_faults("kill"), std::runtime_error);
  EXPECT_THROW((void)parse_worker_faults("kill=1"), std::runtime_error);
  EXPECT_THROW((void)parse_worker_faults("nuke=1@2"), std::runtime_error);
  EXPECT_THROW((void)parse_worker_faults("kill=x@2"), std::runtime_error);
  EXPECT_THROW((void)parse_worker_faults("kill=1@"), std::runtime_error);
}

// ---- Options validation -----------------------------------------------

TEST(ExecutorOptions, InvalidExecutorOptionsAreRejected) {
  SweepEngine engine(tiny_grid());
  {
    SweepOptions options;
    options.workers = -1;
    EXPECT_THROW((void)engine.run(options), std::runtime_error);
  }
  {
    SweepOptions options;
    options.workers = 257;
    EXPECT_THROW((void)engine.run(options), std::runtime_error);
  }
  {
    SweepOptions options = executor_options(2);
    options.heartbeat_interval_ms = 0.0;
    EXPECT_THROW((void)engine.run(options), std::runtime_error);
  }
  {
    SweepOptions options = executor_options(2);
    options.heartbeat_timeout_ms = options.heartbeat_interval_ms / 2;
    EXPECT_THROW((void)engine.run(options), std::runtime_error);
  }
  {
    SweepOptions options = executor_options(2);
    options.max_cell_attempts = 0;
    EXPECT_THROW((void)engine.run(options), std::runtime_error);
  }
  {
    SweepOptions options = executor_options(2);
    options.retry_backoff_cap_ms = options.retry_backoff_ms / 2;
    EXPECT_THROW((void)engine.run(options), std::runtime_error);
  }
  {
    // A fault naming a worker the fleet doesn't have.
    SweepOptions options = executor_options(2);
    options.worker_faults = parse_worker_faults("kill=2@0");
    EXPECT_THROW((void)engine.run(options), std::runtime_error);
  }
  {
    // Worker faults without the executor.
    SweepOptions options;
    options.worker_faults = parse_worker_faults("kill=0@0");
    EXPECT_THROW((void)engine.run(options), std::runtime_error);
  }
}

TEST(ExecutorOptions, RetryFailedRequiresAJournalButNotTheResumeFlag) {
  SweepEngine engine(tiny_grid());
  SweepOptions options;
  options.retry_failed = true;  // no journal_path
  EXPECT_THROW((void)engine.run(options), std::runtime_error);
}

TEST(ExecutorOptions, ProgressAndEventsRequireTheExecutor) {
  SweepEngine engine(tiny_grid());
  {
    SweepOptions options;  // workers == 0: in-process
    options.progress = true;
    EXPECT_THROW((void)engine.run(options), std::runtime_error);
  }
  {
    SweepOptions options;
    options.events_path = temp_path("events_no_executor");
    EXPECT_THROW((void)engine.run(options), std::runtime_error);
  }
  {
    SweepOptions options = executor_options(2);
    options.progress = true;
    options.progress_interval_ms = 0.0;
    EXPECT_THROW((void)engine.run(options), std::runtime_error);
  }
}

// ---- Coordinator/worker integration -----------------------------------

TEST(Executor, CrashFreeRunsAreByteIdenticalToInProcess) {
  const SweepReport in_process = SweepEngine(tiny_grid()).run();
  for (const int workers : {1, 2, 3}) {
    const SweepReport sharded =
        SweepEngine(tiny_grid()).run(executor_options(workers));
    EXPECT_EQ(jsonl_of(sharded), jsonl_of(in_process)) << workers;
    EXPECT_EQ(csv_of(sharded), csv_of(in_process)) << workers;
    EXPECT_TRUE(sharded.status_counts().all_ok());
    EXPECT_EQ(sharded.timing.workers, static_cast<std::size_t>(workers));
    EXPECT_EQ(sharded.timing.workers_lost, 0u);
    EXPECT_EQ(sharded.timing.retries, 0u);
  }
}

TEST(Executor, WorkerMetricsSurviveTheWorkersExit) {
  const SweepReport report =
      SweepEngine(tiny_grid()).run(executor_options(2));
  ASSERT_TRUE(report.status_counts().all_ok());
#if CALIBSCHED_OBS
  // Every cell ran in some worker; the merged final snapshots must
  // account for all of them (each worker's registry is zeroed at fork).
  ASSERT_EQ(report.worker_metrics.counters.count("sweep.cells_ok"), 1u);
  EXPECT_EQ(report.worker_metrics.counters.at("sweep.cells_ok"),
            report.rows.size());
#endif
}

TEST(Executor, KilledWorkersLeaseIsRetriedOnSurvivors) {
  SweepOptions options = executor_options(3);
  options.worker_faults = parse_worker_faults("kill=1@2");
  const SweepReport report = SweepEngine(tiny_grid(3)).run(options);
  EXPECT_TRUE(report.status_counts().all_ok());
  EXPECT_EQ(report.timing.workers_lost, 1u);
  EXPECT_EQ(report.timing.retries, 1u);
  EXPECT_EQ(jsonl_of(report), jsonl_of(SweepEngine(tiny_grid(3)).run()));
}

TEST(Executor, StalledWorkerIsDetectedByHeartbeatTimeout) {
  SweepOptions options = executor_options(3);
  options.heartbeat_timeout_ms = 300.0;
  options.worker_faults = parse_worker_faults("stall=0@1");
  const auto start = std::chrono::steady_clock::now();
  const SweepReport report = SweepEngine(tiny_grid(3)).run(options);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(report.status_counts().all_ok());
  EXPECT_EQ(report.timing.workers_lost, 1u);
  // Detection is bounded by the timeout, not by luck: the frozen worker
  // holds its lease for ~300 ms and the sweep still finishes promptly.
  EXPECT_GE(elapsed_ms, 300.0 * 0.9);
  EXPECT_LE(elapsed_ms, 300.0 * 20);  // generous CI slack
  EXPECT_EQ(jsonl_of(report), jsonl_of(SweepEngine(tiny_grid(3)).run()));
}

TEST(Executor, CorruptResultFrameKillsTheWorkerAndRetriesTheCell) {
  SweepOptions options = executor_options(2);
  options.worker_faults = parse_worker_faults("corrupt-frame=0@1");
  const SweepReport report = SweepEngine(tiny_grid(3)).run(options);
  EXPECT_TRUE(report.status_counts().all_ok());
  EXPECT_EQ(report.timing.workers_lost, 1u);
  EXPECT_EQ(report.timing.retries, 1u);
  EXPECT_EQ(jsonl_of(report), jsonl_of(SweepEngine(tiny_grid(3)).run()));
}

TEST(Executor, TotalFleetLossDegradesEveryRemainingCell) {
  SweepOptions options = executor_options(2);
  options.max_cell_attempts = 2;
  options.worker_faults = parse_worker_faults("kill=0@1,kill=1@2");
  const SweepReport report = SweepEngine(tiny_grid(3)).run(options);
  const auto counts = report.status_counts();
  EXPECT_EQ(report.timing.workers_lost, 2u);
  EXPECT_GT(counts.ok, 0u);
  EXPECT_GT(counts.error, 0u);
  EXPECT_EQ(counts.ok + counts.error, report.rows.size());
  bool saw_no_workers = false;
  for (const SweepRow& row : report.rows) {
    if (row.status != RunStatus::kError) continue;
    EXPECT_TRUE(row.error.find("executor: ") == 0) << row.error;
    if (row.error.find("no workers remaining") != std::string::npos) {
      saw_no_workers = true;
    }
  }
  EXPECT_TRUE(saw_no_workers);
}

#if !CALIBSCHED_TEST_SAN_SEGV
TEST(Executor, RetryExhaustionYieldsADeterministicCrashedRow) {
  // fault-seed 5 makes exactly one cell of this grid (cell 4) segfault
  // (see the FaultPlan hash); the segv is a property of the cell, so it
  // kills whichever worker retries it too. With max_cell_attempts = 2
  // the cell costs two workers and lands as a terminal crashed row with
  // attempt accounting in the text, while the third worker finishes the
  // rest of the grid — the fleet never fully collapses, so the whole
  // report is deterministic, not just the exhausted row.
  SweepOptions options = executor_options(3);
  options.max_cell_attempts = 2;
  options.faults.segv_probability = 0.15;
  options.faults.seed = 5;
  const SweepReport report = SweepEngine(tiny_grid(3)).run(options);
  const auto counts = report.status_counts();
  EXPECT_EQ(counts.crashed, 1u);
  EXPECT_EQ(counts.ok, report.rows.size() - 1);
  EXPECT_EQ(report.timing.workers_lost, 2);
  EXPECT_EQ(report.timing.retries, 1);
  const SweepRow& exhausted = report.rows.at(4);
  ASSERT_EQ(exhausted.status, RunStatus::kCrashed);
  EXPECT_NE(exhausted.error.find(
                "executor: worker killed by SIGSEGV (cell 4, attempt 2 of 2)"),
            std::string::npos)
      << exhausted.error;
  // Deterministic texts: a second identical run produces identical rows.
  const SweepReport again = SweepEngine(tiny_grid(3)).run(options);
  EXPECT_EQ(jsonl_of(report), jsonl_of(again));
}
#endif

TEST(Executor, SandboxedCellsComposeWithTheExecutor) {
  SweepOptions options = executor_options(2);
  options.sandbox = true;
  const SweepReport report = SweepEngine(tiny_grid()).run(options);
  EXPECT_TRUE(report.status_counts().all_ok());
  EXPECT_EQ(jsonl_of(report), jsonl_of(SweepEngine(tiny_grid()).run()));
}

// ---- Fleet observability ----------------------------------------------

#if CALIBSCHED_OBS
// Enable span recording for one test and leave the process-global
// collector clean afterwards even when an assertion fails early.
struct TracerGuard {
  TracerGuard() {
    obs::tracer().clear();
    obs::tracer().set_enabled(true);
  }
  ~TracerGuard() {
    obs::tracer().set_enabled(false);
    obs::tracer().clear();
  }
};

TEST(Executor, MergedTraceLinksCoordinatorLeasesToWorkerCells) {
  const TracerGuard guard;
  const SweepReport report =
      SweepEngine(tiny_grid()).run(executor_options(3));
  ASSERT_TRUE(report.status_counts().all_ok());

  // Every worker completed its clock handshake and shipped a trace.
  ASSERT_EQ(report.worker_traces.size(), 3u);
  std::set<int> worker_ids;
  for (const obs::ProcessTrace& trace : report.worker_traces) {
    worker_ids.insert(trace.worker);
    EXPECT_GT(trace.pid, 0);
    bool saw_cell_span = false;
    for (const obs::TraceEvent& event : trace.events) {
      if (event.name == "cell") saw_cell_span = true;
    }
    EXPECT_TRUE(saw_cell_span) << "worker " << trace.worker;
  }
  EXPECT_EQ(worker_ids.size(), 3u);

  std::ostringstream os;
  obs::write_merged_chrome_trace(os, report.worker_traces);
  const std::string trace = os.str();
  // Distinct Perfetto processes: the coordinator plus one per worker.
  EXPECT_NE(trace.find("\"coordinator\""), std::string::npos);
  EXPECT_NE(trace.find("\"worker-0 "), std::string::npos);
  EXPECT_NE(trace.find("\"worker-1 "), std::string::npos);
  EXPECT_NE(trace.find("\"worker-2 "), std::string::npos);
  // Coordinator lease spans, linked to worker cell spans by flow events.
  EXPECT_NE(trace.find("\"name\":\"lease\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
}

TEST(Executor, MetricsTimelineAccountsForEveryCompletedCell) {
  const SweepReport report =
      SweepEngine(tiny_grid()).run(executor_options(2));
  ASSERT_TRUE(report.status_counts().all_ok());
  ASSERT_FALSE(report.timeline.empty());
  std::set<std::string> sources;
  std::uint64_t cells = 0;
  for (const obs::Timeline::Sample& sample : report.timeline.samples()) {
    sources.insert(sample.source);
    const auto it = sample.counters.find("sweep.cells_ok");
    if (it != sample.counters.end()) cells += it->second;
  }
  EXPECT_EQ(sources, (std::set<std::string>{"worker-0", "worker-1"}));
  // Deltas telescope back to the fleet-wide cumulative total.
  EXPECT_EQ(cells, report.rows.size());
}
#endif  // CALIBSCHED_OBS

TEST(Executor, FlightRecorderLogsTheDeathAndTheRetry) {
  const std::string path = temp_path("executor_events");
  // kill=1@1 only arms once worker 1 wins a second lease; on a loaded
  // machine worker 0 can drain the whole grid first. The scheduler's
  // fairness is not under test here, so rerun the sweep (the recorder
  // truncates its file each run) until the fault actually fires.
  SweepReport report;
  for (int attempt = 0; attempt < 5 && report.timing.workers_lost != 1;
       ++attempt) {
    SweepOptions options = executor_options(2);
    options.worker_faults = parse_worker_faults("kill=1@1");
    options.events_path = path;
    report = SweepEngine(tiny_grid(3)).run(options);
    EXPECT_TRUE(report.status_counts().all_ok());
  }
  ASSERT_EQ(report.timing.workers_lost, 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::map<std::string, std::string>> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    events.push_back(harness::parse_flat_json(line));  // throws on torn
  }
  ASSERT_FALSE(events.empty());

  // The log must tell the kill=1@1 story in order: worker 1's death is
  // observed, then its lease is re-queued, and the run still completes.
  std::size_t spawns = 0;
  std::ptrdiff_t death_at = -1;
  std::ptrdiff_t retry_at = -1;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    ASSERT_EQ(e.count("t_ms"), 1u);
    ASSERT_EQ(e.count("event"), 1u);
    const std::string& kind = e.at("event");
    if (kind == "worker_spawn") ++spawns;
    if (kind == "worker_death" && e.at("worker") == "1") {
      death_at = static_cast<std::ptrdiff_t>(i);
      EXPECT_EQ(e.at("cause"), "pipe");
    }
    if (kind == "retry" && retry_at < 0) {
      retry_at = static_cast<std::ptrdiff_t>(i);
      EXPECT_EQ(e.at("attempt"), "1");  // one attempt spent so far
      EXPECT_EQ(e.count("backoff_ms"), 1u);
    }
  }
  EXPECT_EQ(spawns, 2u);
  ASSERT_GE(death_at, 0);
  ASSERT_GE(retry_at, 0);
  EXPECT_LT(death_at, retry_at);

  const auto& last = events.back();
  EXPECT_EQ(last.at("event"), "run_complete");
  EXPECT_EQ(last.at("workers_lost"), "1");
  EXPECT_EQ(last.at("cells"), std::to_string(report.rows.size()));
  std::remove(path.c_str());
}

// ---- Journal / resume under the executor ------------------------------

TEST(Executor, JournaledRunsResumeAfterACoordinatorRestart) {
  const std::string path = temp_path("executor_resume");
  const SweepReport full = SweepEngine(tiny_grid()).run();

  // "Kill" the coordinator mid-grid: stop after 3 cells, then start a
  // fresh engine over the same journal.
  SweepOptions first = executor_options(2);
  first.journal_path = path;
  first.max_cells = 3;
  const SweepReport partial = SweepEngine(tiny_grid()).run(first);
  EXPECT_EQ(partial.status_counts().skipped,
            partial.rows.size() - 3);

  SweepOptions second = executor_options(2);
  second.journal_path = path;
  second.resume = true;
  const SweepReport resumed = SweepEngine(tiny_grid()).run(second);
  EXPECT_TRUE(resumed.status_counts().all_ok());
  EXPECT_EQ(resumed.timing.resumed, 3u);
  EXPECT_EQ(jsonl_of(resumed), jsonl_of(full));
  std::remove(path.c_str());
}

TEST(Executor, TornTrailingJournalLineRecoversOnResume) {
  const std::string path = temp_path("executor_torn");
  const SweepReport full = SweepEngine(tiny_grid()).run();

  SweepOptions options = executor_options(2);
  options.journal_path = path;
  const SweepReport first = SweepEngine(tiny_grid()).run(options);
  ASSERT_TRUE(first.status_counts().all_ok());

  // Tear the journal mid-append, as a coordinator kill would: drop the
  // trailing half of the last line.
  std::string text;
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');
  const std::size_t last_start = text.rfind('\n', text.size() - 2) + 1;
  const std::size_t keep =
      last_start + (text.size() - last_start) / 2;  // half the last line
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(text.data(), static_cast<std::streamsize>(keep));
  }

  // Resume drops exactly the torn line's cell and re-runs only it.
  SweepOptions resume = executor_options(2);
  resume.journal_path = path;
  resume.resume = true;
  const SweepReport resumed = SweepEngine(tiny_grid()).run(resume);
  EXPECT_TRUE(resumed.status_counts().all_ok());
  EXPECT_EQ(resumed.timing.resumed, full.rows.size() - 1);
  EXPECT_EQ(jsonl_of(resumed), jsonl_of(full));
  std::remove(path.c_str());
}

TEST(Executor, InterruptJournalsUnfinishedCellsAndResumesByteIdentical) {
  const std::string path = temp_path("executor_interrupt");
  SweepGrid grid = tiny_grid(64);  // 256 cells: plenty to interrupt into
  const SweepReport full = SweepEngine(grid).run();

  // Run the sharded sweep on a thread; fire the interrupt hook (the
  // SIGINT/SIGTERM handler body) once the journal shows real progress.
  SweepOptions options = executor_options(2);
  options.journal_path = path;
  SweepReport partial;
  std::thread runner([&grid, &options, &partial] {
    partial = SweepEngine(grid).run(options);
  });
  for (int i = 0; i < 20000; ++i) {
    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) ++lines;
    if (lines >= 4) break;  // header + a few journaled cells
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  harness::request_sweep_interrupt();
  runner.join();

  // The run stopped early and cleanly: every cell is accounted for as
  // either a finished row or a journaled `skipped` row — never lost,
  // never an error.
  EXPECT_TRUE(partial.interrupted);
  const auto counts = partial.status_counts();
  EXPECT_GT(counts.ok, 0u);
  EXPECT_GT(counts.skipped, 0u);
  EXPECT_EQ(counts.ok + counts.skipped, partial.rows.size());

  // The journal holds one row per cell (the skipped ones included), so
  // `--resume --retry-failed` re-runs exactly the unfinished remainder
  // and the repaired report is byte-identical to an uninterrupted run.
  SweepOptions retry = executor_options(2);
  retry.journal_path = path;
  retry.retry_failed = true;
  const SweepReport repaired = SweepEngine(grid).run(retry);
  EXPECT_FALSE(repaired.interrupted);
  EXPECT_TRUE(repaired.status_counts().all_ok());
  EXPECT_EQ(repaired.timing.resumed, counts.ok);
  EXPECT_EQ(jsonl_of(repaired), jsonl_of(full));
  std::remove(path.c_str());
}

TEST(Executor, RetryFailedImpliesResumeAndReRunsOnlyFailures) {
  const std::string path = temp_path("executor_retry_failed");
  const SweepReport full = SweepEngine(tiny_grid()).run();

  // Seed the journal with deterministic failures (thrown cells).
  SweepOptions faulty = executor_options(2);
  faulty.journal_path = path;
  faulty.faults.throw_probability = 0.3;
  faulty.faults.seed = 1;
  const SweepReport broken = SweepEngine(tiny_grid()).run(faulty);
  const std::size_t failed = broken.status_counts().error;
  ASSERT_GT(failed, 0u);

  // retry_failed without the resume flag: resume is implied, the ok
  // rows replay from the journal, only the failures re-run.
  SweepOptions retry = executor_options(2);
  retry.journal_path = path;
  retry.retry_failed = true;
  const SweepReport repaired = SweepEngine(tiny_grid()).run(retry);
  EXPECT_TRUE(repaired.status_counts().all_ok());
  EXPECT_EQ(repaired.timing.resumed, full.rows.size() - failed);
  EXPECT_EQ(jsonl_of(repaired), jsonl_of(full));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace calib

file(REMOVE_RECURSE
  "libcalibsched_deadline.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/calibsched_cli.dir/calibsched_cli.cpp.o"
  "CMakeFiles/calibsched_cli.dir/calibsched_cli.cpp.o.d"
  "calibsched_cli"
  "calibsched_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibsched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

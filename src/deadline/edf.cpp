#include "deadline/edf.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace calib {
namespace {

struct EarliestDeadline {
  const DeadlineInstance* instance;
  bool operator()(JobId a, JobId b) const {
    const DeadlineJob& ja = instance->job(a);
    const DeadlineJob& jb = instance->job(b);
    if (ja.deadline != jb.deadline) return ja.deadline > jb.deadline;
    if (ja.release != jb.release) return ja.release > jb.release;
    return a > b;
  }
};

}  // namespace

EdfResult edf_schedule(const DeadlineInstance& instance,
                       const Calendar& calendar) {
  CALIB_CHECK(calendar.T() == instance.T());
  CALIB_CHECK(calendar.machines() == instance.machines());
  EdfResult result;
  result.start.assign(static_cast<std::size_t>(instance.size()),
                      kUnscheduled);
  result.machine.assign(static_cast<std::size_t>(instance.size()), 0);

  // Jobs ordered by release for the arrival sweep.
  std::vector<JobId> by_release(static_cast<std::size_t>(instance.size()));
  for (JobId j = 0; j < instance.size(); ++j) {
    by_release[static_cast<std::size_t>(j)] = j;
  }
  std::sort(by_release.begin(), by_release.end(), [&](JobId a, JobId b) {
    return instance.job(a).release < instance.job(b).release;
  });

  std::priority_queue<JobId, std::vector<JobId>, EarliestDeadline> ready{
      EarliestDeadline{&instance}};
  const auto slots = calendar.slots();
  std::size_t next_arrival = 0;
  std::size_t cursor = 0;
  while (cursor < slots.size()) {
    const Time t = slots[cursor].time;
    while (next_arrival < by_release.size() &&
           instance.job(by_release[next_arrival]).release <= t) {
      ready.push(by_release[next_arrival]);
      ++next_arrival;
    }
    while (cursor < slots.size() && slots[cursor].time == t) {
      // Drop jobs that already missed (deadline <= t means the unit
      // cannot complete by the deadline anymore).
      while (!ready.empty() &&
             instance.job(ready.top()).deadline <= t) {
        result.missed.push_back(ready.top());
        ready.pop();
      }
      if (!ready.empty()) {
        const JobId j = ready.top();
        ready.pop();
        result.start[static_cast<std::size_t>(j)] = t;
        result.machine[static_cast<std::size_t>(j)] =
            slots[cursor].machine;
      }
      ++cursor;
    }
  }
  while (next_arrival < by_release.size()) {
    result.missed.push_back(by_release[next_arrival]);
    ++next_arrival;
  }
  while (!ready.empty()) {
    result.missed.push_back(ready.top());
    ready.pop();
  }
  result.feasible = result.missed.empty();
  return result;
}

bool edf_feasible(const DeadlineInstance& instance,
                  const Calendar& calendar) {
  return edf_schedule(instance, calendar).feasible;
}

}  // namespace calib

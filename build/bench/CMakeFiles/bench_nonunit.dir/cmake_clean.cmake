file(REMOVE_RECURSE
  "CMakeFiles/bench_nonunit.dir/bench_nonunit.cpp.o"
  "CMakeFiles/bench_nonunit.dir/bench_nonunit.cpp.o.d"
  "bench_nonunit"
  "bench_nonunit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nonunit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Known-good fixture: the allowlisted I/O layer may spell the raw
// syscalls — this is where the EINTR loops live.
#include <unistd.h>

namespace calib {

bool fixture_write_all(int fd, const char* data, unsigned len) {
  while (len > 0) {
    long n = ::write(fd, data, len);
    if (n < 0) return false;
    data += n;
    len -= static_cast<unsigned>(n);
  }
  return true;
}

}  // namespace calib

// The Lemma 3.1 adaptive adversary: no deterministic online algorithm is
// better than (2 - o(1))-competitive on one machine with unweighted jobs.
//
// The adversary releases a job at time 0 and watches the policy:
//   * if the policy calibrates at time 0, one more job arrives at time T
//     (the optimum instead calibrates once, at time 1);
//   * if the policy waits, one job arrives at every step 1 .. T-1 (the
//     optimum calibrates at time 0 and runs each at its release).
// The branch ratios are 2 - 4/(G+3) and 2 - G/(T+G) respectively.
#pragma once

#include "core/instance.hpp"
#include "online/driver.hpp"
#include "online/policy.hpp"

namespace calib {

struct AdversaryOutcome {
  Instance instance;          ///< the realized job sequence
  Cost algorithm_cost = 0;    ///< policy's online objective on it
  bool calibrated_at_zero = false;
  /// The lemma's closed-form cost of the offline schedule it exhibits
  /// for this branch (an upper bound on OPT; exact for these instances).
  Cost lemma_opt_cost = 0;
};

/// Run the adversary against `policy` with parameters (G, T), P = 1.
AdversaryOutcome run_lower_bound_adversary(OnlinePolicy& policy, Cost G,
                                           Time T);

}  // namespace calib

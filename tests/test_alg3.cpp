// Algorithm 3 (Theorem 3.10): validity on multiple machines, the
// Observation 3.9 invariants, the Observation 2.1 reassignment variant,
// and 12-competitiveness against the exhaustive multi-machine optimum
// on small instances.
#include <gtest/gtest.h>

#include "offline/brute_force.hpp"
#include "online/alg3_multi.hpp"
#include "online/driver.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

Cost exact_multi_opt(const Instance& instance, Cost G) {
  const OfflineSolution opt = brute_force_online_objective(
      instance, G, StartCandidates::kExhaustive);
  EXPECT_TRUE(opt.feasible());
  return opt.schedule->online_cost(instance, G);
}

TEST(Alg3, SingleMachineSingleJob) {
  const Instance instance({Job{0, 1}}, 4, 1);
  Alg3Multi policy;
  const Schedule schedule = run_online(instance, /*G=*/4, policy);
  EXPECT_EQ(schedule.validate(instance), std::nullopt);
}

TEST(Alg3, SpreadsLoadOverMachines) {
  // A burst of 2T jobs at once: the while loop calibrates both machines
  // in the same step.
  std::vector<Job> jobs;
  for (int i = 0; i < 8; ++i) jobs.push_back(Job{i / 2, 1});
  const Instance instance(jobs, 4, 2);
  Alg3Multi policy;
  const Schedule schedule = run_online(instance, /*G=*/4, policy);
  ASSERT_EQ(schedule.validate(instance), std::nullopt);
  EXPECT_GE(schedule.calendar().starts(0).size(), 1u);
  EXPECT_GE(schedule.calendar().starts(1).size(), 1u);
}

TEST(Alg3, Observation39FlowBounds) {
  Prng prng(701);
  for (int trial = 0; trial < 15; ++trial) {
    const Instance instance = sparse_uniform_instance(
        10, 20, 4, 2, WeightModel::kUnit, 1, prng);
    const Cost G = 8;
    Alg3Multi policy;
    const Schedule schedule = run_online(instance, G, policy);
    ASSERT_EQ(schedule.validate(instance), std::nullopt);
    // Observation 3.9: every job's flow after its interval's start is
    // at most 2G/T + 1 slack, and the per-interval total flow <= 3G.
    for (MachineId m = 0; m < instance.machines(); ++m) {
      for (const Time start : schedule.calendar().starts(m)) {
        Cost interval_flow = 0;
        for (const JobId j : schedule.jobs_in_interval(m, start)) {
          const Cost after_start =
              schedule.placement(j).start + 1 - start;
          EXPECT_LE(after_start, 2 * G / instance.T() + 1)
              << instance.to_string();
          interval_flow += schedule.placement(j).start + 1 -
                           instance.job(j).release;
        }
        EXPECT_LE(interval_flow, 3 * G) << instance.to_string();
      }
    }
  }
}

TEST(Alg3, ReassignmentNeverWorse) {
  // The paper's practical note: keeping the calendar but re-running
  // Observation 2.1's greedy cannot increase flow.
  Prng prng(702);
  for (int trial = 0; trial < 20; ++trial) {
    const Instance instance = sparse_uniform_instance(
        9, 18, 3, 2, WeightModel::kUnit, 1, prng);
    Alg3Multi policy;
    const Schedule explicit_schedule = run_online(instance, 6, policy);
    const Schedule reassigned =
        reassign_observation_2_1(instance, explicit_schedule);
    ASSERT_EQ(reassigned.validate(instance), std::nullopt);
    EXPECT_EQ(reassigned.calendar(), explicit_schedule.calendar());
    EXPECT_LE(reassigned.weighted_flow(instance),
              explicit_schedule.weighted_flow(instance));
  }
}

struct Alg3SweepParams {
  int jobs;
  Time span;
  Time T;
  int machines;
  Cost G;
  int trials;
  std::uint64_t seed;
};

class Alg3Competitive : public ::testing::TestWithParam<Alg3SweepParams> {};

TEST_P(Alg3Competitive, WithinTwelveTimesExhaustiveOpt) {
  const auto& p = GetParam();
  Prng prng(p.seed);
  for (int trial = 0; trial < p.trials; ++trial) {
    const Instance instance = sparse_uniform_instance(
        p.jobs, p.span, p.T, p.machines, WeightModel::kUnit, 1, prng);
    Alg3Multi policy;
    const Cost alg = online_objective(instance, p.G, policy);
    const Cost opt = exact_multi_opt(instance, p.G);
    EXPECT_LE(alg, 12 * opt) << instance.to_string() << " G=" << p.G;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Alg3Competitive,
    ::testing::Values(Alg3SweepParams{5, 10, 2, 2, 4, 12, 711},
                      Alg3SweepParams{5, 8, 3, 2, 9, 12, 712},
                      Alg3SweepParams{6, 10, 2, 3, 6, 10, 713},
                      Alg3SweepParams{6, 12, 3, 2, 5, 10, 714},
                      Alg3SweepParams{7, 10, 2, 2, 10, 8, 715},
                      Alg3SweepParams{7, 14, 4, 3, 8, 8, 716}));

TEST(Alg3, GOverTBelowOneSchedulesImmediately) {
  const Instance instance({Job{0, 1}, Job{3, 1}, Job{7, 1}}, 6, 2);
  Alg3Multi policy;
  const Schedule schedule = run_online(instance, /*G=*/2, policy);
  for (JobId j = 0; j < instance.size(); ++j) {
    EXPECT_EQ(schedule.placement(j).start, instance.job(j).release);
  }
}

TEST(Alg3, BigBurstTriggersMultipleCalibrationsInOneStep) {
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i) jobs.push_back(Job{0, 1});
  const Instance instance = Instance(jobs, 2, 4).normalized();
  Alg3Multi policy;
  const Schedule schedule = run_online(instance, /*G=*/2, policy);
  ASSERT_EQ(schedule.validate(instance), std::nullopt);
  // G/T = 1 job per interval: many intervals, spread round-robin.
  EXPECT_GE(schedule.calendar().count(), 6);
}

}  // namespace
}  // namespace calib

# Empty dependencies file for calibsched_nonunit.
# This may be replaced when dependencies are built.

// Fault tolerance of the sweep engine: cell isolation (errors and
// budget timeouts become structured rows), deterministic fault
// injection, and journaled checkpoint/resume with byte-identical output.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "harness/journal.hpp"
#include "harness/sweep.hpp"
#include "obs/trace.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

using harness::FaultPlan;
using harness::SweepEngine;
using harness::SweepGrid;
using harness::SweepOptions;
using harness::SweepReport;
using harness::SweepRow;
using harness::WorkloadSpec;

SweepGrid tiny_grid() {
  WorkloadSpec spec;
  spec.kind = "poisson";
  spec.rate = 0.4;
  spec.steps = 16;
  spec.T = 3;
  SweepGrid grid;
  grid.workloads = {spec};
  grid.solvers = {"alg1", "alg2"};
  grid.G_values = {5, 9};
  grid.seeds = 2;
  grid.base_seed = 7;
  grid.compare_to_opt = true;
  grid.threads = 1;
  return grid;
}

std::string jsonl_of(const SweepReport& report) {
  std::ostringstream os;
  report.write_jsonl(os);
  return os.str();
}

std::string csv_of(const SweepReport& report) {
  std::ostringstream os;
  report.write_csv(os);
  return os.str();
}

// Unique per test *and* per process so parallel ctest runs don't fight
// over files.
std::string temp_path(const std::string& name) {
  return testing::TempDir() + "calibsched_" + name + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

TEST(SweepFaults, InjectedThrowsBecomeErrorRows) {
  const SweepReport clean = SweepEngine(tiny_grid()).run();
  SweepOptions options;
  options.faults.throw_cells = {1, 4};
  const SweepReport faulted = SweepEngine(tiny_grid()).run(options);
  ASSERT_EQ(faulted.rows.size(), clean.rows.size());
  for (std::size_t i = 0; i < faulted.rows.size(); ++i) {
    const SweepRow& row = faulted.rows[i];
    if (i == 1 || i == 4) {
      EXPECT_EQ(row.status, RunStatus::kError);
      EXPECT_NE(row.error.find("injected fault"), std::string::npos);
      EXPECT_EQ(row.result.objective, 0);
      EXPECT_FALSE(row.has_opt);
      EXPECT_FALSE(row.has_trace);
      // Coordinates survive so the row is still attributable.
      EXPECT_EQ(row.cell, i);
      EXPECT_EQ(row.solver, clean.rows[i].solver);
    } else {
      // Isolation: the other cells are untouched, byte for byte.
      EXPECT_EQ(harness::row_to_json(row, "", false),
                harness::row_to_json(clean.rows[i], "", false));
    }
  }
  const harness::SweepStatusCounts counts = faulted.status_counts();
  EXPECT_EQ(counts.error, 2u);
  EXPECT_EQ(counts.ok, faulted.rows.size() - 2);
  EXPECT_FALSE(counts.all_ok());
  EXPECT_NE(faulted.timing_summary().find("degraded"), std::string::npos);
}

TEST(SweepFaults, InjectedTimeoutsBecomeTimeoutRows) {
  SweepOptions options;
  options.faults.timeout_cells = {0};
  const SweepReport report = SweepEngine(tiny_grid()).run(options);
  EXPECT_EQ(report.rows[0].status, RunStatus::kTimeout);
  EXPECT_NE(report.rows[0].error.find("injected timeout"),
            std::string::npos);
  EXPECT_EQ(report.status_counts().timeout, 1u);
}

TEST(SweepFaults, ProbabilisticPlanIsThreadCountInvariant) {
  SweepGrid serial = tiny_grid();
  serial.threads = 1;
  SweepGrid parallel = tiny_grid();
  parallel.threads = 4;
  SweepOptions options;
  options.faults.throw_probability = 0.4;
  options.faults.timeout_probability = 0.3;
  options.faults.seed = 11;
  const SweepReport a = SweepEngine(serial).run(options);
  const SweepReport b = SweepEngine(parallel).run(options);
  EXPECT_EQ(jsonl_of(a), jsonl_of(b));
  EXPECT_EQ(csv_of(a), csv_of(b));
  const harness::SweepStatusCounts counts = a.status_counts();
  // The draw is a pure function of (seed, cell index); with these
  // probabilities over 8 cells both degradation kinds occur.
  EXPECT_GT(counts.error + counts.timeout, 0u);
  EXPECT_LT(counts.ok, a.rows.size());
}

TEST(SweepFaults, StepBudgetTurnsRunawayCellsIntoTimeoutRows) {
  SweepGrid grid = tiny_grid();
  grid.solvers = {harness::kOfflineSolver, "alg2"};
  grid.compare_to_opt = false;
  SweepOptions options;
  options.cell_step_budget = 5;  // far below any real cell's work
  const SweepReport starved = SweepEngine(grid).run(options);
  for (const SweepRow& row : starved.rows) {
    EXPECT_EQ(row.status, RunStatus::kTimeout) << row.cell;
    EXPECT_NE(row.error.find("step budget exhausted"), std::string::npos);
  }
  // Step budgets are deterministic: a rerun degrades identically.
  const SweepReport again = SweepEngine(grid).run(options);
  EXPECT_EQ(jsonl_of(starved), jsonl_of(again));

  SweepOptions generous;
  generous.cell_step_budget = 1u << 30;
  const SweepReport healthy = SweepEngine(grid).run(generous);
  EXPECT_TRUE(healthy.status_counts().all_ok());
  EXPECT_EQ(jsonl_of(healthy), jsonl_of(SweepEngine(grid).run()));
}

TEST(SweepFaults, KillAndResumeIsByteIdentical) {
  const std::string path = temp_path("resume");
  std::remove(path.c_str());
  const SweepGrid grid = tiny_grid();
  const SweepReport full = SweepEngine(grid).run();

  // "Kill" the first run after 3 journaled cells.
  SweepOptions interrupted;
  interrupted.journal_path = path;
  interrupted.max_cells = 3;
  const SweepReport partial = SweepEngine(grid).run(interrupted);
  EXPECT_EQ(partial.status_counts().ok, 3u);
  EXPECT_EQ(partial.status_counts().skipped, grid.cells() - 3);
  EXPECT_NE(jsonl_of(partial).find("\"status\":\"skipped\""),
            std::string::npos);

  SweepOptions resume;
  resume.journal_path = path;
  resume.resume = true;
  const SweepReport resumed = SweepEngine(grid).run(resume);
  EXPECT_EQ(resumed.timing.resumed, 3u);
  EXPECT_TRUE(resumed.status_counts().all_ok());
  EXPECT_EQ(jsonl_of(resumed), jsonl_of(full));
  EXPECT_EQ(csv_of(resumed), csv_of(full));

  // A second resume replays everything without recomputing.
  const SweepReport replayed = SweepEngine(grid).run(resume);
  EXPECT_EQ(replayed.timing.resumed, grid.cells());
  EXPECT_EQ(jsonl_of(replayed), jsonl_of(full));
  std::remove(path.c_str());
}

#if CALIBSCHED_OBS
TEST(SweepFaults, ResumeWithTracingStaysByteIdenticalAndSkipsCachedCells) {
  // Metrics/trace collection must not perturb the resume contract: the
  // journal still ends up with exactly one line per cell, the replayed
  // rows match an uninterrupted run byte for byte, and resumed (cached)
  // rows do not re-emit cell spans — only actually-executed cells do.
  const std::string path = temp_path("resume_obs");
  std::remove(path.c_str());
  const SweepGrid grid = tiny_grid();
  const SweepReport full = SweepEngine(grid).run();

  obs::tracer().clear();
  obs::tracer().set_enabled(true);

  SweepOptions interrupted;
  interrupted.journal_path = path;
  interrupted.max_cells = 3;
  const SweepReport partial = SweepEngine(grid).run(interrupted);
  EXPECT_EQ(partial.status_counts().ok, 3u);

  SweepOptions resume;
  resume.journal_path = path;
  resume.resume = true;
  const SweepReport resumed = SweepEngine(grid).run(resume);
  obs::tracer().set_enabled(false);

  EXPECT_EQ(resumed.timing.resumed, 3u);
  EXPECT_TRUE(resumed.status_counts().all_ok());
  EXPECT_EQ(jsonl_of(resumed), jsonl_of(full));

  // One cell span per *executed* cell across both runs: 3 before the
  // "kill", the remaining cells after — never one for a replayed row.
  std::size_t cell_spans = 0;
  for (const obs::TraceEvent& event : obs::tracer().events()) {
    if (event.name == "cell") ++cell_spans;
  }
  EXPECT_EQ(cell_spans, grid.cells());
  obs::tracer().clear();

  // Journal: header plus exactly one line per cell — resumed rows must
  // not have been appended again.
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, grid.cells() + 1);
  std::remove(path.c_str());
}
#endif  // CALIBSCHED_OBS

TEST(SweepFaults, ResumeCompletesAroundFailedCellsAndRetries) {
  const std::string path = temp_path("retry");
  std::remove(path.c_str());
  const SweepGrid grid = tiny_grid();
  const SweepReport clean = SweepEngine(grid).run();

  SweepOptions faulty;
  faulty.journal_path = path;
  faulty.faults.throw_cells = {2};
  const SweepReport first = SweepEngine(grid).run(faulty);
  EXPECT_EQ(first.rows[2].status, RunStatus::kError);
  EXPECT_EQ(first.status_counts().ok, grid.cells() - 1);

  // Plain resume replays the journaled failure row verbatim.
  SweepOptions replay;
  replay.journal_path = path;
  replay.resume = true;
  const SweepReport replayed = SweepEngine(grid).run(replay);
  EXPECT_EQ(replayed.timing.resumed, grid.cells());
  EXPECT_EQ(jsonl_of(replayed), jsonl_of(first));

  // retry_failed re-runs it — without the fault plan it now succeeds.
  SweepOptions retry = replay;
  retry.retry_failed = true;
  const SweepReport retried = SweepEngine(grid).run(retry);
  EXPECT_EQ(retried.timing.resumed, grid.cells() - 1);
  EXPECT_TRUE(retried.status_counts().all_ok());
  EXPECT_EQ(jsonl_of(retried), jsonl_of(clean));

  // The journal now holds both outcomes for cell 2; the *latest* line
  // wins on the next resume.
  const SweepReport final_replay = SweepEngine(grid).run(replay);
  EXPECT_EQ(jsonl_of(final_replay), jsonl_of(clean));
  std::remove(path.c_str());
}

TEST(SweepFaults, JournalForADifferentGridIsRejected) {
  const std::string path = temp_path("fingerprint");
  std::remove(path.c_str());
  SweepOptions journaled;
  journaled.journal_path = path;
  (void)SweepEngine(tiny_grid()).run(journaled);

  SweepGrid other = tiny_grid();
  other.base_seed = 8;  // different rows → different fingerprint
  SweepOptions resume;
  resume.journal_path = path;
  resume.resume = true;
  EXPECT_THROW((void)SweepEngine(other).run(resume), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SweepFaults, TornTrailingJournalLineIsIgnored) {
  const std::string path = temp_path("torn");
  std::remove(path.c_str());
  const SweepGrid grid = tiny_grid();
  const SweepReport full = SweepEngine(grid).run();

  SweepOptions interrupted;
  interrupted.journal_path = path;
  interrupted.max_cells = 3;
  (void)SweepEngine(grid).run(interrupted);
  {
    // Simulate a crash mid-write: a truncated row line with no newline.
    std::ofstream torn(path, std::ios::app);
    torn << "{\"cell\":3,\"workload\":\"pois";
  }

  SweepOptions resume;
  resume.journal_path = path;
  resume.resume = true;
  const SweepReport resumed = SweepEngine(grid).run(resume);
  EXPECT_EQ(resumed.timing.resumed, 3u);  // the torn cell re-ran
  EXPECT_EQ(jsonl_of(resumed), jsonl_of(full));
  std::remove(path.c_str());
}

TEST(SweepFaults, ThrowingExtraMetricBecomesErrorRow) {
  const std::string path = temp_path("metric");
  std::remove(path.c_str());
  SweepGrid grid = tiny_grid();
  grid.solvers = {"alg2"};
  grid.extra_metric_name = "fussy";
  grid.extra_metric = [](const Instance&, const Schedule&, Cost G) {
    if (G == 5) {
      // Hostile message: quotes, newline, control byte — must not break
      // JSONL framing or the journal round trip.
      throw std::runtime_error("metric \"exploded\"\n\x07 badly");
    }
    return 1.5;
  };

  SweepOptions journaled;
  journaled.journal_path = path;
  const SweepReport report = SweepEngine(grid).run(journaled);
  for (const SweepRow& row : report.rows) {
    if (row.G == 5) {
      EXPECT_EQ(row.status, RunStatus::kError);
      EXPECT_NE(row.error.find("exploded"), std::string::npos);
      EXPECT_FALSE(row.has_extra);
    } else {
      EXPECT_EQ(row.status, RunStatus::kOk);
      EXPECT_TRUE(row.has_extra);
    }
  }
  // Every line (including the hostile error rows) must survive a parse.
  const std::string jsonl = jsonl_of(report);
  std::istringstream lines(jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    const auto fields = harness::parse_flat_json(line);
    EXPECT_TRUE(fields.count("status")) << line;
  }
  // And the journal replays them byte-identically.
  SweepOptions resume = journaled;
  resume.resume = true;
  const SweepReport resumed = SweepEngine(grid).run(resume);
  EXPECT_EQ(resumed.timing.resumed, grid.cells());
  EXPECT_EQ(jsonl_of(resumed), jsonl);
  std::remove(path.c_str());
}

TEST(SweepFaults, RejectsBadOptions) {
  SweepOptions no_journal;
  no_journal.resume = true;
  EXPECT_THROW((void)SweepEngine(tiny_grid()).run(no_journal),
               std::runtime_error);

  // retry_failed implies resume, so only a missing journal is an error.
  SweepOptions retry_no_journal;
  retry_no_journal.retry_failed = true;
  EXPECT_THROW((void)SweepEngine(tiny_grid()).run(retry_no_journal),
               std::runtime_error);

  SweepOptions negative_budget;
  negative_budget.cell_budget_ms = -1.0;
  EXPECT_THROW((void)SweepEngine(tiny_grid()).run(negative_budget),
               std::runtime_error);

  SweepOptions bad_plan;
  bad_plan.faults.throw_probability = 0.8;
  bad_plan.faults.timeout_probability = 0.8;
  EXPECT_THROW((void)SweepEngine(tiny_grid()).run(bad_plan),
               std::runtime_error);
}

TEST(SweepJournal, FlatJsonRoundTripsEscapes) {
  const auto fields = harness::parse_flat_json(
      "{\"a\":\"x\\n\\\"y\\\"\\u0007\",\"b\":3,\"c\":\"\"}");
  EXPECT_EQ(fields.at("a"), "x\n\"y\"\a");
  EXPECT_EQ(fields.at("b"), "3");
  EXPECT_EQ(fields.at("c"), "");
  EXPECT_THROW((void)harness::parse_flat_json("{\"a\":"),
               std::runtime_error);
  EXPECT_THROW((void)harness::parse_flat_json("not json"),
               std::runtime_error);
  EXPECT_THROW((void)harness::parse_flat_json("{\"a\":\"unterminated"),
               std::runtime_error);
  EXPECT_TRUE(harness::parse_flat_json("{}").empty());
}

}  // namespace
}  // namespace calib

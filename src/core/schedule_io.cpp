#include "core/schedule_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace calib {
namespace {

// Any coordinate this large is corruption, not a schedule; capping here
// keeps later arithmetic (start + T, horizon sums) away from int64
// overflow.
constexpr std::int64_t kMaxCoordinate = 1'000'000'000'000'000;

// Strict full-token integer parse. stoll-style parsing would accept
// "3garbage" as 3 (silent misparse) and feed unchecked values into
// CALIB_CHECK-guarded core calls (process abort); malformed input must
// instead surface as std::runtime_error.
std::int64_t parse_int(const std::string& field, const char* what) {
  std::int64_t value = 0;
  const char* first = field.data();
  const char* last = first + field.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (field.empty() || ec != std::errc{} || ptr != last ||
      value > kMaxCoordinate || value < -kMaxCoordinate) {
    throw std::runtime_error(std::string("schedule csv: bad ") + what +
                             ": \"" + field + "\"");
  }
  return value;
}

int parse_machine(const std::string& field, int machines) {
  const std::int64_t m = parse_int(field, "machine");
  if (m < 0 || m >= machines) {
    throw std::runtime_error("schedule csv: machine out of range: " + field);
  }
  return static_cast<int>(m);
}

}  // namespace

void save_schedule_csv(const Schedule& schedule, std::ostream& os) {
  const Calendar& calendar = schedule.calendar();
  os << "# T=" << calendar.T() << " P=" << calendar.machines()
     << " N=" << schedule.size() << '\n';
  CsvWriter writer(os);
  for (MachineId m = 0; m < calendar.machines(); ++m) {
    for (const Time start : calendar.starts(m)) {
      writer.write_row({"calibration", std::to_string(m),
                        std::to_string(start)});
    }
  }
  for (JobId j = 0; j < schedule.size(); ++j) {
    const Placement& p = schedule.placement(j);
    writer.write_row({"placement", std::to_string(j),
                      std::to_string(p.machine),
                      std::to_string(p.start)});
  }
}

Schedule load_schedule_csv(std::istream& is) {
  std::string header;
  std::getline(is, header);
  Time T = 0;
  int machines = 0;
  int jobs = 0;
  {
    std::istringstream hs(header);
    std::string tag;
    std::string t_field;
    std::string p_field;
    std::string n_field;
    hs >> tag >> t_field >> p_field >> n_field;
    if (tag != "#" || t_field.rfind("T=", 0) != 0 ||
        p_field.rfind("P=", 0) != 0 || n_field.rfind("N=", 0) != 0) {
      throw std::runtime_error("schedule csv: bad header: " + header);
    }
    T = parse_int(t_field.substr(2), "T");
    machines = static_cast<int>(parse_int(p_field.substr(2), "P"));
    jobs = static_cast<int>(parse_int(n_field.substr(2), "N"));
  }
  // The size caps reject absurd headers before the Schedule constructor
  // tries to allocate for them.
  if (T < 1 || machines < 1 || jobs < 0 || machines > 1'000'000 ||
      jobs > 10'000'000) {
    throw std::runtime_error("schedule csv: invalid header values");
  }
  Calendar calendar(T, machines);
  Schedule schedule(calendar, jobs);
  bool any_calibration = false;
  for (const auto& row : read_csv(is)) {
    if (row.empty()) continue;
    if (row[0] == "calibration") {
      if (row.size() != 3) {
        throw std::runtime_error("schedule csv: bad calibration row");
      }
      const int m = parse_machine(row[1], machines);
      // Negative starts are legal (the DP witness can calibrate before
      // t = 0 on shifted instances); only the magnitude is bounded.
      const Time start = parse_int(row[2], "calibration start");
      schedule.calendar().add(m, start);
      any_calibration = true;
    } else if (row[0] == "placement") {
      if (row.size() != 4) {
        throw std::runtime_error("schedule csv: bad placement row");
      }
      const std::int64_t j = parse_int(row[1], "job");
      if (j < 0 || j >= jobs) {
        throw std::runtime_error("schedule csv: placement job out of range");
      }
      const int m = parse_machine(row[2], machines);
      const Time start = parse_int(row[3], "placement start");
      if (start < kUnscheduled) {
        throw std::runtime_error("schedule csv: invalid placement start");
      }
      schedule.place(static_cast<JobId>(j), m, start);
    } else {
      throw std::runtime_error("schedule csv: unknown row kind " + row[0]);
    }
  }
  (void)any_calibration;  // zero-calibration schedules are legal (n = 0)
  return schedule;
}

}  // namespace calib

// Sweep engine: thread-count-invariant determinism, DP flow-curve cache
// correctness, instance sharing across solvers/G, and the uniform
// SolveResult surface.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "harness/sweep.hpp"
#include "offline/budget_search.hpp"
#include "online/driver.hpp"
#include "online/registry.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

using harness::SweepEngine;
using harness::SweepGrid;
using harness::SweepReport;
using harness::SweepRow;
using harness::WorkloadSpec;

SweepGrid small_grid() {
  WorkloadSpec poisson;
  poisson.kind = "poisson";
  poisson.rate = 0.3;
  poisson.steps = 25;
  poisson.T = 4;
  WorkloadSpec sparse;
  sparse.kind = "sparse";
  sparse.jobs = 6;
  sparse.steps = 18;
  sparse.T = 3;
  sparse.weights = WeightModel::kUniform;
  sparse.w_max = 5;

  SweepGrid grid;
  grid.workloads = {poisson, sparse};
  grid.solvers = {"alg1", "alg2", "random", harness::kOfflineSolver};
  grid.G_values = {4, 9, 15, 25};
  grid.seeds = 3;
  grid.base_seed = 99;
  grid.compare_to_opt = true;
  return grid;
}

std::string jsonl_of(const SweepReport& report) {
  std::ostringstream os;
  report.write_jsonl(os);
  return os.str();
}

TEST(Sweep, SameRowsAtAnyThreadCount) {
  SweepGrid one = small_grid();
  one.threads = 1;
  SweepGrid many = small_grid();
  many.threads = 4;
  const SweepReport serial = SweepEngine(one).run();
  const SweepReport parallel = SweepEngine(many).run();

  // Byte-identical structured output is the determinism contract.
  EXPECT_EQ(jsonl_of(serial), jsonl_of(parallel));
  std::ostringstream csv_serial;
  std::ostringstream csv_parallel;
  serial.write_csv(csv_serial);
  parallel.write_csv(csv_parallel);
  EXPECT_EQ(csv_serial.str(), csv_parallel.str());
  ASSERT_EQ(serial.rows.size(), one.cells());
}

TEST(Sweep, AllSolversOfACellShareTheInstance) {
  const SweepReport report = SweepEngine(small_grid()).run();
  // Row jobs-count is an instance fingerprint: for fixed (workload,
  // seed) it must not depend on solver or G.
  for (const SweepRow& a : report.rows) {
    for (const SweepRow& b : report.rows) {
      if (a.workload_index == b.workload_index && a.seed == b.seed) {
        EXPECT_EQ(a.jobs, b.jobs);
      }
    }
  }
}

TEST(Sweep, CachedCurveMatchesUncachedOptimum) {
  const SweepGrid grid = small_grid();
  const SweepReport report = SweepEngine(grid).run();
  for (const SweepRow& row : report.rows) {
    const Instance instance =
        harness::materialize_instance(grid, row.workload_index, row.seed);
    ASSERT_EQ(instance.size(), row.jobs);
    const BudgetSearchResult opt = offline_online_optimum(instance, row.G);
    ASSERT_TRUE(row.has_opt);
    EXPECT_EQ(row.opt_cost, opt.best_cost) << row.cell;
    EXPECT_EQ(row.opt_k, opt.best_k) << row.cell;
    if (row.solver == harness::kOfflineSolver) {
      EXPECT_EQ(row.result.objective, opt.best_cost) << row.cell;
      EXPECT_EQ(row.result.best_k, opt.best_k) << row.cell;
      EXPECT_EQ(row.result.flow, opt.best_cost - row.G * opt.best_k)
          << row.cell;
    } else {
      EXPECT_DOUBLE_EQ(row.ratio,
                       static_cast<double>(row.result.objective) /
                           static_cast<double>(opt.best_cost));
      EXPECT_GE(row.result.objective, opt.best_cost) << row.cell;
    }
  }
}

TEST(Sweep, DpCurveComputedOncePerInstance) {
  const SweepGrid grid = small_grid();
  const SweepReport report = SweepEngine(grid).run();
  // 2 workloads x 3 seeds = 6 distinct instances; every other (G,
  // solver) lookup must hit. With compare_to_opt on, every cell does
  // exactly one lookup.
  EXPECT_EQ(report.timing.dp_cache_misses, 6u);
  EXPECT_GT(report.timing.dp_cache_hits, 0u);
  const std::size_t lookups =
      report.timing.dp_cache_hits + report.timing.dp_cache_misses;
  EXPECT_EQ(lookups, grid.cells());
}

TEST(Sweep, OnlineRowsMatchDirectRuns) {
  const SweepGrid grid = small_grid();
  const SweepReport report = SweepEngine(grid).run();
  for (const SweepRow& row : report.rows) {
    if (row.solver != "alg1" && row.solver != "alg2") continue;
    const Instance instance =
        harness::materialize_instance(grid, row.workload_index, row.seed);
    const auto policy = make_policy(row.solver);
    const SolveResult direct = run_online_result(instance, row.G, *policy);
    EXPECT_EQ(row.result.objective, direct.objective) << row.cell;
    EXPECT_EQ(row.result.calibrations, direct.calibrations) << row.cell;
    EXPECT_EQ(row.result.flow, direct.flow) << row.cell;
  }
}

TEST(Sweep, ExtraMetricIsEmitted) {
  SweepGrid grid = small_grid();
  grid.solvers = {"alg2"};
  grid.extra_metric_name = "jobs_twice";
  grid.extra_metric = [](const Instance& instance, const Schedule&, Cost) {
    return 2.0 * static_cast<double>(instance.size());
  };
  const SweepReport report = SweepEngine(grid).run();
  for (const SweepRow& row : report.rows) {
    ASSERT_TRUE(row.has_extra);
    EXPECT_DOUBLE_EQ(row.extra, 2.0 * static_cast<double>(row.jobs));
  }
  EXPECT_NE(jsonl_of(report).find("\"jobs_twice\":"), std::string::npos);
}

TEST(Sweep, TraceMetricsPresentWhenRequested) {
  SweepGrid grid = small_grid();
  grid.solvers = {"eager"};
  const SweepReport report = SweepEngine(grid).run();
  for (const SweepRow& row : report.rows) {
    ASSERT_TRUE(row.has_trace);
    EXPECT_GE(row.peak_queue, 0);
    EXPECT_GT(row.utilization, 0.0);
    EXPECT_LE(row.utilization, 1.0);
  }
}

TEST(Sweep, RejectsBadGrids) {
  SweepGrid no_solver = small_grid();
  no_solver.solvers.clear();
  EXPECT_THROW(SweepEngine{no_solver}, std::runtime_error);

  SweepGrid unknown = small_grid();
  unknown.solvers = {"definitely-not-registered"};
  EXPECT_THROW(SweepEngine{unknown}, std::runtime_error);

  SweepGrid multi_machine_opt = small_grid();
  multi_machine_opt.workloads[0].machines = 2;
  EXPECT_THROW(SweepEngine{multi_machine_opt}, std::runtime_error);

  SweepGrid bad_kind = small_grid();
  bad_kind.workloads[0].kind = "martian";
  EXPECT_THROW((void)SweepEngine(bad_kind).run(), std::runtime_error);
}

TEST(SolveResult, OnlineAndOfflinePathsAgreeOnShape) {
  const Instance instance = regression_instance();
  const auto policy = make_policy("alg2");
  const SolveResult online = run_online_result(instance, /*G=*/9, *policy);
  EXPECT_EQ(online.solver, "alg2");
  EXPECT_EQ(online.objective, 9 * online.calibrations + online.flow);
  EXPECT_EQ(online.best_k, -1);

  const SolveResult offline = offline_optimum_result(instance, /*G=*/9);
  EXPECT_EQ(offline.solver, "offline-opt");
  EXPECT_EQ(offline.best_k, offline.calibrations);
  EXPECT_EQ(offline.objective, 9 * offline.best_k + offline.flow);
  EXPECT_LE(offline.objective, online.objective);
}

}  // namespace
}  // namespace calib

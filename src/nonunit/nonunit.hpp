// Non-unit, preemptible jobs with deadlines — the Fineman-Sheridan
// (SPAA'15) / Angel et al. (FAW'17) generalization the paper's related
// work builds on: job j needs p_j calibrated time steps (preemption
// allowed at step granularity) inside its window [release, deadline).
// Objective: fewest calibrations (single machine), experiment E14.
//
// Feasibility facts used (and tested):
//   * preemptive EDF over the calendar's slots is feasibility-optimal;
//   * equivalently, Hall's condition: for every window [a, b), the
//     total processing of jobs with [r_j, d_j) inside [a, b) is at most
//     the number of calibrated slots in [a, b).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/calendar.hpp"
#include "core/types.hpp"

namespace calib {

struct NonUnitJob {
  Time release = 0;
  Time deadline = 1;
  Time processing = 1;

  friend bool operator==(const NonUnitJob&, const NonUnitJob&) = default;
};

class NonUnitInstance {
 public:
  NonUnitInstance() = default;
  /// Jobs sorted by (deadline, release); every window must fit its
  /// processing (release + processing <= deadline).
  NonUnitInstance(std::vector<NonUnitJob> jobs, Time calibration_length);

  [[nodiscard]] const std::vector<NonUnitJob>& jobs() const {
    return jobs_;
  }
  [[nodiscard]] const NonUnitJob& job(JobId j) const;
  [[nodiscard]] int size() const { return static_cast<int>(jobs_.size()); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }
  [[nodiscard]] Time T() const { return T_; }
  [[nodiscard]] Time total_processing() const;
  [[nodiscard]] Time min_release() const;
  [[nodiscard]] Time max_deadline() const;
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const NonUnitInstance&,
                         const NonUnitInstance&) = default;

 private:
  std::vector<NonUnitJob> jobs_;
  Time T_ = 2;
};

/// Preemptive EDF over the calendar's single-machine slots; true iff
/// every job finishes its processing before its deadline.
bool edf_feasible_nonunit(const NonUnitInstance& instance,
                          const Calendar& calendar);

/// Hall's condition over all release/deadline windows — an independent
/// feasibility oracle (tested to agree with EDF).
bool hall_feasible_nonunit(const NonUnitInstance& instance,
                           const Calendar& calendar);

/// Exact minimum number of calibrations (exhaustive over starts with
/// iterative deepening; small instances).
std::optional<Calendar> min_calibrations_nonunit(
    const NonUnitInstance& instance, int max_calibrations = -1);

/// Lazy-binning generalization: push each interval as late as the
/// remaining workload allows (feasibility with a fully calibrated
/// machine from t onward), commit, recur. Optimality probed in E14.
std::optional<Calendar> lazy_binning_nonunit(
    const NonUnitInstance& instance);

}  // namespace calib

file(REMOVE_RECURSE
  "CMakeFiles/test_budget_search.dir/test_budget_search.cpp.o"
  "CMakeFiles/test_budget_search.dir/test_budget_search.cpp.o.d"
  "test_budget_search"
  "test_budget_search.pdb"
  "test_budget_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_budget_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#!/usr/bin/env bash
# The tier-1 verify line: configure, build everything, run the full test
# suite. Set SANITIZE=1 to run the same line under ASan + UBSan (separate
# build tree so it never poisons the regular one).
# Usage: scripts/check.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
EXTRA_FLAGS=()
if [ "${SANITIZE:-0}" = "1" ]; then
  BUILD="${1:-build-asan}"
  EXTRA_FLAGS+=(-DCALIBSCHED_SANITIZE=ON)
fi

cmake -B "$BUILD" -S . "${EXTRA_FLAGS[@]}"

# Build with the log captured: the harness, observability, and core
# model layers are where correctness lives, so even non-fatal compiler
# warnings in src/harness/, src/obs/, or src/core/ fail the check.
BUILD_LOG="$(mktemp)"
trap 'rm -f "$BUILD_LOG"' EXIT
cmake --build "$BUILD" -j 2>&1 | tee "$BUILD_LOG"
if grep "warning:" "$BUILD_LOG" | grep -qE "src/(harness|obs|core)/"; then
  echo "error: compiler warnings in src/harness|obs|core (see above)" >&2
  exit 1
fi

ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

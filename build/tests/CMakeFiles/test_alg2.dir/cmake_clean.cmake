file(REMOVE_RECURSE
  "CMakeFiles/test_alg2.dir/test_alg2.cpp.o"
  "CMakeFiles/test_alg2.dir/test_alg2.cpp.o.d"
  "test_alg2"
  "test_alg2.pdb"
  "test_alg2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alg2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Fuzzing the simulation substrate: a chaos policy makes arbitrary
// (but legal) decisions; every invariant the library promises must
// survive — valid schedules, consistent costs, deterministic replay.
#include <gtest/gtest.h>

#include "core/transform.hpp"
#include "online/driver.hpp"
#include "online/policy.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

/// Calibrates at random moments, sometimes several machines at once,
/// sometimes explicitly placing a random waiting job in a random free
/// calibrated slot — a stress generator for the driver's bookkeeping.
class ChaosPolicy final : public OnlinePolicy {
 public:
  explicit ChaosPolicy(std::uint64_t seed) : prng_(seed) {}

  [[nodiscard]] QueueOrder order() const override {
    return QueueOrder::kHeaviestFirst;
  }
  [[nodiscard]] bool assign_before_decide() const override { return true; }

  void decide(DriverHandle& handle) override {
    // Empty-queue rounds must be no-ops (decide() contract): return
    // before drawing randomness so replay streams are identical whether
    // or not the driver polls during empty-queue spans.
    if (handle.waiting_empty()) return;
    while (prng_.bernoulli(0.35)) {
      const MachineId m = handle.calibrate();
      // Occasionally pre-commit a waiting job somewhere legal.
      if (!handle.waiting_empty() && prng_.bernoulli(0.5)) {
        const auto pick = static_cast<std::size_t>(prng_.uniform_int(
            0, static_cast<std::int64_t>(handle.waiting_count()) - 1));
        const JobId j = handle.waiting_at(pick);
        const Time slot = handle.first_free_slot(
            m, std::max(handle.now(), handle.job(j).release),
            handle.now() + handle.T());
        if (slot != kUnscheduled) handle.assign(j, m, slot);
      }
      if (handle.calendar().count() > 512) break;  // don't run away
    }
  }
  [[nodiscard]] const char* name() const override { return "chaos"; }

 private:
  Prng prng_;
};

struct FuzzParams {
  int jobs;
  Time span;
  Time T;
  int machines;
  WeightModel weights;
  int trials;
  std::uint64_t seed;
};

class DriverFuzz : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(DriverFuzz, ChaosRunsProduceValidSchedules) {
  const auto& p = GetParam();
  Prng prng(p.seed);
  for (int trial = 0; trial < p.trials; ++trial) {
    const Instance instance = sparse_uniform_instance(
        p.jobs, p.span, p.T, p.machines, p.weights, 9, prng);
    ChaosPolicy policy(p.seed * 7919 + static_cast<std::uint64_t>(trial));
    const Schedule schedule = run_online(instance, /*G=*/5, policy);
    ASSERT_EQ(schedule.validate(instance), std::nullopt)
        << instance.to_string();
    // Cost identity: online objective == G * count + flow.
    EXPECT_EQ(schedule.online_cost(instance, 5),
              5 * schedule.calendar().count() +
                  schedule.weighted_flow(instance));
  }
}

TEST_P(DriverFuzz, ChaosRunsAreDeterministicPerSeed) {
  const auto& p = GetParam();
  Prng prng(p.seed + 1);
  const Instance instance = sparse_uniform_instance(
      p.jobs, p.span, p.T, p.machines, p.weights, 9, prng);
  ChaosPolicy a(1234);
  ChaosPolicy b(1234);
  const Schedule first = run_online(instance, 5, a);
  const Schedule second = run_online(instance, 5, b);
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DriverFuzz,
    ::testing::Values(
        FuzzParams{6, 18, 3, 1, WeightModel::kUnit, 40, 2101},
        FuzzParams{8, 24, 4, 1, WeightModel::kUniform, 40, 2102},
        FuzzParams{10, 20, 3, 2, WeightModel::kZipf, 30, 2103},
        FuzzParams{12, 24, 5, 3, WeightModel::kBimodal, 30, 2104},
        FuzzParams{16, 32, 2, 2, WeightModel::kUniform, 20, 2105},
        FuzzParams{20, 40, 6, 4, WeightModel::kUniform, 20, 2106}));

TEST(DriverFuzz, TransformSurvivesChaoticSingleMachineSchedules) {
  Prng prng(2107);
  for (int trial = 0; trial < 30; ++trial) {
    const Instance instance = sparse_uniform_instance(
        8, 24, 4, 1, WeightModel::kUniform, 9, prng);
    ChaosPolicy policy(static_cast<std::uint64_t>(trial) * 31 + 7);
    const Schedule schedule = run_online(instance, 5, policy);
    const Schedule ordered = to_release_order(instance, schedule);
    ASSERT_EQ(ordered.validate(instance), std::nullopt);
    EXPECT_LE(ordered.weighted_flow(instance),
              schedule.weighted_flow(instance));
    EXPECT_LE(ordered.calendar().count(),
              2 * schedule.calendar().count());
  }
}

}  // namespace
}  // namespace calib

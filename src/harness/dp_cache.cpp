#include "harness/dp_cache.hpp"

#include <sstream>
#include <utility>

#include "obs/trace.hpp"
#include "offline/dp.hpp"
#include "util/check.hpp"

namespace calib::harness {
namespace {

// Exact content key; a 64-bit hash would risk silent collisions, and the
// serialized form is tiny next to the DP tables it guards.
std::string instance_key(const Instance& instance) {
  std::ostringstream os;
  os << instance.T() << ';' << instance.machines() << ';';
  for (const Job& job : instance.jobs()) {
    os << job.release << ',' << job.weight << ';';
  }
  return os.str();
}

}  // namespace

CurveOptimum optimum_from_curve(const std::vector<Cost>& curve, Cost G) {
  CALIB_CHECK(G >= 1);
  CurveOptimum best;
  bool found = false;
  for (std::size_t k = 1; k < curve.size(); ++k) {
    const Cost flow = curve[k];
    if (flow == kInfeasible) continue;
    const Cost value = G * static_cast<Cost>(k) + flow;
    if (!found || value < best.best_cost) {
      found = true;
      best.best_k = static_cast<int>(k);
      best.best_cost = value;
      best.flow = flow;
    }
  }
  CALIB_CHECK_MSG(found, "flow curve has no feasible budget");
  return best;
}

#if CALIBSCHED_OBS

FlowCurveCache::FlowCurveCache()
    : hits_counter_(obs::metrics().counter("dp_cache.hits")),
      misses_counter_(obs::metrics().counter("dp_cache.misses")),
      evictions_counter_(obs::metrics().counter("dp_cache.evictions")),
      wait_us_counter_(obs::metrics().counter("dp_cache.wait_us")),
      compute_us_counter_(obs::metrics().counter("dp_cache.compute_us")) {
  hits_base_ = hits_counter_.value();
  misses_base_ = misses_counter_.value();
  evictions_base_ = evictions_counter_.value();
  wait_us_base_ = wait_us_counter_.value();
  compute_us_base_ = compute_us_counter_.value();
}

std::size_t FlowCurveCache::hits() const {
  return hits_counter_.value() - hits_base_;
}

std::size_t FlowCurveCache::misses() const {
  return misses_counter_.value() - misses_base_;
}

std::size_t FlowCurveCache::evictions() const {
  return evictions_counter_.value() - evictions_base_;
}

double FlowCurveCache::wait_seconds() const {
  return static_cast<double>(wait_us_counter_.value() - wait_us_base_) * 1e-6;
}

double FlowCurveCache::compute_seconds() const {
  return static_cast<double>(compute_us_counter_.value() -
                             compute_us_base_) *
         1e-6;
}

void FlowCurveCache::note_hit() { hits_counter_.add(); }
void FlowCurveCache::note_miss() { misses_counter_.add(); }
void FlowCurveCache::note_eviction() { evictions_counter_.add(); }
void FlowCurveCache::note_wait_us(std::uint64_t us) {
  wait_us_counter_.add(us);
}
void FlowCurveCache::note_compute_us(std::uint64_t us) {
  compute_us_counter_.add(us);
}

#else  // !CALIBSCHED_OBS — plain atomics keep the accessors exact.

FlowCurveCache::FlowCurveCache() = default;

std::size_t FlowCurveCache::hits() const { return hits_.load(); }
std::size_t FlowCurveCache::misses() const { return misses_.load(); }
std::size_t FlowCurveCache::evictions() const { return evictions_.load(); }

double FlowCurveCache::wait_seconds() const {
  return static_cast<double>(wait_us_.load()) * 1e-6;
}

double FlowCurveCache::compute_seconds() const {
  return static_cast<double>(compute_us_.load()) * 1e-6;
}

void FlowCurveCache::note_hit() { hits_.fetch_add(1); }
void FlowCurveCache::note_miss() { misses_.fetch_add(1); }
void FlowCurveCache::note_eviction() { evictions_.fetch_add(1); }
void FlowCurveCache::note_wait_us(std::uint64_t us) {
  wait_us_.fetch_add(us);
}
void FlowCurveCache::note_compute_us(std::uint64_t us) {
  compute_us_.fetch_add(us);
}

#endif  // CALIBSCHED_OBS

std::shared_ptr<const std::vector<Cost>> FlowCurveCache::curve(
    const Instance& instance, Budget* budget) {
  CALIB_CHECK_MSG(instance.machines() == 1,
                  "the Section 4 DP requires P == 1");
  const std::string key = instance_key(instance);

  std::promise<CurvePtr> promise;
  std::shared_future<CurvePtr> future;
  bool owner = false;
  {
    const MutexLock lock(mutex_);
    const auto it = curves_.find(key);
    if (it != curves_.end()) {
      note_hit();
      future = it->second;
    } else {
      note_miss();
      owner = true;
      future = promise.get_future().share();
      curves_.emplace(key, future);
    }
  }

  if (owner) {
    try {
      obs::ScopedSpan span("dp_cache.compute", "dp");
      OfflineDp dp(instance.releases_normalized() ? instance
                                                  : instance.normalized());
      dp.set_budget(budget);
      auto curve = std::make_shared<const std::vector<Cost>>(
          dp.flow_curve(dp.instance().size()));
      note_compute_us(span.elapsed_ns() / 1000);
      promise.set_value(std::move(curve));
    } catch (...) {
      // Evict before publishing the failure so later requests retry
      // instead of inheriting this cell's exception forever.
      {
        const MutexLock lock(mutex_);
        curves_.erase(key);
      }
      note_eviction();
      promise.set_exception(std::current_exception());
    }
    return future.get();
  }

  // Non-owner: time the block on the in-flight (or already finished)
  // computation — this is the "waiter block time" the snapshot reports.
  const std::uint64_t wait_start = obs::now_ns();
  try {
    auto result = future.get();
    note_wait_us((obs::now_ns() - wait_start) / 1000);
    return result;
  } catch (...) {
    note_wait_us((obs::now_ns() - wait_start) / 1000);
    throw;
  }
}

}  // namespace calib::harness

# Empty dependencies file for calibsched_multitype.
# This may be replaced when dependencies are built.

// Concurrency stress tests, written to be run under ThreadSanitizer
// (build with -DCALIBSCHED_SANITIZE=thread) as well as in the plain
// configuration. Each test drives real contention — many threads, small
// shared state, tight loops — so TSan sees every lock/atomic protocol
// these classes claim to implement: the thread-pool queue, parallel_for
// exception aggregation, MetricsRegistry's single-writer relaxed shards
// under a concurrent snapshot(), FlowCurveCache's compute-once map, and
// the TraceCollector's two-level buffer locking.
//
// None of these tests fork, so nothing here needs the CALIBSCHED_TSAN
// gate (that exists for the sandbox tests, where post-fork children are
// outside TSan's model).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/instance.hpp"
#include "harness/dp_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace calib {
namespace {

// A distinct type so the rethrow-as-is contract is checkable: if
// parallel_for wrapped single failures, the catch below would miss.
struct CellFailure : std::runtime_error {
  explicit CellFailure(const std::string& what) : std::runtime_error(what) {}
};

TEST(ThreadPoolStress, SingleExceptionRethrownWithTypePreserved) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(256, [&completed](std::size_t i) {
      if (i == 100) throw CellFailure("index 100 failed");
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "parallel_for swallowed the failure";
  } catch (const CellFailure& error) {
    EXPECT_STREQ(error.what(), "index 100 failed");
  }
  // One throwing index must not abort the other 255.
  EXPECT_EQ(completed.load(), 255);
}

TEST(ThreadPoolStress, ManyExceptionsAggregatedUnderContention) {
  ThreadPool pool(8);
  // Every 5th of 500 indices throws from whichever worker got it; the
  // aggregate must count all 100 regardless of chunking or timing.
  try {
    pool.parallel_for(500, [](std::size_t i) {
      if (i % 5 == 0) throw CellFailure("boom " + std::to_string(i));
    });
    FAIL() << "parallel_for swallowed the failures";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("100 tasks failed"), std::string::npos) << what;
    // Errors are reported in index order, not completion order.
    EXPECT_NE(what.find("[task 0: boom 0]"), std::string::npos) << what;
  }
}

TEST(ThreadPoolStress, SubmitFromManyThreadsDeliversEveryResult) {
  ThreadPool pool(4);
  // Hammer submit() itself from several producer threads at once — the
  // queue lock, not just the workers, is under contention.
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 200;
  std::vector<std::future<int>> futures[kProducers];
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &futures, p] {
      futures[p].reserve(kPerProducer);
      for (int i = 0; i < kPerProducer; ++i) {
        futures[p].push_back(pool.submit([p, i] { return p * kPerProducer + i; }));
      }
    });
  }
  for (auto& producer : producers) producer.join();
  std::set<int> seen;
  for (auto& per_producer : futures) {
    for (auto& future : per_producer) seen.insert(future.get());
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
}

TEST(MetricsStress, SnapshotRacesWritersThenSettlesExact) {
  auto& registry = obs::metrics();
  const obs::Counter hits = registry.counter("stress.hits");
  const obs::Histogram lat = registry.histogram("stress.lat_us");
  const obs::Gauge depth = registry.gauge("stress.depth");
  const std::uint64_t hits_before = hits.value();

  constexpr int kWriters = 8;
  constexpr int kIters = 20000;
  std::atomic<bool> stop{false};
  // A reader thread snapshots continuously while writers hammer their
  // shards — this is the single-writer-relaxed protocol TSan must bless.
  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)registry.snapshot();
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&hits, &lat, &depth] {
      for (int i = 0; i < kIters; ++i) {
        hits.add();
        lat.record(static_cast<std::uint64_t>(i) % 1024);
        depth.add(1);
        depth.add(-1);
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true);
  reader.join();

  // Quiescent now, so totals are exact (header contract on snapshot()).
  EXPECT_EQ(hits.value() - hits_before,
            static_cast<std::uint64_t>(kWriters) * kIters);
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.gauges.at("stress.depth"), 0);
  EXPECT_GE(snap.histograms.at("stress.lat_us").count,
            static_cast<std::uint64_t>(kWriters) * kIters);
}

TEST(MetricsStress, ConcurrentRegistrationOfOneNameYieldsOneMetric) {
  auto& registry = obs::metrics();
  constexpr int kThreads = 8;
  constexpr int kAdds = 1000;
  const std::uint64_t before = registry.counter("stress.reg_race").value();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // find-or-register race: every thread resolves the same name.
      const obs::Counter counter = registry.counter("stress.reg_race");
      for (int i = 0; i < kAdds; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("stress.reg_race").value() - before,
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(FlowCurveCacheStress, ConcurrentRequestsShareOneComputation) {
  // 12 jobs is enough DP work that the non-owning threads genuinely
  // block on the in-flight future instead of winning a fast race.
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back({.release = Time{i % 4}, .weight = Weight{1 + i % 3}});
  }
  const Instance instance(jobs, /*calibration_length=*/3);

  harness::FlowCurveCache cache;
  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const std::vector<Cost>>> curves(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&cache, &instance, &curves, t] { curves[t] = cache.curve(instance); });
  }
  for (auto& thread : threads) thread.join();

  // Compute-once: every thread holds the *same* vector, and the cache
  // accounting agrees that exactly one DP ran.
  for (std::size_t t = 1; t < kThreads; ++t) EXPECT_EQ(curves[t], curves[0]);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), kThreads - 1);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(FlowCurveCacheStress, FailedComputationEvictsAndRetries) {
  std::vector<Job> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back({.release = Time{i}, .weight = Weight{1}});
  }
  const Instance instance(jobs, /*calibration_length=*/2);

  harness::FlowCurveCache cache;
  // A zero-budget owner throws BudgetExceeded; concurrent waiters must
  // all see the failure, and the entry must be evicted so a later
  // unbudgeted call recomputes successfully.
  Budget exhausted = Budget::steps(0);
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &instance, &exhausted, &failures, t] {
      try {
        (void)cache.curve(instance, t == 0 ? &exhausted : nullptr);
      } catch (...) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Depending on interleaving the budgeted thread may not have owned
  // the computation (another thread's unbudgeted DP may win the race),
  // so the failure count is timing-dependent — but a fresh request must
  // always succeed afterwards.
  const auto curve = cache.curve(instance);
  ASSERT_NE(curve, nullptr);
  EXPECT_EQ(curve->size(), static_cast<std::size_t>(instance.size()) + 1);
}

#if CALIBSCHED_OBS
TEST(TraceStress, RecordAndSnapshotUnderContention) {
  // A private collector (not the tracer() singleton) so event counts
  // are exact regardless of what other tests traced.
  obs::TraceCollector collector;
  collector.set_enabled(true);
  constexpr int kThreads = 6;
  constexpr int kEvents = 2000;
  std::atomic<bool> stop{false};
  // Contended readers: events() copies the buffer list under the
  // collector lock, then each buffer under its own — the documented
  // two-level lock order, exercised while writers hold buffer locks.
  std::thread reader([&collector, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)collector.events();
      (void)collector.dropped();
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&collector, t] {
      collector.set_thread_name("stress-" + std::to_string(t));
      for (int i = 0; i < kEvents; ++i) {
        obs::TraceEvent event;
        event.name = "evt";
        event.cat = "stress";
        event.ts_ns = static_cast<std::uint64_t>(i);
        event.dur_ns = 1;
        collector.record(std::move(event));
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(collector.events().size(),
            static_cast<std::size_t>(kThreads) * kEvents);
  EXPECT_EQ(collector.dropped(), 0u);
  collector.clear();
  EXPECT_TRUE(collector.events().empty());
}
#endif  // CALIBSCHED_OBS

TEST(TraceStress, ScopedSpansOnManyThreadsWithTracerEnabled) {
  // The real pipeline: ScopedSpan -> tracer() singleton, from pool
  // workers, with the collector live. Under TSan this covers the span
  // hot path end to end (now_ns epoch init included).
  obs::tracer().set_enabled(true);
  ThreadPool pool(4);
  pool.parallel_for(512, [](std::size_t i) {
    obs::ScopedSpan span("stress.cell", "test");
    span.arg("i", std::to_string(i));
    obs::ScopedSpan inner("stress.inner", "test");
  });
  obs::tracer().set_enabled(false);
}

}  // namespace
}  // namespace calib

// E8 — the paper's motivating tradeoff (Sections 1 and 4): flow versus
// calibrations.
//
// Two series:
//   (a) the frontier k -> F(k) (optimal flow at each calibration
//       budget) for a representative day of jobs — the curve every
//       downstream user reads off to price calibrations;
//   (b) the G-sweep of the offline optimum's split between calibration
//       spend and flow, plus the footnote-5 binary search vs the
//       exhaustive scan.
// Expected shape: F(k) is non-increasing with steeply diminishing
// returns; as G grows the optimum shifts from many calibrations to few;
// binary search agrees with exhaustive everywhere it is unimodal.
// The E8b G-sweep runs through the harness sweep engine: one workload
// cell, the "offline" solver, eight G values — the DP flow-curve is
// computed once and every G reads the cached curve.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "harness/sweep.hpp"
#include "offline/dp.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

Instance representative_day(std::uint64_t seed) {
  Prng prng(seed);
  PoissonConfig config;
  config.rate = 0.35;
  config.steps = 80;
  config.weights = WeightModel::kUniform;
  config.w_max = 6;
  return poisson_instance(config, 6, 1, prng);
}

/// The E8 grid: one representative day, offline optimum, a G ladder.
harness::SweepGrid tradeoff_grid() {
  harness::WorkloadSpec day;
  day.kind = "poisson";
  day.rate = 0.35;
  day.steps = 80;
  day.weights = WeightModel::kUniform;
  day.w_max = 6;
  day.T = 6;
  harness::SweepGrid grid;
  grid.workloads = {day};
  grid.solvers = {harness::kOfflineSolver};
  grid.G_values = {1, 3, 7, 15, 30, 60, 120, 250};
  grid.seeds = 1;
  grid.base_seed = 11;
  return grid;
}

void BM_FlowCurve(benchmark::State& state) {
  const Instance day = representative_day(11);
  for (auto _ : state) {
    OfflineDp dp(day);
    benchmark::DoNotOptimize(dp.flow_curve(day.size()));
  }
}

BENCHMARK(BM_FlowCurve)->Unit(benchmark::kMillisecond);

void BM_BudgetSearchExhaustiveVsBinary(benchmark::State& state) {
  const Instance day = representative_day(12);
  const bool binary = state.range(0) != 0;
  for (auto _ : state) {
    if (binary) {
      benchmark::DoNotOptimize(offline_online_optimum_binary(day, 15));
    } else {
      benchmark::DoNotOptimize(offline_online_optimum(day, 15));
    }
  }
  state.SetLabel(binary ? "binary (footnote 5)" : "exhaustive");
}

BENCHMARK(BM_BudgetSearchExhaustiveVsBinary)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

struct TablePrinter {
  ~TablePrinter() {
    const harness::SweepGrid grid = tradeoff_grid();
    // Exactly the instance the engine materializes for its cells, so
    // the frontier (E8a) and the binary-search cross-check read the
    // same day the harness swept.
    const Instance day = harness::materialize_instance(grid, 0, 0);
    OfflineDp dp(day);
    const auto curve = dp.flow_curve(day.size());

    std::cout << "\nE8a - the flow-vs-calibrations frontier F(k) "
                 "(n=" << day.size() << ", T=" << day.T() << "):\n";
    Table frontier({"k", "F(k)", "marginal saving"});
    Cost previous = kInfeasible;
    for (int k = 1; k <= day.size(); ++k) {
      const Cost flow = curve[static_cast<std::size_t>(k)];
      if (flow == kInfeasible) continue;
      frontier.row()
          .add(k)
          .add(flow)
          .add(previous == kInfeasible ? std::string("-")
                                       : std::to_string(previous - flow));
      previous = flow;
      if (flow == curve.back()) break;  // flat tail: stop printing
    }
    frontier.print(std::cout);

    const harness::SweepReport report = harness::SweepEngine(grid).run(
        benchutil::sweep_options_from_env("bench_tradeoff"));
    std::cout << "\nE8b - offline optimum's cost split as G grows, and "
                 "footnote-5 binary search agreement:\n";
    Table split({"G", "best k", "calibration spend", "flow", "total",
                 "binary agrees"});
    for (const harness::SweepRow& row : report.rows) {
      const BudgetSearchResult binary =
          offline_online_optimum_binary(day, row.G);
      split.row()
          .add(static_cast<std::int64_t>(row.G))
          .add(row.result.best_k)
          .add(row.G * row.result.best_k)
          .add(row.result.flow)
          .add(row.result.objective)
          .add(binary.best_cost == row.result.objective ? "yes" : "NO");
    }
    split.print(std::cout);
    std::cerr << "[sweep] " << report.timing_summary() << '\n';
  }
};
// Declared before `printer` so it is destroyed after it: the snapshot
// then includes everything the bench recorded. Opt in by exporting
// CALIBSCHED_METRICS=<dir>.
const benchutil::MetricsSidecar sidecar("bench_tradeoff");  // NOLINT(cert-err58-cpp)
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

// The shared length-prefixed framing layer (util/framing.hpp): the
// EINTR-safe I/O wrappers over real pipes, encode/decode round-trips,
// the protocol-window contract, and — the robustness core — a
// table-driven hostility suite asserting that every malformed header
// poisons the reader permanently and that a hostile *declared* length
// never turns into a proportional allocation: the reader buffers only
// bytes actually received.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "util/framing.hpp"

namespace calib {
namespace {

std::string header(std::uint32_t magic, std::uint32_t type,
                   std::uint32_t length) {
  std::string out;
  put_u32(out, magic);
  put_u32(out, type);
  put_u32(out, length);
  return out;
}

// ---- EINTR-safe wrappers over a real pipe ------------------------------

TEST(FramingIo, WriteAllReadSomeRoundTripOverAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string message = "framing round trip";
  ASSERT_TRUE(write_all(fds[1], message.data(), message.size()));
  ::close(fds[1]);
  std::string got;
  char buffer[8];
  for (;;) {
    const ssize_t n = read_some(fds[0], buffer, sizeof buffer);
    ASSERT_GE(n, 0);
    if (n == 0) break;  // EOF
    got.append(buffer, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(got, message);
  ::close(fds[0]);
}

TEST(FramingIo, WriteAllFailsCleanlyOnAClosedPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  // SIGPIPE is ignored process-wide by the daemon/executor paths; tests
  // must not die here either.
  std::signal(SIGPIPE, SIG_IGN);
  const char byte = 'x';
  EXPECT_FALSE(write_all(fds[1], &byte, 1));
  ::close(fds[1]);
}

TEST(FramingIo, WaitReadableTimesOutAndThenFires) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EXPECT_EQ(wait_readable(fds[0], 10), 0);  // nothing yet: timeout
  const char byte = 'y';
  ASSERT_TRUE(write_all(fds[1], &byte, 1));
  EXPECT_GT(wait_readable(fds[0], 1000), 0);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FramingIo, WriteFrameIsReadableByAReader) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(write_frame(fds[1], 3, "payload"));
  ::close(fds[1]);
  FrameReader reader(1, 5);
  char buffer[64];
  for (;;) {
    const ssize_t n = read_some(fds[0], buffer, sizeof buffer);
    ASSERT_GE(n, 0);
    if (n == 0) break;
    reader.feed(buffer, static_cast<std::size_t>(n));
  }
  RawFrame frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, 3u);
  EXPECT_EQ(frame.payload, "payload");
  ::close(fds[0]);
}

// ---- Encode / decode ---------------------------------------------------

TEST(Framing, EncodeFrameLaysOutHeaderThenPayload) {
  const std::string bytes = encode_frame(7, "ab");
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + 2);
  EXPECT_EQ(get_u32(bytes.data()), kFrameMagic);
  EXPECT_EQ(get_u32(bytes.data() + 4), 7u);
  EXPECT_EQ(get_u32(bytes.data() + 8), 2u);
  EXPECT_EQ(bytes.substr(kFrameHeaderBytes), "ab");
}

TEST(Framing, EncodeFrameRejectsOversizedPayloads) {
  EXPECT_THROW((void)encode_frame(1, std::string(kMaxFrameBytes + 1, 'x')),
               std::runtime_error);
}

TEST(Framing, PutGetU32RoundTripsExtremes) {
  for (const std::uint32_t value :
       {0u, 1u, 0x43414C42u, 0x7FFFFFFFu, 0xFFFFFFFFu}) {
    std::string out;
    put_u32(out, value);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(get_u32(out.data()), value);
  }
}

TEST(Framing, WindowBoundsAreInclusive) {
  FrameReader reader(6, 11);
  const std::string bytes = encode_frame(6, "lo") + encode_frame(11, "hi");
  reader.feed(bytes.data(), bytes.size());
  RawFrame frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, 6u);
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.type, 11u);
  EXPECT_FALSE(reader.corrupted());
}

TEST(Framing, ByteAtATimeReassembly) {
  const std::string bytes = encode_frame(2, "slow drip");
  FrameReader reader(1, 5);
  RawFrame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    reader.feed(bytes.data() + i, 1);
    EXPECT_FALSE(reader.next(frame)) << "frame completed early at " << i;
  }
  reader.feed(bytes.data() + bytes.size() - 1, 1);
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.payload, "slow drip");
}

// ---- Table-driven hostility suite --------------------------------------

struct HostileCase {
  const char* name;
  std::string bytes;          // the hostile stream
  const char* error_substr;   // expected FrameReader::error() fragment
};

std::vector<HostileCase> hostile_cases() {
  std::vector<HostileCase> cases;
  cases.push_back({"garbage_magic",
                   std::string("not a frame at all, just bytes"),
                   "bad frame magic"});
  cases.push_back({"zeroed_header", std::string(kFrameHeaderBytes, '\0'),
                   "bad frame magic"});
  cases.push_back({"magic_off_by_one_bit",
                   header(kFrameMagic ^ 1u, 2, 0), "bad frame magic"});
  cases.push_back({"type_below_window", header(kFrameMagic, 0, 0),
                   "unknown frame type"});
  cases.push_back({"type_above_window", header(kFrameMagic, 6, 0),
                   "unknown frame type"});
  cases.push_back({"type_huge", header(kFrameMagic, 0xFFFFFFFFu, 0),
                   "unknown frame type"});
  cases.push_back({"length_one_past_cap",
                   header(kFrameMagic, 2, kMaxFrameBytes + 1),
                   "oversized frame"});
  cases.push_back({"length_2gib", header(kFrameMagic, 2, 0x7FFFFFFFu),
                   "oversized frame"});
  cases.push_back({"length_u32_max", header(kFrameMagic, 2, 0xFFFFFFFFu),
                   "oversized frame"});
  // A valid frame followed by trailing garbage: the frame is delivered,
  // then the stream poisons at the garbage boundary.
  cases.push_back({"valid_then_garbage",
                   encode_frame(2, "ok") + std::string(16, 'Z'),
                   "bad frame magic"});
  return cases;
}

TEST(FramingHostility, MalformedHeadersPoisonPermanently) {
  for (const HostileCase& c : hostile_cases()) {
    SCOPED_TRACE(c.name);
    FrameReader reader(1, 5);
    reader.feed(c.bytes.data(), c.bytes.size());
    RawFrame frame;
    while (reader.next(frame)) {
      // valid_then_garbage legitimately yields its leading frame.
    }
    EXPECT_TRUE(reader.corrupted());
    EXPECT_NE(reader.error().find(c.error_substr), std::string::npos)
        << reader.error();

    // Permanence: a perfectly valid frame fed afterwards must neither
    // resurrect the reader nor be buffered — a poisoned stream has no
    // trustworthy frame boundary, and retaining bytes for it would be
    // an unbounded-memory hole against a babbling peer.
    const std::string valid = encode_frame(3, "after poison");
    const std::size_t buffered = reader.buffered_bytes();
    reader.feed(valid.data(), valid.size());
    EXPECT_FALSE(reader.next(frame));
    EXPECT_TRUE(reader.corrupted());
    EXPECT_EQ(reader.buffered_bytes(), buffered) << "poisoned reader grew";
  }
}

TEST(FramingHostility, HostileCasesPoisonEvenWhenFedByteAtATime) {
  for (const HostileCase& c : hostile_cases()) {
    SCOPED_TRACE(c.name);
    FrameReader reader(1, 5);
    for (const char byte : c.bytes) reader.feed(&byte, 1);
    RawFrame frame;
    while (reader.next(frame)) {
    }
    EXPECT_TRUE(reader.corrupted());
    EXPECT_NE(reader.error().find(c.error_substr), std::string::npos)
        << reader.error();
  }
}

TEST(FramingHostility, DeclaredLengthNeverDrivesAllocation) {
  // A header declaring a 2 GiB payload must cost the reader 12 bytes of
  // buffer, not 2 GiB: poisoning happens on the declared length alone,
  // before any allocation sized by it.
  FrameReader reader(1, 5);
  const std::string bytes = header(kFrameMagic, 2, 0x7FFFFFFFu);
  reader.feed(bytes.data(), bytes.size());
  EXPECT_TRUE(reader.corrupted());
  EXPECT_LE(reader.buffered_bytes(), bytes.size());
}

TEST(FramingHostility, MaximalInWindowLengthBuffersOnlyReceivedBytes) {
  // Exactly kMaxFrameBytes is legal, so the reader must wait for the
  // payload — but its buffer tracks the bytes actually fed, never the
  // declared size.
  FrameReader reader(1, 5);
  const std::string head = header(kFrameMagic, 2, kMaxFrameBytes);
  reader.feed(head.data(), head.size());
  EXPECT_FALSE(reader.corrupted());
  EXPECT_EQ(reader.buffered_bytes(), head.size());
  const std::string chunk(1024, 'p');
  reader.feed(chunk.data(), chunk.size());
  EXPECT_EQ(reader.buffered_bytes(), head.size() + chunk.size());
  RawFrame frame;
  EXPECT_FALSE(reader.next(frame));  // still incomplete, still sane
}

TEST(FramingHostility, TruncatedHeaderIsPatienceNotPoison) {
  // Mid-header EOF is the peer's problem (callers see EOF on the fd);
  // the reader itself just waits — poisoning on an incomplete header
  // would break byte-at-a-time delivery.
  for (std::size_t keep = 0; keep < kFrameHeaderBytes; ++keep) {
    FrameReader reader(1, 5);
    const std::string bytes = encode_frame(2, "x").substr(0, keep);
    reader.feed(bytes.data(), bytes.size());
    RawFrame frame;
    EXPECT_FALSE(reader.next(frame)) << keep;
    EXPECT_FALSE(reader.corrupted()) << keep;
  }
}

TEST(FramingHostility, MidPayloadEofLeavesAnUncorruptedIncompleteFrame) {
  const std::string bytes = encode_frame(2, "cut mid way");
  FrameReader reader(1, 5);
  reader.feed(bytes.data(), bytes.size() - 4);
  RawFrame frame;
  EXPECT_FALSE(reader.next(frame));
  EXPECT_FALSE(reader.corrupted());
  // The connection owner decides EOF-with-partial-frame is a breach;
  // the reader reports exactly what it buffered.
  EXPECT_EQ(reader.buffered_bytes(), bytes.size() - 4);
}

TEST(FramingHostility, InterleavedValidFramesSurviveUntilTheFirstBreach) {
  FrameReader reader(6, 11);
  const std::string bytes = encode_frame(7, "a") + encode_frame(8, "b") +
                            header(kFrameMagic, 1, 0) +  // executor type
                            encode_frame(9, "never seen");
  reader.feed(bytes.data(), bytes.size());
  RawFrame frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.payload, "a");
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame.payload, "b");
  EXPECT_FALSE(reader.next(frame));
  EXPECT_TRUE(reader.corrupted());
  EXPECT_NE(reader.error().find("unknown frame type 1"), std::string::npos);
}

}  // namespace
}  // namespace calib

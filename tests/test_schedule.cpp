// Schedule: cost accounting and validation (every corruption type must
// be caught with a useful message).
#include <gtest/gtest.h>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace calib {
namespace {

Instance two_job_instance() { return Instance({Job{0, 2}, Job{3, 1}}, 3); }

Schedule valid_schedule(const Instance& instance) {
  Calendar calendar(instance.T(), instance.machines());
  calendar.add(0, 1);
  Schedule schedule(calendar, instance.size());
  schedule.place(0, 0, 1);
  schedule.place(1, 0, 3);
  return schedule;
}

TEST(Schedule, ValidScheduleValidates) {
  const Instance instance = two_job_instance();
  const Schedule schedule = valid_schedule(instance);
  EXPECT_EQ(schedule.validate(instance), std::nullopt);
}

TEST(Schedule, WeightedFlowAccountsWeights) {
  const Instance instance = two_job_instance();
  const Schedule schedule = valid_schedule(instance);
  // Job 0: w=2, start 1, release 0 -> 2 * 2 = 4. Job 1: w=1, start 3,
  // release 3 -> 1.
  EXPECT_EQ(schedule.weighted_flow(instance), 5);
}

TEST(Schedule, WeightedCompletionDiffersByReleaseConstant) {
  const Instance instance = two_job_instance();
  const Schedule schedule = valid_schedule(instance);
  Cost release_weight = 0;
  for (JobId j = 0; j < instance.size(); ++j) {
    release_weight += instance.job(j).weight * instance.job(j).release;
  }
  EXPECT_EQ(schedule.weighted_completion(instance) - release_weight,
            schedule.weighted_flow(instance));
}

TEST(Schedule, OnlineCostAddsCalibrations) {
  const Instance instance = two_job_instance();
  const Schedule schedule = valid_schedule(instance);
  EXPECT_EQ(schedule.online_cost(instance, 10), 10 + 5);
}

TEST(Schedule, ValidationCatchesUnscheduledJob) {
  const Instance instance = two_job_instance();
  Calendar calendar(instance.T(), 1);
  calendar.add(0, 0);
  Schedule schedule(calendar, instance.size());
  schedule.place(0, 0, 0);
  const auto error = schedule.validate(instance);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("unscheduled"), std::string::npos);
}

TEST(Schedule, ValidationCatchesEarlyStart) {
  const Instance instance = two_job_instance();
  Schedule schedule = valid_schedule(instance);
  schedule.calendar().add(0, 2);
  schedule.place(1, 0, 2);  // release is 3
  const auto error = schedule.validate(instance);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("before its release"), std::string::npos);
}

TEST(Schedule, ValidationCatchesUncalibratedStep) {
  const Instance instance = two_job_instance();
  Schedule schedule = valid_schedule(instance);
  schedule.place(1, 0, 5);  // calendar only covers [1, 4)
  const auto error = schedule.validate(instance);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("uncalibrated"), std::string::npos);
}

TEST(Schedule, ValidationCatchesCollision) {
  const Instance instance = two_job_instance();
  Schedule schedule = valid_schedule(instance);
  schedule.place(1, 0, 1);  // same slot as job 0 (after release? no: 1<3)
  // Collision check happens per slot; use a colliding-but-released pair.
  Calendar calendar(instance.T(), 1);
  calendar.add(0, 3);
  Schedule colliding(calendar, instance.size());
  colliding.place(0, 0, 3);
  colliding.place(1, 0, 3);
  const auto error = colliding.validate(instance);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("collides"), std::string::npos);
}

TEST(Schedule, ValidationCatchesSizeMismatch) {
  const Instance instance = two_job_instance();
  Schedule schedule(Calendar(instance.T(), 1), 1);
  EXPECT_TRUE(schedule.validate(instance).has_value());
}

TEST(Schedule, ValidationCatchesWrongT) {
  const Instance instance = two_job_instance();
  Schedule schedule(Calendar(instance.T() + 1, 1), instance.size());
  const auto error = schedule.validate(instance);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("calendar T"), std::string::npos);
}

TEST(Schedule, ValidationCatchesWrongMachineCount) {
  const Instance instance = two_job_instance();
  Schedule schedule(Calendar(instance.T(), 2), instance.size());
  EXPECT_TRUE(schedule.validate(instance).has_value());
}

TEST(Schedule, JobsInIntervalFiltersByMachineAndWindow) {
  Calendar calendar(3, 2);
  calendar.add(0, 0);
  calendar.add(1, 0);
  Schedule schedule(calendar, 3);
  schedule.place(0, 0, 0);
  schedule.place(1, 0, 2);
  schedule.place(2, 1, 1);
  EXPECT_EQ(schedule.jobs_in_interval(0, 0), (std::vector<JobId>{0, 1}));
  EXPECT_EQ(schedule.jobs_in_interval(1, 0), (std::vector<JobId>{2}));
  EXPECT_TRUE(schedule.jobs_in_interval(0, 5).empty());
}

TEST(Schedule, PlaceUnplaceRoundTrip) {
  Schedule schedule(Calendar(2, 1), 1);
  EXPECT_FALSE(schedule.is_placed(0));
  schedule.place(0, 0, 4);
  EXPECT_TRUE(schedule.is_placed(0));
  EXPECT_EQ(schedule.placed_count(), 1);
  schedule.unplace(0);
  EXPECT_FALSE(schedule.is_placed(0));
  EXPECT_EQ(schedule.placed_count(), 0);
}

TEST(Schedule, RenderShowsJobsAndCalibration) {
  const Instance instance = two_job_instance();
  const Schedule schedule = valid_schedule(instance);
  const std::string art = schedule.render(instance);
  EXPECT_NE(art.find("machine0"), std::string::npos);
  EXPECT_NE(art.find('a'), std::string::npos);
  EXPECT_NE(art.find('b'), std::string::npos);
}

}  // namespace
}  // namespace calib

file(REMOVE_RECURSE
  "libcalibsched_util.a"
)

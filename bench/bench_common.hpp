// Shared helpers for the experiment harness: ratio measurement against
// the exact offline optimum, seed-ensemble averaging on the thread pool,
// opt-in checkpoint journaling for the sweep-driven benches.
#pragma once

#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "harness/sweep.hpp"
#include "offline/budget_search.hpp"
#include "online/driver.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace calib::benchutil {

/// Benches opt into the sweep engine's checkpoint journal by exporting
/// CALIBSCHED_JOURNAL=<directory>: each bench then appends its rows to
/// <dir>/<tag>.journal.jsonl and a re-run resumes instead of recomputing
/// completed cells. Unset (the default) → no journaling, no files.
inline harness::SweepOptions sweep_options_from_env(const std::string& tag) {
  harness::SweepOptions options;
  if (const char* dir = std::getenv("CALIBSCHED_JOURNAL");
      dir != nullptr && *dir != '\0') {
    options.journal_path = std::string(dir) + "/" + tag + ".journal.jsonl";
    options.resume = true;
  }
  return options;
}

/// Competitive ratio of `policy` on `instance` against the exact
/// offline optimum (Section 4 DP searched over budgets).
inline double ratio_vs_opt(const Instance& instance, Cost G,
                           OnlinePolicy& policy) {
  const Cost alg = online_objective(instance, G, policy);
  const Cost opt = offline_online_optimum(instance, G).best_cost;
  return static_cast<double>(alg) / static_cast<double>(opt);
}

/// Run `trial(seed_index)` for `trials` seeds in parallel; returns the
/// pooled summary of its returned statistic.
inline Summary ensemble(int trials,
                        const std::function<double(std::uint64_t)>& trial) {
  Summary summary;
  std::mutex mutex;
  global_pool().parallel_for(static_cast<std::size_t>(trials),
                             [&](std::size_t i) {
                               const double value =
                                   trial(static_cast<std::uint64_t>(i));
                               const std::scoped_lock lock(mutex);
                               summary.add(value);
                             });
  return summary;
}

}  // namespace calib::benchutil

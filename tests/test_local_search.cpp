// Offline local search: validity, monotone improvement over the seed,
// exactness gap against the DP optimum (P = 1) and the exhaustive
// optimum (P = 2).
#include <gtest/gtest.h>

#include "offline/brute_force.hpp"
#include "offline/budget_search.hpp"
#include "offline/local_search.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(LocalSearch, SingleJobFindsTheObviousSchedule) {
  const Instance instance({Job{3, 2}}, 4);
  const Schedule schedule = local_search_offline(instance, 10);
  EXPECT_EQ(schedule.validate(instance), std::nullopt);
  EXPECT_EQ(schedule.calendar().count(), 1);
  EXPECT_EQ(schedule.online_cost(instance, 10), 12);
}

TEST(LocalSearch, MergesBatchableJobs) {
  // Expensive G: the per-job seed (3 calibrations) must collapse.
  const Instance instance({Job{0, 1}, Job{1, 1}, Job{2, 1}}, 4);
  const Schedule schedule = local_search_offline(instance, 50);
  EXPECT_EQ(schedule.validate(instance), std::nullopt);
  EXPECT_EQ(schedule.calendar().count(), 1);
}

TEST(LocalSearch, NeverBelowOptNearOptOnSingleMachine) {
  Prng prng(2401);
  double worst = 1.0;
  for (int trial = 0; trial < 25; ++trial) {
    const Instance instance = sparse_uniform_instance(
        7, 20, 3, 1, WeightModel::kUniform, 5, prng);
    const Cost G = prng.uniform_int(2, 25);
    const Schedule schedule = local_search_offline(instance, G);
    const Cost cost = schedule.online_cost(instance, G);
    const Cost opt = offline_online_optimum(instance, G).best_cost;
    EXPECT_GE(cost, opt) << instance.to_string();
    worst = std::max(worst, static_cast<double>(cost) /
                                static_cast<double>(opt));
  }
  // Loose regression bound; E16 reports the measured distribution.
  EXPECT_LE(worst, 1.5);
}

TEST(LocalSearch, TracksExhaustiveOptimumOnTwoMachines) {
  Prng prng(2402);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance instance = sparse_uniform_instance(
        5, 8, 2, 2, WeightModel::kUnit, 1, prng);
    const Cost G = prng.uniform_int(2, 8);
    const Schedule schedule = local_search_offline(instance, G);
    ASSERT_EQ(schedule.validate(instance), std::nullopt);
    const OfflineSolution opt = brute_force_online_objective(
        instance, G, StartCandidates::kExhaustive);
    const Cost opt_cost = opt.schedule->online_cost(instance, G);
    EXPECT_GE(schedule.online_cost(instance, G), opt_cost);
    EXPECT_LE(schedule.online_cost(instance, G), 2 * opt_cost)
        << instance.to_string();
  }
}

TEST(LocalSearch, RespectsMaxRoundsCap) {
  Prng prng(2403);
  const Instance instance = sparse_uniform_instance(
      8, 24, 3, 1, WeightModel::kUniform, 5, prng);
  LocalSearchOptions options;
  options.max_rounds = 1;
  const Schedule schedule = local_search_offline(instance, 10, options);
  EXPECT_EQ(schedule.validate(instance), std::nullopt);
}

}  // namespace
}  // namespace calib

// calibsched — command-line front end for the library.
//
// Subcommands:
//   generate  --kind poisson|bursty|sparse --jobs N --steps N --rate R
//             --T N --machines P --weights unit|uniform|zipf|bimodal
//             --seed S [--out file]           -> instance CSV
//   solve     --in file --G N [--policy NAME] [--offline] [--svg file]
//             (policy names come from the registry; see `policies`)
//             -> uniform SolveResult report (and optional schedule SVG)
//   sweep     declarative grid -> JSONL/CSV rows, fanned across the
//             thread pool with deterministic per-cell PRNG streams
//   frontier  --in file [--kmax N]            -> the F(k) curve
//   lowerbound --in file --G N                -> Figure 1 LP bound
//   stats     --in metrics.json               -> pretty-print a metrics
//             snapshot (from `sweep --metrics` or a bench sidecar)
//   policies                                  -> registry listing
//
// Examples:
//   calibsched_cli generate --kind poisson --steps 100 --rate 0.3
//       --T 6 --seed 7 --out day.csv
//   calibsched_cli solve --in day.csv --G 15 --policy alg2 --offline
//   calibsched_cli sweep --kinds poisson,bursty --policies alg1,alg2,offline
//       --G 6,20,60 --seeds 20 --T 6 --opt --out rows.jsonl
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/schedule_io.hpp"
#include "core/svg.hpp"
#include "harness/journal.hpp"
#include "harness/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "lp/calib_lp.hpp"
#include "offline/budget_search.hpp"
#include "offline/dp.hpp"
#include "online/driver.hpp"
#include "online/registry.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

int usage() {
  std::cerr <<
      "usage: calibsched_cli "
      "<generate|solve|sweep|serve|client|frontier|lowerbound|stats|"
      "policies> [flags]\n"
      "  generate   --kind poisson|bursty|sparse --T N [--jobs N]\n"
      "             [--steps N] [--rate R] [--machines P] [--weights W]\n"
      "             [--wmax N] [--seed S] [--out FILE]\n"
      "  solve      --in FILE --G N [--policy P] [--offline] [--svg FILE]\n"
      "             [--save-schedule FILE]  (P one of: "
            << policy_names_joined() << ")\n"
      "  sweep      --kinds K[,K...] --policies P[,P...|offline] --G N[,N...]\n"
      "             [--seeds N] [--seed S] [--T N] [--steps N] [--rate R]\n"
      "             [--weights W[,W...]] [--wmax N] [--machines P] [--jobs N]\n"
      "             [--period N] [--threads N] [--opt] [--no-trace]\n"
      "             [--format jsonl|csv] [--timing] [--out FILE]\n"
      "             [--journal FILE] [--resume] [--retry-failed]\n"
      "             [--cell-budget-ms MS] [--cell-budget-steps N]\n"
      "             [--sandbox] [--sandbox-mem-mb N] [--sandbox-stack-kb N]\n"
      "             [--inject-faults SPEC] [--fault-seed S]\n"
      "             [--stop-after N]\n"
      "             [--workers N] [--heartbeat-ms MS]\n"
      "             [--heartbeat-timeout-ms MS] [--max-cell-attempts N]\n"
      "             [--retry-backoff-ms MS] [--worker-faults SPEC]\n"
      "             [--metrics FILE] [--trace FILE]\n"
      "             [--metrics-timeline FILE] [--events FILE] [--progress]\n"
      "             (--sandbox: fork each cell; crashes become rows and\n"
      "              --cell-budget-ms gains a SIGKILL watchdog)\n"
      "             (--inject-faults SPEC: THROWP[,TIMEOUTP], or\n"
      "              kind=P[,kind=P...] with kinds throw,timeout,segv,\n"
      "              abort,hang,corrupt; crash kinds need --sandbox or\n"
      "              --workers)\n"
      "             (--workers N: shard cells across N forked worker\n"
      "              processes; dead/stalled workers are detected, their\n"
      "              leases retried on survivors with backoff)\n"
      "             (--worker-faults SPEC: kind=WORKER@AFTER[,...] with\n"
      "              kinds kill,stall,corrupt-frame; needs --workers)\n"
      "             (--metrics: flat JSON snapshot; --trace: Chrome\n"
      "              trace_event JSON, open in Perfetto / chrome://tracing;\n"
      "              with --workers the trace merges coordinator + all\n"
      "              workers onto one timeline)\n"
      "             (--metrics-timeline: per-worker heartbeat delta series\n"
      "              as JSONL; render with `stats --timeline`)\n"
      "             (--progress: live status line on stderr; --events:\n"
      "              JSONL flight-recorder log of fleet events; both need\n"
      "              --workers)\n"
      "             (exits 3 if any cell ends in error/timeout/skipped/\n"
      "              crashed/invalid)\n"
      "  serve      --socket PATH | --tcp PORT [--journal FILE] [--resume]\n"
      "             [--max-sessions N] [--max-pending N] [--rate-limit R]\n"
      "             [--step-budget N] [--decision-deadline-ms MS]\n"
      "             [--idle-timeout-ms MS] [--threads N]\n"
      "             [--drain-grace-ms MS] [--inject-faults SPEC]\n"
      "             [--events FILE]\n"
      "             (streaming scheduling daemon; SPEC kinds:\n"
      "              slow-tenant[=MS],flood[=N],disconnect-mid-frame,\n"
      "              corrupt-frame, each optionally @TENANT;\n"
      "              SIGTERM/SIGINT drain gracefully to exit 0)\n"
      "  client     --socket PATH | --tcp PORT --tenant NAME [--policy P]\n"
      "             [--T N] [--G N] [--machines P] [--seed S] [--period N]\n"
      "             [--reattach] [--submit R:W[,R:W...] | --in FILE]\n"
      "             [--chaos none|flood|disconnect-mid-frame|corrupt-frame\n"
      "              |slow] [--chaos-param N] [--no-goodbye]\n"
      "             (one session against a serve daemon; prints one JSONL\n"
      "              line per decision; exits 0 ok, 1 connect, 2 protocol,\n"
      "              4 rejected/shed)\n"
      "  frontier   --in FILE [--kmax N]\n"
      "  lowerbound --in FILE --G N\n"
      "  stats      --in FILE [--timeline]   (pretty-print a --metrics\n"
      "             snapshot, or a --metrics-timeline series)\n"
      "  policies   (list the registry's solver names)\n";
  return 2;
}

Instance load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return Instance::load_csv(in);
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> items;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

std::vector<Cost> split_costs(const std::string& csv) {
  std::vector<Cost> values;
  for (const std::string& item : split_list(csv)) {
    values.push_back(static_cast<Cost>(std::stoll(item)));
  }
  return values;
}

int cmd_generate(const Args& args) {
  Prng prng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const Time T = args.get_int("T", 6);
  const int machines = static_cast<int>(args.get_int("machines", 1));
  const WeightModel weights = parse_weight_model(args.get("weights", "unit"));
  const Weight w_max = args.get_int("wmax", 9);
  const std::string kind = args.get("kind", "poisson");

  Instance instance({}, T, machines);
  if (kind == "poisson") {
    PoissonConfig config;
    config.rate = args.get_double("rate", 0.3);
    config.steps = args.get_int("steps", 100);
    config.weights = weights;
    config.w_max = w_max;
    instance = poisson_instance(config, T, machines, prng);
  } else if (kind == "bursty") {
    BurstyConfig config;
    config.steps = args.get_int("steps", 100);
    config.weights = weights;
    config.w_max = w_max;
    instance = bursty_instance(config, T, machines, prng);
  } else if (kind == "sparse") {
    const auto jobs = static_cast<int>(args.get_int("jobs", 10));
    instance = sparse_uniform_instance(
        jobs, args.get_int("steps", 3 * jobs), T, machines, weights, w_max,
        prng);
  } else {
    throw std::runtime_error("unknown kind: " + kind);
  }

  const std::string out = args.get("out", "");
  if (out.empty()) {
    instance.save_csv(std::cout);
  } else {
    std::ofstream file(out);
    if (!file) throw std::runtime_error("cannot write " + out);
    instance.save_csv(file);
    std::cout << "wrote " << instance.size() << " jobs to " << out << '\n';
  }
  return 0;
}

void add_result_row(Table& table, const SolveResult& result) {
  table.row()
      .add(result.solver)
      .add(result.calibrations)
      .add(result.flow)
      .add(result.objective)
      .add(result.best_k >= 0 ? std::to_string(result.best_k)
                              : std::string("-"))
      .add(result.wall_ms, 2);
}

// Reject G < 1 here so bad input exits with `error: ...` instead of
// tripping the driver's CALIB_CHECK (process abort).
Cost checked_G(const Args& args) {
  const Cost G = args.get_int("G", 10);
  if (G < 1) {
    throw std::runtime_error("--G must be >= 1, got " + std::to_string(G));
  }
  return G;
}

int cmd_solve(const Args& args) {
  const Instance instance = load_instance(args.get("in", ""));
  const Cost G = checked_G(args);
  const std::string policy_name = args.get("policy", "alg2");
  PolicyParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  params.period = args.get_int("period", 5);
  const auto policy = make_policy(policy_name, params);

  const Timer timer;
  const Schedule schedule = run_online(instance, G, *policy);
  const SolveResult online = summarize_schedule(
      policy->name(), instance, schedule, G, timer.millis());

  // Online and offline print through the same SolveResult columns.
  Table table({"solver", "calibrations", "weighted flow", "objective",
               "best k", "wall ms"});
  add_result_row(table, online);
  if (args.has("offline") && instance.machines() == 1) {
    add_result_row(table, offline_optimum_result(instance, G));
  }
  table.print(std::cout);

  const std::string svg_path = args.get("svg", "");
  if (!svg_path.empty()) {
    std::ofstream svg(svg_path);
    if (!svg) throw std::runtime_error("cannot write " + svg_path);
    SvgOptions options;
    options.title = policy_name + " on " + args.get("in", "") +
                    " (G=" + std::to_string(G) + ")";
    svg << render_svg(instance, schedule, options);
    std::cout << "wrote " << svg_path << '\n';
  }
  const std::string schedule_path = args.get("save-schedule", "");
  if (!schedule_path.empty()) {
    std::ofstream out(schedule_path);
    if (!out) throw std::runtime_error("cannot write " + schedule_path);
    save_schedule_csv(schedule, out);
    std::cout << "wrote " << schedule_path << '\n';
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  harness::SweepGrid grid;
  // One WorkloadSpec per kind × weight model; the scalar knobs are
  // shared across the grid (run several sweeps for per-kind knobs).
  const auto kinds = split_list(args.get("kinds", args.get("kind", "poisson")));
  const auto weight_names = split_list(args.get("weights", "unit"));
  for (const std::string& kind : kinds) {
    for (const std::string& weight_name : weight_names) {
      harness::WorkloadSpec spec;
      spec.kind = kind;
      spec.T = args.get_int("T", 6);
      spec.machines = static_cast<int>(args.get_int("machines", 1));
      spec.weights = parse_weight_model(weight_name);
      spec.w_max = args.get_int("wmax", 9);
      spec.steps = args.get_int("steps", 100);
      spec.rate = args.get_double("rate", 0.3);
      spec.jobs = static_cast<int>(args.get_int("jobs", 10));
      grid.workloads.push_back(spec);
    }
  }
  grid.solvers = split_list(args.get("policies", "alg2"));
  grid.G_values = split_costs(args.get("G", "10"));
  grid.seeds = static_cast<int>(args.get_int("seeds", 1));
  grid.base_seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  grid.periodic_period = args.get_int("period", 5);
  grid.compare_to_opt = args.has("opt");
  grid.collect_trace = !args.has("no-trace");
  grid.threads = static_cast<std::size_t>(args.get_int("threads", 0));

  harness::SweepOptions options;
  options.journal_path = args.get("journal", "");
  options.resume = args.has("resume");
  options.retry_failed = args.has("retry-failed");
  options.cell_budget_ms = args.get_double("cell-budget-ms", 0.0);
  options.cell_step_budget =
      static_cast<std::uint64_t>(args.get_int("cell-budget-steps", 0));
  options.sandbox = args.has("sandbox");
  options.sandbox_memory_bytes =
      static_cast<std::uint64_t>(args.get_int("sandbox-mem-mb", 0)) << 20;
  options.sandbox_stack_bytes =
      static_cast<std::uint64_t>(args.get_int("sandbox-stack-kb", 0)) << 10;
  const std::string faults = args.get("inject-faults", "");
  if (!faults.empty()) {
    const auto parts = split_list(faults);
    if (faults.find('=') != std::string::npos) {
      // Named syntax: kind=P[,kind=P...] over the full fault vocabulary.
      for (const std::string& part : parts) {
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos) {
          throw std::runtime_error(
              "--inject-faults: cannot mix named and positional parts");
        }
        const std::string kind = part.substr(0, eq);
        const double probability = std::stod(part.substr(eq + 1));
        if (kind == "throw") {
          options.faults.throw_probability = probability;
        } else if (kind == "timeout") {
          options.faults.timeout_probability = probability;
        } else if (kind == "segv") {
          options.faults.segv_probability = probability;
        } else if (kind == "abort") {
          options.faults.abort_probability = probability;
        } else if (kind == "hang") {
          options.faults.hang_probability = probability;
        } else if (kind == "corrupt") {
          options.faults.corrupt_probability = probability;
        } else {
          throw std::runtime_error("--inject-faults: unknown fault kind: " +
                                   kind);
        }
      }
    } else {
      // Positional compatibility syntax: THROWP[,TIMEOUTP].
      if (parts.empty() || parts.size() > 2) {
        throw std::runtime_error(
            "--inject-faults wants THROWP[,TIMEOUTP] or kind=P[,kind=P...]");
      }
      options.faults.throw_probability = std::stod(parts[0]);
      if (parts.size() == 2) {
        options.faults.timeout_probability = std::stod(parts[1]);
      }
    }
    options.faults.seed =
        static_cast<std::uint64_t>(args.get_int("fault-seed", 1));
  }
  if (args.has("stop-after")) {
    options.max_cells =
        static_cast<std::size_t>(args.get_int("stop-after", 0));
  }
  options.workers = static_cast<int>(args.get_int("workers", 0));
  options.heartbeat_interval_ms =
      args.get_double("heartbeat-ms", options.heartbeat_interval_ms);
  options.heartbeat_timeout_ms = args.get_double(
      "heartbeat-timeout-ms", options.heartbeat_timeout_ms);
  options.max_cell_attempts = static_cast<int>(
      args.get_int("max-cell-attempts", options.max_cell_attempts));
  options.retry_backoff_ms =
      args.get_double("retry-backoff-ms", options.retry_backoff_ms);
  const std::string worker_faults = args.get("worker-faults", "");
  if (!worker_faults.empty()) {
    options.worker_faults = harness::parse_worker_faults(worker_faults);
  }
  options.progress = args.has("progress");
  options.events_path = args.get("events", "");

  const std::string metrics_path = args.get("metrics", "");
  const std::string timeline_path = args.get("metrics-timeline", "");
  const std::string trace_path = args.get("trace", "");
  // Enable span recording before the engine runs; ScopedSpan checks the
  // flag at construction, so flipping it afterwards would capture
  // nothing.
  if (!trace_path.empty()) obs::tracer().set_enabled(true);

  harness::SweepEngine engine(std::move(grid));
  const harness::SweepReport report = engine.run(options);

  const bool timing = args.has("timing");
  const std::string format = args.get("format", "jsonl");
  std::ostringstream body;
  if (format == "jsonl") {
    report.write_jsonl(body, timing);
  } else if (format == "csv") {
    report.write_csv(body, timing);
  } else {
    throw std::runtime_error("unknown format: " + format);
  }

  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::cout << body.str();
  } else {
    std::ofstream file(out);
    if (!file) throw std::runtime_error("cannot write " + out);
    file << body.str();
    std::cerr << "wrote " << report.rows.size() << " rows to " << out
              << '\n';
  }
  // Timing goes to stderr so stdout rows stay byte-stable across runs.
  std::cerr << report.timing_summary() << '\n';

  // Sidecars are written even for degraded sweeps — a failed run is
  // exactly when the metrics are most interesting.
  if (!metrics_path.empty()) {
    std::ofstream file(metrics_path);
    if (!file) throw std::runtime_error("cannot write " + metrics_path);
    // Fold the executor workers' final snapshots into the parent's own:
    // the workers' registries died with their processes.
    obs::Snapshot snapshot = obs::metrics().snapshot();
    snapshot.merge(report.worker_metrics);
    snapshot.write_json(file);
    std::cerr << "wrote metrics to " << metrics_path << '\n';
  }
  if (!trace_path.empty()) {
    std::ofstream file(trace_path);
    if (!file) throw std::runtime_error("cannot write " + trace_path);
    if (options.workers > 0) {
      // Fleet-wide view: this process's spans (the coordinator) plus
      // every worker's shipped chunks, one Perfetto process each, with
      // flow arrows from lease spans to the cell spans they paid for.
      obs::write_merged_chrome_trace(file, report.worker_traces);
    } else {
      obs::tracer().write_chrome_trace(file);
    }
    std::cerr << "wrote trace to " << trace_path << '\n';
  }
  if (!timeline_path.empty()) {
    std::ofstream file(timeline_path);
    if (!file) throw std::runtime_error("cannot write " + timeline_path);
    report.timeline.write_jsonl(file);
    std::cerr << "wrote " << report.timeline.samples().size()
              << " timeline samples to " << timeline_path << '\n';
  }

  // A sweep with degraded cells must not look like a success to shell
  // pipelines: summarize per status and exit nonzero.
  const harness::SweepStatusCounts counts = report.status_counts();
  if (report.interrupted) {
    std::cerr << "sweep interrupted: unfinished cells journaled as skipped"
                 " (continue with --resume --retry-failed)\n";
  }
  if (!counts.all_ok()) {
    std::cerr << "sweep degraded: " << counts.ok << " ok, " << counts.error
              << " error, " << counts.timeout << " timeout, "
              << counts.skipped << " skipped, " << counts.crashed
              << " crashed, " << counts.invalid << " invalid\n";
    return 3;
  }
  return report.interrupted ? 3 : 0;
}

int cmd_frontier(const Args& args) {
  const Instance instance = load_instance(args.get("in", ""));
  OfflineDp dp(instance.releases_normalized() ? instance
                                              : instance.normalized());
  const auto k_max = static_cast<int>(
      args.get_int("kmax", dp.instance().size()));
  const auto curve = dp.flow_curve(k_max);
  Table table({"k", "optimal flow F(k)"});
  for (int k = 0; k <= k_max; ++k) {
    const Cost flow = curve[static_cast<std::size_t>(k)];
    table.row().add(static_cast<std::int64_t>(k)).add(
        flow == kInfeasible ? std::string("infeasible")
                            : std::to_string(flow));
  }
  table.print(std::cout);
  return 0;
}

int cmd_lowerbound(const Args& args) {
  const Instance instance = load_instance(args.get("in", ""));
  const Cost G = checked_G(args);
  std::cout << "Figure 1 LP lower bound on G*#calibrations + flow: "
            << lp_lower_bound(instance, G) << '\n';
  return 0;
}

// Render a metrics timeline (`sweep --metrics-timeline` JSONL): one
// overview row per source, then per-source counter totals with the
// rate over the source's observed span. Torn or corrupt lines were
// skipped at load time and are reported, not fatal.
int cmd_stats_timeline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::size_t skipped = 0;
  const obs::Timeline timeline = obs::Timeline::load_jsonl(in, &skipped);
  if (timeline.empty()) {
    throw std::runtime_error(
        "no timeline samples in " + path +
        (skipped > 0 ? " (" + std::to_string(skipped) +
                           " malformed lines skipped — corrupt or truncated "
                           "timeline?)"
                     : " (empty file — was the sweep run with --workers and "
                       "--metrics-timeline?)"));
  }
  if (skipped > 0) {
    std::cerr << "warning: skipped " << skipped
              << " malformed timeline lines (torn write?)\n";
  }

  // Per-source span and per-(source, counter) totals. Counters arrive
  // as interval deltas, so a plain sum is the source's total and
  // total/span is its average rate; gauges keep their last level.
  struct SourceAgg {
    std::size_t samples = 0;
    double t_first = 0.0;
    double t_last = 0.0;
    std::map<std::string, std::uint64_t> counter_totals;
    std::map<std::string, std::int64_t> gauge_last;
    std::map<std::string, std::uint64_t> hist_counts;
  };
  std::map<std::string, SourceAgg> sources;
  for (const auto& sample : timeline.samples()) {
    SourceAgg& agg = sources[sample.source];
    if (agg.samples == 0) agg.t_first = sample.t_ms;
    ++agg.samples;
    agg.t_last = sample.t_ms;
    for (const auto& [name, delta] : sample.counters) {
      agg.counter_totals[name] += delta;
    }
    for (const auto& [name, value] : sample.gauges) {
      agg.gauge_last[name] = value;
    }
    for (const auto& [name, delta] : sample.histograms) {
      agg.hist_counts[name] += delta.count;
    }
  }

  Table overview({"source", "samples", "first ms", "last ms", "span s"});
  for (const auto& [source, agg] : sources) {
    overview.row()
        .add(source)
        .add(static_cast<std::int64_t>(agg.samples))
        .add(agg.t_first, 1)
        .add(agg.t_last, 1)
        .add((agg.t_last - agg.t_first) / 1000.0, 2);
  }
  overview.print(std::cout);

  Table rates({"source", "metric", "kind", "total", "per sec"});
  bool any_rate = false;
  for (const auto& [source, agg] : sources) {
    const double span_s = (agg.t_last - agg.t_first) / 1000.0;
    const auto rate = [&](std::uint64_t total) {
      return span_s > 0.0 ? static_cast<double>(total) / span_s : 0.0;
    };
    for (const auto& [name, total] : agg.counter_totals) {
      any_rate = true;
      rates.row()
          .add(source)
          .add(name)
          .add("counter")
          .add(static_cast<std::int64_t>(total))
          .add(rate(total), 2);
    }
    for (const auto& [name, total] : agg.hist_counts) {
      any_rate = true;
      rates.row()
          .add(source)
          .add(name)
          .add("histogram")
          .add(static_cast<std::int64_t>(total))
          .add(rate(total), 2);
    }
    for (const auto& [name, value] : agg.gauge_last) {
      any_rate = true;
      rates.row().add(source).add(name).add("gauge (last)").add(value).add(
          "-");
    }
  }
  if (any_rate) {
    std::cout << '\n';
    rates.print(std::cout);
  }
  return 0;
}

// Pretty-print a metrics snapshot (the flat JSON from `sweep --metrics`
// or a bench sidecar): histogram stat families fold into one table row
// each, everything else prints as a scalar. With --timeline the input
// is a `sweep --metrics-timeline` JSONL series instead.
int cmd_stats(const Args& args) {
  const std::string path = args.get("in", "");
  if (args.has("timeline")) return cmd_stats_timeline(path);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  // The snapshot is one flat object; tolerate trailing/embedded
  // newlines by flattening them to spaces before parsing.
  std::replace(text.begin(), text.end(), '\n', ' ');
  std::replace(text.begin(), text.end(), '\r', ' ');
  if (text.find_first_not_of(' ') == std::string::npos) {
    throw std::runtime_error(
        "metrics file is empty: " + path +
        " (did the writer crash before its snapshot was flushed?)");
  }
  std::map<std::string, std::string> fields;
  try {
    fields = harness::parse_flat_json(text);
  } catch (const std::exception& error) {
    throw std::runtime_error("not a metrics snapshot (truncated or corrupt "
                             "JSON): " +
                             path + ": " + error.what());
  }
  if (fields.empty()) {
    throw std::runtime_error("no metrics in " + path +
                             " (the snapshot object is empty)");
  }

  // A key family base.count / base.sum / ... / base.p99 is a histogram;
  // requiring the *full* stat set keeps scalars that merely end in a
  // stat-like suffix (e.g. a counter named foo.count) out of the fold.
  const std::vector<std::string> suffixes{"count", "sum", "min", "max",
                                          "p50",   "p90", "p99"};
  std::map<std::string, std::map<std::string, std::string>> hists;
  for (const auto& [key, value] : fields) {
    const auto dot = key.rfind('.');
    if (dot == std::string::npos || dot == 0) continue;
    const std::string suffix = key.substr(dot + 1);
    if (std::find(suffixes.begin(), suffixes.end(), suffix) !=
        suffixes.end()) {
      hists[key.substr(0, dot)][suffix] = value;
    }
  }
  for (auto it = hists.begin(); it != hists.end();) {
    if (it->second.size() != suffixes.size()) {
      it = hists.erase(it);
    } else {
      ++it;
    }
  }

  const auto folded = [&](const std::string& key) {
    const auto dot = key.rfind('.');
    if (dot == std::string::npos || dot == 0) return false;
    return hists.count(key.substr(0, dot)) != 0;
  };

  Table scalars({"metric", "value"});
  bool any_scalar = false;
  for (const auto& [key, value] : fields) {
    if (folded(key)) continue;
    any_scalar = true;
    scalars.row().add(key).add(value);
  }
  if (any_scalar) scalars.print(std::cout);

  if (!hists.empty()) {
    if (any_scalar) std::cout << '\n';
    Table table({"histogram", "count", "sum", "min", "max", "p50", "p90",
                 "p99"});
    for (const auto& [base, stats] : hists) {
      auto& row = table.row();
      row.add(base);
      for (const std::string& suffix : suffixes) row.add(stats.at(suffix));
    }
    table.print(std::cout);
  }
  return 0;
}

int cmd_serve(const Args& args) {
  serve::ServeOptions options;
  options.socket_path = args.get("socket", "");
  options.tcp_port =
      args.has("tcp") ? static_cast<int>(args.get_int("tcp", 0)) : -1;
  options.journal_path = args.get("journal", "");
  options.resume = args.has("resume");
  options.max_sessions =
      static_cast<std::size_t>(args.get_int("max-sessions", 64));
  options.limits.max_pending =
      static_cast<std::size_t>(args.get_int("max-pending", 64));
  options.limits.rate_per_sec = args.get_double("rate-limit", 0.0);
  options.limits.step_budget =
      static_cast<std::uint64_t>(args.get_int("step-budget", 0));
  options.limits.decision_deadline_ms =
      args.get_double("decision-deadline-ms", 0.0);
  options.idle_timeout_ms = args.get_double("idle-timeout-ms", 0.0);
  options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  options.drain_grace_ms = args.get_double("drain-grace-ms", 5000.0);
  if (args.has("inject-faults")) {
    options.faults =
        harness::parse_serve_faults(args.get("inject-faults", ""));
  }
  if (options.resume && options.journal_path.empty()) {
    throw std::runtime_error("serve: --resume needs --journal FILE");
  }
  std::ofstream events_file;
  if (args.has("events")) {
    events_file.open(args.get("events", ""));
    if (!events_file) {
      throw std::runtime_error("serve: cannot open events file");
    }
    options.events = &events_file;
  }
  options.log = &std::cerr;
  serve::ServeDaemon daemon(options);
  return daemon.run();
}

int cmd_client(const Args& args) {
  serve::ClientOptions options;
  options.socket_path = args.get("socket", "");
  options.tcp_port =
      args.has("tcp") ? static_cast<int>(args.get_int("tcp", 0)) : -1;
  options.hello.tenant = args.get("tenant", "");
  options.hello.policy = args.get("policy", "alg2");
  options.hello.T = args.get_int("T", 4096);
  options.hello.machines = static_cast<int>(args.get_int("machines", 1));
  options.hello.G = args.get_int("G", 5);
  options.hello.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  options.hello.period = args.get_int("period", 5);
  options.hello.resume = args.has("reattach");
  options.goodbye = !args.has("no-goodbye");
  options.chaos = serve::parse_chaos_mode(args.get("chaos", ""));
  options.chaos_param = args.get_int("chaos-param", 0);
  if (options.hello.tenant.empty()) {
    throw std::runtime_error("client: --tenant NAME is required");
  }
  if (args.has("in")) {
    // An instance CSV is already release-sorted by construction, which
    // is exactly the monotone order the daemon requires.
    const Instance instance = load_instance(args.get("in", ""));
    for (const Job& job : instance.jobs()) {
      options.jobs.push_back({job.release, job.weight});
    }
  }
  if (args.has("submit")) {
    for (const std::string& part : split_list(args.get("submit", ""))) {
      const std::size_t colon = part.find(':');
      serve::SubmitJob job;
      try {
        job.release = std::stoll(part.substr(0, colon));
        job.weight =
            colon == std::string::npos ? 1 : std::stoll(part.substr(colon + 1));
      } catch (const std::exception&) {
        throw std::runtime_error("client: bad --submit entry '" + part +
                                 "' (want RELEASE:WEIGHT)");
      }
      options.jobs.push_back(job);
    }
  }
  options.out = &std::cout;
  options.log = &std::cerr;
  const serve::ClientReport report = serve::run_client(options);
  return report.exit_code;
}

int cmd_policies() {
  Table table({"name", "description"});
  for (const std::string& name : PolicyRegistry::instance().names()) {
    table.row().add(name).add(PolicyRegistry::instance().description(name));
  }
  table.print(std::cout);
  std::cout << "plus \"offline\" (sweep only): Section 4 DP optimum\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args(argc - 1, argv + 1,
                    {"kind", "kinds", "jobs", "steps", "rate", "T",
                     "machines", "weights", "wmax", "seed", "seeds", "out",
                     "in", "G", "policy", "policies", "offline", "svg",
                     "save-schedule", "kmax", "period", "threads", "opt",
                     "no-trace", "format", "timing", "journal", "resume",
                     "retry-failed", "cell-budget-ms", "cell-budget-steps",
                     "sandbox", "sandbox-mem-mb", "sandbox-stack-kb",
                     "inject-faults", "fault-seed", "stop-after", "workers",
                     "heartbeat-ms", "heartbeat-timeout-ms",
                     "max-cell-attempts", "retry-backoff-ms",
                     "worker-faults", "metrics", "trace",
                     "metrics-timeline", "events", "progress", "timeline",
                     "socket", "tcp", "max-sessions", "max-pending",
                     "rate-limit", "step-budget", "decision-deadline-ms",
                     "idle-timeout-ms", "drain-grace-ms", "tenant",
                     "reattach", "submit", "chaos", "chaos-param",
                     "no-goodbye"});
    if (command == "generate") return cmd_generate(args);
    if (command == "solve") return cmd_solve(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "client") return cmd_client(args);
    if (command == "frontier") return cmd_frontier(args);
    if (command == "lowerbound") return cmd_lowerbound(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "policies") return cmd_policies();
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}

// Execution tracing and derived metrics for online runs.
//
// A Trace records the driver's event stream (arrivals, calibrations,
// placements) and derives the operational metrics a fab/lab operator
// reads off a shift: queue-length series, waiting-time distribution,
// interval utilization. Attach with OnlineDriver::set_trace before
// stepping; recording costs one append per event.
#pragma once

#include <string>
#include <vector>

#include "core/calendar.hpp"
#include "core/types.hpp"
#include "util/stats.hpp"

namespace calib {

struct TraceEvent {
  enum class Kind { kArrival, kCalibration, kPlacement };
  Kind kind;
  Time at;            ///< decision step the event happened on
  JobId job = -1;     ///< arrival/placement
  Weight weight = 0;  ///< arrival
  MachineId machine = 0;  ///< calibration/placement
  Time start = kUnscheduled;  ///< placement: the slot the job got
};

class Trace {
 public:
  void record_arrival(Time at, JobId job, Weight weight);
  void record_calibration(Time at, MachineId machine);
  void record_placement(Time at, JobId job, MachineId machine, Time start);
  void clear();

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] int arrivals() const { return arrivals_; }
  [[nodiscard]] int calibrations() const { return calibrations_; }
  [[nodiscard]] int placements() const { return placements_; }

  /// Number of jobs arrived but not yet *started* at the end of each
  /// step in [from, to).
  [[nodiscard]] std::vector<int> queue_length_series(Time from,
                                                     Time to) const;
  [[nodiscard]] int peak_queue_length() const;

  /// Distribution of start - release over placed jobs (unweighted
  /// waiting, in steps).
  [[nodiscard]] Summary waiting_times() const;

  /// Placed jobs per calibrated slot of `calendar` (1 = every slot
  /// productive).
  [[nodiscard]] double utilization(const Calendar& calendar) const;

  /// Multi-line human-readable digest.
  [[nodiscard]] std::string summary(const Calendar& calendar) const;

 private:
  std::vector<TraceEvent> events_;
  int arrivals_ = 0;
  int calibrations_ = 0;
  int placements_ = 0;
};

}  // namespace calib

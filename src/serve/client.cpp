#include "serve/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "obs/json_escape.hpp"
#include "obs/trace.hpp"
#include "serve/io.hpp"
#include "util/framing.hpp"

namespace calib::serve {
namespace {

/// Blocking framed read with a deadline: pump the socket into `reader`
/// until a frame pops, EOF, corruption, or `deadline_ms` of wall time
/// passes. Returns false with *why set on any failure.
bool read_reply(int fd, FrameReader& reader, double deadline_ms,
                RawFrame* frame, std::string* why) {
  const std::uint64_t start_ns = obs::now_ns();
  while (true) {
    if (reader.next(*frame)) return true;
    if (reader.corrupted()) {
      *why = "corrupt reply stream: " + reader.error();
      return false;
    }
    const double elapsed_ms =
        static_cast<double>(obs::now_ns() - start_ns) * 1e-6;
    if (elapsed_ms >= deadline_ms) {
      *why = "timed out waiting for a reply";
      return false;
    }
    const int remaining =
        static_cast<int>(deadline_ms - elapsed_ms) + 1;
    const int ready = wait_readable(fd, std::min(remaining, 100));
    if (ready < 0) {
      *why = "poll failed";
      return false;
    }
    if (ready == 0) continue;
    char buf[4096];
    const ssize_t n = read_some(fd, buf, sizeof buf);
    if (n == 0) {
      *why = "daemon closed the connection";
      return false;
    }
    if (n < 0) {
      *why = "read failed";
      return false;
    }
    reader.feed(buf, static_cast<std::size_t>(n));
  }
}

void print_decision(std::ostream* out, const Decision& decision) {
  if (out == nullptr) return;
  *out << "{\"seq\":" << decision.seq << ",\"now\":" << decision.now
       << ",\"cost\":" << decision.cost << ",\"events\":\""
       << obs::json_escape(decision.events) << "\"}\n";
  out->flush();
}

void print_error(std::ostream* out, const ErrorInfo& error) {
  if (out == nullptr) return;
  *out << "{\"error\":\"" << obs::json_escape(error.code)
       << "\",\"detail\":\"" << obs::json_escape(error.detail) << '"';
  if (error.retry_after_ms > 0) {
    *out << ",\"retry_after_ms\":" << error.retry_after_ms;
  }
  *out << "}\n";
  out->flush();
}

void print_stats(std::ostream* out, const TenantStats& stats) {
  if (out == nullptr) return;
  *out << "{\"tenant\":\"" << obs::json_escape(stats.tenant)
       << "\",\"state\":\"" << obs::json_escape(stats.state)
       << "\",\"jobs\":" << stats.jobs << ",\"placed\":" << stats.placed
       << ",\"calibrations\":" << stats.calibrations
       << ",\"cost\":" << stats.cost
       << ",\"steps_used\":" << stats.steps_used << ",\"violation\":\""
       << obs::json_escape(stats.violation) << "\"}\n";
  out->flush();
}

}  // namespace

ChaosMode parse_chaos_mode(const std::string& name) {
  if (name.empty() || name == "none") return ChaosMode::kNone;
  if (name == "flood") return ChaosMode::kFlood;
  if (name == "disconnect-mid-frame") return ChaosMode::kDisconnect;
  if (name == "corrupt-frame") return ChaosMode::kCorrupt;
  if (name == "slow") return ChaosMode::kSlow;
  throw std::runtime_error(
      "client: unknown chaos mode '" + name +
      "' (want none|flood|disconnect-mid-frame|corrupt-frame|slow)");
}

ClientReport run_client(const ClientOptions& options) {
  ClientReport report;
  const auto fail = [&](int code, const std::string& why) {
    report.exit_code = code;
    report.last_error = why;
    if (options.log != nullptr) {
      *options.log << "client: " << why << '\n';
      options.log->flush();
    }
    return report;
  };

  std::string error;
  int fd = -1;
  if (!options.socket_path.empty()) {
    fd = connect_unix(options.socket_path, &error);
  } else if (options.tcp_port >= 0) {
    fd = connect_tcp(options.tcp_port, &error);
  } else {
    return fail(1, "no endpoint (need a socket path or TCP port)");
  }
  if (fd < 0) return fail(1, "connect failed: " + error);

  FrameReader reader = make_serve_reader();
  RawFrame reply;
  std::string why;
  const auto send = [&](ServeFrame type, const std::string& payload) {
    const std::string bytes = encode_serve_frame(type, payload);
    return write_all(fd, bytes.data(), bytes.size());
  };

  // ---- Hello handshake.
  if (!send(ServeFrame::kHello, encode_hello(options.hello))) {
    ::close(fd);
    return fail(2, "hello write failed");
  }
  if (!read_reply(fd, reader, options.reply_timeout_ms, &reply, &why)) {
    ::close(fd);
    return fail(2, "hello: " + why);
  }
  if (static_cast<ServeFrame>(reply.type) == ServeFrame::kError) {
    const ErrorInfo info = decode_error(reply.payload);
    print_error(options.out, info);
    ::close(fd);
    return fail(4, "hello rejected: " + info.code + ": " + info.detail);
  }
  if (static_cast<ServeFrame>(reply.type) != ServeFrame::kHello) {
    ::close(fd);
    return fail(2, "hello: unexpected reply frame");
  }

  // ---- Chaos preambles that never reach the submit loop.
  if (options.chaos == ChaosMode::kDisconnect) {
    const SubmitJob job =
        options.jobs.empty() ? SubmitJob{} : options.jobs.front();
    const std::string bytes =
        encode_serve_frame(ServeFrame::kSubmitJob, encode_submit(job));
    (void)write_all(fd, bytes.data(), bytes.size() / 2);
    ::close(fd);
    return report;  // exit 0: the chaos client did exactly its job
  }
  if (options.chaos == ChaosMode::kCorrupt) {
    static const char garbage[] = "GARBAGE-NOT-A-FRAME-0123456789abcdef";
    (void)write_all(fd, garbage, sizeof garbage - 1);
    // The daemon must poison the stream and drop us; observing the
    // close (EOF / reset) is the success condition.
    char buf[256];
    while (read_some(fd, buf, sizeof buf) > 0) {
    }
    ::close(fd);
    return report;
  }

  // ---- Submit loop.
  const auto handle_reply = [&](const RawFrame& frame) {
    switch (static_cast<ServeFrame>(frame.type)) {
      case ServeFrame::kDecision: {
        ++report.decisions;
        print_decision(options.out, decode_decision(frame.payload));
        return true;
      }
      case ServeFrame::kError: {
        ++report.errors;
        const ErrorInfo info = decode_error(frame.payload);
        if (info.code == "RETRY_AFTER") ++report.sheds;
        print_error(options.out, info);
        report.last_error = info.code + ": " + info.detail;
        return true;
      }
      case ServeFrame::kTenantStats: {
        // Mid-stream stats (e.g. the flood fault) are printed and
        // counted as neither decision nor error.
        report.final_stats = decode_stats(frame.payload);
        report.got_stats = true;
        print_stats(options.out, report.final_stats);
        return true;
      }
      default:
        return false;
    }
  };

  if (options.chaos == ChaosMode::kFlood) {
    // Fire everything without reading a single reply: the daemon's
    // per-tenant pending budget and outbound caps take the strain.
    for (const SubmitJob& job : options.jobs) {
      if (!send(ServeFrame::kSubmitJob, encode_submit(job))) {
        ::close(fd);
        return fail(2, "flood write failed");
      }
    }
    std::size_t outstanding = options.jobs.size();
    while (outstanding > 0) {
      if (!read_reply(fd, reader, options.reply_timeout_ms, &reply, &why)) {
        ::close(fd);
        return fail(2, "flood drain: " + why);
      }
      const ServeFrame type = static_cast<ServeFrame>(reply.type);
      if (!handle_reply(reply)) {
        ::close(fd);
        return fail(2, "flood drain: unexpected frame");
      }
      if (type == ServeFrame::kDecision || type == ServeFrame::kError) {
        --outstanding;
      }
    }
  } else {
    for (const SubmitJob& job : options.jobs) {
      if (options.chaos == ChaosMode::kSlow && options.chaos_param > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.chaos_param));
      }
      if (!send(ServeFrame::kSubmitJob, encode_submit(job))) {
        ::close(fd);
        return fail(2, "submit write failed");
      }
      while (true) {
        if (!read_reply(fd, reader, options.reply_timeout_ms, &reply,
                        &why)) {
          ::close(fd);
          return fail(2, "submit: " + why);
        }
        const ServeFrame type = static_cast<ServeFrame>(reply.type);
        if (!handle_reply(reply)) {
          ::close(fd);
          return fail(2, "submit: unexpected frame");
        }
        if (type == ServeFrame::kDecision || type == ServeFrame::kError) {
          break;
        }
      }
    }
  }

  // ---- Orderly close.
  if (options.goodbye) {
    if (!send(ServeFrame::kGoodbye, "")) {
      ::close(fd);
      return fail(2, "goodbye write failed");
    }
    bool saw_goodbye = false;
    while (!saw_goodbye) {
      if (!read_reply(fd, reader, options.reply_timeout_ms, &reply, &why)) {
        ::close(fd);
        return fail(2, "goodbye: " + why);
      }
      const ServeFrame type = static_cast<ServeFrame>(reply.type);
      if (type == ServeFrame::kGoodbye) {
        saw_goodbye = true;
      } else if (!handle_reply(reply)) {
        ::close(fd);
        return fail(2, "goodbye: unexpected frame");
      }
    }
  }
  ::close(fd);
  if (report.exit_code == 0 && report.errors > 0) {
    report.exit_code = 4;
  }
  return report;
}

}  // namespace calib::serve

// Critical jobs (Definition 4.4) and the structural predicates of the
// offline section (Lemmas 4.1 / 4.2, Corollary 4.3). These power both
// the DP's correctness tests and the structure-verification benches.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace calib {

/// Definition 4.4: job j is critical if it starts at its release time
/// and every job released before r_j starts before r_j. P = 1.
bool is_critical(const Instance& instance, const Schedule& schedule, JobId j);

/// All critical jobs, ascending by index.
std::vector<JobId> critical_jobs(const Instance& instance,
                                 const Schedule& schedule);

/// Lemma 4.1 predicate: every job either starts at its release time or
/// has no idle step between its interval's start and its own start.
/// Holds for every optimal schedule; checked on brute-force optima.
bool satisfies_lemma_4_1(const Instance& instance, const Schedule& schedule);

/// Lemma 4.2 predicate: the last time step of each calibration run holds
/// a job scheduled at its release time. (Stated for maximal calibrated
/// runs; holds for *some* optimal schedule.)
bool satisfies_lemma_4_2(const Instance& instance, const Schedule& schedule);

}  // namespace calib

// Observation 2.1's greedy: validity, maximality, and — the paper's
// claim — optimality against exhaustive assignment for a fixed calendar.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/list_scheduler.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

/// Exhaustive minimum weighted flow of assigning all jobs to the
/// calendar's slots (kInf if impossible). Ground truth for tiny cases.
Cost exhaustive_assignment_flow(const Instance& instance,
                                const Calendar& calendar) {
  const auto slots = calendar.slots();
  constexpr Cost kInf = std::numeric_limits<Cost>::max() / 4;
  Cost best = kInf;
  std::vector<bool> used(slots.size(), false);
  auto recurse = [&](auto&& self, JobId j, Cost flow) -> void {
    if (flow >= best) return;
    if (j == instance.size()) {
      best = flow;
      return;
    }
    const Job& job = instance.job(static_cast<JobId>(j));
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (used[s] || slots[s].time < job.release) continue;
      used[s] = true;
      self(self, j + 1,
           flow + job.weight * (slots[s].time + 1 - job.release));
      used[s] = false;
    }
  };
  recurse(recurse, 0, 0);
  return best == kInf ? -1 : best;
}

TEST(ListScheduler, SchedulesFifoWhenUnweighted) {
  const Instance instance({Job{0, 1}, Job{1, 1}, Job{2, 1}}, 4);
  Calendar calendar(4, 1);
  calendar.add(0, 0);
  const ListResult result = list_schedule(instance, calendar);
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.schedule.placement(0).start, 0);
  EXPECT_EQ(result.schedule.placement(1).start, 1);
  EXPECT_EQ(result.schedule.placement(2).start, 2);
}

TEST(ListScheduler, PrefersHeavierJob) {
  // Both jobs waiting at t=2; the heavier goes first.
  const Instance instance({Job{0, 1}, Job{1, 9}}, 4);
  Calendar calendar(4, 1);
  calendar.add(0, 2);
  const ListResult result = list_schedule(instance, calendar);
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.schedule.placement(1).start, 2);  // w=9 job
  EXPECT_EQ(result.schedule.placement(0).start, 3);
}

TEST(ListScheduler, BreaksWeightTiesByRelease) {
  const Instance instance({Job{0, 5}, Job{1, 5}}, 4);
  Calendar calendar(4, 1);
  calendar.add(0, 2);
  const ListResult result = list_schedule(instance, calendar);
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.schedule.placement(0).start, 2);
  EXPECT_EQ(result.schedule.placement(1).start, 3);
}

TEST(ListScheduler, ReportsUnscheduledJobs) {
  const Instance instance({Job{0, 1}, Job{0, 2}, Job{0, 3}}, 2, 1);
  Calendar calendar(2, 1);
  calendar.add(0, 0);  // only two slots for three jobs
  const ListResult result = list_schedule(instance, calendar);
  EXPECT_FALSE(result.feasible());
  ASSERT_EQ(result.unscheduled.size(), 1u);
  // The lightest job (index 2 after weight-desc sort) is left over.
  EXPECT_EQ(result.unscheduled[0], 2);
}

TEST(ListScheduler, JobsAfterAllSlotsAreUnscheduled) {
  const Instance instance({Job{10, 1}}, 2, 1);
  Calendar calendar(2, 1);
  calendar.add(0, 0);
  const ListResult result = list_schedule(instance, calendar);
  EXPECT_FALSE(result.feasible());
}

TEST(ListScheduler, UsesMultipleMachines) {
  const Instance instance({Job{0, 1}, Job{0, 2}}, 3, 2);
  Calendar calendar(3, 2);
  calendar.add(0, 0);
  calendar.add(1, 0);
  const ListResult result = list_schedule(instance, calendar);
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.schedule.placement(0).start, 0);
  EXPECT_EQ(result.schedule.placement(1).start, 0);
  EXPECT_NE(result.schedule.placement(0).machine,
            result.schedule.placement(1).machine);
}

TEST(ListScheduler, GlobalStartsOverloadUsesRoundRobin) {
  const Instance instance({Job{0, 1}, Job{0, 1}}, 2, 2);
  const ListResult result =
      list_schedule(instance, std::vector<Time>{0, 0});
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.schedule.calendar().starts(0).size(), 1u);
  EXPECT_EQ(result.schedule.calendar().starts(1).size(), 1u);
}

struct GreedyOptimalityParams {
  int jobs;
  Time span;
  Time T;
  int machines;
  int calibrations;
  WeightModel weights;
  std::uint64_t seed;
};

class GreedyOptimality
    : public ::testing::TestWithParam<GreedyOptimalityParams> {};

TEST_P(GreedyOptimality, MatchesExhaustiveAssignment) {
  const auto& p = GetParam();
  Prng prng(p.seed);
  for (int trial = 0; trial < 40; ++trial) {
    const Instance instance =
        sparse_uniform_instance(p.jobs, p.span, p.T, p.machines, p.weights,
                                /*w_max=*/5, prng);
    // Random calendar over plausible starts.
    std::vector<Time> starts;
    for (int c = 0; c < p.calibrations; ++c) {
      starts.push_back(prng.uniform_int(0, p.span));
    }
    const Calendar calendar =
        Calendar::round_robin(starts, p.T, p.machines);
    const ListResult result = list_schedule(instance, calendar);
    const Cost exhaustive = exhaustive_assignment_flow(instance, calendar);
    if (!result.feasible()) {
      // Greedy is maximal: if it fails, no assignment exists.
      EXPECT_EQ(exhaustive, -1) << instance.to_string();
      continue;
    }
    ASSERT_EQ(result.schedule.validate(instance), std::nullopt);
    EXPECT_EQ(result.schedule.weighted_flow(instance), exhaustive)
        << instance.to_string() << ' ' << calendar.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyOptimality,
    ::testing::Values(
        GreedyOptimalityParams{4, 8, 2, 1, 3, WeightModel::kUnit, 101},
        GreedyOptimalityParams{4, 8, 2, 1, 3, WeightModel::kUniform, 102},
        GreedyOptimalityParams{5, 10, 3, 1, 2, WeightModel::kUniform, 103},
        GreedyOptimalityParams{5, 10, 3, 1, 3, WeightModel::kZipf, 104},
        GreedyOptimalityParams{4, 6, 2, 2, 3, WeightModel::kUniform, 105},
        GreedyOptimalityParams{5, 8, 3, 2, 3, WeightModel::kBimodal, 106},
        GreedyOptimalityParams{6, 12, 4, 1, 2, WeightModel::kUniform, 107},
        GreedyOptimalityParams{6, 9, 2, 3, 4, WeightModel::kUnit, 108}));

}  // namespace
}  // namespace calib


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alg4.cpp" "tests/CMakeFiles/test_alg4.dir/test_alg4.cpp.o" "gcc" "tests/CMakeFiles/test_alg4.dir/test_alg4.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/calibsched_online.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/calibsched_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/calibsched_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/calibsched_machmin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/calibsched_nonunit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/calibsched_multitype.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/calibsched_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/calibsched_deadline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/calibsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/calibsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

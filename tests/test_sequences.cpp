// Sequences and the Lemma 3.6 / 3.7 structure (the last unexercised
// pieces of Theorem 3.8's proof), checked against the exhaustively
// computed release-order optimum OPT_r.
#include <gtest/gtest.h>

#include "core/transform.hpp"
#include "offline/budget_search.hpp"
#include "online/alg2_weighted.hpp"
#include "online/driver.hpp"
#include "online/sequences.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(Sequences, SingleNonFullIntervalIsOneSequence) {
  const Instance instance({Job{0, 1}}, 3);
  Calendar calendar(3, 1);
  calendar.add(0, 0);
  Schedule schedule(calendar, 1);
  schedule.place(0, 0, 0);
  const auto sequences = partition_into_sequences(instance, schedule);
  ASSERT_EQ(sequences.size(), 1u);
  EXPECT_EQ(sequences[0].interval_starts, (std::vector<Time>{0}));
  EXPECT_EQ(sequences[0].end, 3);
  EXPECT_FALSE(interval_full(instance, schedule, 0));
}

TEST(Sequences, FullIntervalsChainUntilNonFull) {
  // Intervals at 0 (full), 2 (full), 4 (one job): one sequence of 3;
  // then an isolated interval at 20.
  std::vector<Job> jobs;
  for (int i = 0; i < 5; ++i) jobs.push_back(Job{i, 1});
  jobs.push_back(Job{20, 1});
  const Instance instance(jobs, 2, 1);
  Calendar calendar(2, 1);
  for (const Time s : {0, 2, 4, 20}) calendar.add(0, s);
  Schedule schedule(calendar, instance.size());
  for (JobId j = 0; j < 5; ++j) schedule.place(j, 0, j);
  schedule.place(5, 0, 20);
  ASSERT_EQ(schedule.validate(instance), std::nullopt);

  const auto sequences = partition_into_sequences(instance, schedule);
  ASSERT_EQ(sequences.size(), 2u);
  EXPECT_EQ(sequences[0].interval_starts, (std::vector<Time>{0, 2, 4}));
  EXPECT_EQ(sequences[0].end, 6);
  EXPECT_EQ(sequences[1].interval_starts, (std::vector<Time>{20}));
  EXPECT_EQ(sequences[1].begin, 6);
}

TEST(Sequences, ReleaseOrderOptimumIsReleaseOrderedAndAboveOpt) {
  Prng prng(2301);
  for (int trial = 0; trial < 12; ++trial) {
    const Instance instance = sparse_uniform_instance(
        5, 10, 3, 1, WeightModel::kUniform, 5, prng);
    const Cost G = prng.uniform_int(2, 12);
    const Schedule opt_r = release_order_optimum(instance, G);
    EXPECT_TRUE(is_release_ordered(instance, opt_r));
    const Cost unrestricted = offline_online_optimum(instance, G).best_cost;
    EXPECT_GE(opt_r.online_cost(instance, G), unrestricted);
    // Lemma 3.4's consequence: OPT_r <= 2 OPT.
    EXPECT_LE(opt_r.online_cost(instance, G), 2 * unrestricted)
        << instance.to_string();
  }
}

// Lemma 3.6, empirically: for every sequence I of Algorithm 2's
// schedule and every k < |I|, OPT_r has at least k intervals that end
// after b_I and begin no later than the k-th interval of I.
TEST(Sequences, Lemma36HoldsAgainstOptR) {
  Prng prng(2302);
  int sequences_checked = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const Instance instance = sparse_uniform_instance(
        5, 9, 2, 1, WeightModel::kUniform, 4, prng);
    const Cost G = prng.uniform_int(2, 10);
    Alg2Weighted policy;
    const Schedule online = run_online(instance, G, policy);
    const Schedule opt_r = release_order_optimum(instance, G);
    const auto& opt_starts = opt_r.calendar().starts(0);
    for (const Sequence& sequence :
         partition_into_sequences(instance, online)) {
      const auto size = static_cast<int>(sequence.interval_starts.size());
      for (int k = 1; k < size; ++k) {
        const Time kth_start =
            sequence.interval_starts[static_cast<std::size_t>(k - 1)];
        int matching = 0;
        for (const Time start : opt_starts) {
          if (start + instance.T() > sequence.begin && start <= kth_start) {
            ++matching;
          }
        }
        EXPECT_GE(matching, k)
            << instance.to_string() << " G=" << G << " seq@"
            << sequence.interval_starts.front();
        ++sequences_checked;
      }
    }
  }
  // The sweep is only meaningful if multi-interval sequences occurred.
  EXPECT_GT(sequences_checked, 3);
}

// Lemma 3.7's flow statement, weak form checked on the last interval of
// each sequence: if the |I|-th OPT_r interval containing sequence jobs
// begins after the sequence ends, the OPT_r flow of those jobs is at
// least the online flow beyond the queue snapshot — here we check the
// direct corollary used in Theorem 3.8's Case 1/2 split: jobs of a
// sequence are scheduled by OPT_r no earlier than the sequence begins.
TEST(Sequences, SequenceJobsReleasedAfterSequenceBegins) {
  Prng prng(2303);
  for (int trial = 0; trial < 12; ++trial) {
    const Instance instance = sparse_uniform_instance(
        6, 12, 3, 1, WeightModel::kUniform, 4, prng);
    Alg2Weighted policy;
    const Schedule online = run_online(instance, /*G=*/8, policy);
    for (const Sequence& sequence :
         partition_into_sequences(instance, online)) {
      for (const Time start : sequence.interval_starts) {
        for (const JobId j : online.jobs_in_interval(0, start)) {
          // Observation 2.1's consequence quoted in Section 3.2: all
          // jobs scheduled within a sequence are released on or after
          // its begin.
          EXPECT_GE(instance.job(j).release, sequence.begin)
              << instance.to_string();
        }
      }
    }
  }
}

}  // namespace
}  // namespace calib

// Append-only checkpoint journal for sweeps.
//
// Line format (JSONL, one flat object per line):
//   header (first line):
//     {"calibsched_journal":1,"fingerprint":"<16 hex digits>","cells":N}
//   then one line per completed cell — exactly the row's JSONL
//   serialization (including "status", and "wall_ms" for bookkeeping),
//   keyed by its "cell" index.
//
// Durability: every line is written with a single write(2) and fsync'd
// before append() returns, so a killed run loses at most the cell it was
// mid-writing. The reader therefore tolerates a malformed *trailing*
// line (torn write) by ignoring any line that fails to parse — the
// corresponding cell simply re-runs on resume, which is always safe
// because cells are pure functions of their coordinates.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/sync.hpp"

namespace calib::harness {

/// Parse one flat JSON object ({"key":value,...}; string values may use
/// \" and \\ escapes, everything else is kept verbatim). Returns
/// key -> raw value text (strings unescaped, numbers as written).
/// Throws std::runtime_error on malformed input. Nested objects/arrays
/// are not supported — the journal never emits them.
[[nodiscard]] std::map<std::string, std::string> parse_flat_json(
    const std::string& line);

class SweepJournal {
 public:
  /// Open `path` for appending. With `resume` false (or the file absent/
  /// empty) the file is created/truncated and a fresh header written.
  /// With `resume` true and an existing file, the header must carry the
  /// same fingerprint (std::runtime_error otherwise) and every readable
  /// row line is returned via entries().
  SweepJournal(const std::string& path, std::uint64_t fingerprint,
               std::size_t cells, bool resume);
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Rows recovered from an existing journal (empty unless resuming).
  [[nodiscard]] const std::vector<std::map<std::string, std::string>>&
  entries() const {
    return entries_;
  }

  /// Append one row line (no trailing newline needed) and fsync. Safe to
  /// call from multiple threads.
  void append(const std::string& line);

  [[nodiscard]] static std::string fingerprint_hex(std::uint64_t value);

 private:
  // fd_ and entries_ are written only in the constructor/destructor;
  // mutex_ (a leaf lock) serializes append() so each row lands as one
  // contiguous write+fsync — interleaved writes would tear lines, which
  // the torn-trailing-line recovery only tolerates once per file.
  int fd_ = -1;
  Mutex mutex_;
  std::vector<std::map<std::string, std::string>> entries_;
};

}  // namespace calib::harness

// Schedule: a calendar plus an assignment of jobs to (machine, time)
// pairs, with exact cost accounting and full validation (paper Section 2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/calendar.hpp"
#include "core/instance.hpp"
#include "core/types.hpp"

namespace calib {

/// Placement of one job. `start == kUnscheduled` means the job was never
/// run (only ever legal in intermediate online states; validation
/// rejects it).
struct Placement {
  Time start = kUnscheduled;
  MachineId machine = 0;
  friend bool operator==(const Placement&, const Placement&) = default;
};

class Schedule {
 public:
  /// An empty (nothing placed) schedule over `calendar` for `n` jobs.
  Schedule(Calendar calendar, int n);

  [[nodiscard]] const Calendar& calendar() const { return calendar_; }
  [[nodiscard]] Calendar& calendar() { return calendar_; }

  void place(JobId j, MachineId m, Time start);
  void unplace(JobId j);
  [[nodiscard]] const Placement& placement(JobId j) const;
  [[nodiscard]] bool is_placed(JobId j) const;
  [[nodiscard]] int placed_count() const;
  [[nodiscard]] int size() const {
    return static_cast<int>(placements_.size());
  }

  /// Total weighted flow time: sum_j w_j (t_j + 1 - r_j).
  [[nodiscard]] Cost weighted_flow(const Instance& instance) const;

  /// Total weighted completion time: sum_j w_j (t_j + 1). Differs from
  /// weighted_flow by the instance constant sum_j w_j r_j; the offline DP
  /// of Section 4 is phrased in completion time.
  [[nodiscard]] Cost weighted_completion(const Instance& instance) const;

  /// Online objective (Section 3): G * #calibrations + weighted flow.
  [[nodiscard]] Cost online_cost(const Instance& instance, Cost G) const;

  /// Jobs started in [interval_start, interval_start + T) on machine m.
  [[nodiscard]] std::vector<JobId> jobs_in_interval(MachineId m,
                                                    Time interval_start) const;

  /// nullopt if the schedule is correct for `instance`:
  ///   - every job placed, at start >= release, on a calibrated step,
  ///   - no two jobs share a (machine, time) slot.
  /// Otherwise a human-readable description of the first violation.
  [[nodiscard]] std::optional<std::string> validate(
      const Instance& instance) const;

  /// ASCII timeline, one machine per row (debugging / examples).
  [[nodiscard]] std::string render(const Instance& instance) const;

  friend bool operator==(const Schedule&, const Schedule&) = default;

 private:
  Calendar calendar_;
  std::vector<Placement> placements_;
};

}  // namespace calib


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/deadline/deadline_instance.cpp" "src/CMakeFiles/calibsched_deadline.dir/deadline/deadline_instance.cpp.o" "gcc" "src/CMakeFiles/calibsched_deadline.dir/deadline/deadline_instance.cpp.o.d"
  "/root/repo/src/deadline/edf.cpp" "src/CMakeFiles/calibsched_deadline.dir/deadline/edf.cpp.o" "gcc" "src/CMakeFiles/calibsched_deadline.dir/deadline/edf.cpp.o.d"
  "/root/repo/src/deadline/min_calibrations.cpp" "src/CMakeFiles/calibsched_deadline.dir/deadline/min_calibrations.cpp.o" "gcc" "src/CMakeFiles/calibsched_deadline.dir/deadline/min_calibrations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/calibsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/calibsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

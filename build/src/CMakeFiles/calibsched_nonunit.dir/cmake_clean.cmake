file(REMOVE_RECURSE
  "CMakeFiles/calibsched_nonunit.dir/nonunit/nonunit.cpp.o"
  "CMakeFiles/calibsched_nonunit.dir/nonunit/nonunit.cpp.o.d"
  "libcalibsched_nonunit.a"
  "libcalibsched_nonunit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibsched_nonunit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Minimal CSV writer/reader used to persist experiment series and to load
// the deterministic regression instances shipped with the examples.
//
// Dialect: comma-separated, fields containing comma/quote/newline are
// quoted with '"' and embedded quotes doubled — enough for our own round
// trips; this is not a general RFC-4180 validator.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace calib {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

/// Parses an entire stream; throws std::runtime_error on malformed input
/// (unterminated quote).
std::vector<std::vector<std::string>> read_csv(std::istream& is);

}  // namespace calib

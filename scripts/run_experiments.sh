#!/usr/bin/env bash
# Build, test, and regenerate every experiment capture (E1-E16).
# Usage: scripts/run_experiments.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

{
  for bench in "$BUILD"/bench/bench_*; do
    [ -x "$bench" ] || continue
    echo "================ $bench ================"
    "$bench"
  done
} 2>&1 | tee bench_output.txt

echo "Captured: test_output.txt, bench_output.txt"

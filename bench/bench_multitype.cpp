// E12 — multiple calibration types (Angel et al., the paper's related
// work [1]): can an adaptive policy that mixes a cheap quick touch-up
// with an amortizing full recalibration beat committing to either type?
//
// Rows: the adaptive online heuristic vs the two single-type baselines
// vs the exhaustive typed optimum on small instances. Expected shape:
// adaptive <= min(single-type) on average, and within a small factor of
// the optimum; which single type wins flips with the workload density —
// the crossover the two-type model exists to exploit.
#include <benchmark/benchmark.h>

#include <iostream>
#include <mutex>

#include "multitype/multitype_sched.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

// Quick is genuinely cheap in absolute terms (a lone job should buy
// it), full genuinely amortizes (a dense stream should buy it) — the
// regime where type choice matters.
const std::vector<CalibrationType> kTwoTypes = {
    {/*length=*/2, /*cost=*/4},
    {/*length=*/8, /*cost=*/12},
};

void BM_OnlineMultitype(benchmark::State& state) {
  Prng prng(9);
  PoissonConfig config;
  config.rate = 0.4;
  config.steps = 400;
  const Instance instance = poisson_instance(config, 2, 1, prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(online_multitype(instance, kTwoTypes));
  }
  state.SetItemsProcessed(state.iterations() * instance.size());
}

BENCHMARK(BM_OnlineMultitype)->Unit(benchmark::kMillisecond);

struct TablePrinter {
  ~TablePrinter() {
    std::cout << "\nE12 - multiple calibration types: adaptive vs "
                 "single-type (40 seeds per density), jobs drawn "
                 "sparse-uniform, T ignored by the typed model:\n";
    Table table({"density", "adaptive", "quick-only", "full-only",
                 "adaptive wins/ties", "vs optimum (small, mean)"});
    for (const auto& [label, jobs, span] :
         std::vector<std::tuple<const char*, int, Time>>{
             {"sparse", 6, 36}, {"medium", 8, 24}, {"dense", 10, 14}}) {
      Summary adaptive;
      Summary quick_only;
      Summary full_only;
      Summary vs_opt;
      int wins = 0;
      int total = 0;
      std::mutex mutex;
      global_pool().parallel_for(40, [&, jobs, span](std::size_t seed) {
        Prng prng(seed * 7127u + static_cast<std::uint64_t>(jobs));
        const Instance instance = sparse_uniform_instance(
            jobs, span, 2, 1, WeightModel::kUnit, 1, prng);
        const auto a = online_multitype(instance, kTwoTypes);
        const auto q =
            online_multitype(instance, {kTwoTypes[0]});
        const auto f =
            online_multitype(instance, {kTwoTypes[1]});
        const Cost ca = a.total_cost(instance);
        const Cost cq = q.total_cost(instance);
        const Cost cf = f.total_cost(instance);
        double opt_ratio = 0.0;
        // The exhaustive typed optimum is exponential; restrict the
        // comparison to the first few seeds of the small family.
        if (jobs <= 6 && seed < 10) {
          Prng small_prng(seed * 7127u + 99u);
          const Instance small = sparse_uniform_instance(
              5, 12, 2, 1, WeightModel::kUnit, 1, small_prng);
          const auto online_small = online_multitype(small, kTwoTypes);
          const auto best = optimal_multitype(small, kTwoTypes);
          opt_ratio =
              static_cast<double>(online_small.total_cost(small)) /
              static_cast<double>(best.total_cost(small));
        }
        const std::scoped_lock lock(mutex);
        adaptive.add(static_cast<double>(ca));
        quick_only.add(static_cast<double>(cq));
        full_only.add(static_cast<double>(cf));
        if (opt_ratio > 0.0) vs_opt.add(opt_ratio);
        ++total;
        if (ca <= std::min(cq, cf)) ++wins;
      });
      table.row()
          .add(label)
          .add(adaptive.mean(), 1)
          .add(quick_only.mean(), 1)
          .add(full_only.mean(), 1)
          .add(std::to_string(wins) + "/" + std::to_string(total))
          .add(vs_opt.empty() ? std::string("-")
                              : std::to_string(vs_opt.mean()).substr(0, 5));
    }
    table.print(std::cout);
  }
};
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

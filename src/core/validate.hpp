// Independent schedule validation oracle.
//
// validate_schedule() re-derives everything a reported SolveResult
// claims — feasibility and the exact objective — from nothing but the
// (instance, schedule) pair, deliberately *not* reusing Schedule's own
// cost accessors (those CALIB_CHECK-abort on malformed schedules and
// share code with the paths being checked). The sweep engine runs it on
// every ok cell: a cell whose reported numbers disagree with the
// oracle's recomputation, or whose schedule breaks a feasibility rule,
// is demoted to a structured `invalid` row instead of being reported as
// a correct result. This is the last line of defense against a
// partially-written or silently-corrupted result — e.g. a cell that was
// crash-interrupted mid-serialization, or a solver bug that produced a
// schedule violating the paper's Section 2 model.
#pragma once

#include <stdexcept>
#include <string>

#include "core/types.hpp"

namespace calib {

class Instance;
class Schedule;

/// The oracle's verdict. `violation` is empty iff the schedule is
/// feasible; the cost fields are the from-scratch recomputation of
/// `G * (#calibrations) + sum_j w_j (t_j + 1 - r_j)` and are only
/// meaningful when feasible() (an infeasible schedule has no
/// well-defined objective).
struct ValidationReport {
  std::string violation;  ///< first rule broken; empty == feasible
  Cost objective = 0;     ///< recomputed G * calibrations + flow
  Cost flow = 0;          ///< recomputed total weighted flow time
  int calibrations = 0;   ///< recomputed calendar calibration count

  [[nodiscard]] bool feasible() const { return violation.empty(); }
};

/// Thrown by callers (the sweep engine) when the oracle rejects a
/// result; a distinct type so the harness can map it to the `invalid`
/// status instead of the generic `error`.
class ScheduleInvalid : public std::runtime_error {
 public:
  explicit ScheduleInvalid(const std::string& what)
      : std::runtime_error(what) {}
};

/// Strict feasibility + exact cost recomputation (paper Section 2):
///   - the schedule/calendar shape matches the instance (n, T, P),
///   - the instance respects the footnote-1 release-collision
///     normalization (at most P jobs per release time),
///   - every job is placed, on a real machine, at a step >= its
///     release, on a step its machine has calibrated,
///   - no two jobs share a (machine, step) slot,
///   - every calibration start is counted into the objective.
/// Returns the first violation found, or the recomputed exact costs.
/// Never throws and never aborts — unlike Schedule::weighted_flow(),
/// it is safe to call on arbitrarily corrupted schedules.
[[nodiscard]] ValidationReport validate_schedule(const Instance& instance,
                                                 const Schedule& schedule,
                                                 Cost G);

}  // namespace calib

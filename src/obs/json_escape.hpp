// Minimal JSON string escaping shared by the obs exporters. Kept local
// to obs (the layer below util) so the exporters depend on nothing but
// the standard library.
#pragma once

#include <cstdio>
#include <string>

namespace calib::obs {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

}  // namespace calib::obs

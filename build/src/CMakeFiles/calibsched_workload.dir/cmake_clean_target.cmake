file(REMOVE_RECURSE
  "libcalibsched_workload.a"
)

#include "util/args.hpp"

#include <stdexcept>

namespace calib {

Args::Args(int argc, const char* const* argv,
           const std::set<std::string>& known_flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    std::string key = token.substr(2);
    std::string value;
    const auto eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (i + 1 < argc &&
               std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // bare boolean flag
    }
    if (!known_flags.contains(key)) {
      throw std::runtime_error("unknown flag --" + key);
    }
    values_[key] = value;
  }
}

bool Args::has(const std::string& key) const {
  return values_.contains(key);
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::runtime_error("flag --" + key + " expects an integer, got '" +
                             it->second + "'");
  }
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::runtime_error("flag --" + key + " expects a number, got '" +
                             it->second + "'");
  }
}

}  // namespace calib

#include "lp/calib_lp.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace calib {

CalibrationLp::CalibrationLp(const Instance& instance, Cost G)
    : instance_(instance), G_(G) {
  CALIB_CHECK(G >= 1);
  CALIB_CHECK(!instance.empty());
  horizon_ = instance.horizon();
  lo_ = instance.min_release() + 1 - instance.T();
  build();
}

int CalibrationLp::f_var(Time t, JobId j) const {
  const Time r = instance_.job(j).release;
  CALIB_CHECK(t >= r && t < horizon_);
  return f_base_[static_cast<std::size_t>(j)] + static_cast<int>(t - r);
}

int CalibrationLp::c_var(Time t, MachineId m) const {
  CALIB_CHECK(t >= lo_ && t < horizon_);
  CALIB_CHECK(m >= 0 && m < instance_.machines());
  return c_base_ +
         static_cast<int>((t - lo_) * instance_.machines() + m);
}

int CalibrationLp::a_var(JobId j, MachineId m) const {
  CALIB_CHECK(j >= 0 && j < instance_.size());
  CALIB_CHECK(m >= 0 && m < instance_.machines());
  return a_base_ + static_cast<int>(j) * instance_.machines() + m;
}

void CalibrationLp::build() {
  const int n = instance_.size();
  const int P = instance_.machines();
  const Time T = instance_.T();

  // Variables. Weighted jobs: a job with weight w contributes w units of
  // flow per waiting step, so f's objective coefficient is w_j.
  f_base_.resize(static_cast<std::size_t>(n));
  for (JobId j = 0; j < n; ++j) {
    f_base_[static_cast<std::size_t>(j)] = problem_.num_vars;
    for (Time t = instance_.job(j).release; t < horizon_; ++t) {
      problem_.add_variable(static_cast<double>(instance_.job(j).weight));
    }
  }
  c_base_ = problem_.num_vars;
  for (Time t = lo_; t < horizon_; ++t) {
    for (MachineId m = 0; m < P; ++m) {
      problem_.add_variable(static_cast<double>(G_));
    }
  }
  a_base_ = problem_.num_vars;
  for (JobId j = 0; j < n; ++j) {
    for (MachineId m = 0; m < P; ++m) problem_.add_variable(0.0);
  }

  // (1) f_{t,j} + sum_{t' in [r_j - T, t]} c_{t',m} - a_{j,m} >= 0.
  for (JobId j = 0; j < n; ++j) {
    const Time r = instance_.job(j).release;
    for (Time t = r; t < horizon_; ++t) {
      for (MachineId m = 0; m < P; ++m) {
        LpRow row;
        row.relation = Relation::kGe;
        row.rhs = 0.0;
        row.coefficients.emplace_back(f_var(t, j), 1.0);
        for (Time tp = std::max(lo_, r - T); tp <= t; ++tp) {
          row.coefficients.emplace_back(c_var(tp, m), 1.0);
        }
        row.coefficients.emplace_back(a_var(j, m), -1.0);
        problem_.add_row(std::move(row));
      }
    }
  }
  // (2) flow can only drop by one per calibrated machine:
  //     sum_{j: r_j < t} (f_{t,j} - f_{t-1,j})
  //       + sum_m sum_{t' in [t-T, t]} c_{t',m} >= 0.
  for (Time t = lo_ + 1; t < horizon_; ++t) {
    LpRow row;
    row.relation = Relation::kGe;
    row.rhs = 0.0;
    for (JobId j = 0; j < n; ++j) {
      if (instance_.job(j).release < t) {
        row.coefficients.emplace_back(f_var(t, j), 1.0);
        row.coefficients.emplace_back(f_var(t - 1, j), -1.0);
      }
    }
    for (MachineId m = 0; m < P; ++m) {
      for (Time tp = std::max(lo_, t - T); tp <= t && tp < horizon_; ++tp) {
        row.coefficients.emplace_back(c_var(tp, m), 1.0);
      }
    }
    if (!row.coefficients.empty()) problem_.add_row(std::move(row));
  }
  // (3) every job assigned somewhere.
  for (JobId j = 0; j < n; ++j) {
    LpRow row;
    row.relation = Relation::kGe;
    row.rhs = 1.0;
    for (MachineId m = 0; m < P; ++m) {
      row.coefficients.emplace_back(a_var(j, m), 1.0);
    }
    problem_.add_row(std::move(row));
  }
  // (4) a job waits at least one step: f_{r_j, j} = 1.
  for (JobId j = 0; j < n; ++j) {
    LpRow row;
    row.relation = Relation::kEq;
    row.rhs = 1.0;
    row.coefficients.emplace_back(f_var(instance_.job(j).release, j), 1.0);
    problem_.add_row(std::move(row));
  }
}

LpSolution CalibrationLp::solve() const { return solve_lp(problem_); }

std::vector<double> CalibrationLp::canonical_point(
    const Schedule& schedule) const {
  CALIB_CHECK(!schedule.validate(instance_).has_value());
  std::vector<double> x(static_cast<std::size_t>(problem_.num_vars), 0.0);
  for (JobId j = 0; j < instance_.size(); ++j) {
    const Placement& p = schedule.placement(j);
    CALIB_CHECK_MSG(p.start < horizon_,
                    "schedule runs past the LP horizon; its canonical "
                    "point would under-report flow");
    // f_{t,j} = 1 from release through the step the job runs.
    for (Time t = instance_.job(j).release; t <= p.start; ++t) {
      x[static_cast<std::size_t>(f_var(t, j))] = 1.0;
    }
    x[static_cast<std::size_t>(a_var(j, p.machine))] = 1.0;
  }
  for (MachineId m = 0; m < instance_.machines(); ++m) {
    for (const Time start : schedule.calendar().starts(m)) {
      CALIB_CHECK_MSG(start >= lo_ && start < horizon_,
                      "schedule calibrates outside the LP horizon");
      x[static_cast<std::size_t>(c_var(start, m))] += 1.0;
    }
  }
  return x;
}

double CalibrationLp::max_violation(const std::vector<double>& x) const {
  CALIB_CHECK(static_cast<int>(x.size()) == problem_.num_vars);
  double worst = 0.0;
  for (const double value : x) worst = std::max(worst, -value);
  for (const LpRow& row : problem_.rows) {
    double lhs = 0.0;
    for (const auto& [var, coef] : row.coefficients) {
      lhs += coef * x[static_cast<std::size_t>(var)];
    }
    switch (row.relation) {
      case Relation::kGe:
        worst = std::max(worst, row.rhs - lhs);
        break;
      case Relation::kLe:
        worst = std::max(worst, lhs - row.rhs);
        break;
      case Relation::kEq:
        worst = std::max(worst, std::abs(lhs - row.rhs));
        break;
    }
  }
  return worst;
}

double CalibrationLp::objective_at(const std::vector<double>& x) const {
  CALIB_CHECK(static_cast<int>(x.size()) == problem_.num_vars);
  double value = 0.0;
  for (int var = 0; var < problem_.num_vars; ++var) {
    value += problem_.objective[static_cast<std::size_t>(var)] *
             x[static_cast<std::size_t>(var)];
  }
  return value;
}

double lp_lower_bound(const Instance& instance, Cost G) {
  const CalibrationLp lp(instance, G);
  const LpSolution solution = lp.solve();
  CALIB_CHECK_MSG(solution.status == LpStatus::kOptimal,
                  "the Figure 1 LP is always feasible and bounded");
  return solution.value;
}

}  // namespace calib

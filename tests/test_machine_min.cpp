// Machine minimization and the calibration connection (E13, paper
// Section 5 / Fineman-Sheridan).
#include <gtest/gtest.h>

#include <functional>

#include "machmin/machine_min.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

/// Ground truth for EDF-m: exhaustive assignment of jobs to
/// (step, machine-slot) pairs within windows.
bool exhaustive_feasible_machines(const DeadlineInstance& instance,
                                  int machines) {
  if (instance.empty()) return true;
  if (machines == 0) return false;
  std::map<Time, int> used;  // step -> machines busy
  std::function<bool(JobId)> recurse = [&](JobId j) -> bool {
    if (j == instance.size()) return true;
    const DeadlineJob& job = instance.job(j);
    for (Time t = job.release; t < job.deadline; ++t) {
      if (used[t] >= machines) continue;
      ++used[t];
      if (recurse(j + 1)) return true;
      --used[t];
    }
    return false;
  };
  return recurse(0);
}

TEST(MachineMin, SingleJobNeedsOneMachine) {
  const DeadlineInstance instance({DeadlineJob{0, 3}}, 2);
  EXPECT_EQ(min_machines(instance), 1);
}

TEST(MachineMin, ParallelWindowsNeedParallelMachines) {
  const DeadlineInstance instance(
      {DeadlineJob{0, 1}, DeadlineJob{0, 1}, DeadlineJob{0, 1}}, 2);
  EXPECT_EQ(min_machines(instance), 3);
}

TEST(MachineMin, SlackWindowsShareAMachine) {
  const DeadlineInstance instance(
      {DeadlineJob{0, 4}, DeadlineJob{0, 4}, DeadlineJob{0, 4}}, 2);
  EXPECT_EQ(min_machines(instance), 1);
}

TEST(MachineMin, EdfMatchesExhaustiveOnRandomInstances) {
  Prng prng(1901);
  for (int trial = 0; trial < 100; ++trial) {
    const DeadlineInstance instance =
        deadline_uniform_instance(5, 6, 3, 4, prng);
    for (int m = 1; m <= 3; ++m) {
      EXPECT_EQ(edf_feasible_machines(instance, m),
                exhaustive_feasible_machines(instance, m))
          << instance.to_string() << " m=" << m;
    }
  }
}

TEST(MachineMin, OneIntervalServesSequentialJobs) {
  // Two jobs due at 2 fit serially in one interval's steps 0 and 1.
  const DeadlineInstance instance(
      {DeadlineJob{0, 2}, DeadlineJob{0, 2}}, 3);
  EXPECT_TRUE(edf_feasible_intervals(instance, {0}));
}

TEST(MachineMin, IntervalsActAsTemporaryMachines) {
  // Two jobs that must BOTH run at step 0 need two overlapping
  // intervals (i.e. two machines at that step).
  const DeadlineInstance instance(
      {DeadlineJob{0, 1}, DeadlineJob{0, 1}}, 3);
  EXPECT_FALSE(edf_feasible_intervals(instance, {0}));
  EXPECT_TRUE(edf_feasible_intervals(instance, {0, 0}));
  EXPECT_TRUE(edf_feasible_intervals(instance, {-1, 0}));
  // An interval arriving after the deadline does not help.
  EXPECT_FALSE(edf_feasible_intervals(instance, {0, 1}));
}

TEST(MachineMin, UnlimitedMachineCalibrationsLowerBoundedByMachines) {
  Prng prng(1902);
  for (int trial = 0; trial < 25; ++trial) {
    const DeadlineInstance instance =
        deadline_uniform_instance(4, 6, 2, 4, prng);
    const auto calibrations =
        min_calibrations_unlimited_machines(instance);
    ASSERT_TRUE(calibrations.has_value()) << instance.to_string();
    EXPECT_GE(static_cast<int>(calibrations->size()),
              min_machines(instance))
        << instance.to_string();
  }
}

TEST(MachineMin, LargeTReducesToMachineMinimization) {
  // The Fineman-Sheridan observation: once T spans the whole instance,
  // a calibration is exactly a machine.
  Prng prng(1903);
  for (int trial = 0; trial < 20; ++trial) {
    DeadlineInstance narrow =
        deadline_uniform_instance(5, 6, 2, 3, prng);
    // Rebuild with T covering the full span.
    const Time span_T = narrow.max_deadline() - narrow.min_release() +
                        narrow.T();
    const DeadlineInstance wide(
        std::vector<DeadlineJob>(narrow.jobs()), span_T, 1);
    const auto calibrations = min_calibrations_unlimited_machines(wide);
    ASSERT_TRUE(calibrations.has_value());
    EXPECT_EQ(static_cast<int>(calibrations->size()), min_machines(wide))
        << wide.to_string();
  }
}

TEST(MachineMin, EmptyInstanceTrivial) {
  const DeadlineInstance instance(std::vector<DeadlineJob>{}, 3);
  EXPECT_EQ(min_machines(instance), 0);
  EXPECT_TRUE(edf_feasible_machines(instance, 0));
  const auto calibrations = min_calibrations_unlimited_machines(instance);
  ASSERT_TRUE(calibrations.has_value());
  EXPECT_TRUE(calibrations->empty());
}

}  // namespace
}  // namespace calib

// Shared helpers for the experiment harness: ratio measurement against
// the exact offline optimum, seed-ensemble averaging on the thread pool,
// opt-in checkpoint journaling for the sweep-driven benches.
#pragma once

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>

#include "harness/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "offline/budget_search.hpp"
#include "online/driver.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace calib::benchutil {

/// Benches opt into the sweep engine's checkpoint journal by exporting
/// CALIBSCHED_JOURNAL=<directory>: each bench then appends its rows to
/// <dir>/<tag>.journal.jsonl and a re-run resumes instead of recomputing
/// completed cells. Unset (the default) → no journaling, no files.
inline harness::SweepOptions sweep_options_from_env(const std::string& tag) {
  harness::SweepOptions options;
  if (const char* dir = std::getenv("CALIBSCHED_JOURNAL");
      dir != nullptr && *dir != '\0') {
    options.journal_path = std::string(dir) + "/" + tag + ".journal.jsonl";
    options.resume = true;
  }
  return options;
}

/// CALIBSCHED_BENCH_SMALL=1 switches the headline tables to reduced,
/// fully deterministic grids (fewer cells, fewer seeds). That is the
/// mode the committed BENCH_*.json baselines are generated in and the
/// mode CI's bench-gate regenerates them in: small enough for a CI
/// budget, deterministic so scripts/bench_compare.py can diff the
/// non-timing metrics exactly.
inline bool small_mode() {
  const char* value = std::getenv("CALIBSCHED_BENCH_SMALL");
  return value != nullptr && *value != '\0' && *value != '0';
}

/// Competitive ratio of `policy` on `instance` against the exact
/// offline optimum (Section 4 DP searched over budgets).
inline double ratio_vs_opt(const Instance& instance, Cost G,
                           OnlinePolicy& policy) {
  const Cost alg = online_objective(instance, G, policy);
  const Cost opt = offline_online_optimum(instance, G).best_cost;
  return static_cast<double>(alg) / static_cast<double>(opt);
}

/// Machine-readable metrics sidecar for the benches, mirroring the
/// journal opt-in: export CALIBSCHED_METRICS=<directory> and a bench
/// holding one of these writes the final registry snapshot to
/// <dir>/<tag>.metrics.json when it exits (destructor = after main's
/// tables print, while the thread pool's workers are quiescent). Unset
/// (the default) → no file. Read it back with `calibsched_cli stats`.
class MetricsSidecar {
 public:
  explicit MetricsSidecar(std::string tag) : tag_(std::move(tag)) {
    // Touch the registry so it finishes constructing before we do:
    // statics are destroyed in reverse completion order, so the
    // snapshot in our destructor always has a live registry to read —
    // including when the sidecar itself is a namespace-scope static.
    obs::metrics();
    if (const char* dir = std::getenv("CALIBSCHED_METRICS");
        dir != nullptr && *dir != '\0') {
      path_ = std::string(dir) + "/" + tag_ + ".metrics.json";
    }
  }
  MetricsSidecar(const MetricsSidecar&) = delete;
  MetricsSidecar& operator=(const MetricsSidecar&) = delete;
  ~MetricsSidecar() {
    if (path_.empty()) return;
    std::ofstream file(path_);
    if (!file) {
      std::cerr << "metrics sidecar: cannot write " << path_ << '\n';
      return;
    }
    obs::metrics().snapshot().write_json(file);
    std::cerr << "wrote metrics to " << path_ << '\n';
  }

 private:
  std::string tag_;
  std::string path_;
};

/// Companion to the metrics sidecar for sharded runs: under the same
/// CALIBSCHED_METRICS=<dir> opt-in, write a fleet run's per-worker
/// metrics timeline (one delta sample per heartbeat per worker, see
/// DESIGN.md §11) to <dir>/<tag>.timeline.jsonl. Read it back with
/// `calibsched_cli stats --in <file> --timeline`. No file when the
/// opt-in is absent or the timeline is empty (in-process runs).
inline void write_timeline_sidecar(const std::string& tag,
                                   const obs::Timeline& timeline) {
  const char* dir = std::getenv("CALIBSCHED_METRICS");
  if (dir == nullptr || *dir == '\0' || timeline.empty()) return;
  const std::string path = std::string(dir) + "/" + tag + ".timeline.jsonl";
  std::ofstream file(path);
  if (!file) {
    std::cerr << "timeline sidecar: cannot write " << path << '\n';
    return;
  }
  timeline.write_jsonl(file);
  std::cerr << "wrote timeline to " << path << '\n';
}

/// Run `trial(seed_index)` for `trials` seeds in parallel; returns the
/// pooled summary of its returned statistic.
inline Summary ensemble(int trials,
                        const std::function<double(std::uint64_t)>& trial) {
  Summary summary;
  std::mutex mutex;
  global_pool().parallel_for(static_cast<std::size_t>(trials),
                             [&](std::size_t i) {
                               const double value =
                                   trial(static_cast<std::uint64_t>(i));
                               const std::scoped_lock lock(mutex);
                               summary.add(value);
                             });
  return summary;
}

}  // namespace calib::benchutil

// PendingSet: the online driver's waiting queue as an order-statistics
// structure instead of a flat vector.
//
// The paper's decision quantities (Algorithms 1-4, line 7) are all
// order-statistics over the waiting set under a fixed queue order:
// prefix weights, ranks, and the hypothetical drain flow
//   f(start) = sum_j w_j * (start + pos_j + 1 - r_j)
// where pos_j is job j's position in the queue order. Expanding,
//   f(start) = (start + 1) * W + S - R
// with W = sum w_j, R = sum w_j r_j, and S = sum pos_j * w_j. W and R
// are plain scalars; S ("spread") changes under insert/erase by exactly
//   w_x * rank(x) + suffix_weight(x)
// (every element after x shifts one slot; x lands at its rank), so all
// three are maintainable aggregates and f becomes an O(1) read — the
// "don't recompute, maintain" discipline the ROADMAP asks for.
//
// Two order-statistics trees back the rank/suffix queries: one keyed by
// arrival (JobId, for kFifo) and one keyed by (weight, JobId), which
// answers both weight orders (kHeaviestFirst is the reverse order with
// arrival-ascending ties; all its range sums decompose into prefix
// queries on the ascending tree). Insert/erase are O(log n);
// queue_flow_from is O(1); rank-select and per-order front are O(log n).
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace calib {

/// Order-statistics treap over (primary, secondary) int64 keys, with
/// subtree count and weight sums. Deterministic: priorities are derived
/// from an internal insertion sequence, so identical operation sequences
/// build identical trees. Not thread-safe (single-owner, like the
/// driver it serves).
class OrderStatTree {
 public:
  struct Agg {
    std::int64_t count = 0;
    Cost weight_sum = 0;
  };
  struct Key {
    std::int64_t primary = 0;
    std::int64_t secondary = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };

  void insert(Key key, Weight weight);
  /// Erase the element with exactly this key (must be present).
  void erase(Key key);

  [[nodiscard]] std::int64_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] Agg total() const;

  /// Aggregate of elements with key strictly less than `key`.
  [[nodiscard]] Agg prefix_less(Key key) const;
  /// Aggregate of elements with key less than or equal to `key`.
  [[nodiscard]] Agg prefix_leq(Key key) const;

  [[nodiscard]] Key min_key() const;  ///< requires non-empty
  [[nodiscard]] Key max_key() const;  ///< requires non-empty
  /// Key with exactly `rank` elements before it (0-based; rank < size).
  [[nodiscard]] Key kth(std::int64_t rank) const;

 private:
  struct Node {
    Key key;
    std::uint64_t priority = 0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int64_t count = 1;  // subtree size
    Weight weight = 0;       // this element
    Cost weight_sum = 0;     // subtree weight sum
  };

  [[nodiscard]] Agg node_agg(std::int32_t n) const;
  void pull(std::int32_t n);
  std::int32_t merge(std::int32_t a, std::int32_t b);
  /// Split into (< key) and (>= key) when `leq` is false, or
  /// (<= key) and (> key) when `leq` is true.
  void split(std::int32_t n, Key key, bool leq, std::int32_t& lo,
             std::int32_t& hi);
  [[nodiscard]] std::int32_t make_node(Key key, Weight weight);
  void free_node(std::int32_t n);

  std::vector<Node> nodes_;
  std::vector<std::int32_t> free_;
  std::int32_t root_ = -1;
  std::uint64_t sequence_ = 0;
};

/// The waiting set of an online run: insert on release, erase on
/// assignment, O(1) hypothetical drain flows per queue order.
class PendingSet {
 public:
  void insert(JobId id, Weight weight, Time release);
  void erase(JobId id);
  [[nodiscard]] bool contains(JobId id) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] Weight total_weight() const { return total_weight_; }

  /// The job `rank` positions into the arrival (FIFO) order. O(log n).
  [[nodiscard]] JobId at(std::size_t rank) const;
  /// The first job of the given queue order (ties resolve to the
  /// earliest arrival, matching a stable sort). O(log n), non-empty.
  [[nodiscard]] JobId first(QueueOrder order) const;

  /// Hypothetical flow of draining the set back-to-back from `start` in
  /// the given order: sum_j w_j * (start + pos_j + 1 - r_j). O(1).
  [[nodiscard]] Cost queue_flow_from(Time start, QueueOrder order) const;

 private:
  struct Entry {
    Weight weight = 0;
    Time release = 0;
    bool active = false;
  };

  /// rank/suffix-weight of `id` against the *current* contents (which
  /// must not include `id`), per order — the S-delta of insert/erase.
  struct Delta {
    std::int64_t rank = 0;
    Cost suffix_weight = 0;
  };
  [[nodiscard]] Delta delta(QueueOrder order, JobId id, Weight weight) const;

  OrderStatTree fifo_;       // key (id, 0)
  OrderStatTree by_weight_;  // key (weight, id)
  std::vector<Entry> entries_;
  Weight total_weight_ = 0;
  Cost weighted_release_ = 0;
  Cost spread_[3] = {0, 0, 0};  // S per QueueOrder enumerator
};

}  // namespace calib

// E3 — Theorem 3.8: Algorithm 2 is 12-competitive (single machine,
// weighted jobs).
//
// Sweeps weight models (uniform, Zipf heavy-tail, bimodal urgent-lot)
// and (G, T), measuring competitive ratio vs exact OPT, plus the
// Lemma 3.5 per-interval excess-flow statistic (must stay below 2G).
// Expected shape: max ratio well below 12 (typically under 2.5); the
// Lemma 3.5 excess approaches but never reaches 2G.
//
// The grid runs through the harness sweep engine (ratio and the
// Lemma 3.5 hook per cell, DP flow-curves cached across G values); this
// file only aggregates rows into the headline table.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "harness/sweep.hpp"
#include "online/alg2_weighted.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

Instance make_workload(WeightModel weights, Time T, Prng& prng) {
  PoissonConfig config;
  config.rate = 0.3;
  config.steps = 100;
  config.weights = weights;
  config.w_max = 9;
  return poisson_instance(config, T, 1, prng);
}

/// Exact Lemma 3.5 accounting. Each job waits over [r_j, t_j) before
/// its unavoidable serving step; splitting that weighted waiting at
/// calibration-interval boundaries attributes to each interval
/// [s, s + T) exactly the flow accrued *within* it:
/// sum_j w_j * |[r_j, t_j) ∩ [s, s + T)|. That per-interval share is
/// what the lemma bounds by 2G. (The old proxy charged a job's whole
/// wait — serving step included — to the interval that serves it, so
/// waiting carried over from earlier intervals could push it past 2G.)
/// Normalized by 2G, so the lemma says < 1.
double lemma35_utilization(const Instance& instance,
                           const Schedule& schedule, Cost G) {
  const Time T = schedule.calendar().T();
  Cost worst = 0;
  for (const Time start : schedule.calendar().starts(0)) {
    Cost accrued = 0;
    for (JobId j = 0; j < instance.size(); ++j) {
      if (!schedule.is_placed(j)) continue;
      const Time lo = std::max(instance.job(j).release, start);
      const Time hi = std::min(schedule.placement(j).start, start + T);
      if (hi > lo) accrued += instance.job(j).weight * (hi - lo);
    }
    worst = std::max(worst, accrued);
  }
  return static_cast<double>(worst) / static_cast<double>(2 * G);
}

void BM_Alg2Ratio(benchmark::State& state) {
  const Cost G = state.range(0);
  const Time T = state.range(1);
  const auto weights = static_cast<WeightModel>(state.range(2));
  Prng prng(static_cast<std::uint64_t>(G * 131 + T));
  double worst = 0.0;
  for (auto _ : state) {
    const Instance instance = make_workload(weights, T, prng);
    Alg2Weighted policy;
    worst = std::max(worst, benchutil::ratio_vs_opt(instance, G, policy));
  }
  state.counters["worst_ratio"] = worst;
  state.counters["bound"] = 12.0;
}

BENCHMARK(BM_Alg2Ratio)
    ->ArgsProduct({{6, 20, 60},
                   {3, 8},
                   {static_cast<int>(WeightModel::kUniform),
                    static_cast<int>(WeightModel::kZipf),
                    static_cast<int>(WeightModel::kBimodal)}})
    ->Unit(benchmark::kMillisecond);

struct TablePrinter {
  ~TablePrinter() {
    // One workload spec per (weights, T); G is a grid axis, so each
    // instance's DP flow-curve is computed once and reused for all 3 G
    // values.
    const bool small = benchutil::small_mode();
    harness::SweepGrid grid;
    const std::vector<WeightModel> weight_models{
        WeightModel::kUniform, WeightModel::kZipf, WeightModel::kBimodal};
    const std::vector<Time> T_values =
        small ? std::vector<Time>{3} : std::vector<Time>{3, 8};
    const std::vector<Cost> G_values =
        small ? std::vector<Cost>{6, 20} : std::vector<Cost>{6, 20, 60};
    for (const WeightModel weights : weight_models) {
      for (const Time T : T_values) {
        harness::WorkloadSpec spec;
        spec.kind = "poisson";
        spec.rate = 0.3;
        spec.steps = 100;
        spec.weights = weights;
        spec.w_max = 9;
        spec.T = T;
        grid.workloads.push_back(spec);
      }
    }
    const int seeds = small ? 6 : 50;
    grid.solvers = {"alg2"};
    grid.G_values = G_values;
    grid.seeds = seeds;
    grid.base_seed = 40503;
    grid.compare_to_opt = true;
    grid.extra_metric_name = "lemma35_util";
    grid.extra_metric = lemma35_utilization;
    const harness::SweepReport report = harness::SweepEngine(std::move(grid))
        .run(benchutil::sweep_options_from_env("bench_alg2"));

    std::cout << "\nE3 / Theorem 3.8 - Algorithm 2 competitive ratio vs "
                 "exact OPT (" << seeds << " seeds per cell, bound = "
                 "12) and the Lemma 3.5 interval-excess utilization (< 1 "
                 "required):\n";
    Table table({"weights", "G", "T", "ratio mean", "ratio p95",
                 "ratio max", "lemma3.5 max util"});
    for (std::size_t wi = 0; wi < weight_models.size(); ++wi) {
      for (const Cost G : G_values) {
        for (std::size_t ti = 0; ti < T_values.size(); ++ti) {
          const std::size_t w = wi * T_values.size() + ti;
          Summary ratios;
          Summary utils;
          for (const harness::SweepRow& row : report.rows) {
            if (row.workload_index != w || row.G != G) continue;
            ratios.add(row.ratio);
            utils.add(row.extra);
          }
          table.row()
              .add(weight_model_name(weight_models[wi]))
              .add(G)
              .add(T_values[ti])
              .add(ratios.mean(), 3)
              .add(ratios.percentile(95), 3)
              .add(ratios.max(), 3)
              .add(utils.max(), 3);
        }
      }
    }
    table.print(std::cout);
    std::cerr << "[sweep] " << report.timing_summary() << '\n';

    // Lemma 3.5 is a theorem, not a tendency: with the exact boundary-
    // split accounting, no interval may reach 2G on any seed.
    double worst_util = 0.0;
    for (const harness::SweepRow& row : report.rows) {
      if (row.has_extra) worst_util = std::max(worst_util, row.extra);
    }
    CALIB_CHECK_MSG(worst_util < 1.0,
                    "Lemma 3.5 violated: interval excess "
                        << worst_util << " * 2G");
  }
};
// Declared before `printer` so it is destroyed after it: the snapshot
// then includes everything the bench recorded. Opt in by exporting
// CALIBSCHED_METRICS=<dir>.
const benchutil::MetricsSidecar sidecar("bench_alg2");  // NOLINT(cert-err58-cpp)
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

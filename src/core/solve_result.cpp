#include "core/solve_result.hpp"

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace calib {

SolveResult summarize_schedule(const std::string& solver,
                               const Instance& instance,
                               const Schedule& schedule, Cost G,
                               double wall_ms) {
  SolveResult result;
  result.solver = solver;
  result.calibrations = static_cast<int>(schedule.calendar().count());
  result.flow = schedule.weighted_flow(instance);
  result.objective = schedule.online_cost(instance, G);
  result.wall_ms = wall_ms;
  return result;
}

}  // namespace calib

// Observation 2.1: optimal assignment of jobs to calibrated slots.
//
// Given the calibration times, running the heaviest waiting job first
// (ties: earliest release, then lowest index) on every calibrated, free
// machine minimizes total weighted flow. This greedy is the paper's
// bridge from "calibration decisions" to "complete schedule", and every
// solver in the library funnels through it.
#pragma once

#include <vector>

#include "core/calendar.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace calib {

struct ListResult {
  Schedule schedule;
  /// Jobs the calendar had no slot for, ascending. Empty iff feasible.
  std::vector<JobId> unscheduled;

  [[nodiscard]] bool feasible() const { return unscheduled.empty(); }
};

/// Run Observation 2.1's greedy over `calendar`. Never fails; check
/// `feasible()` to learn whether every job found a slot.
ListResult list_schedule(const Instance& instance, const Calendar& calendar);

/// Convenience: build the calendar from globally ordered calibration
/// times via round-robin (Observation 2.1 step 2), then assign.
ListResult list_schedule(const Instance& instance,
                         const std::vector<Time>& global_starts);

}  // namespace calib

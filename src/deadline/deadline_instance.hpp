// The deadline-world model this paper's introduction contrasts against:
// Bender, Bunde, Leung, McCauley, Phillips, "Efficient Scheduling to
// Minimize Calibrations" (SPAA'13) — unit jobs with release times and
// deadlines; minimize the number of calibrations subject to every job
// meeting its deadline.
//
// This subsystem exists as a baseline: Section 1 of the reproduced
// paper motivates the flow-time objective as the relaxation of exactly
// this model, and footnote 5 argues a calibration *budget* leaves an
// online algorithm helpless — both claims are exercised in
// bench/bench_deadline.cpp (experiment E10).
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace calib {

/// Unit job with a feasibility window: may start in [release, deadline).
/// (`deadline` is the time by which the job must have *completed*.)
struct DeadlineJob {
  Time release = 0;
  Time deadline = 1;

  friend bool operator==(const DeadlineJob&, const DeadlineJob&) = default;
};

class DeadlineInstance {
 public:
  DeadlineInstance() = default;

  /// Jobs are stored sorted by (deadline, release). Every job must have
  /// release + 1 <= deadline (a unit of work must fit in the window).
  DeadlineInstance(std::vector<DeadlineJob> jobs, Time calibration_length,
                   int machines = 1);

  [[nodiscard]] const std::vector<DeadlineJob>& jobs() const {
    return jobs_;
  }
  [[nodiscard]] const DeadlineJob& job(JobId j) const;
  [[nodiscard]] int size() const { return static_cast<int>(jobs_.size()); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }
  [[nodiscard]] Time T() const { return T_; }
  [[nodiscard]] int machines() const { return machines_; }

  [[nodiscard]] Time min_release() const;
  [[nodiscard]] Time max_deadline() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const DeadlineInstance&,
                         const DeadlineInstance&) = default;

 private:
  std::vector<DeadlineJob> jobs_;
  Time T_ = 2;
  int machines_ = 1;
};

}  // namespace calib

// Extension (the paper's open combination): weighted jobs on multiple
// machines. The paper gives Algorithm 2 (weighted, P = 1) and
// Algorithm 3 (unweighted, P machines) and leaves their combination
// open; this policy is the natural merge, offered as a *heuristic* —
// no competitive guarantee is claimed.
//
// Rules: Observation 2.1 assignment (heaviest first) on every
// calibrated idle machine, and a calibration whenever the waiting queue
// trips any Algorithm 2 trigger (weight G/T, count T, flow G), at most
// one new machine per time step (the conservative choice — bursts then
// calibrate on consecutive steps, which Observation 2.1 absorbs).
//
// Experiment E11 measures it against the Figure 1 LP lower bound.
#pragma once

#include "online/policy.hpp"

namespace calib {

class Alg4WeightedMulti final : public OnlinePolicy {
 public:
  Alg4WeightedMulti() = default;

  [[nodiscard]] QueueOrder order() const override {
    return QueueOrder::kHeaviestFirst;
  }
  [[nodiscard]] bool assign_before_decide() const override { return true; }
  [[nodiscard]] bool assign_after_decide() const override { return true; }
  void decide(DriverHandle& handle) override;
  [[nodiscard]] const char* name() const override {
    return "alg4-weighted-multi";
  }
};

}  // namespace calib

# Empty compiler generated dependencies file for bench_multitype.
# This may be replaced when dependencies are built.

// Lemma 3.4: the release-order transformation never delays a job, never
// increases flow, at most doubles the calibrations, and yields a valid,
// release-ordered schedule.
#include <gtest/gtest.h>

#include "core/list_scheduler.hpp"
#include "core/transform.hpp"
#include "offline/brute_force.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

/// A random valid single-machine schedule: random calendar, jobs placed
/// heaviest-first by the greedy — then shuffled within intervals by
/// re-placing some pairs to break release order on purpose.
std::optional<Schedule> random_schedule(const Instance& instance,
                                        Prng& prng) {
  std::vector<Time> starts;
  const int calibrations =
      static_cast<int>(prng.uniform_int(1, instance.size()));
  for (int c = 0; c < calibrations; ++c) {
    starts.push_back(prng.uniform_int(instance.min_release() + 1 -
                                          instance.T(),
                                      instance.max_release()));
  }
  ListResult result = list_schedule(instance, starts);
  if (!result.feasible()) return std::nullopt;
  return std::move(result.schedule);
}

TEST(Transform, IdentityOnAlreadyOrderedSchedule) {
  const Instance instance({Job{0, 1}, Job{1, 1}}, 3);
  Calendar calendar(3, 1);
  calendar.add(0, 0);
  Schedule schedule(calendar, 2);
  schedule.place(0, 0, 0);
  schedule.place(1, 0, 1);
  const Schedule transformed = to_release_order(instance, schedule);
  EXPECT_EQ(transformed.placement(0).start, 0);
  EXPECT_EQ(transformed.placement(1).start, 1);
  EXPECT_EQ(transformed.calendar().count(), 1);
}

TEST(Transform, ReordersOutOfOrderPair) {
  // Heaviest-first puts the late-released heavy job before the early
  // light one; the transformation must swap them back into release
  // order without delaying either past its original slot.
  const Instance instance({Job{0, 1}, Job{2, 9}}, 4);
  Calendar calendar(4, 1);
  calendar.add(0, 2);
  Schedule schedule(calendar, 2);
  schedule.place(1, 0, 2);  // heavy job first
  schedule.place(0, 0, 3);  // light early job waits
  ASSERT_EQ(schedule.validate(instance), std::nullopt);

  const Schedule transformed = to_release_order(instance, schedule);
  ASSERT_EQ(transformed.validate(instance), std::nullopt);
  EXPECT_TRUE(is_release_ordered(instance, transformed));
  // The lemma moves the early job to the step immediately before the
  // later-released one (adding a calibration for it), never delaying
  // either job.
  EXPECT_EQ(transformed.placement(0).start, 1);
  EXPECT_EQ(transformed.placement(1).start, 2);
  EXPECT_LE(transformed.calendar().count(), 2 * schedule.calendar().count());
}

TEST(Transform, IsReleaseOrderedDetector) {
  const Instance instance({Job{0, 1}, Job{2, 9}}, 4);
  Calendar calendar(4, 1);
  calendar.add(0, 2);
  Schedule ordered(calendar, 2);
  ordered.place(0, 0, 2);
  ordered.place(1, 0, 3);
  EXPECT_TRUE(is_release_ordered(instance, ordered));
  Schedule unordered(calendar, 2);
  unordered.place(1, 0, 2);
  unordered.place(0, 0, 3);
  EXPECT_FALSE(is_release_ordered(instance, unordered));
}

struct TransformParams {
  int jobs;
  Time span;
  Time T;
  WeightModel weights;
  int trials;
  std::uint64_t seed;
};

class TransformSweep : public ::testing::TestWithParam<TransformParams> {};

TEST_P(TransformSweep, Lemma34PropertiesHold) {
  const auto& p = GetParam();
  Prng prng(p.seed);
  int checked = 0;
  for (int trial = 0; trial < p.trials; ++trial) {
    const Instance instance = sparse_uniform_instance(
        p.jobs, p.span, p.T, 1, p.weights, 6, prng);
    const auto schedule = random_schedule(instance, prng);
    if (!schedule.has_value()) continue;
    ++checked;
    const Schedule transformed = to_release_order(instance, *schedule);
    ASSERT_EQ(transformed.validate(instance), std::nullopt)
        << instance.to_string();
    EXPECT_TRUE(is_release_ordered(instance, transformed));
    // No job is delayed.
    for (JobId j = 0; j < instance.size(); ++j) {
      EXPECT_LE(transformed.placement(j).start,
                schedule->placement(j).start);
    }
    // Flow never increases; calibrations at most double.
    EXPECT_LE(transformed.weighted_flow(instance),
              schedule->weighted_flow(instance));
    EXPECT_LE(transformed.calendar().count(),
              2 * schedule->calendar().count())
        << instance.to_string();
  }
  EXPECT_GT(checked, p.trials / 4);  // the sweep actually exercised cases
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransformSweep,
    ::testing::Values(
        TransformParams{4, 9, 2, WeightModel::kUniform, 40, 301},
        TransformParams{5, 11, 3, WeightModel::kUniform, 40, 302},
        TransformParams{6, 13, 3, WeightModel::kZipf, 40, 303},
        TransformParams{7, 15, 4, WeightModel::kBimodal, 40, 304},
        TransformParams{8, 18, 2, WeightModel::kUniform, 30, 305},
        TransformParams{10, 24, 5, WeightModel::kUniform, 30, 306}));

// Corollary of Lemma 3.4 as used by Theorem 3.8: the best release-order
// schedule costs at most twice OPT. Verified against brute force by
// transforming the true optimum.
TEST(Transform, ReleaseOrderOptimumWithinTwiceOpt) {
  Prng prng(99);
  for (int trial = 0; trial < 15; ++trial) {
    const Instance instance = sparse_uniform_instance(
        5, 10, 3, 1, WeightModel::kUniform, 5, prng);
    const Cost G = prng.uniform_int(2, 20);
    const OfflineSolution opt = brute_force_online_objective(instance, G);
    ASSERT_TRUE(opt.feasible());
    const Schedule ordered = to_release_order(instance, *opt.schedule);
    const Cost opt_cost = opt.schedule->online_cost(instance, G);
    EXPECT_LE(ordered.online_cost(instance, G), 2 * opt_cost)
        << instance.to_string();
  }
}

}  // namespace
}  // namespace calib

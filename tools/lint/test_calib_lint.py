#!/usr/bin/env python3
"""Fixture tests for calib_lint.py.

Each known-bad fixture must trip its rule (detection), the known-good
fixture must stay silent (precision), and — run from ctest with a
compilation database — the real tree must be clean (the zero-finding
gate). Run directly:  python3 tools/lint/test_calib_lint.py
"""

import subprocess
import sys
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
LINT = HERE / "calib_lint.py"


def run_lint(repo: Path, files: list[Path]):
    process = subprocess.run(
        [sys.executable, str(LINT), "--repo", str(repo), "--files",
         *map(str, files)],
        capture_output=True, text=True, check=False)
    return process.returncode, process.stdout, process.stderr


class FixtureDetection(unittest.TestCase):
    def test_signal_safety_and_magic_respelled(self):
        fixtures = HERE / "fixtures"
        rc, out, _ = run_lint(fixtures,
                              [fixtures / "src/harness/sandbox.cpp"])
        self.assertEqual(rc, 1, out)
        self.assertIn("[fork-child-signal-safety]", out)
        self.assertIn("[ipc-magic]", out)
        for word in ("'string'", "'fprintf'", "'new'", "'delete'"):
            self.assertIn(word, out, f"missing finding for {word}\n{out}")

    def test_missing_markers_are_a_finding(self):
        fixtures = HERE / "fixtures_no_markers"
        rc, out, _ = run_lint(fixtures,
                              [fixtures / "src/harness/sandbox.cpp"])
        self.assertEqual(rc, 1, out)
        self.assertIn("[fork-child-signal-safety]", out)
        self.assertIn("markers", out)

    def test_duplicate_magic_definition(self):
        fixtures = HERE / "fixtures_magic"
        rc, out, _ = run_lint(fixtures,
                              [fixtures / "src/util/framing.hpp"])
        self.assertEqual(rc, 1, out)
        self.assertIn("exactly one 0x43414C42", out)

    def test_raw_io_layering(self):
        fixtures = HERE / "fixtures"
        rc, out, _ = run_lint(fixtures,
                              [fixtures / "src/harness/bad_raw_io.cpp"])
        self.assertEqual(rc, 1, out)
        # read, write, poll are findings; close and the wrapper are not.
        self.assertEqual(out.count("[raw-io-layering]"), 3, out)
        self.assertIn("::read()", out)
        self.assertNotIn("close", out)

    def test_raw_io_allowed_in_io_layer(self):
        fixtures = HERE / "fixtures"
        rc, out, _ = run_lint(fixtures,
                              [fixtures / "src/util/framing.cpp"])
        self.assertEqual(rc, 0, out)
        self.assertEqual(out.strip(), "", out)

    def test_core_layer_rules(self):
        fixtures = HERE / "fixtures"
        rc, out, _ = run_lint(fixtures, [fixtures / "src/core/bad_core.cpp"])
        self.assertEqual(rc, 1, out)
        self.assertIn("[no-iostream]", out)
        self.assertIn("[calib-check]", out)
        self.assertIn("[no-naked-new]", out)
        # Both the include and call forms of assert are caught.
        self.assertEqual(out.count("[calib-check]"), 2, out)
        # new + delete are two separate findings.
        self.assertEqual(out.count("[no-naked-new]"), 2, out)

    def test_policy_driver_isolation(self):
        fixtures = HERE / "fixtures"
        rc, out, _ = run_lint(fixtures,
                              [fixtures / "src/online/bad_policy.cpp"])
        self.assertEqual(rc, 1, out)
        self.assertIn("[policy-driver-isolation]", out)
        self.assertIn("online/driver.hpp", out)
        self.assertIn("OnlineDriver", out)
        # One finding for the include, one for the identifier; the
        # comment mentions must not count.
        self.assertEqual(out.count("[policy-driver-isolation]"), 2, out)

    def test_policy_driver_isolation_good_policy_is_clean(self):
        fixtures = HERE / "fixtures"
        rc, out, _ = run_lint(fixtures,
                              [fixtures / "src/online/good_policy.cpp"])
        self.assertEqual(rc, 0, out)
        self.assertEqual(out.strip(), "", out)

    def test_obs_encapsulation(self):
        fixtures = HERE / "fixtures"
        rc, out, _ = run_lint(fixtures,
                              [fixtures / "src/harness/bad_obs_client.cpp"])
        self.assertEqual(rc, 1, out)
        self.assertIn("[obs-encapsulation]", out)
        self.assertIn("MetricsRegistry", out)
        self.assertIn("TraceCollector", out)
        # One finding per code mention; the comment must not count.
        self.assertEqual(out.count("[obs-encapsulation]"), 2, out)

    def test_comments_and_strings_do_not_count(self):
        fixtures = HERE / "fixtures"
        rc, out, _ = run_lint(fixtures, [fixtures / "src/util/good_util.cpp"])
        self.assertEqual(rc, 0, out)
        self.assertEqual(out.strip(), "", out)


class TreeIsClean(unittest.TestCase):
    """The real tree must pass with zero findings (compdb mode). Skipped
    when no compilation database exists (e.g. running the file directly
    before configuring)."""

    def test_tree_clean(self):
        repo = HERE.parents[1]
        compdb = repo / "build" / "compile_commands.json"
        if not compdb.is_file():
            self.skipTest("no compile_commands.json; configure first")
        process = subprocess.run(
            [sys.executable, str(LINT), "--compdb", str(compdb)],
            capture_output=True, text=True, check=False)
        self.assertEqual(process.returncode, 0,
                         process.stdout + process.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)

#include "online/registry.hpp"

#include <stdexcept>

#include "online/alg1_unweighted.hpp"
#include "online/alg2_weighted.hpp"
#include "online/alg3_multi.hpp"
#include "online/alg4_weighted_multi.hpp"
#include "online/baselines.hpp"
#include "online/randomized.hpp"

namespace calib {

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

PolicyRegistry::PolicyRegistry() {
  add("alg1", "Algorithm 1: unweighted, 1 machine, 3-competitive",
      [](const PolicyParams&) { return std::make_unique<Alg1Unweighted>(); });
  add("alg1-noimm",
      "Algorithm 1 without immediate calibrations (Section 3 remark)",
      [](const PolicyParams&) {
        return std::make_unique<Alg1Unweighted>(false);
      });
  add("alg2", "Algorithm 2: weighted, 1 machine, 12-competitive",
      [](const PolicyParams&) { return std::make_unique<Alg2Weighted>(); });
  add("alg2-lightest",
      "Algorithm 2 with the literal line-13 lightest-first extraction",
      [](const PolicyParams&) {
        return std::make_unique<Alg2Weighted>(QueueOrder::kLightestFirst);
      });
  add("alg3", "Algorithm 3: unweighted, P machines, 12-competitive",
      [](const PolicyParams&) { return std::make_unique<Alg3Multi>(); });
  add("alg4", "weighted multi-machine heuristic (open combination)",
      [](const PolicyParams&) {
        return std::make_unique<Alg4WeightedMulti>();
      });
  add("eager", "baseline: calibrate whenever anything waits",
      [](const PolicyParams&) { return std::make_unique<EagerPolicy>(); });
  add("ski", "baseline: deterministic ski-rental (delay until flow G)",
      [](const PolicyParams&) { return std::make_unique<SkiRentalPolicy>(); });
  add("periodic", "baseline: fixed calibration cadence (params.period)",
      [](const PolicyParams& params) {
        return std::make_unique<PeriodicPolicy>(params.period);
      });
  add("random", "randomized ski-rental threshold (params.seed)",
      [](const PolicyParams& params) {
        return std::make_unique<RandomizedSkiRental>(params.seed);
      });
}

void PolicyRegistry::add(const std::string& name,
                         const std::string& description, Factory factory) {
  if (contains(name)) {
    throw std::runtime_error("policy already registered: " + name);
  }
  names_.push_back(name);
  entries_.push_back(Entry{description, std::move(factory)});
}

const PolicyRegistry::Entry* PolicyRegistry::find(
    const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return &entries_[i];
  }
  return nullptr;
}

bool PolicyRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

const std::string& PolicyRegistry::description(
    const std::string& name) const {
  const Entry* entry = find(name);
  if (entry == nullptr) throw std::runtime_error("unknown policy: " + name);
  return entry->description;
}

std::unique_ptr<OnlinePolicy> PolicyRegistry::make(
    const std::string& name, const PolicyParams& params) const {
  const Entry* entry = find(name);
  if (entry == nullptr) throw std::runtime_error("unknown policy: " + name);
  return entry->factory(params);
}

std::unique_ptr<OnlinePolicy> make_policy(const std::string& name,
                                          const PolicyParams& params) {
  return PolicyRegistry::instance().make(name, params);
}

std::string policy_names_joined(char separator) {
  std::string joined;
  for (const std::string& name : PolicyRegistry::instance().names()) {
    if (!joined.empty()) joined += separator;
    joined += name;
  }
  return joined;
}

}  // namespace calib

// Memoized Section-4 DP flow curves, shared across sweep cells.
//
// The flow curve F(k), k = 0..n, is a property of the *instance* alone —
// G only enters afterwards, as min_k (G·k + F(k)). A ratio-vs-opt sweep
// over |G_values| budgets therefore needs the O(K n³) DP once per
// instance, not once per (instance, G) cell; this cache is what turns a
// 4-G sweep into ~1× the single-G DP cost instead of 4×.
//
// Thread-safe with compute-once semantics: concurrent requests for the
// same instance block on a single computation instead of duplicating it
// (duplication would erase exactly the saving the cache exists for).
//
// Failure semantics: if the computing thread throws (including
// BudgetExceeded from its cell budget), every waiter currently blocked
// on that computation receives the same exception — their cells degrade
// to error/timeout rows together — but the failed entry is evicted, so
// any *later* request recomputes from scratch (possibly under a larger
// budget) instead of inheriting a stale failure forever.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"
#include "util/budget.hpp"

namespace calib::harness {

/// Optimum of the online objective read off a cached curve — the same
/// argmin offline_online_optimum() computes, without re-running the DP.
struct CurveOptimum {
  int best_k = 0;
  Cost best_cost = 0;
  Cost flow = 0;  ///< curve[best_k]
};

[[nodiscard]] CurveOptimum optimum_from_curve(const std::vector<Cost>& curve,
                                              Cost G);

class FlowCurveCache {
 public:
  /// The flow curve F(0..n) of `instance` (normalized internally, like
  /// offline_online_optimum). Computes on first request; every later
  /// request for an identical instance returns the shared copy. A
  /// non-null `budget` is charged per DP state while *this* call owns
  /// the computation (see the failure semantics above).
  [[nodiscard]] std::shared_ptr<const std::vector<Cost>> curve(
      const Instance& instance, Budget* budget = nullptr);

  [[nodiscard]] std::size_t hits() const { return hits_.load(); }
  [[nodiscard]] std::size_t misses() const { return misses_.load(); }
  /// Total wall time spent inside DP computations (summed across
  /// threads; the saving of a hit is its instance's share of this).
  [[nodiscard]] double compute_seconds() const;

 private:
  using CurvePtr = std::shared_ptr<const std::vector<Cost>>;

  std::mutex mutex_;
  std::unordered_map<std::string, std::shared_future<CurvePtr>> curves_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::int64_t> compute_micros_{0};
};

}  // namespace calib::harness

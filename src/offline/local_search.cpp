#include "offline/local_search.hpp"

#include <algorithm>
#include <optional>

#include "core/list_scheduler.hpp"
#include "util/check.hpp"

namespace calib {
namespace {

/// Cost of a global start multiset, or nullopt if infeasible.
std::optional<Cost> evaluate(const Instance& instance, Cost G,
                             const std::vector<Time>& starts,
                             Schedule* out = nullptr) {
  ListResult result = list_schedule(instance, starts);
  if (!result.feasible()) return std::nullopt;
  const Cost cost = result.schedule.online_cost(instance, G);
  if (out != nullptr) *out = std::move(result.schedule);
  return cost;
}

}  // namespace

Schedule local_search_offline(const Instance& instance, Cost G,
                              const LocalSearchOptions& options) {
  CALIB_CHECK(G >= 1);
  CALIB_CHECK(!instance.empty());
  const Time max_shift =
      options.max_shift > 0 ? options.max_shift : instance.T();

  // Seed: one calibration per job at its release. Always feasible (the
  // greedy gets at least one fresh slot per job).
  std::vector<Time> starts;
  starts.reserve(static_cast<std::size_t>(instance.size()));
  for (const Job& job : instance.jobs()) starts.push_back(job.release);
  Schedule best(Calendar(instance.T(), instance.machines()),
                instance.size());
  auto best_cost = evaluate(instance, G, starts, &best);
  CALIB_CHECK_MSG(best_cost.has_value(),
                  "per-job release calibrations must be feasible");

  for (int round = 0; round < options.max_rounds; ++round) {
    bool improved = false;
    // Move 1: drop a calibration.
    for (std::size_t i = 0; i < starts.size() && starts.size() > 1; ++i) {
      std::vector<Time> candidate = starts;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      Schedule schedule(Calendar(instance.T(), instance.machines()),
                        instance.size());
      const auto cost = evaluate(instance, G, candidate, &schedule);
      if (cost.has_value() && *cost < *best_cost) {
        starts = std::move(candidate);
        best_cost = cost;
        best = std::move(schedule);
        improved = true;
        break;  // restart the sweep on the smaller set
      }
    }
    if (improved) continue;
    // Move 2: shift one calibration by d in [-max_shift, max_shift].
    for (std::size_t i = 0; i < starts.size() && !improved; ++i) {
      for (Time d = -max_shift; d <= max_shift && !improved; ++d) {
        if (d == 0) continue;
        std::vector<Time> candidate = starts;
        candidate[i] += d;
        Schedule schedule(Calendar(instance.T(), instance.machines()),
                          instance.size());
        const auto cost = evaluate(instance, G, candidate, &schedule);
        if (cost.has_value() && *cost < *best_cost) {
          starts = std::move(candidate);
          best_cost = cost;
          best = std::move(schedule);
          improved = true;
        }
      }
    }
    if (!improved) break;  // local optimum
  }
  CALIB_CHECK(!best.validate(instance).has_value());
  return best;
}

}  // namespace calib

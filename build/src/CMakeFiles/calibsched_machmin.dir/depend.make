# Empty dependencies file for calibsched_machmin.
# This may be replaced when dependencies are built.

// Checked assertions that stay on in release builds.
//
// A theory reproduction lives or dies on invariants; the cost of a branch
// per check is negligible next to the cost of silently producing a wrong
// schedule. CALIB_CHECK aborts with a message; CALIB_CHECK_MSG lets the
// caller add context via stream syntax.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

namespace calib::detail {

// stdio, not iostream: library code must not pull in the iostream
// static-init machinery (enforced by tools/lint/calib_lint.py), and
// stderr here must work even mid-teardown, when std::cerr may already
// be gone.
[[noreturn]] inline void check_failed(std::string_view expr,
                                      std::string_view file, int line,
                                      std::string_view msg) {
  std::fprintf(stderr, "CHECK failed: %.*s\n  at %.*s:%d",
               static_cast<int>(expr.size()), expr.data(),
               static_cast<int>(file.size()), file.data(), line);
  if (!msg.empty()) {
    std::fprintf(stderr, "\n  %.*s", static_cast<int>(msg.size()),
                 msg.data());
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace calib::detail

#define CALIB_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) [[unlikely]]                                             \
      ::calib::detail::check_failed(#cond, __FILE__, __LINE__, {});       \
  } while (false)

#define CALIB_CHECK_MSG(cond, ...)                                        \
  do {                                                                    \
    if (!(cond)) [[unlikely]] {                                           \
      std::ostringstream calib_check_os_;                                 \
      calib_check_os_ << __VA_ARGS__;                                     \
      ::calib::detail::check_failed(#cond, __FILE__, __LINE__,            \
                                    calib_check_os_.str());               \
    }                                                                     \
  } while (false)

// ASCII table rendering for benchmark/experiment output.
//
// Every bench binary prints the rows the paper's (hypothetical) table
// would contain; this renderer keeps columns aligned and is the single
// place formatting lives.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace calib {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(std::int64_t value);
  Table& add(std::size_t value);
  Table& add(int value);
  /// Fixed-point formatting with `digits` decimals.
  Table& add(double value, int digits = 3);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace calib

// The Figure 2 dual checker: zero point feasibility, the Theorem 3.10
// static certificate, and weak duality against both the LP optimum and
// exact schedules.
#include <gtest/gtest.h>

#include "lp/dual_check.hpp"
#include "offline/budget_search.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(DualCheck, ZeroPointIsFeasibleWithZeroObjective) {
  const Instance instance({Job{0, 1}, Job{3, 2}}, 3);
  const CalibrationLp lp(instance, 6);
  const DualChecker checker(lp);
  const DualPoint zero = checker.zero_point();
  EXPECT_NEAR(checker.max_violation(zero), 0.0, 1e-12);
  EXPECT_EQ(zero.objective(), 0.0);
}

TEST(DualCheck, StaticCertificateIsFeasible) {
  Prng prng(1201);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance instance = sparse_uniform_instance(
        5, 10, 3, 1, WeightModel::kUniform, 4, prng);
    const Cost G = prng.uniform_int(2, 15);
    const CalibrationLp lp(instance, G);
    const DualChecker checker(lp);
    const DualPoint certificate = checker.static_point();
    EXPECT_NEAR(checker.max_violation(certificate), 0.0, 1e-9)
        << instance.to_string() << " G=" << G;
  }
}

TEST(DualCheck, WeakDualityAgainstLpOptimum) {
  Prng prng(1202);
  for (int trial = 0; trial < 8; ++trial) {
    const Instance instance = sparse_uniform_instance(
        4, 8, 2, 1, WeightModel::kUnit, 1, prng);
    const Cost G = prng.uniform_int(2, 8);
    const CalibrationLp lp(instance, G);
    const DualChecker checker(lp);
    const DualPoint certificate = checker.static_point();
    ASSERT_NEAR(checker.max_violation(certificate), 0.0, 1e-9);
    const double primal = lp.solve().value;
    EXPECT_LE(certificate.objective(), primal + 1e-6);
  }
}

TEST(DualCheck, CertificateLowerBoundsExactOpt) {
  // The full chain the paper's analysis relies on:
  // dual objective <= LP optimum <= OPT.
  Prng prng(1203);
  for (int trial = 0; trial < 8; ++trial) {
    const Instance instance = sparse_uniform_instance(
        5, 9, 3, 1, WeightModel::kUnit, 1, prng);
    const Cost G = prng.uniform_int(2, 12);
    const CalibrationLp lp(instance, G);
    const DualChecker checker(lp);
    const DualPoint certificate = checker.static_point();
    ASSERT_NEAR(checker.max_violation(certificate), 0.0, 1e-9);
    const Cost opt = offline_online_optimum(instance, G).best_cost;
    EXPECT_LE(certificate.objective(), static_cast<double>(opt) + 1e-6);
  }
}

TEST(DualCheck, InfeasiblePointIsFlagged) {
  const Instance instance({Job{0, 1}}, 2);
  const CalibrationLp lp(instance, 4);
  const DualChecker checker(lp);
  DualPoint bad = checker.zero_point();
  bad.z[0] = 100.0;  // z_j alone can exceed the f_{r_j,j} column bound
  EXPECT_GT(checker.max_violation(bad), 1.0);
  DualPoint negative = checker.zero_point();
  negative.v[0] = -1.0;
  EXPECT_GT(checker.max_violation(negative), 0.5);
}

TEST(DualCheck, StaticObjectiveTracksNG2T) {
  // With a generous horizon, the certificate's value approaches
  // n * G / (2T) (Theorem 3.10's Case 2 accounting).
  const Instance instance(
      {Job{0, 5}, Job{2, 5}, Job{4, 5}, Job{6, 5}}, 2);
  const Cost G = 8;  // G/2T = 2 <= w_min = 5, so no tapering bites
  const CalibrationLp lp(instance, G);
  const DualChecker checker(lp);
  const DualPoint certificate = checker.static_point();
  ASSERT_NEAR(checker.max_violation(certificate), 0.0, 1e-9);
  EXPECT_NEAR(certificate.objective(), 4.0 * 8.0 / 4.0, 1e-9);
}

}  // namespace
}  // namespace calib

#!/usr/bin/env bash
# The tier-1 verify line: configure, build everything, run the full test
# suite, then the static-analysis gates (calib_lint, Clang
# -Wthread-safety, clang-tidy) and the bench-baseline gate.
#
# Sanitizers (separate build trees so they never poison the regular one):
#   SANITIZE=1       ASan + UBSan            (build-asan)
#   SANITIZE=thread  ThreadSanitizer, with tsan.supp loaded (build-tsan)
#
# The Clang-only gates (-Wthread-safety build, clang-tidy) auto-detect
# their tools and skip with a notice when absent — local GCC-only boxes
# still get the build+test+calib_lint line, CI pins clang and runs all
# three. CLANGXX / CLANG_TIDY override the executables.
# Usage: scripts/check.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
EXTRA_FLAGS=()
case "${SANITIZE:-0}" in
  1)
    BUILD="${1:-build-asan}"
    EXTRA_FLAGS+=(-DCALIBSCHED_SANITIZE=address)
    ;;
  thread)
    BUILD="${1:-build-tsan}"
    EXTRA_FLAGS+=(-DCALIBSCHED_SANITIZE=thread)
    export TSAN_OPTIONS="suppressions=$PWD/tsan.supp ${TSAN_OPTIONS:-}"
    ;;
esac

cmake -B "$BUILD" -S . "${EXTRA_FLAGS[@]}"

# Build with the log captured: the harness, observability, and core
# model layers are where correctness lives, so even non-fatal compiler
# warnings in src/harness/, src/obs/, or src/core/ fail the check.
BUILD_LOG="$(mktemp)"
trap 'rm -f "$BUILD_LOG"' EXIT
cmake --build "$BUILD" -j 2>&1 | tee "$BUILD_LOG"
if grep "warning:" "$BUILD_LOG" | grep -qE "src/(harness|obs|core)/"; then
  echo "error: compiler warnings in src/harness|obs|core (see above)" >&2
  exit 1
fi

ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

# ---- Static-analysis gates (all must report zero findings) ----------

# Gate 1: project lint, driven by the build's compilation database.
echo "== gate: calib_lint =="
python3 tools/lint/calib_lint.py --compdb "$BUILD/compile_commands.json"

# Gate 2: Clang thread-safety analysis — the CALIB_GUARDED_BY /
# CALIB_REQUIRES annotations become checked lock contracts. A separate
# build tree: different compiler, and -Wthread-safety only exists there.
CLANGXX="${CLANGXX:-$(command -v clang++ || true)}"
if [ -n "$CLANGXX" ]; then
  echo "== gate: clang -Wthread-safety =="
  cmake -B build-tsa -S . \
    -DCMAKE_CXX_COMPILER="$CLANGXX" \
    -DCALIBSCHED_THREAD_SAFETY=ON -DCALIBSCHED_WERROR=ON
  cmake --build build-tsa -j
else
  echo "== gate: clang -Wthread-safety == SKIPPED (no clang++ on PATH;" \
       "runs in the lint CI job)"
fi

# Gate 3: bench baselines — regenerate the deterministic small-mode
# sidecars (CALIBSCHED_BENCH_SMALL=1, BM_* timing loops filtered out)
# and diff them against the committed bench/baselines/BENCH_* files,
# including the bench_driver depth-scaling floor (O(log n) decision
# rounds keep depth-1e5 throughput >= 5% of depth-1e2; the removed seed
# driver's O(n log n) rounds sat near 0.1%). Skipped in sanitized
# trees: the counters would match, but the deep-queue steps and the
# executor's forked workers are unusably slow under sanitizers.
if [ "${SANITIZE:-0}" = "0" ] && [ -x "$BUILD/bench/bench_driver" ]; then
  echo "== gate: bench baselines =="
  BENCH_OUT="$(mktemp -d)"
  trap 'rm -f "$BUILD_LOG"; rm -rf "$BENCH_OUT"' EXIT
  for b in alg1 alg2 dp_scaling driver executor; do
    CALIBSCHED_BENCH_SMALL=1 CALIBSCHED_METRICS="$BENCH_OUT" \
      "$BUILD/bench/bench_$b" --benchmark_filter=DISABLED_none \
      > "$BENCH_OUT/$b.out" 2>&1
  done
  for b in alg1 alg2 dp_scaling; do
    python3 scripts/bench_compare.py \
      --baseline "bench/baselines/BENCH_$b.json" \
      --current "$BENCH_OUT/bench_$b.metrics.json" --tolerance 0.05
  done
  python3 scripts/bench_compare.py \
    --baseline bench/baselines/BENCH_driver.json \
    --current "$BENCH_OUT/bench_driver.metrics.json" --tolerance 0.05 \
    --min driver.depth_scaling_speedup_x100=5
  python3 scripts/bench_compare.py \
    --baseline bench/baselines/BENCH_executor.json \
    --current "$BENCH_OUT/bench_executor.metrics.json" --tolerance 0.05
else
  echo "== gate: bench baselines == SKIPPED (sanitized build or benches" \
       "not built; runs in the bench-gate CI job)"
fi

# Gate 4: clang-tidy with the pinned .clang-tidy config, over every
# translation unit in the compilation database.
CLANG_TIDY="${CLANG_TIDY:-$(command -v clang-tidy || true)}"
RUN_CLANG_TIDY="${RUN_CLANG_TIDY:-$(command -v run-clang-tidy || true)}"
if [ -n "$CLANG_TIDY" ] && [ -n "$RUN_CLANG_TIDY" ]; then
  echo "== gate: clang-tidy =="
  "$RUN_CLANG_TIDY" -clang-tidy-binary "$CLANG_TIDY" \
    -p "$BUILD" -quiet "src/.*\.cpp$"
else
  echo "== gate: clang-tidy == SKIPPED (no clang-tidy/run-clang-tidy on" \
       "PATH; runs in the lint CI job)"
fi

echo "check.sh: all gates passed"

#include "core/schedule.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/check.hpp"

namespace calib {

Schedule::Schedule(Calendar calendar, int n) : calendar_(std::move(calendar)) {
  CALIB_CHECK(n >= 0);
  placements_.resize(static_cast<std::size_t>(n));
}

void Schedule::place(JobId j, MachineId m, Time start) {
  CALIB_CHECK(j >= 0 && j < size());
  CALIB_CHECK(m >= 0 && m < calendar_.machines());
  placements_[static_cast<std::size_t>(j)] = Placement{start, m};
}

void Schedule::unplace(JobId j) {
  CALIB_CHECK(j >= 0 && j < size());
  placements_[static_cast<std::size_t>(j)] = Placement{};
}

const Placement& Schedule::placement(JobId j) const {
  CALIB_CHECK(j >= 0 && j < size());
  return placements_[static_cast<std::size_t>(j)];
}

bool Schedule::is_placed(JobId j) const {
  return placement(j).start != kUnscheduled;
}

int Schedule::placed_count() const {
  return static_cast<int>(
      std::count_if(placements_.begin(), placements_.end(),
                    [](const Placement& p) { return p.start != kUnscheduled; }));
}

Cost Schedule::weighted_flow(const Instance& instance) const {
  CALIB_CHECK(instance.size() == size());
  Cost total = 0;
  for (JobId j = 0; j < size(); ++j) {
    const Placement& p = placement(j);
    CALIB_CHECK_MSG(p.start != kUnscheduled, "job " << j << " unplaced");
    total += instance.job(j).weight * (p.start + 1 - instance.job(j).release);
  }
  return total;
}

Cost Schedule::weighted_completion(const Instance& instance) const {
  CALIB_CHECK(instance.size() == size());
  Cost total = 0;
  for (JobId j = 0; j < size(); ++j) {
    const Placement& p = placement(j);
    CALIB_CHECK_MSG(p.start != kUnscheduled, "job " << j << " unplaced");
    total += instance.job(j).weight * (p.start + 1);
  }
  return total;
}

Cost Schedule::online_cost(const Instance& instance, Cost G) const {
  return G * calendar_.count() + weighted_flow(instance);
}

std::vector<JobId> Schedule::jobs_in_interval(MachineId m,
                                              Time interval_start) const {
  std::vector<JobId> jobs;
  for (JobId j = 0; j < size(); ++j) {
    const Placement& p = placement(j);
    if (p.start == kUnscheduled || p.machine != m) continue;
    if (p.start >= interval_start && p.start < interval_start + calendar_.T())
      jobs.push_back(j);
  }
  std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
    return placement(a).start < placement(b).start;
  });
  return jobs;
}

std::optional<std::string> Schedule::validate(const Instance& instance) const {
  if (instance.size() != size()) {
    return "schedule sized for " + std::to_string(size()) + " jobs, instance has " +
           std::to_string(instance.size());
  }
  if (calendar_.T() != instance.T()) {
    return "calendar T=" + std::to_string(calendar_.T()) +
           " != instance T=" + std::to_string(instance.T());
  }
  if (calendar_.machines() != instance.machines()) {
    return "calendar has " + std::to_string(calendar_.machines()) +
           " machines, instance wants " + std::to_string(instance.machines());
  }
  std::set<std::pair<MachineId, Time>> occupied;
  for (JobId j = 0; j < size(); ++j) {
    const Placement& p = placement(j);
    const std::string tag = "job " + std::to_string(j);
    if (p.start == kUnscheduled) return tag + " is unscheduled";
    if (p.machine < 0 || p.machine >= calendar_.machines())
      return tag + " on invalid machine " + std::to_string(p.machine);
    if (p.start < instance.job(j).release) {
      return tag + " starts at " + std::to_string(p.start) +
             " before its release " + std::to_string(instance.job(j).release);
    }
    if (!calendar_.covers(p.machine, p.start)) {
      return tag + " runs at uncalibrated step " + std::to_string(p.start) +
             " on machine " + std::to_string(p.machine);
    }
    if (!occupied.emplace(p.machine, p.start).second) {
      return tag + " collides at (machine " + std::to_string(p.machine) +
             ", t=" + std::to_string(p.start) + ")";
    }
  }
  return std::nullopt;
}

std::string Schedule::render(const Instance& instance) const {
  Time lo = 0;
  Time hi = calendar_.horizon();
  if (!instance.empty()) {
    lo = std::min(lo, instance.min_release());
    for (JobId j = 0; j < size(); ++j) {
      if (is_placed(j)) hi = std::max(hi, placement(j).start + 1);
    }
  }
  std::map<std::pair<MachineId, Time>, JobId> by_slot;
  for (JobId j = 0; j < size(); ++j) {
    if (is_placed(j)) {
      by_slot[{placement(j).machine, placement(j).start}] = j;
    }
  }
  std::ostringstream os;
  os << "t:       ";
  for (Time t = lo; t < hi; ++t) os << (t % 10) << ' ';
  os << '\n';
  for (MachineId m = 0; m < calendar_.machines(); ++m) {
    os << "machine" << m << ' ';
    for (Time t = lo; t < hi; ++t) {
      auto it = by_slot.find({m, t});
      if (it != by_slot.end()) {
        os << static_cast<char>('a' + (it->second % 26)) << ' ';
      } else if (calendar_.covers(m, t)) {
        os << ". ";
      } else {
        os << "  ";
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace calib

// RandomizedSkiRental (extension E11): distributional correctness of
// the threshold, schedule validity, worst-case safety (Theorem 3.3's
// count trigger is retained), and the expected-ratio advantage on the
// Lemma 3.1 family against an oblivious adversary.
#include <gtest/gtest.h>

#include <cmath>

#include "offline/budget_search.hpp"
#include "online/alg1_unweighted.hpp"
#include "online/baselines.hpp"
#include "online/driver.hpp"
#include "online/randomized.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(Randomized, ThresholdFollowsSkiRentalDensity) {
  // Density e^x/(e-1) on [0,1]: mean = 1/(e-1) ~ 0.582.
  Summary thresholds;
  for (std::uint64_t seed = 0; seed < 4000; ++seed) {
    RandomizedSkiRental policy(seed);
    const double theta = policy.threshold();
    EXPECT_GT(theta, 0.0);
    EXPECT_LE(theta, 1.0);
    thresholds.add(theta);
  }
  EXPECT_NEAR(thresholds.mean(), 1.0 / (std::exp(1.0) - 1.0), 0.02);
}

TEST(Randomized, ProducesValidSchedules) {
  Prng prng(1601);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Instance instance = sparse_uniform_instance(
        8, 24, 4, 1, WeightModel::kUnit, 1, prng);
    RandomizedSkiRental policy(seed);
    const Schedule schedule = run_online(instance, 9, policy);
    EXPECT_EQ(schedule.validate(instance), std::nullopt);
  }
}

TEST(Randomized, CountTriggerStillProtectsTrickles) {
  // Even with a tiny threshold the G/T count trigger fires, so a long
  // trickle cannot starve: the schedule must stay within 3x-ish of OPT
  // (we assert a loose 4x to avoid flaking on unlucky draws).
  const Instance instance = trickle_instance(20, 1);
  const Cost G = 20;
  const Cost opt = offline_online_optimum(instance, G).best_cost;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    RandomizedSkiRental policy(seed);
    const Cost cost = online_objective(instance, G, policy);
    EXPECT_LE(cost, 4 * opt) << "seed=" << seed;
  }
}

TEST(Randomized, BeatsDeterministicSkiRentalOnLoneJob) {
  // The textbook rent/buy subgame: a lone job with T < G, so the count
  // trigger stays silent and only the delay threshold matters. The deterministic
  // threshold (SkiRentalPolicy) pays ~2x OPT; the randomized threshold's
  // expected cost approaches (e/(e-1)) * OPT ~ 1.582.
  const Cost G = 100;
  const Time T = 60;  // T < G keeps the count trigger out of play
  const Instance lone({Job{0, 1}}, T);
  const Cost opt = offline_online_optimum(lone, G).best_cost;
  ASSERT_EQ(opt, G + 1);

  SkiRentalPolicy deterministic;
  const Cost det = online_objective(lone, G, deterministic);
  const double det_ratio =
      static_cast<double>(det) / static_cast<double>(opt);
  EXPECT_GT(det_ratio, 1.9);

  Summary ratios;
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    RandomizedSkiRental policy(seed * 977 + 3);
    ratios.add(static_cast<double>(online_objective(lone, G, policy)) /
               static_cast<double>(opt));
  }
  EXPECT_LT(ratios.mean(), 1.70);  // expected ~ e/(e-1) = 1.582
  EXPECT_GT(ratios.mean(), 1.45);
  EXPECT_LT(ratios.mean(), det_ratio);
}

TEST(Randomized, ResetRedrawsThreshold) {
  RandomizedSkiRental policy(12345);
  const double before = policy.threshold();
  double changed = before;
  for (int i = 0; i < 16 && changed == before; ++i) {
    policy.reset();
    changed = policy.threshold();
  }
  EXPECT_NE(changed, before);
}

}  // namespace
}  // namespace calib

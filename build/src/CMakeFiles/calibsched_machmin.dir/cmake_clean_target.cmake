file(REMOVE_RECURSE
  "libcalibsched_machmin.a"
)

#include "harness/executor/executor.hpp"

#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <deque>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/executor/protocol.hpp"
#include "harness/executor/recorder.hpp"
#include "harness/grid.hpp"
#include "harness/journal.hpp"
#include "harness/sandbox.hpp"
#include "obs/trace.hpp"
#include "util/sync.hpp"

namespace calib::harness {
namespace {

// Parent-side executor accounting. One static bundle, registered before
// the first fork (executor_metrics_warmup) so no child inherits the
// registry mutex locked. The sweep.cells_* handles resolve to the same
// underlying counters the in-process engine uses — the coordinator only
// touches them for rows it synthesizes itself (terminal degraded rows,
// skip stubs); worker-executed cells are counted in the workers' own
// registries and arrive via the merged heartbeat snapshots.
struct ExecutorMetrics {
  obs::Counter leases = obs::metrics().counter("executor.leases");
  obs::Counter results = obs::metrics().counter("executor.results");
  obs::Counter retries = obs::metrics().counter("executor.retries");
  obs::Counter workers_lost = obs::metrics().counter("executor.workers_lost");
  obs::Counter corrupt_frames =
      obs::metrics().counter("executor.corrupt_frames");
  obs::Counter heartbeat_frames =
      obs::metrics().counter("executor.heartbeat_frames");
  obs::Gauge workers = obs::metrics().gauge("executor.workers");
  obs::Counter cells_skipped = obs::metrics().counter("sweep.cells_skipped");
  obs::Counter cells_error = obs::metrics().counter("sweep.cells_error");
  obs::Counter cells_timeout = obs::metrics().counter("sweep.cells_timeout");
  obs::Counter cells_crashed = obs::metrics().counter("sweep.cells_crashed");
};

const ExecutorMetrics& exec_metrics() {
  static const ExecutorMetrics metrics;
  return metrics;
}

// The coordinator writes into pipes whose reader may have just died;
// without this, the resulting SIGPIPE would kill the whole sweep
// instead of surfacing as an EPIPE on one worker. Set once, process-
// wide, before any worker exists (children inherit the disposition, so
// their response-pipe writes after a coordinator crash are equally
// harmless — PDEATHSIG reaps them moments later anyway).
void ignore_sigpipe() {
  static const bool installed = [] {
    (void)std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)installed;
}

// SIGINT/SIGTERM during a sharded run request a graceful stop (lease
// freeze + skip-stub journaling + clean fleet shutdown) instead of
// killing the coordinator mid-journal-write. The handler only sets the
// flag; the decision loop notices it within one poll tick.
std::atomic<bool> g_sweep_interrupt{false};

void on_sweep_signal(int /*sig*/) {
  g_sweep_interrupt.store(true, std::memory_order_release);
}

// ---- Worker process -------------------------------------------------

// All frames share one pipe, and the heartbeat thread writes
// concurrently with the lease loop: a mutex per worker keeps frames
// from interleaving mid-header.
bool locked_write(Mutex& mutex, int fd, FrameType type,
                  const std::string& payload) {
  const MutexLock lock(mutex);
  return write_frame(fd, type, payload);
}

[[noreturn]] void worker_main(const SweepEngine& engine,
                              const SweepOptions& options, int worker_index,
                              int request_fd, int response_fd) {
#ifdef PR_SET_PDEATHSIG
  // Die with the coordinator: no worker outlives the sweep.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  // The fork copied the coordinator's counter values; zero them so this
  // worker's snapshots report only its own work — otherwise the merge
  // would re-add the parent's pre-fork counts once per worker. Same for
  // the trace buffers: drop inherited events so this worker ships only
  // spans it recorded itself.
  obs::metrics().reset();
  obs::tracer().clear();
  obs::tracer().set_thread_name("main");

  Mutex pipe_mutex;
  std::atomic<bool> stop{false};

  // Heartbeat thread: liveness plus the cumulative metrics snapshot,
  // plus — while span recording is on — the drained trace buffer.
  // Sleeps in 10 ms slices so shutdown never waits a full interval.
  std::thread heartbeat([&pipe_mutex, &stop, &options, worker_index,
                         response_fd] {
    obs::tracer().set_thread_name("heartbeat");
    const double interval_ms = std::max(options.heartbeat_interval_ms, 1.0);
    double slept_ms = interval_ms;  // emit one immediately at startup
    while (!stop.load(std::memory_order_acquire)) {
      if (slept_ms >= interval_ms) {
        slept_ms = 0.0;
        const std::string payload =
            encode_metrics_payload(obs::metrics().snapshot());
        if (!locked_write(pipe_mutex, response_fd, FrameType::kHeartbeat,
                          payload)) {
          return;  // coordinator gone; PDEATHSIG will end the process
        }
        if (obs::tracer().enabled()) {
          // Shipped even when the chunk is empty: the first kTrace
          // frame doubles as the clock handshake, and sending it on the
          // very first tick keeps the offset estimate tight.
          const std::string trace = encode_trace_payload(
              worker_index, ::getpid(), obs::tracer().drain());
          if (!locked_write(pipe_mutex, response_fd, FrameType::kTrace,
                            trace)) {
            return;
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      slept_ms += 10.0;
    }
  });

  // This worker's slice of the fault plan, armed by its own
  // completed-cell count; each fault fires at most once.
  std::vector<WorkerFault> faults;
  for (const WorkerFault& fault : options.worker_faults.faults) {
    if (fault.worker == worker_index) faults.push_back(fault);
  }
  std::vector<bool> fired(faults.size(), false);

  FlowCurveCache cache;  // per-worker cross-cell DP sharing
  FrameReader reader;
  std::size_t completed = 0;
  bool pipe_ok = true;

  const auto read_frame = [&reader, request_fd](Frame& frame) {
    char buf[4096];
    while (!reader.next(frame)) {
      const ssize_t n = read_some(request_fd, buf, sizeof buf);
      if (n <= 0) return false;  // coordinator gone
      reader.feed(buf, static_cast<std::size_t>(n));
      if (reader.corrupted()) return false;
    }
    return true;
  };

  Frame frame;
  while (pipe_ok && read_frame(frame)) {
    if (frame.type == FrameType::kShutdown) break;
    if (frame.type != FrameType::kLease) break;  // protocol breach: die
    std::size_t index = 0;
    try {
      index = std::stoull(frame.payload);
    } catch (const std::exception&) {
      break;  // malformed lease; die and let the coordinator recover
    }

    bool corrupt_result = false;
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (fired[f] || completed < faults[f].after_cells) continue;
      fired[f] = true;
      switch (faults[f].kind) {
        case WorkerFault::Kind::kKill:
          // At the start of the lease, so an in-flight cell always dies.
          (void)::kill(::getpid(), SIGKILL);
          break;
        case WorkerFault::Kind::kStall:
          // SIGSTOP freezes every thread, heartbeats included — exactly
          // the silent-wedge failure the heartbeat timeout exists for.
          // SIGKILL still works on a stopped process, so the
          // coordinator can reap us.
          (void)::kill(::getpid(), SIGSTOP);
          break;
        case WorkerFault::Kind::kCorruptFrame:
          corrupt_result = true;
          break;
      }
    }

    const SweepRow row = engine.execute_cell(index, cache, options);
    ++completed;
    if (corrupt_result) {
      // A haywire worker: a garbage blob where a frame should start.
      const MutexLock lock(pipe_mutex);
      const char garbage[12] = {'\x7f', 'G', 'A', 'R',    'B',    'A',
                                'G',    'E', '!', '\x01', '\x02', '\x03'};
      (void)write_all(response_fd, garbage, sizeof garbage);
      continue;  // the coordinator will SIGKILL us
    }
    const std::string payload = row_to_json(
        row, engine.grid().extra_metric_name, /*include_timing=*/true);
    pipe_ok =
        locked_write(pipe_mutex, response_fd, FrameType::kResult, payload);
  }

  stop.store(true, std::memory_order_release);
  heartbeat.join();
  // One final cumulative snapshot: interval heartbeats are stale by up
  // to a period; this one is exact and is what the coordinator merges.
  (void)locked_write(pipe_mutex, response_fd, FrameType::kHeartbeat,
                     encode_metrics_payload(obs::metrics().snapshot()));
  if (obs::tracer().enabled()) {
    // ... and the last trace chunk, so spans recorded since the final
    // heartbeat tick still make the merged trace.
    (void)locked_write(pipe_mutex, response_fd, FrameType::kTrace,
                       encode_trace_payload(worker_index, ::getpid(),
                                            obs::tracer().drain()));
  }
  // _exit, not exit: a forked child must not flush the coordinator's
  // inherited stdio buffers or run its static destructors.
  ::_exit(0);
}

// ---- Coordinator ----------------------------------------------------

struct WorkerState {
  pid_t pid = -1;
  int index = -1;        // coordinator-assigned worker number
  int request_fd = -1;   // coordinator -> worker (leases, shutdown)
  int response_fd = -1;  // worker -> coordinator (results, heartbeats)
  FrameReader reader;
  bool alive = false;
  bool lost = false;        // died before clean shutdown
  std::int64_t lease = -1;  // in-flight cell index (-1 = idle)
  int lease_attempt = 1;    // 1-based attempt of the in-flight lease
  std::uint64_t lease_start_ns = 0;
  std::uint64_t last_seen_ns = 0;  // any frame counts as liveness
  std::string last_metrics;       // latest heartbeat payload (cumulative)
  // Trace aggregation: offset estimated at the kTrace handshake (the
  // worker's first chunk), then applied to every later chunk's
  // timestamps as they accumulate here.
  bool have_offset = false;
  std::int64_t clock_offset_ns = 0;  // coordinator clock minus worker clock
  obs::ProcessTrace trace;
};

// Why a worker was declared dead. Picks the terminal row's status and
// its deterministic error text — no pids, no durations, so the same
// fault plan yields byte-identical rows on every run.
enum class DeathCause { kPipe, kHeartbeat, kCorruptFrame, kWatchdog };

std::uint64_t ms_to_ns(double ms) {
  return static_cast<std::uint64_t>(ms * 1e6);
}

}  // namespace

void executor_metrics_warmup() { (void)exec_metrics(); }

void request_sweep_interrupt() {
  g_sweep_interrupt.store(true, std::memory_order_release);
}

ShardedRunStats run_sharded_sweep(const SweepEngine& engine,
                                  const SweepOptions& options,
                                  const std::vector<char>& done,
                                  std::vector<SweepRow>& rows,
                                  SweepJournal* journal) {
  ignore_sigpipe();
  const SweepGrid& grid = engine.grid();
  const ExecutorMetrics& metrics = exec_metrics();
  const auto worker_count = static_cast<std::size_t>(options.workers);
  metrics.workers.set(options.workers);

  // Graceful-interrupt plumbing: a stale flag from a previous run (or a
  // pre-run test hook call) must not abort this one before it starts.
  g_sweep_interrupt.store(false, std::memory_order_release);
  using SignalHandler = void (*)(int);
  const SignalHandler old_int = std::signal(SIGINT, on_sweep_signal);
  const SignalHandler old_term = std::signal(SIGTERM, on_sweep_signal);
  struct RestoreHandlers {
    SignalHandler old_int;
    SignalHandler old_term;
    ~RestoreHandlers() {
      (void)std::signal(SIGINT, old_int);
      (void)std::signal(SIGTERM, old_term);
    }
  } restore_handlers{old_int, old_term};

  ShardedRunStats stats;

  // Run clock for the flight recorder, the progress meter, and the
  // metrics timeline: milliseconds since the coordinator entered here.
  const std::uint64_t run_start_ns = obs::now_ns();
  const auto run_ms = [run_start_ns] {
    return static_cast<double>(obs::now_ns() - run_start_ns) * 1e-6;
  };

  std::ofstream events_stream;
  if (!options.events_path.empty()) {
    events_stream.open(options.events_path, std::ios::trunc);
    if (!events_stream) {
      throw std::runtime_error("executor: cannot open events log: " +
                               options.events_path);
    }
  }
  FlightRecorder flight(events_stream.is_open() ? &events_stream : nullptr);

  // ---- Spawn the fleet. The coordinator-side fds accumulated so far
  // are closed inside each new child, so every pipe end is held by
  // exactly two processes and EOF detection stays crisp.
  std::vector<WorkerState> workers(worker_count);
  std::vector<int> parent_fds;
  const auto kill_fleet = [&workers] {
    for (WorkerState& w : workers) {
      if (!w.alive) continue;
      (void)::kill(w.pid, SIGKILL);
      int status = 0;
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
      ::close(w.request_fd);
      ::close(w.response_fd);
      w.alive = false;
    }
  };
  for (std::size_t w = 0; w < worker_count; ++w) {
    int request_pipe[2];
    int response_pipe[2];
    if (::pipe(request_pipe) != 0) {
      kill_fleet();
      throw std::runtime_error("executor: pipe() failed");
    }
    if (::pipe(response_pipe) != 0) {
      ::close(request_pipe[0]);
      ::close(request_pipe[1]);
      kill_fleet();
      throw std::runtime_error("executor: pipe() failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(request_pipe[0]);
      ::close(request_pipe[1]);
      ::close(response_pipe[0]);
      ::close(response_pipe[1]);
      kill_fleet();
      throw std::runtime_error("executor: fork() failed");
    }
    if (pid == 0) {
      ::close(request_pipe[1]);
      ::close(response_pipe[0]);
      for (const int fd : parent_fds) ::close(fd);
      worker_main(engine, options, static_cast<int>(w), request_pipe[0],
                  response_pipe[1]);  // noreturn
    }
    ::close(request_pipe[0]);
    ::close(response_pipe[1]);
    WorkerState& state = workers[w];
    state.pid = pid;
    state.index = static_cast<int>(w);
    state.request_fd = request_pipe[1];
    state.response_fd = response_pipe[0];
    state.alive = true;
    state.last_seen_ns = obs::now_ns();
    parent_fds.push_back(state.request_fd);
    parent_fds.push_back(state.response_fd);
    flight.event(run_ms(), "worker_spawn",
                 {{"worker", std::to_string(w)},
                  {"pid", std::to_string(pid)}});
  }

  // ---- Lease bookkeeping.
  const std::size_t cells = rows.size();
  std::deque<std::size_t> fresh;  // first-attempt leases, cell order
  for (std::size_t i = 0; i < cells; ++i) {
    if (i < done.size() && done[i] != 0) continue;
    fresh.push_back(i);
  }
  struct Delayed {
    std::uint64_t ready_ns;
    std::size_t cell;
  };
  std::vector<Delayed> delayed;           // retries waiting out backoff
  std::deque<std::size_t> ready_retries;  // retries cleared to dispatch
  std::vector<int> attempts(cells, 0);    // failed dispatches per cell
  std::size_t outstanding = fresh.size();
  std::size_t tickets = 0;  // max_cells accounting (first attempts only)

  const std::size_t total_to_run = outstanding;
  std::size_t failed_cells = 0;  // terminal non-ok rows, for progress
  ProgressMeter progress(
      options.progress ? &std::cerr : nullptr, total_to_run,
      options.progress_interval_ms,
      std::max(options.heartbeat_interval_ms * 3.0, 250.0));

  // The lease watchdog is the third detection layer, past both the
  // in-cell cooperative budget (1x) and the sandbox's per-cell SIGKILL
  // (1.5x): it only fires when the worker process itself is wedged.
  const double watchdog_ms =
      options.cell_budget_ms > 0.0 ? options.cell_budget_ms * 3.0 : 0.0;
  const std::uint64_t heartbeat_timeout_ns =
      ms_to_ns(options.heartbeat_timeout_ms);

  const auto stub_row = [&grid](std::size_t cell) {
    const CellCoords coords = cell_coords(grid, cell);
    SweepRow row;
    row.cell = coords.index;
    row.workload_index = coords.workload;
    row.workload = grid.workloads[coords.workload].label();
    row.solver = grid.solvers[coords.solver];
    row.G = grid.G_values[coords.g];
    row.seed = coords.seed;
    row.result.solver = row.solver;
    return row;
  };

  const auto status_name = [](RunStatus status) {
    switch (status) {
      case RunStatus::kCrashed: return "crashed";
      case RunStatus::kTimeout: return "timeout";
      case RunStatus::kSkipped: return "skipped";
      default: return "error";
    }
  };

  const auto finalize_terminal = [&](std::size_t cell, RunStatus status,
                                     const std::string& error) {
    SweepRow row = stub_row(cell);
    row.status = status;
    row.error = error;
    rows[cell] = std::move(row);
    if (journal != nullptr) {
      journal->append(row_to_json(rows[cell], grid.extra_metric_name,
                                  /*include_timing=*/true));
    }
    switch (status) {
      case RunStatus::kCrashed: metrics.cells_crashed.add(); break;
      case RunStatus::kTimeout: metrics.cells_timeout.add(); break;
      case RunStatus::kSkipped: metrics.cells_skipped.add(); break;
      default: metrics.cells_error.add(); break;
    }
    flight.event(run_ms(), "cell_terminal",
                 {{"cell", std::to_string(cell)},
                  {"status", status_name(status)},
                  {"error", error}});
    ++failed_cells;
    --outstanding;
  };

  // Pop the next cell to lease: aged retries first, then fresh cells.
  // Fresh cells pay the max_cells ticket; once tickets run out they
  // become skip stubs (not journaled — a resume re-runs them), exactly
  // like the thread-pool path.
  const auto next_cell = [&](std::size_t& cell, bool& is_retry) {
    if (!ready_retries.empty()) {
      cell = ready_retries.front();
      ready_retries.pop_front();
      is_retry = true;
      return true;
    }
    while (!fresh.empty()) {
      cell = fresh.front();
      fresh.pop_front();
      if (tickets++ >= options.max_cells) {
        SweepRow row = stub_row(cell);
        row.status = RunStatus::kSkipped;
        rows[cell] = std::move(row);
        metrics.cells_skipped.add();
        --outstanding;
        continue;
      }
      is_retry = false;
      return true;
    }
    return false;
  };

  const auto reap = [](WorkerState& w) {
    int status = 0;
    while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
    }
    ::close(w.request_fd);
    ::close(w.response_fd);
    w.request_fd = -1;
    w.response_fd = -1;
    return status;
  };

  const auto cause_name = [](DeathCause cause) {
    switch (cause) {
      case DeathCause::kPipe: return "pipe";
      case DeathCause::kHeartbeat: return "heartbeat";
      case DeathCause::kCorruptFrame: return "corrupt_frame";
      case DeathCause::kWatchdog: return "watchdog";
    }
    return "unknown";
  };

  // The coordinator's side of the trace: one manually-recorded span per
  // resolved lease, carrying the (cell, worker, attempt) key the merged
  // writer uses to draw the flow arrow to the worker's cell span.
  const auto record_lease_span = [](const WorkerState& w,
                                    const char* outcome) {
    if (!obs::tracer().enabled() || w.lease < 0) return;
    obs::TraceEvent event;
    event.name = "lease";
    event.cat = "executor";
    event.ts_ns = w.lease_start_ns;
    event.dur_ns = obs::now_ns() - w.lease_start_ns;
    event.args.emplace_back("cell", std::to_string(w.lease));
    event.args.emplace_back("worker", std::to_string(w.index));
    event.args.emplace_back("attempt", std::to_string(w.lease_attempt));
    event.args.emplace_back("outcome", outcome);
    obs::tracer().record(std::move(event));
  };

  // A worker is gone: reap it, then either re-queue its in-flight lease
  // with backoff or — once max_cell_attempts is spent — write the
  // cell's terminal row.
  const auto handle_death = [&](WorkerState& w, DeathCause cause) {
    if (!w.alive) return;
    w.alive = false;
    w.lost = true;
    if (cause != DeathCause::kPipe) (void)::kill(w.pid, SIGKILL);
    const int status = reap(w);
    ++stats.workers_lost;
    metrics.workers_lost.add();
    flight.event(run_ms(), "worker_death",
                 {{"worker", std::to_string(w.index)},
                  {"pid", std::to_string(w.pid)},
                  {"cause", cause_name(cause)}});
    if (w.lease < 0) return;
    record_lease_span(w, "lost");
    const auto cell = static_cast<std::size_t>(w.lease);
    w.lease = -1;
    const int attempt = ++attempts[cell];
    if (attempt < options.max_cell_attempts) {
      double backoff = options.retry_backoff_ms;
      for (int i = 1; i < attempt; ++i) backoff *= 2.0;
      backoff = std::min(backoff, options.retry_backoff_cap_ms);
      delayed.push_back(Delayed{obs::now_ns() + ms_to_ns(backoff), cell});
      ++stats.retries;
      metrics.retries.add();
      flight.event(run_ms(), "retry",
                   {{"cell", std::to_string(cell)},
                    {"attempt", std::to_string(attempt)},
                    {"backoff_ms", std::to_string(backoff)}});
      return;
    }
    const std::string suffix =
        " (cell " + std::to_string(cell) + ", attempt " +
        std::to_string(attempt) + " of " +
        std::to_string(options.max_cell_attempts) + ")";
    switch (cause) {
      case DeathCause::kPipe:
        if (WIFSIGNALED(status)) {
          finalize_terminal(cell, RunStatus::kCrashed,
                            "executor: worker killed by " +
                                signal_name(WTERMSIG(status)) + suffix);
        } else {
          finalize_terminal(
              cell, RunStatus::kError,
              "executor: worker exited with code " +
                  std::to_string(WIFEXITED(status) ? WEXITSTATUS(status)
                                                   : -1) +
                  suffix);
        }
        break;
      case DeathCause::kHeartbeat:
        finalize_terminal(cell, RunStatus::kCrashed,
                          "executor: worker heartbeat timeout" + suffix);
        break;
      case DeathCause::kCorruptFrame:
        finalize_terminal(cell, RunStatus::kError,
                          "executor: corrupt result frame" + suffix);
        break;
      case DeathCause::kWatchdog:
        break;  // the watchdog resolved the lease before killing
    }
  };

  // Lease watchdog fire: the cell is a terminal timeout row (retrying a
  // wedge would wedge again — same vocabulary as the sandbox watchdog),
  // and the worker holding it is killed.
  const auto handle_watchdog = [&](WorkerState& w) {
    record_lease_span(w, "watchdog");
    const auto cell = static_cast<std::size_t>(w.lease);
    w.lease = -1;  // resolved here; the death path must not re-queue it
    finalize_terminal(cell, RunStatus::kTimeout,
                      "cell budget exceeded (executor watchdog SIGKILL)");
    handle_death(w, DeathCause::kWatchdog);
  };

  // A result frame must match the outstanding lease and restore
  // cleanly; anything else is a protocol breach and the caller treats
  // the worker as corrupt.
  const auto handle_result = [&](WorkerState& w, const std::string& payload) {
    if (w.lease < 0) return false;
    const auto cell = static_cast<std::size_t>(w.lease);
    SweepRow row;
    try {
      const auto entry = parse_flat_json(payload);
      const auto it = entry.find("cell");
      if (it == entry.end() || std::stoull(it->second) != cell) return false;
      if (!restore_row_from_entry(entry, cell_coords(grid, cell), grid,
                                  row)) {
        return false;
      }
    } catch (const std::exception&) {
      return false;
    }
    record_lease_span(w, "ok");
    w.lease = -1;
    rows[cell] = std::move(row);
    // The payload IS the row's journal serialization — appending it
    // verbatim keeps the journal byte-identical to an in-process run.
    if (journal != nullptr) journal->append(payload);
    metrics.results.add();
    --outstanding;
    flight.event(run_ms(), "result",
                 {{"worker", std::to_string(w.index)},
                  {"cell", std::to_string(cell)}});
    return true;
  };

  // A kTrace frame: decode, estimate the clock offset on the worker's
  // first chunk (the handshake), rebase timestamps, and accumulate. A
  // payload that does not decode is a protocol breach like any other
  // corrupt frame — the sender gets killed.
  const auto handle_trace = [&](WorkerState& w, const std::string& payload) {
    obs::ProcessTrace chunk;
    try {
      chunk = decode_trace_payload(payload);
    } catch (const std::exception&) {
      return false;
    }
    if (!w.have_offset) {
      // Both processes inherit the same now_ns epoch across fork, so
      // receipt time minus the sender's encode-time stamp is dominated
      // by pipe latency — plenty to line the tracks up.
      w.clock_offset_ns = static_cast<std::int64_t>(obs::now_ns()) -
                          static_cast<std::int64_t>(chunk.now_ns);
      w.have_offset = true;
      w.trace.worker = w.index;
      w.trace.pid = chunk.pid;
    }
    w.trace.dropped += chunk.dropped;
    for (obs::TraceEvent& event : chunk.events) {
      const std::int64_t ts =
          static_cast<std::int64_t>(event.ts_ns) + w.clock_offset_ns;
      event.ts_ns = ts > 0 ? static_cast<std::uint64_t>(ts) : 0;
      w.trace.events.push_back(std::move(event));
    }
    for (auto& [tid, name] : chunk.thread_names) {
      bool known = false;
      for (const auto& [seen_tid, seen_name] : w.trace.thread_names) {
        (void)seen_name;
        if (seen_tid == tid) {
          known = true;
          break;
        }
      }
      if (!known) w.trace.thread_names.emplace_back(tid, name);
    }
    return true;
  };

  // A heartbeat carries the worker's cumulative snapshot: keep the raw
  // payload (the final one is what gets merged) and fold it into the
  // timeline as a delta sample. A payload that does not decode only
  // costs the sample.
  const auto note_heartbeat = [&](WorkerState& w, std::string payload) {
    metrics.heartbeat_frames.add();
    try {
      stats.timeline.record("worker-" + std::to_string(w.index), run_ms(),
                            decode_metrics_payload(payload));
    } catch (const std::exception&) {
    }
    w.last_metrics = std::move(payload);
  };

  // ---- Decision loop: dispatch, poll, drain, detect.
  while (outstanding > 0) {
    // Graceful interrupt: freeze leasing, journal every unresolved cell
    // as a skipped row (in-flight leases included — their results are
    // ignored during shutdown drain), then fall through to the clean
    // fleet shutdown below. A resume re-runs exactly the skipped cells.
    if (g_sweep_interrupt.load(std::memory_order_acquire)) {
      stats.interrupted = true;
      flight.event(run_ms(), "shutdown",
                   {{"reason", "interrupted"},
                    {"outstanding", std::to_string(outstanding)}});
      for (const Delayed& d : delayed) ready_retries.push_back(d.cell);
      delayed.clear();
      for (WorkerState& w : workers) {
        if (!w.alive || w.lease < 0) continue;
        record_lease_span(w, "interrupted");
        const auto cell = static_cast<std::size_t>(w.lease);
        w.lease = -1;
        finalize_terminal(cell, RunStatus::kSkipped,
                          "interrupted: lease abandoned at shutdown");
      }
      std::size_t cell = 0;
      bool is_retry = false;
      while (next_cell(cell, is_retry)) {
        finalize_terminal(cell, RunStatus::kSkipped,
                          "interrupted before dispatch");
      }
      break;
    }

    const std::uint64_t now = obs::now_ns();

    // Promote retries whose backoff has elapsed.
    for (std::size_t i = 0; i < delayed.size();) {
      if (delayed[i].ready_ns <= now) {
        ready_retries.push_back(delayed[i].cell);
        delayed[i] = delayed.back();
        delayed.pop_back();
      } else {
        ++i;
      }
    }

    // Elastic dispatch: any idle live worker takes the next lease, so
    // the stream re-balances itself onto survivors.
    for (WorkerState& w : workers) {
      if (!w.alive || w.lease >= 0) continue;
      std::size_t cell = 0;
      bool is_retry = false;
      if (!next_cell(cell, is_retry)) break;
      w.lease = static_cast<std::int64_t>(cell);
      w.lease_attempt = attempts[cell] + 1;
      w.lease_start_ns = obs::now_ns();
      metrics.leases.add();
      flight.event(run_ms(), "lease",
                   {{"worker", std::to_string(w.index)},
                    {"cell", std::to_string(cell)},
                    {"attempt", std::to_string(w.lease_attempt)}});
      if (!write_frame(w.request_fd, FrameType::kLease,
                       std::to_string(cell))) {
        handle_death(w, DeathCause::kPipe);  // re-queues this lease
      }
    }
    if (outstanding == 0) break;

    const bool any_alive =
        std::any_of(workers.begin(), workers.end(),
                    [](const WorkerState& w) { return w.alive; });
    if (!any_alive) {
      // Total fleet loss: degrade, don't deadlock — every unfinished
      // cell becomes a journaled error row a later retry-failed resume
      // can re-run.
      for (const Delayed& d : delayed) ready_retries.push_back(d.cell);
      delayed.clear();
      std::size_t cell = 0;
      bool is_retry = false;
      while (next_cell(cell, is_retry)) {
        finalize_terminal(cell, RunStatus::kError,
                          "executor: no workers remaining (cell " +
                              std::to_string(cell) + ")");
      }
      break;
    }

    // Sleep until the earliest of: a heartbeat deadline, a lease
    // watchdog, a retry becoming ready — capped at a 100 ms tick.
    std::uint64_t deadline = now + 100'000'000ULL;
    for (const WorkerState& w : workers) {
      if (!w.alive) continue;
      deadline = std::min(deadline, w.last_seen_ns + heartbeat_timeout_ns);
      if (w.lease >= 0 && watchdog_ms > 0.0) {
        deadline =
            std::min(deadline, w.lease_start_ns + ms_to_ns(watchdog_ms));
      }
    }
    for (const Delayed& d : delayed) {
      deadline = std::min(deadline, d.ready_ns);
    }
    const std::uint64_t pre_poll = obs::now_ns();
    const int timeout_ms =
        deadline > pre_poll
            ? static_cast<int>((deadline - pre_poll) / 1'000'000ULL) + 1
            : 0;

    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_worker;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (!workers[i].alive) continue;
      fds.push_back(pollfd{workers[i].response_fd, POLLIN, 0});
      fd_worker.push_back(i);
    }
    const int npoll = poll_fds(fds.data(), fds.size(), timeout_ms);
    if (npoll < 0) {
      kill_fleet();
      throw std::runtime_error("executor: poll() failed");
    }

    for (std::size_t k = 0; npoll > 0 && k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      WorkerState& w = workers[fd_worker[k]];
      if (!w.alive) continue;
      char buf[65536];
      const ssize_t n = read_some(w.response_fd, buf, sizeof buf);
      if (n <= 0) {  // EOF or hard error: the worker died
        handle_death(w, DeathCause::kPipe);
        continue;
      }
      w.reader.feed(buf, static_cast<std::size_t>(n));
      if (w.reader.corrupted()) {
        metrics.corrupt_frames.add();
        handle_death(w, DeathCause::kCorruptFrame);
        continue;
      }
      w.last_seen_ns = obs::now_ns();
      Frame frame;
      bool breach = false;
      while (!breach && w.reader.next(frame)) {
        switch (frame.type) {
          case FrameType::kResult:
            breach = !handle_result(w, frame.payload);
            break;
          case FrameType::kHeartbeat:
            note_heartbeat(w, std::move(frame.payload));
            break;
          case FrameType::kTrace:
            breach = !handle_trace(w, frame.payload);
            break;
          default:
            breach = true;  // workers never send leases or shutdowns
        }
      }
      if (breach) {
        metrics.corrupt_frames.add();
        handle_death(w, DeathCause::kCorruptFrame);
      }
    }

    // Failure detection poll cannot see: frozen workers (heartbeats
    // stopped but the pipe is still open) and wedged leases.
    const std::uint64_t check = obs::now_ns();
    for (WorkerState& w : workers) {
      if (!w.alive) continue;
      if (check - w.last_seen_ns > heartbeat_timeout_ns) {
        handle_death(w, DeathCause::kHeartbeat);
        continue;
      }
      if (w.lease >= 0 && watchdog_ms > 0.0 &&
          check - w.lease_start_ns > ms_to_ns(watchdog_ms)) {
        handle_watchdog(w);
      }
    }

    if (progress.due(run_ms())) {
      std::vector<WorkerHealth> health;
      const std::uint64_t pnow = obs::now_ns();
      for (const WorkerState& w : workers) {
        health.push_back(WorkerHealth{
            w.index, w.alive, w.lost,
            w.alive ? static_cast<double>(pnow - w.last_seen_ns) * 1e-6 : 0.0,
            w.lease});
      }
      progress.render(run_ms(), total_to_run - outstanding, failed_cells,
                      stats.retries, health);
    }
  }

  // ---- Clean shutdown: ask survivors to exit, drain their final
  // heartbeats (the authoritative metrics snapshots), reap on EOF. A
  // worker that will not exit within the grace window is SIGKILLed —
  // shutdown is watchdog-bounded like everything else.
  for (WorkerState& w : workers) {
    if (!w.alive) continue;
    flight.event(run_ms(), "shutdown", {{"worker", std::to_string(w.index)}});
    if (!write_frame(w.request_fd, FrameType::kShutdown, "")) {
      handle_death(w, DeathCause::kPipe);  // no lease in flight by now
    }
  }
  const std::uint64_t grace_deadline = obs::now_ns() + 5'000'000'000ULL;
  for (;;) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_worker;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (!workers[i].alive) continue;
      fds.push_back(pollfd{workers[i].response_fd, POLLIN, 0});
      fd_worker.push_back(i);
    }
    if (fds.empty()) break;
    const std::uint64_t now = obs::now_ns();
    if (now >= grace_deadline) {
      for (const std::size_t i : fd_worker) {
        handle_death(workers[i], DeathCause::kHeartbeat);
      }
      break;
    }
    const int timeout_ms =
        static_cast<int>((grace_deadline - now) / 1'000'000ULL) + 1;
    const int npoll = poll_fds(fds.data(), fds.size(), timeout_ms);
    if (npoll < 0) {
      kill_fleet();
      throw std::runtime_error("executor: poll() failed");
    }
    for (std::size_t k = 0; npoll > 0 && k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      WorkerState& w = workers[fd_worker[k]];
      char buf[65536];
      const ssize_t n = read_some(w.response_fd, buf, sizeof buf);
      if (n > 0) {
        w.reader.feed(buf, static_cast<std::size_t>(n));
        Frame frame;
        while (!w.reader.corrupted() && w.reader.next(frame)) {
          if (frame.type == FrameType::kHeartbeat) {
            note_heartbeat(w, std::move(frame.payload));
          } else if (frame.type == FrameType::kTrace) {
            // The worker's final chunk lands here; a bad one is just
            // dropped — the worker is exiting anyway.
            (void)handle_trace(w, frame.payload);
          }
        }
        continue;
      }
      // EOF after shutdown: a clean exit, not a lost worker.
      w.alive = false;
      (void)reap(w);
    }
  }

  // ---- Merge the workers' final snapshots: their counters died with
  // their processes; this is how cross-process instrumentation reaches
  // the caller. A torn sample from a dying worker is just dropped.
  for (const WorkerState& w : workers) {
    if (w.last_metrics.empty()) continue;
    try {
      stats.worker_metrics.merge(decode_metrics_payload(w.last_metrics));
    } catch (const std::exception&) {
    }
  }

  // Hand over whatever trace each worker shipped before it exited (or
  // died — a lost worker's chunks up to its last heartbeat survive).
  for (WorkerState& w : workers) {
    if (!w.have_offset) continue;
    stats.worker_traces.push_back(std::move(w.trace));
  }

  if (progress.enabled()) {
    std::vector<WorkerHealth> health;
    for (const WorkerState& w : workers) {
      health.push_back(WorkerHealth{w.index, w.alive, w.lost, 0.0, w.lease});
    }
    progress.render(run_ms(), total_to_run - outstanding, failed_cells,
                    stats.retries, health);
  }
  flight.event(run_ms(), "run_complete",
               {{"cells", std::to_string(total_to_run)},
                {"failed", std::to_string(failed_cells)},
                {"retries", std::to_string(stats.retries)},
                {"workers_lost", std::to_string(stats.workers_lost)}});
  return stats;
}

}  // namespace calib::harness

#include "offline/budget_search.hpp"

#include "offline/dp.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace calib {
namespace {

OfflineDp make_dp(const Instance& instance) {
  CALIB_CHECK_MSG(!instance.empty(),
                  "budget search needs at least one job");
  return OfflineDp(instance.releases_normalized() ? instance
                                                  : instance.normalized());
}

}  // namespace

BudgetSearchResult offline_online_optimum(const Instance& instance, Cost G) {
  CALIB_CHECK(G >= 1);
  OfflineDp dp = make_dp(instance);
  const int n = dp.instance().size();
  BudgetSearchResult result;
  result.flow_curve = dp.flow_curve(n);
  Cost best = -1;
  for (int k = 1; k <= n; ++k) {
    const Cost flow = result.flow_curve[static_cast<std::size_t>(k)];
    if (flow == kInfeasible) continue;
    const Cost value = G * k + flow;
    if (best == -1 || value < best) {
      best = value;
      result.best_k = k;
    }
  }
  CALIB_CHECK_MSG(best != -1, "n calibrations must always be feasible");
  result.best_cost = best;
  return result;
}

BudgetSearchResult offline_online_optimum_binary(const Instance& instance,
                                                 Cost G) {
  CALIB_CHECK(G >= 1);
  OfflineDp dp = make_dp(instance);
  const int n = dp.instance().size();
  // Smallest feasible k: ceil(n / T); F is non-increasing from there.
  const int k_min =
      static_cast<int>((n + dp.instance().T() - 1) / dp.instance().T());
  auto cost_at = [&](int k) { return G * k + dp.min_flow(k); };
  // Binary search for the first k in [k_min, n] where taking one more
  // calibration does not reduce the total cost (unimodality assumption).
  int lo = k_min;
  int hi = n;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (cost_at(mid + 1) < cost_at(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  BudgetSearchResult result;
  result.best_k = lo;
  result.best_cost = cost_at(lo);
  result.flow_curve = dp.flow_curve(n);
  return result;
}

SolveResult offline_optimum_result(const Instance& instance, Cost G) {
  const Timer timer;
  const BudgetSearchResult opt = offline_online_optimum(instance, G);
  SolveResult result;
  result.solver = "offline-opt";
  result.objective = opt.best_cost;
  result.calibrations = opt.best_k;
  result.flow = opt.flow_curve[static_cast<std::size_t>(opt.best_k)];
  result.best_k = opt.best_k;
  result.wall_ms = timer.millis();
  return result;
}

}  // namespace calib

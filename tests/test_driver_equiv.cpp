// Incremental-driver self-consistency. The legacy (seed) backend is
// gone; what this suite now proves, across every registered policy and
// randomized chaos histories, is that the incremental bookkeeping the
// driver maintains (PendingSet queue flows, coverage runs, occupancy
// aggregates) always agrees with brute-force recomputation from first
// principles — the same recompute-per-query algorithms the seed driver
// ran, now living here as test-local references.
//
// Also home to the regression pins for the incrementalized queries
// (queue_flow_from, last_interval_flow, first_free_slot): the pinned
// integers are the seed driver's answers, frozen before its removal.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "online/adversary.hpp"
#include "online/driver.hpp"
#include "online/registry.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

void expect_identical_schedules(const Instance& instance, Cost G,
                                const Schedule& first,
                                const Schedule& second,
                                const std::string& label) {
  for (MachineId m = 0; m < instance.machines(); ++m) {
    ASSERT_EQ(first.calendar().starts(m), second.calendar().starts(m))
        << label << ": calendar diverged on machine " << m;
  }
  for (JobId j = 0; j < instance.size(); ++j) {
    ASSERT_EQ(first.is_placed(j), second.is_placed(j)) << label;
    if (!first.is_placed(j)) continue;
    ASSERT_EQ(first.placement(j).start, second.placement(j).start)
        << label << ": job " << j << " start diverged";
    ASSERT_EQ(first.placement(j).machine, second.placement(j).machine)
        << label << ": job " << j << " machine diverged";
  }
  ASSERT_EQ(first.online_cost(instance, G), second.online_cost(instance, G))
      << label;
}

/// Run `name` from the registry twice (fresh policy instance each run,
/// same params) and require identical realized schedules: the driver
/// plus a seeded policy must be a pure function of the instance.
void expect_run_determinism(const std::string& name, const Instance& instance,
                            Cost G) {
  PolicyParams params;
  params.seed = 99;
  const auto first_policy = PolicyRegistry::instance().make(name, params);
  const auto second_policy = PolicyRegistry::instance().make(name, params);
  const Schedule first = run_online(instance, G, *first_policy);
  const Schedule second = run_online(instance, G, *second_policy);
  expect_identical_schedules(instance, G, first, second, "policy " + name);
}

/// Single-machine-only policies (they CALIB_CHECK machines() == 1).
bool single_machine_only(const std::string& name) {
  static const std::vector<std::string> kSingle{
      "alg1", "alg1-noimm", "alg2", "alg2-lightest", "random"};
  return std::find(kSingle.begin(), kSingle.end(), name) != kSingle.end();
}

TEST(DriverConsistency, RegistryPoliciesDeterministicSingleMachine) {
  Prng prng(4242);
  for (int trial = 0; trial < 4; ++trial) {
    const Instance instance = sparse_uniform_instance(
        /*jobs=*/30, /*span=*/80, /*T=*/5, /*machines=*/1,
        WeightModel::kZipf, /*w_max=*/9, prng);
    for (const std::string& name : PolicyRegistry::instance().names()) {
      if (name == "alg3" || name == "alg4") continue;  // multi-machine home
      expect_run_determinism(name, instance, /*G=*/11 + trial * 9);
    }
  }
}

TEST(DriverConsistency, RegistryPoliciesDeterministicMultiMachine) {
  Prng prng(777);
  for (int trial = 0; trial < 4; ++trial) {
    const Instance instance = sparse_uniform_instance(
        /*jobs=*/40, /*span=*/60, /*T=*/4, /*machines=*/3,
        WeightModel::kBimodal, /*w_max=*/7, prng);
    for (const std::string& name : PolicyRegistry::instance().names()) {
      if (single_machine_only(name)) continue;
      expect_run_determinism(name, instance, /*G=*/8 + trial * 5);
    }
  }
}

TEST(DriverConsistency, AdversaryBranchesDeterministicAndCostSane) {
  // Alg1 calibrates early (branch 1); ski-rental waits (branch 2);
  // sweep (G, T) so both branches run at several shapes.
  for (const std::string name : {"alg1", "alg2", "ski", "eager"}) {
    for (const Cost G : {3, 9, 20}) {
      for (const Time T : {2, 5, 9}) {
        const auto first_policy = PolicyRegistry::instance().make(name);
        const auto second_policy = PolicyRegistry::instance().make(name);
        const AdversaryOutcome first =
            run_lower_bound_adversary(*first_policy, G, T);
        const AdversaryOutcome second =
            run_lower_bound_adversary(*second_policy, G, T);
        ASSERT_EQ(first.calibrated_at_zero, second.calibrated_at_zero)
            << name << " G=" << G << " T=" << T;
        ASSERT_EQ(first.algorithm_cost, second.algorithm_cost)
            << name << " G=" << G << " T=" << T;
        ASSERT_EQ(first.lemma_opt_cost, second.lemma_opt_cost);
        ASSERT_EQ(first.instance.size(), second.instance.size());
        for (JobId j = 0; j < first.instance.size(); ++j) {
          ASSERT_EQ(first.instance.job(j), second.instance.job(j));
        }
        // The lemma's exhibited offline schedule is feasible, so the
        // online cost can never beat it on these instances.
        ASSERT_GE(first.algorithm_cost, first.lemma_opt_cost)
            << name << " G=" << G << " T=" << T;
      }
    }
  }
}

// ---- Brute-force references (the seed driver's query algorithms) -------

/// The waiting set in arrival (FIFO) order, read back rank by rank.
std::vector<JobId> waiting_jobs(const OnlineDriver& driver) {
  std::vector<JobId> queue;
  queue.reserve(driver.waiting_count());
  for (std::size_t rank = 0; rank < driver.waiting_count(); ++rank) {
    queue.push_back(driver.waiting_at(rank));
  }
  return queue;
}

Cost reference_queue_flow_from(const OnlineDriver& driver, Time start,
                               QueueOrder order) {
  const std::vector<Job>& jobs = driver.jobs();
  std::vector<JobId> queue = waiting_jobs(driver);
  switch (order) {
    case QueueOrder::kFifo:
      break;  // already in release (arrival) order
    case QueueOrder::kHeaviestFirst:
      std::stable_sort(queue.begin(), queue.end(), [&](JobId a, JobId b) {
        return jobs[static_cast<std::size_t>(a)].weight >
               jobs[static_cast<std::size_t>(b)].weight;
      });
      break;
    case QueueOrder::kLightestFirst:
      std::stable_sort(queue.begin(), queue.end(), [&](JobId a, JobId b) {
        return jobs[static_cast<std::size_t>(a)].weight <
               jobs[static_cast<std::size_t>(b)].weight;
      });
      break;
  }
  Cost flow = 0;
  Time t = start;
  for (const JobId j : queue) {
    const Job& job = jobs[static_cast<std::size_t>(j)];
    flow += job.weight * (t + 1 - job.release);
    ++t;
  }
  return flow;
}

bool reference_occupied_at(const OnlineDriver& driver, MachineId m, Time t) {
  for (JobId j = 0; static_cast<std::size_t>(j) < driver.jobs().size(); ++j) {
    if (driver.start_of(j) == kUnscheduled) continue;
    if (driver.machine_of(j) == m && driver.start_of(j) == t) return true;
  }
  return false;
}

Time reference_first_free_slot(const OnlineDriver& driver, MachineId m,
                               Time from, Time to) {
  for (Time t = from; t < to; ++t) {
    if (!driver.calendar().covers(m, t)) continue;
    if (!reference_occupied_at(driver, m, t)) return t;
  }
  return kUnscheduled;
}

/// The latest calibration as the policy observed it (machine + start).
struct CalRecord {
  MachineId machine = 0;
  Time start = kUnscheduled;
};

Cost reference_last_interval_flow(const OnlineDriver& driver,
                                  const CalRecord& cal) {
  if (cal.start == kUnscheduled) return -1;
  Cost flow = 0;
  for (JobId j = 0; static_cast<std::size_t>(j) < driver.jobs().size(); ++j) {
    const Time start = driver.start_of(j);
    if (start == kUnscheduled || driver.machine_of(j) != cal.machine) continue;
    if (start >= cal.start && start < cal.start + driver.T()) {
      const Job& job = driver.jobs()[static_cast<std::size_t>(j)];
      flow += job.weight * (start + 1 - job.release);
    }
  }
  return flow;
}

/// The fuzz chaos policy: random calibrations and out-of-order manual
/// assignments exercise every maintained aggregate. Records the latest
/// calibration so the test can recompute last_interval_flow from
/// scratch. Empty-queue no-op keeps the PRNG stream independent of how
/// idle spans are traversed (ticked or skipped).
class ChaosPolicy final : public OnlinePolicy {
 public:
  ChaosPolicy(std::uint64_t seed, CalRecord* cal) : prng_(seed), cal_(cal) {}
  [[nodiscard]] QueueOrder order() const override {
    return QueueOrder::kHeaviestFirst;
  }
  [[nodiscard]] bool assign_before_decide() const override { return true; }
  void decide(DriverHandle& handle) override {
    if (handle.waiting_empty()) return;
    while (prng_.bernoulli(0.35)) {
      const MachineId m = handle.calibrate();
      if (cal_ != nullptr) {
        cal_->machine = m;
        cal_->start = handle.now();
      }
      if (!handle.waiting_empty() && prng_.bernoulli(0.5)) {
        const auto pick = static_cast<std::size_t>(prng_.uniform_int(
            0, static_cast<std::int64_t>(handle.waiting_count()) - 1));
        const JobId j = handle.waiting_at(pick);
        const Time slot = handle.first_free_slot(
            m, std::max(handle.now(), handle.job(j).release),
            handle.now() + handle.T());
        if (slot != kUnscheduled) handle.assign(j, m, slot);
      }
      if (handle.calendar().count() > 512) break;
    }
  }
  [[nodiscard]] const char* name() const override { return "chaos"; }

 private:
  Prng prng_;
  CalRecord* cal_;
};

TEST(DriverConsistency, ChaosFuzzQueriesMatchBruteForce) {
  Prng prng(20110519);
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    const Instance instance = sparse_uniform_instance(
        /*jobs=*/25, /*span=*/70, /*T=*/4, /*machines=*/2,
        WeightModel::kUniform, /*w_max=*/9, prng);
    const std::string label = "chaos trial " + std::to_string(trial);
    CalRecord cal;
    ChaosPolicy policy(trial * 6151 + 3, &cal);
    OnlineDriver driver(instance.T(), instance.machines(), /*G=*/6, policy);
    Prng probe(trial * 77 + 5);
    JobId next = 0;
    while (next < instance.size() || !driver.all_placed()) {
      ASSERT_LT(driver.now(), 100000) << label << ": failed to drain";
      while (next < instance.size() &&
             instance.job(next).release == driver.now()) {
        driver.add_job(instance.job(next).weight);
        ++next;
      }
      driver.step();
      // Every incremental query must agree with brute-force recompute.
      const Time now = driver.now();
      for (const QueueOrder order :
           {QueueOrder::kFifo, QueueOrder::kHeaviestFirst,
            QueueOrder::kLightestFirst}) {
        const Time start = now + static_cast<Time>(probe.uniform_int(0, 6));
        ASSERT_EQ(driver.queue_flow_from(start, order),
                  reference_queue_flow_from(driver, start, order))
            << label << " at t=" << now;
      }
      ASSERT_EQ(driver.last_interval_flow(),
                reference_last_interval_flow(driver, cal))
          << label << " at t=" << now;
      for (MachineId m = 0; m < instance.machines(); ++m) {
        const Time from = static_cast<Time>(probe.uniform_int(0, now + 4));
        const Time to = from + static_cast<Time>(probe.uniform_int(0, 10));
        ASSERT_EQ(driver.first_free_slot(m, from, to),
                  reference_first_free_slot(driver, m, from, to))
            << label << " m" << m << " [" << from << "," << to << ")";
        const Time t = static_cast<Time>(probe.uniform_int(0, now + 8));
        ASSERT_EQ(driver.covers(m, t), driver.calendar().covers(m, t))
            << label << " m" << m << " t=" << t;
      }
      Weight total = 0;
      for (const JobId j : waiting_jobs(driver)) {
        total += driver.jobs()[static_cast<std::size_t>(j)].weight;
      }
      ASSERT_EQ(driver.waiting_weight(), total) << label;
    }
    // Drained: the maintained cost aggregate equals recompute-from-
    // placements, and the realized schedule passes full validation.
    Cost flow = 0;
    for (JobId j = 0; static_cast<std::size_t>(j) < driver.jobs().size();
         ++j) {
      const Job& job = driver.jobs()[static_cast<std::size_t>(j)];
      flow += job.weight * (driver.start_of(j) + 1 - job.release);
    }
    ASSERT_EQ(driver.online_cost(), 6 * driver.calendar().count() + flow)
        << label;
    const Schedule schedule = driver.realized_schedule();
    const auto error = schedule.validate(driver.realized_instance());
    ASSERT_FALSE(error.has_value()) << label << ": " << *error;
  }
}

// ---- Regression pins for the incrementalized queries -------------------

/// Policy that never acts; lets tests drive the driver by hand.
class NullPolicy final : public OnlinePolicy {
 public:
  void decide(DriverHandle&) override {}
  [[nodiscard]] const char* name() const override { return "null"; }
};

/// Calibrates whenever uncovered with jobs waiting (test_driver's
/// PromptPolicy).
class PromptPolicy final : public OnlinePolicy {
 public:
  void decide(DriverHandle& handle) override {
    if (handle.waiting_empty()) return;
    for (MachineId m = 0; m < handle.machines(); ++m) {
      if (handle.calibrated(m, handle.now())) return;
    }
    handle.calibrate();
  }
  [[nodiscard]] const char* name() const override { return "prompt"; }
};

TEST(DriverPins, QueueFlowFromStaggeredReleases) {
  NullPolicy policy;
  OnlineDriver driver(/*T=*/6, /*machines=*/1, /*G=*/1000, policy);
  driver.add_job(2);   // r=0
  driver.add_job(5);   // r=0
  driver.step();
  driver.add_job(5);   // r=1 (tie weight with job 1 — arrival breaks it)
  driver.step();
  driver.add_job(1);   // r=2
  // Seed-driver answers, computed by the O(n log n) sort-and-scan:
  // FIFO from 4: 2*5 + 5*6 + 5*6 + 1*6 = 76.
  EXPECT_EQ(driver.queue_flow_from(4, QueueOrder::kFifo), 76);
  // Heaviest: 5(r0)@4, 5(r1)@5, 2(r0)@6, 1(r2)@7 -> 25+25+14+6 = 70.
  EXPECT_EQ(driver.queue_flow_from(4, QueueOrder::kHeaviestFirst), 70);
  // Lightest: 1(r2)@4, 2(r0)@5, 5(r0)@6, 5(r1)@7 -> 3+12+35+35 = 85.
  EXPECT_EQ(driver.queue_flow_from(4, QueueOrder::kLightestFirst), 85);
}

TEST(DriverPins, LastIntervalFlowTracksOnlyLatestInterval) {
  PromptPolicy policy;
  OnlineDriver driver(/*T=*/3, /*machines=*/1, /*G=*/100, policy);
  EXPECT_EQ(driver.last_interval_flow(), -1);
  driver.add_job(2);
  driver.add_job(3);
  driver.step();  // calibrate at 0, heaviest (w=3) runs at 0: flow 3
  EXPECT_EQ(driver.last_interval_flow(), 3);
  driver.step();  // w=2 runs at 1: flow 2*(1+1-0)=4, same interval
  EXPECT_EQ(driver.last_interval_flow(), 7);
  driver.step();
  driver.add_job(4);
  driver.step();  // new interval at t=3; job runs at 3: flow 4
  EXPECT_EQ(driver.last_interval_flow(), 4);
}

TEST(DriverPins, FirstFreeSlotSkipsBookedAndUncovered) {
  PromptPolicy policy;
  OnlineDriver driver(/*T=*/4, /*machines=*/1, /*G=*/100, policy);
  driver.add_job(1);
  driver.add_job(1);
  driver.step();  // calibrates [0,4); slots 0 occupied
  // Slot 0 booked at t=0; one job remains, auto-assigned at t=1 next
  // step. Before that, the first free covered slot from 0 is 1.
  EXPECT_EQ(driver.first_free_slot(0, 0, 10), 1);
  driver.step();  // second job placed at 1
  EXPECT_EQ(driver.first_free_slot(0, 0, 10), 2);
  EXPECT_EQ(driver.first_free_slot(0, 3, 10), 3);
  // [4, 10) is uncovered: no slot.
  EXPECT_EQ(driver.first_free_slot(0, 4, 10), kUnscheduled);
  // Window entirely before coverage start has covered slots only in
  // the intersection.
  EXPECT_EQ(driver.first_free_slot(0, 2, 3), 2);
  EXPECT_EQ(driver.first_free_slot(0, 0, 1), kUnscheduled);  // 0 booked
}

// ---- Event-driven advance semantics ------------------------------------

TEST(DriverConsistency, AdvanceToSkipsIdleSpans) {
  NullPolicy policy;
  OnlineDriver driver(/*T=*/3, /*machines=*/1, /*G=*/5, policy);
  EXPECT_EQ(driver.now(), 0);
  driver.advance_to(17);
  EXPECT_EQ(driver.now(), 17);
  driver.advance_to(17);  // no-op
  EXPECT_EQ(driver.now(), 17);
}

TEST(DriverConsistencyDeath, AdvanceToRequiresEmptyQueue) {
  NullPolicy policy;
  OnlineDriver driver(/*T=*/3, /*machines=*/1, /*G=*/5, policy);
  driver.add_job(1);
  EXPECT_DEATH(driver.advance_to(5), "waiting jobs");
  EXPECT_DEATH(driver.advance_to(-1), "backwards");
}

TEST(DriverConsistency, RunOnlineMatchesNaivePerStepTicking) {
  // A widely spaced instance: run_online advances across the gaps; the
  // hand-rolled loop below ticks through every idle step instead. The
  // decide() contract (no decision points while the queue is empty)
  // means both must realize the same schedule.
  std::vector<Job> jobs{{0, 3}, {1000, 1}, {5000, 7}, {5000, 2}};
  const Instance instance(jobs, /*T=*/4, /*machines=*/1);
  for (const std::string name : {"alg1", "alg2"}) {
    const auto fast_policy = PolicyRegistry::instance().make(name);
    const Schedule fast = run_online(instance, /*G=*/7, *fast_policy);
    const auto slow_policy = PolicyRegistry::instance().make(name);
    OnlineDriver driver(instance.T(), instance.machines(), /*G=*/7,
                        *slow_policy);
    JobId next = 0;
    while (next < instance.size() || !driver.all_placed()) {
      while (next < instance.size() &&
             instance.job(next).release == driver.now()) {
        driver.add_job(instance.job(next).weight);
        ++next;
      }
      driver.step();
      ASSERT_LT(driver.now(), 10000) << name << ": failed to drain";
    }
    const Schedule slow = driver.realized_schedule();
    expect_identical_schedules(instance, 7, fast, slow,
                               "naive ticking vs run_online: " + name);
  }
}

}  // namespace
}  // namespace calib

// Extension (not in the paper): a *randomized* online policy.
//
// Lemma 3.1's (2 - o(1)) lower bound holds for deterministic algorithms
// only. Against an oblivious adversary, the classic randomized
// ski-rental strategy buys at a random fraction of the threshold,
// drawn from the density e^x / (e - 1) on [0, 1], and achieves
// e/(e-1) ~ 1.582 in the pure rent/buy game. This policy ports that
// rule to calibrations: delay until the queue's hypothetical flow
// reaches theta * G (theta freshly drawn after every calibration),
// keeping Algorithm 1's G/T count trigger intact so the Theorem 3.3
// machinery still bounds the worst case.
//
// Experiment E11 measures its expected ratio on the Lemma 3.1 instance
// family, where no deterministic policy can beat 2.
#pragma once

#include "online/policy.hpp"
#include "util/prng.hpp"

namespace calib {

class RandomizedSkiRental final : public OnlinePolicy {
 public:
  explicit RandomizedSkiRental(std::uint64_t seed) : prng_(seed) {
    draw_threshold();
  }

  void reset() override { draw_threshold(); }
  [[nodiscard]] QueueOrder order() const override {
    return QueueOrder::kFifo;
  }
  void decide(DriverHandle& handle) override;
  [[nodiscard]] const char* name() const override { return "rand-ski"; }

  /// Current threshold fraction in (0, 1]; exposed for tests.
  [[nodiscard]] double threshold() const { return theta_; }

 private:
  void draw_threshold();

  Prng prng_;
  double theta_ = 1.0;
};

}  // namespace calib

#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace calib {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CALIB_CHECK(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  CALIB_CHECK(!rows_.empty());
  CALIB_CHECK_MSG(rows_.back().size() < headers_.size(),
                  "row has more cells than headers");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }
Table& Table::add(std::size_t value) { return add(std::to_string(value)); }
Table& Table::add(int value) { return add(std::to_string(value)); }

Table& Table::add(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return add(os.str());
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& cells : rows_) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      widths[c] = std::max(widths[c], cells[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << std::setw(static_cast<int>(widths[c])) << cell << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << '|';
  for (const std::size_t width : widths)
    os << std::string(width + 2, '-') << '|';
  os << '\n';
  for (const auto& cells : rows_) print_row(cells);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace calib

# Empty dependencies file for calibsched_core.
# This may be replaced when dependencies are built.

// Online policy interface.
//
// The driver owns time and job state; a policy only decides *when to
// calibrate* (and, for Algorithm 3's explicit mode, where to place jobs).
// Job-to-slot assignment otherwise follows Observation 2.1's greedy,
// parameterized by the queue order the policy requests.
//
// The split mirrors the paper: calibration timing is the hard, analyzed
// decision; assignment is greedy-optimal given the calendar.
#pragma once

#include <vector>

#include "core/calendar.hpp"
#include "core/types.hpp"

namespace calib {

/// Which waiting job the driver's auto-assignment runs first.
enum class QueueOrder {
  kFifo,           ///< earliest release first (Algorithms 1 and 3)
  kHeaviestFirst,  ///< Observation 2.1's optimal order (Algorithm 2)
  kLightestFirst,  ///< Algorithm 2's literal line 13 (ablation only)
};

class OnlineDriver;

/// The slice of driver state a policy may consult. Everything reachable
/// from here is information an online algorithm legitimately has at time
/// now(): revealed jobs, its own past decisions, the clock.
class DriverHandle {
 public:
  explicit DriverHandle(OnlineDriver& driver) : driver_(driver) {}

  [[nodiscard]] Time now() const;
  [[nodiscard]] Cost G() const;
  [[nodiscard]] Time T() const;
  [[nodiscard]] int machines() const;

  /// Waiting = released, not yet assigned to a slot. Ascending release.
  [[nodiscard]] const std::vector<JobId>& waiting() const;
  [[nodiscard]] const Job& job(JobId j) const;
  [[nodiscard]] Weight waiting_weight() const;
  [[nodiscard]] bool arrived_now() const;

  [[nodiscard]] const Calendar& calendar() const;
  /// Is step t calibrated on machine m?
  [[nodiscard]] bool calibrated(MachineId m, Time t) const;

  /// Hypothetical flow of draining the waiting queue back-to-back from
  /// `start` in the given order (the `f` of Algorithms 1-3).
  [[nodiscard]] Cost queue_flow_from(Time start, QueueOrder order) const;

  /// Realized flow of the jobs placed in the most recent completed
  /// calibration interval (the `p` of Algorithm 1, line 11); negative if
  /// no calibration has happened yet.
  [[nodiscard]] Cost last_interval_flow() const;

  /// Calibrate at now() on the next machine in round-robin order;
  /// returns the machine chosen.
  MachineId calibrate();

  /// Explicitly place a waiting job (Algorithm 3's step 13).
  void assign(JobId j, MachineId m, Time start);

  /// Earliest unoccupied calibrated slot on machine m in [from, to).
  [[nodiscard]] Time first_free_slot(MachineId m, Time from, Time to) const;

 private:
  OnlineDriver& driver_;
};

class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;

  /// Called before the first step of every run.
  virtual void reset() {}

  /// Queue order used by the driver's automatic assignment.
  [[nodiscard]] virtual QueueOrder order() const {
    return QueueOrder::kHeaviestFirst;
  }

  /// Run the automatic assignment before decide() (Algorithm 3's steps
  /// 6-9) and/or after it (Algorithms 1-2's steps 17-20).
  [[nodiscard]] virtual bool assign_before_decide() const { return false; }
  [[nodiscard]] virtual bool assign_after_decide() const { return true; }

  /// One decision round at handle.now(). Arrivals for this step have
  /// already been revealed.
  virtual void decide(DriverHandle& handle) = 0;

  /// Short name for tables.
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace calib

// Shift report: the operations view of a calibration-scheduled machine.
//
// Runs a traced shift under Algorithm 2, prints the operational digest
// (queue peaks, waiting distribution, slot utilization), compares the
// realized cost split against the exact offline optimum, and writes an
// SVG Gantt chart of the shift.
//
//   $ ./shift_report [seed] [out.svg]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/svg.hpp"
#include "offline/budget_search.hpp"
#include "online/alg2_weighted.hpp"
#include "online/driver.hpp"
#include "online/trace.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace calib;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const std::string svg_path = argc > 2 ? argv[2] : "shift.svg";
  Prng prng(seed);

  BurstyConfig config;
  config.burst_probability = 0.08;
  config.burst_length = 7;
  config.steps = 90;
  config.weights = WeightModel::kUniform;
  config.w_max = 5;
  const Instance shift = bursty_instance(config, /*T=*/10, /*machines=*/1,
                                         prng);
  const Cost G = 60;

  Alg2Weighted policy;
  Trace trace;
  OnlineDriver driver(shift.T(), shift.machines(), G, policy);
  driver.set_trace(&trace);
  JobId next = 0;
  while (next < shift.size() || !driver.all_placed()) {
    while (next < shift.size() &&
           shift.job(next).release == driver.now()) {
      driver.add_job(shift.job(next).weight);
      ++next;
    }
    if (next >= shift.size()) {
      driver.drain();
      break;
    }
    driver.step();
  }
  const Schedule schedule = driver.realized_schedule();

  std::cout << "Shift of " << shift.size() << " jobs (T=" << shift.T()
            << ", G=" << G << ", seed=" << seed << ")\n\n"
            << trace.summary(schedule.calendar()) << '\n';

  const BudgetSearchResult opt = offline_online_optimum(shift, G);
  Table table({"", "calibration spend", "weighted flow", "total"});
  table.row()
      .add("Algorithm 2 (online)")
      .add(G * schedule.calendar().count())
      .add(schedule.weighted_flow(shift))
      .add(schedule.online_cost(shift, G));
  table.row()
      .add("offline optimum")
      .add(G * opt.best_k)
      .add(opt.flow_curve[static_cast<std::size_t>(opt.best_k)])
      .add(opt.best_cost);
  table.print(std::cout);

  std::ofstream svg(svg_path);
  if (svg) {
    SvgOptions options;
    options.title = "Shift (Algorithm 2, G=" + std::to_string(G) + ")";
    svg << render_svg(shift, schedule, options);
    std::cout << "\nGantt chart written to " << svg_path << '\n';
  }
  return 0;
}

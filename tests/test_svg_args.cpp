// SVG renderer and the Args flag parser (the tools/ substrate).
#include <gtest/gtest.h>

#include "core/svg.hpp"
#include "util/args.hpp"

namespace calib {
namespace {

Instance svg_instance() {
  return Instance({Job{0, 1}, Job{2, 5}}, 3, 2);
}

Schedule svg_schedule(const Instance& instance) {
  Calendar calendar(instance.T(), instance.machines());
  calendar.add(0, 0);
  calendar.add(1, 2);
  Schedule schedule(calendar, instance.size());
  schedule.place(0, 0, 0);
  schedule.place(1, 1, 2);
  return schedule;
}

TEST(Svg, EmitsWellFormedDocument) {
  const Instance instance = svg_instance();
  const std::string svg = render_svg(instance, svg_schedule(instance));
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One calibration band per machine, one block per job.
  EXPECT_NE(svg.find("m0"), std::string::npos);
  EXPECT_NE(svg.find("m1"), std::string::npos);
  EXPECT_NE(svg.find("job 0"), std::string::npos);
  EXPECT_NE(svg.find("job 1"), std::string::npos);
}

TEST(Svg, TitleIsEscaped) {
  const Instance instance = svg_instance();
  SvgOptions options;
  options.title = "a < b & c";
  const std::string svg =
      render_svg(instance, svg_schedule(instance), options);
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_EQ(svg.find("a < b"), std::string::npos);
}

TEST(Svg, HeavierJobsAreMoreOpaque) {
  const Instance instance = svg_instance();
  const std::string svg = render_svg(instance, svg_schedule(instance));
  // w=5 job gets opacity 1.0, w=1 job less.
  EXPECT_NE(svg.find("fill-opacity=\"1\""), std::string::npos);
  EXPECT_NE(svg.find("fill-opacity=\"0.56\""), std::string::npos);
}

TEST(Svg, RejectsInvalidSchedule) {
  const Instance instance = svg_instance();
  Schedule broken(Calendar(instance.T(), instance.machines()),
                  instance.size());
  EXPECT_DEATH(render_svg(instance, broken), "validate");
}

TEST(Args, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7", "pos1"};
  const Args args(5, argv, {"alpha", "beta"});
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_int("beta", 0), 7);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Args, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  const Args args(2, argv, {"verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose", ""), "true");
}

TEST(Args, UnknownFlagThrows) {
  const char* argv[] = {"prog", "--typo=1"};
  EXPECT_THROW(Args(2, argv, {"alpha"}), std::runtime_error);
}

TEST(Args, MalformedNumberThrows) {
  const char* argv[] = {"prog", "--alpha=xyz"};
  const Args args(2, argv, {"alpha"});
  EXPECT_THROW(static_cast<void>(args.get_int("alpha", 0)),
               std::runtime_error);
}

TEST(Args, FallbacksApply) {
  const char* argv[] = {"prog"};
  const Args args(1, argv, {"alpha"});
  EXPECT_EQ(args.get_int("alpha", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 1.5), 1.5);
  EXPECT_EQ(args.get("alpha", "dflt"), "dflt");
  EXPECT_FALSE(args.has("alpha"));
}

TEST(Args, DoubleParsing) {
  const char* argv[] = {"prog", "--rate=0.35"};
  const Args args(2, argv, {"rate"});
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.35);
}

}  // namespace
}  // namespace calib

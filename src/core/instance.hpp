// Problem instance: a job set plus the calibration length T and machine
// count P (paper Section 2).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace calib {

class Instance {
 public:
  Instance() = default;

  /// Jobs are stored sorted by (release, weight desc); T >= 1, P >= 1.
  /// (The paper assumes T >= 2; T == 1 is accepted because Section 3.3's
  /// analysis handles it as a corner case.)
  Instance(std::vector<Job> jobs, Time calibration_length, int machines = 1);

  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }
  [[nodiscard]] const Job& job(JobId j) const;
  [[nodiscard]] int size() const { return static_cast<int>(jobs_.size()); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }
  [[nodiscard]] Time T() const { return T_; }
  [[nodiscard]] int machines() const { return machines_; }

  [[nodiscard]] Time min_release() const;
  [[nodiscard]] Time max_release() const;
  [[nodiscard]] Weight total_weight() const;
  [[nodiscard]] bool is_unweighted() const;

  /// True if at most `machines()` jobs share any release time (the
  /// paper's Section 2 normalization assumption).
  [[nodiscard]] bool releases_normalized() const;

  /// Paper footnote 1: while more than P jobs share a release time,
  /// bump the lightest of them by +1 (ties among lightest: bump the one
  /// that keeps job order stable). Preserves the optimal cost.
  [[nodiscard]] Instance normalized() const;

  /// Upper bound on any reasonable schedule's horizon: every job can be
  /// finished by max_release + n + T (schedule everything greedily after
  /// the last arrival). Used to bound brute-force searches and the LP.
  [[nodiscard]] Time horizon() const;

  /// Serialize as CSV rows "release,weight" with a "# T=..,P=.." header.
  void save_csv(std::ostream& os) const;
  static Instance load_csv(std::istream& is);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Instance&, const Instance&) = default;

 private:
  std::vector<Job> jobs_;
  Time T_ = 2;
  int machines_ = 1;
};

}  // namespace calib

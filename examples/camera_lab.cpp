// Camera calibration lab: a metrology bench that certifies camera
// modules (Section 1 cites digital-camera calibration as a target
// domain). The lab owner wants a *budget*: "how many calibrations per
// day do I actually need?"
//
// This example walks the offline Section 4 machinery: it computes the
// full flow-vs-budget curve F(k) with the O(K n^3) DP, prints the
// marginal value of each extra calibration, picks the knee for a given
// calibration price, and renders the optimal schedule at that budget.
//
//   $ ./camera_lab [price] [seed]
#include <cstdlib>
#include <iostream>

#include "offline/budget_search.hpp"
#include "offline/dp.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace calib;
  const Cost price = argc > 1 ? std::atoll(argv[1]) : 18;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 99;
  Prng prng(seed);

  // A day's intake: 12 modules with mixed urgency, distinct arrival
  // slots, calibration valid for T = 6 slots.
  const Instance day = sparse_uniform_instance(
      /*count=*/12, /*span=*/48, /*T=*/6, /*machines=*/1,
      WeightModel::kUniform, /*w_max=*/5, prng);

  std::cout << "Camera lab intake: " << day.to_string() << "\n\n";

  OfflineDp dp(day);
  const auto curve = dp.flow_curve(day.size());

  Table table({"budget k", "optimal flow F(k)", "marginal saving",
               "total cost at price " + std::to_string(price)});
  Cost previous = kInfeasible;
  for (int k = 1; k <= day.size(); ++k) {
    const Cost flow = curve[static_cast<std::size_t>(k)];
    if (flow == kInfeasible) {
      table.row().add(static_cast<std::int64_t>(k)).add("infeasible").add(
          "-").add("-");
      continue;
    }
    const std::string marginal =
        previous == kInfeasible ? "-" : std::to_string(previous - flow);
    table.row()
        .add(static_cast<std::int64_t>(k))
        .add(flow)
        .add(marginal)
        .add(price * k + flow);
    previous = flow;
  }
  table.print(std::cout);

  const BudgetSearchResult best = offline_online_optimum(day, price);
  std::cout << "\nKnee of the curve at price " << price << ": k = "
            << best.best_k << " calibrations, total cost "
            << best.best_cost << ".\n\n";

  const auto schedule = dp.solve(best.best_k);
  std::cout << "Optimal schedule at that budget:\n"
            << schedule->render(day) << '\n';
  return 0;
}

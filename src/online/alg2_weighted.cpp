#include "online/alg2_weighted.hpp"

#include "util/check.hpp"

namespace calib {

void Alg2Weighted::decide(DriverHandle& handle) {
  CALIB_CHECK_MSG(handle.machines() == 1,
                  "Algorithm 2 is a single-machine policy");
  const Time t = handle.now();
  if (handle.calibrated(0, t)) return;  // line 6
  if (handle.waiting_empty()) return;

  const Cost G = handle.G();
  const Time T = handle.T();
  // line 7: hypothetical queue flow from t+1 in the extraction order.
  const Cost f = handle.queue_flow_from(t + 1, extraction_);
  // line 8: sum of waiting weights >= G/T (exact: sum * T >= G), or
  // |Q| >= T, or f >= G. (|Q| can only reach T exactly on one machine
  // with distinct releases; >= is the safe reading.)
  const Weight queue_weight = handle.waiting_weight();
  const auto queue_size = static_cast<Time>(handle.waiting_count());
  if (queue_weight * T >= G || queue_size >= T || f >= G) {
    handle.calibrate();  // line 9
  }
}

}  // namespace calib

file(REMOVE_RECURSE
  "CMakeFiles/calibsched_util.dir/util/args.cpp.o"
  "CMakeFiles/calibsched_util.dir/util/args.cpp.o.d"
  "CMakeFiles/calibsched_util.dir/util/csv.cpp.o"
  "CMakeFiles/calibsched_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/calibsched_util.dir/util/prng.cpp.o"
  "CMakeFiles/calibsched_util.dir/util/prng.cpp.o.d"
  "CMakeFiles/calibsched_util.dir/util/stats.cpp.o"
  "CMakeFiles/calibsched_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/calibsched_util.dir/util/table.cpp.o"
  "CMakeFiles/calibsched_util.dir/util/table.cpp.o.d"
  "CMakeFiles/calibsched_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/calibsched_util.dir/util/thread_pool.cpp.o.d"
  "libcalibsched_util.a"
  "libcalibsched_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibsched_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Annotated synchronization primitives.
//
// calib::Mutex / calib::MutexLock / calib::CondVar are zero-overhead
// wrappers over std::mutex / std::unique_lock / std::condition_variable
// whose only addition is the thread-safety capability attributes from
// util/thread_annotations.hpp. libstdc++'s primitives carry no such
// attributes, so Clang's -Wthread-safety cannot check code that uses
// them directly; routing every shared-state class through these
// wrappers is what lets the lint gate prove lock discipline statically.
//
// Header-only and dependent on nothing but the standard library, so the
// obs layer (the bottom of the dependency stack) can use it too.
//
// Usage:
//   calib::Mutex mutex_;
//   int value_ CALIB_GUARDED_BY(mutex_);
//   ...
//   {
//     const calib::MutexLock lock(mutex_);
//     ++value_;                       // OK: lock held
//     while (!ready_) cv_.wait(lock); // CondVar keeps the capability
//   }
//
// Condition-variable waits use the explicit while-loop form rather than
// the predicate-lambda overload: the analysis cannot see that a lambda
// body runs with the lock held, but it tracks the loop form exactly.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace calib {

/// A std::mutex that is a Clang thread-safety capability.
class CALIB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CALIB_ACQUIRE() { mutex_.lock(); }
  void unlock() CALIB_RELEASE() { mutex_.unlock(); }
  bool try_lock() CALIB_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mutex_;
};

/// RAII lock over a Mutex (scoped capability). Equivalent to
/// std::unique_lock<std::mutex> — CondVar::wait releases/reacquires
/// through it — but always holds the lock for its full scope as far as
/// the static analysis is concerned, which matches how every wait site
/// in this codebase behaves.
class CALIB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) CALIB_ACQUIRE(mutex)
      : lock_(mutex.mutex_) {}
  ~MutexLock() CALIB_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to MutexLock. wait() atomically releases
/// the lock while blocked and reacquires before returning, exactly like
/// std::condition_variable::wait; callers re-test their predicate in a
/// while loop as usual.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace calib

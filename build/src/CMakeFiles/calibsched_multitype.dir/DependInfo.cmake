
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multitype/multitype_sched.cpp" "src/CMakeFiles/calibsched_multitype.dir/multitype/multitype_sched.cpp.o" "gcc" "src/CMakeFiles/calibsched_multitype.dir/multitype/multitype_sched.cpp.o.d"
  "/root/repo/src/multitype/typed_calendar.cpp" "src/CMakeFiles/calibsched_multitype.dir/multitype/typed_calendar.cpp.o" "gcc" "src/CMakeFiles/calibsched_multitype.dir/multitype/typed_calendar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/calibsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/calibsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#include "harness/sweep.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "online/driver.hpp"
#include "online/registry.hpp"
#include "online/trace.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace calib::harness {
namespace {

// Must stay disjoint from grid.cpp's kInstanceStreamTag: instance
// streams and policy streams are derived from the same base seed.
constexpr std::uint64_t kPolicyStreamTag = 1ULL << 63;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

// Deterministic double formatting for both writers: enough digits to
// round-trip the values we emit, no locale dependence.
std::string fmt(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  return os.str();
}

}  // namespace

SweepEngine::SweepEngine(SweepGrid grid) : grid_(std::move(grid)) {
  if (grid_.workloads.empty()) throw std::runtime_error("sweep: no workloads");
  if (grid_.solvers.empty()) throw std::runtime_error("sweep: no solvers");
  if (grid_.G_values.empty()) throw std::runtime_error("sweep: no G values");
  if (grid_.seeds < 1) throw std::runtime_error("sweep: seeds must be >= 1");
  for (const Cost G : grid_.G_values) {
    if (G < 1) throw std::runtime_error("sweep: G must be >= 1");
  }
  bool needs_dp = grid_.compare_to_opt;
  for (const std::string& solver : grid_.solvers) {
    if (solver == kOfflineSolver) {
      needs_dp = true;
    } else if (!PolicyRegistry::instance().contains(solver)) {
      throw std::runtime_error("sweep: unknown solver: " + solver);
    }
  }
  if (needs_dp) {
    for (const WorkloadSpec& spec : grid_.workloads) {
      if (spec.machines != 1) {
        throw std::runtime_error(
            "sweep: offline optimum needs P == 1 workloads (got " +
            spec.label() + ")");
      }
    }
  }
}

SweepRow SweepEngine::run_cell(const CellCoords& coords,
                               FlowCurveCache& cache) const {
  const WorkloadSpec& spec = grid_.workloads[coords.workload];
  const std::string& solver = grid_.solvers[coords.solver];
  const Cost G = grid_.G_values[coords.g];
  const Instance instance =
      materialize_instance(grid_, coords.workload, coords.seed);

  SweepRow row;
  row.cell = coords.index;
  row.workload_index = coords.workload;
  row.workload = spec.label();
  row.solver = solver;
  row.G = G;
  row.seed = coords.seed;
  row.jobs = instance.size();

  if (solver == kOfflineSolver) {
    const Timer timer;
    const CurveOptimum opt = optimum_from_curve(*cache.curve(instance), G);
    row.result.solver = solver;
    row.result.objective = opt.best_cost;
    row.result.calibrations = opt.best_k;
    row.result.flow = opt.flow;
    row.result.best_k = opt.best_k;
    row.result.wall_ms = timer.millis();
    if (grid_.compare_to_opt) {
      row.has_opt = true;
      row.opt_cost = opt.best_cost;
      row.opt_k = opt.best_k;
      row.ratio = 1.0;
    }
    return row;
  }

  PolicyParams params;
  params.period = grid_.periodic_period;
  Prng root(grid_.base_seed);
  params.seed = root.split(kPolicyStreamTag | coords.index)();
  const auto policy = make_policy(solver, params);

  Trace trace;
  const Timer timer;
  const Schedule schedule = run_online(
      instance, G, *policy, grid_.collect_trace ? &trace : nullptr);
  row.result =
      summarize_schedule(solver, instance, schedule, G, timer.millis());

  if (grid_.collect_trace) {
    row.has_trace = true;
    row.peak_queue = trace.peak_queue_length();
    row.utilization = trace.utilization(schedule.calendar());
  }
  if (grid_.extra_metric) {
    row.has_extra = true;
    row.extra = grid_.extra_metric(instance, schedule, G);
  }
  if (grid_.compare_to_opt) {
    const CurveOptimum opt = optimum_from_curve(*cache.curve(instance), G);
    row.has_opt = true;
    row.opt_cost = opt.best_cost;
    row.opt_k = opt.best_k;
    row.ratio = static_cast<double>(row.result.objective) /
                static_cast<double>(opt.best_cost);
  }
  return row;
}

SweepReport SweepEngine::run() {
  const Timer wall;
  FlowCurveCache cache;
  SweepReport report;
  report.extra_metric_name = grid_.extra_metric_name;
  report.rows.resize(grid_.cells());

  const auto body = [&](std::size_t i) {
    report.rows[i] = run_cell(cell_coords(grid_, i), cache);
  };
  if (grid_.threads == 0) {
    report.timing.threads = global_pool().size();
    global_pool().parallel_for(grid_.cells(), body);
  } else {
    ThreadPool pool(grid_.threads);
    report.timing.threads = pool.size();
    pool.parallel_for(grid_.cells(), body);
  }

  report.timing.wall_seconds = wall.seconds();
  for (const SweepRow& row : report.rows) {
    report.timing.cell_seconds += row.result.wall_ms * 1e-3;
  }
  report.timing.dp_cache_hits = cache.hits();
  report.timing.dp_cache_misses = cache.misses();
  report.timing.dp_seconds = cache.compute_seconds();
  return report;
}

void SweepReport::write_jsonl(std::ostream& os, bool include_timing) const {
  for (const SweepRow& row : rows) {
    os << "{\"cell\":" << row.cell << ",\"workload\":\""
       << json_escape(row.workload) << "\",\"solver\":\""
       << json_escape(row.solver) << "\",\"G\":" << row.G
       << ",\"seed\":" << row.seed << ",\"jobs\":" << row.jobs
       << ",\"objective\":" << row.result.objective
       << ",\"calibrations\":" << row.result.calibrations
       << ",\"flow\":" << row.result.flow;
    if (row.result.best_k >= 0) os << ",\"best_k\":" << row.result.best_k;
    if (row.has_opt) {
      os << ",\"opt_cost\":" << row.opt_cost << ",\"opt_k\":" << row.opt_k
         << ",\"ratio\":" << fmt(row.ratio);
    }
    if (row.has_trace) {
      os << ",\"peak_queue\":" << row.peak_queue
         << ",\"utilization\":" << fmt(row.utilization);
    }
    if (row.has_extra) {
      os << ",\"" << json_escape(extra_metric_name.empty()
                                     ? std::string("extra")
                                     : extra_metric_name)
         << "\":" << fmt(row.extra);
    }
    if (include_timing) os << ",\"wall_ms\":" << fmt(row.result.wall_ms);
    os << "}\n";
  }
}

void SweepReport::write_csv(std::ostream& os, bool include_timing) const {
  CsvWriter writer(os);
  std::vector<std::string> header{
      "cell",     "workload",     "solver", "G",
      "seed",     "jobs",         "objective", "calibrations",
      "flow",     "best_k",       "opt_cost",  "opt_k",
      "ratio",    "peak_queue",   "utilization"};
  header.push_back(extra_metric_name.empty() ? std::string("extra")
                                             : extra_metric_name);
  if (include_timing) header.emplace_back("wall_ms");
  writer.write_row(header);
  for (const SweepRow& row : rows) {
    std::vector<std::string> cells{
        std::to_string(row.cell),
        row.workload,
        row.solver,
        std::to_string(row.G),
        std::to_string(row.seed),
        std::to_string(row.jobs),
        std::to_string(row.result.objective),
        std::to_string(row.result.calibrations),
        std::to_string(row.result.flow),
        row.result.best_k >= 0 ? std::to_string(row.result.best_k)
                               : std::string(),
        row.has_opt ? std::to_string(row.opt_cost) : std::string(),
        row.has_opt ? std::to_string(row.opt_k) : std::string(),
        row.has_opt ? fmt(row.ratio) : std::string(),
        row.has_trace ? std::to_string(row.peak_queue) : std::string(),
        row.has_trace ? fmt(row.utilization) : std::string()};
    cells.push_back(row.has_extra ? fmt(row.extra) : std::string());
    if (include_timing) cells.push_back(fmt(row.result.wall_ms));
    writer.write_row(cells);
  }
}

std::string SweepReport::timing_summary() const {
  std::ostringstream os;
  os << rows.size() << " cells in " << std::fixed << std::setprecision(3)
     << timing.wall_seconds << "s wall on " << timing.threads
     << " threads (" << timing.cell_seconds << "s of solver time";
  if (timing.dp_cache_hits + timing.dp_cache_misses > 0) {
    os << "; DP cache: " << timing.dp_cache_hits << " hits / "
       << timing.dp_cache_misses << " misses, " << timing.dp_seconds
       << "s in the DP";
  }
  os << ')';
  return os.str();
}

}  // namespace calib::harness

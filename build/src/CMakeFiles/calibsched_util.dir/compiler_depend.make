# Empty compiler generated dependencies file for calibsched_util.
# This may be replaced when dependencies are built.

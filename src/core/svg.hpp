// SVG rendering of schedules — a Gantt-style strip per machine with
// calibration intervals as shaded bands and jobs as blocks (opacity
// scaled by weight). Self-contained string output; no dependencies.
#pragma once

#include <string>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace calib {

struct SvgOptions {
  int cell_width = 18;    ///< pixels per time step
  int lane_height = 34;   ///< pixels per machine lane
  bool show_releases = true;  ///< tick marks at job release times
  std::string title;
};

/// Render a validated schedule. The output is a complete standalone
/// SVG document.
std::string render_svg(const Instance& instance, const Schedule& schedule,
                       const SvgOptions& options = {});

}  // namespace calib

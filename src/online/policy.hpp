// Online policy interface.
//
// The driver owns time and job state; a policy only decides *when to
// calibrate* (and, for Algorithm 3's explicit mode, where to place jobs).
// Job-to-slot assignment otherwise follows Observation 2.1's greedy,
// parameterized by the queue order the policy requests.
//
// The split mirrors the paper: calibration timing is the hard, analyzed
// decision; assignment is greedy-optimal given the calendar.
//
// DriverHandle is the *entire* legal information surface of a policy
// (enforced by the calib_lint `policy-driver-isolation` rule: policy
// translation units may not name OnlineDriver). Every query below is
// O(log n) or O(1) against the driver's incrementally maintained state —
// a policy's whole decision round costs O(log n), never a rescan of the
// waiting set. The flat waiting-vector accessor of the original driver
// is gone; rank/front/weight queries replace it.
#pragma once

#include "core/calendar.hpp"
#include "core/types.hpp"

namespace calib {

class OnlineDriver;

/// The slice of driver state a policy may consult. Everything reachable
/// from here is information an online algorithm legitimately has at time
/// now(): revealed jobs, its own past decisions, the clock.
class DriverHandle {
 public:
  explicit DriverHandle(OnlineDriver& driver) : driver_(driver) {}

  [[nodiscard]] Time now() const;
  [[nodiscard]] Cost G() const;
  [[nodiscard]] Time T() const;
  [[nodiscard]] int machines() const;

  /// Waiting = released, not yet assigned to a slot.
  [[nodiscard]] std::size_t waiting_count() const;    ///< O(1)
  [[nodiscard]] bool waiting_empty() const;           ///< O(1)
  /// Total weight of the waiting set (Algorithm 2 line 8). O(1).
  [[nodiscard]] Weight waiting_weight() const;
  /// The job `rank` positions into the arrival (FIFO) order. O(log n).
  [[nodiscard]] JobId waiting_at(std::size_t rank) const;
  /// The job the driver's auto-assignment would run next under `order`
  /// (ties break to the earliest arrival). O(log n), waiting non-empty.
  [[nodiscard]] JobId front(QueueOrder order) const;

  [[nodiscard]] const Job& job(JobId j) const;
  [[nodiscard]] bool arrived_now() const;

  [[nodiscard]] const Calendar& calendar() const;
  /// Is step t calibrated on machine m? O(log #calibrations).
  [[nodiscard]] bool calibrated(MachineId m, Time t) const;

  /// Hypothetical flow of draining the waiting queue back-to-back from
  /// `start` in the given order (the `f` of Algorithms 1-3). O(1).
  [[nodiscard]] Cost queue_flow_from(Time start, QueueOrder order) const;

  /// Realized flow of the jobs placed in the most recent completed
  /// calibration interval (the `p` of Algorithm 1, line 11); negative if
  /// no calibration has happened yet. O(1).
  [[nodiscard]] Cost last_interval_flow() const;

  /// Calibrate at now() on the next machine in round-robin order;
  /// returns the machine chosen.
  MachineId calibrate();

  /// Explicitly place a waiting job (Algorithm 3's step 13).
  void assign(JobId j, MachineId m, Time start);

  /// Earliest unoccupied calibrated slot on machine m in [from, to).
  /// O(log + occupied slots skipped) — idle spans are jumped, not
  /// scanned.
  [[nodiscard]] Time first_free_slot(MachineId m, Time from, Time to) const;

 private:
  OnlineDriver& driver_;
};

class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;

  /// Called before the first step of every run.
  virtual void reset() {}

  /// Queue order used by the driver's automatic assignment.
  [[nodiscard]] virtual QueueOrder order() const {
    return QueueOrder::kHeaviestFirst;
  }

  /// Run the automatic assignment before decide() (Algorithm 3's steps
  /// 6-9) and/or after it (Algorithms 1-2's steps 17-20).
  [[nodiscard]] virtual bool assign_before_decide() const { return false; }
  [[nodiscard]] virtual bool assign_after_decide() const { return true; }

  /// One decision round at handle.now(). Arrivals for this step have
  /// already been revealed. Contract: an empty-queue round must be a
  /// no-op — the driver fast-forwards through empty-queue spans between
  /// arrivals (event-driven advance), so decide() is not guaranteed to
  /// be polled while nothing waits, and a policy must not depend on it.
  virtual void decide(DriverHandle& handle) = 0;

  /// Short name for tables.
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace calib

#include "harness/sandbox.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <new>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace calib::harness {
namespace {

constexpr std::uint32_t kFrameMagic = 0x43414C42u;

// Serializes pipe()+fork()+close(write end in parent): without this, a
// cell forked concurrently on another pool thread would inherit this
// pipe's write end, and the parent would never see EOF after this
// child's death. (fork is cheap; the children run outside the lock.)
std::mutex& fork_mutex() {
  static std::mutex mutex;
  return mutex;
}

bool write_all(int fd, const void* data, std::size_t size) {
  const char* bytes = static_cast<const char*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, bytes + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

void apply_rlimit(int resource, std::uint64_t bytes) {
  if (bytes == 0) return;
  rlimit limit;
  limit.rlim_cur = static_cast<rlim_t>(bytes);
  limit.rlim_max = static_cast<rlim_t>(bytes);
  // Failure to tighten a limit is not fatal: the cell then merely runs
  // uncapped, exactly like the non-sandboxed path.
  (void)::setrlimit(resource, &limit);
}

[[noreturn]] void child_main(int write_fd, obs::PhaseBreadcrumb* crumb,
                             const SandboxLimits& limits,
                             const std::function<std::string()>& job) {
  apply_rlimit(RLIMIT_AS, limits.memory_bytes);
  apply_rlimit(RLIMIT_STACK, limits.stack_bytes);
  if (crumb != nullptr) obs::set_phase_breadcrumb(crumb);

  std::string payload;
  int code = 0;
  try {
    payload = job();
  } catch (...) {
    // The sweep's run_cell converts everything to a row before it gets
    // here; an escaping exception is a harness bug, not a cell outcome.
    code = 12;
  }
  if (code == 0 && payload.size() <= kMaxFrameBytes) {
    const std::uint32_t magic = kFrameMagic;
    const auto length = static_cast<std::uint32_t>(payload.size());
    const bool ok = write_all(write_fd, &magic, sizeof magic) &&
                    write_all(write_fd, &length, sizeof length) &&
                    write_all(write_fd, payload.data(), payload.size());
    if (!ok) code = 13;
  } else if (code == 0) {
    code = 14;
  }
  ::close(write_fd);
  // _exit, not exit: no atexit handlers, no static destructors — the
  // child shares the parent's registries and must not tear them down.
  ::_exit(code);
}

double elapsed_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Handles resolved through functions so sandbox_metrics_warmup() can
// force registration (which takes the registry mutex) before any fork:
// a child forked while another thread holds that mutex would inherit it
// locked and deadlock on its own first metric call.
const obs::Counter& fork_counter() {
  static const obs::Counter forks = obs::metrics().counter("sandbox.forks");
  return forks;
}

const obs::Counter& watchdog_counter() {
  static const obs::Counter kills =
      obs::metrics().counter("sandbox.watchdog_kills");
  return kills;
}

}  // namespace

void sandbox_metrics_warmup() {
  (void)fork_counter();
  (void)watchdog_counter();
}

std::string signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGKILL: return "SIGKILL";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    case SIGXCPU: return "SIGXCPU";
    case SIGPIPE: return "SIGPIPE";
    default: return "signal " + std::to_string(sig);
  }
}

SandboxOutcome run_in_sandbox(const std::function<std::string()>& job,
                              const SandboxLimits& limits) {
  SandboxOutcome outcome;

  // One PhaseBreadcrumb on a MAP_SHARED page: the child's spans write
  // it, the parent reads it after reaping. Failure to map just loses
  // the phase annotation, never the sandbox.
  void* page =
      ::mmap(nullptr, sizeof(obs::PhaseBreadcrumb), PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  obs::PhaseBreadcrumb* crumb =
      page == MAP_FAILED ? nullptr : new (page) obs::PhaseBreadcrumb{};

  int pipe_fds[2] = {-1, -1};
  pid_t pid = -1;
  {
    const std::scoped_lock lock(fork_mutex());
    if (::pipe(pipe_fds) != 0) {
      outcome.detail = std::string("sandbox: pipe failed: ") +
                       std::strerror(errno);
      if (crumb != nullptr) ::munmap(page, sizeof(obs::PhaseBreadcrumb));
      return outcome;
    }
    pid = ::fork();
    if (pid == 0) {
      ::close(pipe_fds[0]);
      child_main(pipe_fds[1], crumb, limits, job);  // never returns
    }
    ::close(pipe_fds[1]);
    if (pid < 0) {
      outcome.detail = std::string("sandbox: fork failed: ") +
                       std::strerror(errno);
      ::close(pipe_fds[0]);
      if (crumb != nullptr) ::munmap(page, sizeof(obs::PhaseBreadcrumb));
      return outcome;
    }
  }
  fork_counter().add();

  // Drain the pipe until the frame is complete or the child dies; kill
  // at the watchdog deadline. Because the fork window is serialized and
  // the parent closed its write end, child death always produces EOF.
  const auto start = std::chrono::steady_clock::now();
  bool killed_by_watchdog = false;
  std::string frame;
  bool frame_done = false;
  bool eof = false;
  char buffer[4096];
  while (!eof && !frame_done) {
    int timeout_ms = -1;
    if (limits.watchdog_ms > 0.0 && !killed_by_watchdog) {
      const double remaining = limits.watchdog_ms - elapsed_ms_since(start);
      if (remaining <= 0.0) {
        ::kill(pid, SIGKILL);
        killed_by_watchdog = true;
        watchdog_counter().add();
        timeout_ms = -1;  // SIGKILL guarantees EOF shortly
      } else {
        timeout_ms = static_cast<int>(remaining) + 1;
      }
    }
    pollfd poll_fd{pipe_fds[0], POLLIN, 0};
    const int ready = ::poll(&poll_fd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // deadline check at loop top
    const ssize_t n = ::read(pipe_fds[0], buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    frame.append(buffer, static_cast<std::size_t>(n));
    if (frame.size() >= 2 * sizeof(std::uint32_t)) {
      std::uint32_t magic = 0;
      std::uint32_t length = 0;
      std::memcpy(&magic, frame.data(), sizeof magic);
      std::memcpy(&length, frame.data() + sizeof magic, sizeof length);
      if (magic != kFrameMagic || length > kMaxFrameBytes) {
        break;  // protocol breakage; reap and report below
      }
      frame_done = frame.size() >= 2 * sizeof(std::uint32_t) + length;
    }
  }
  ::close(pipe_fds[0]);

  // The child is at _exit (frame complete / EOF) or SIGKILLed, so a
  // blocking reap terminates promptly.
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }

  if (crumb != nullptr) {
    crumb->phase[obs::PhaseBreadcrumb::kCapacity - 1] = '\0';
    outcome.phase = crumb->phase;
    ::munmap(page, sizeof(obs::PhaseBreadcrumb));
  }

  if (killed_by_watchdog) {
    outcome.kind = SandboxOutcome::Kind::kWatchdog;
    return outcome;
  }
  if (WIFSIGNALED(status)) {
    outcome.kind = SandboxOutcome::Kind::kSignal;
    outcome.signal = WTERMSIG(status);
    return outcome;
  }
  const int exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 255;
  if (exit_code != 0) {
    outcome.kind = SandboxOutcome::Kind::kExit;
    outcome.exit_code = exit_code;
    return outcome;
  }
  if (!frame_done) {
    outcome.detail = "sandbox: child exited 0 without a complete frame";
    return outcome;
  }
  std::uint32_t length = 0;
  std::memcpy(&length, frame.data() + sizeof(std::uint32_t), sizeof length);
  outcome.kind = SandboxOutcome::Kind::kOk;
  outcome.payload = frame.substr(2 * sizeof(std::uint32_t), length);
  return outcome;
}

}  // namespace calib::harness

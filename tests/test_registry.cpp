// Policy registry: every listed name constructs, unknown names are
// rejected, and per-policy params are plumbed through.
#include <gtest/gtest.h>

#include <stdexcept>

#include "online/driver.hpp"
#include "online/registry.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(Registry, EveryListedNameConstructs) {
  const PolicyRegistry& registry = PolicyRegistry::instance();
  EXPECT_GE(registry.names().size(), 7u);
  for (const std::string& name : registry.names()) {
    const auto policy = registry.make(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_NE(policy->name(), nullptr) << name;
    EXPECT_FALSE(registry.description(name).empty()) << name;
  }
}

TEST(Registry, CoreNamesAreRegistered) {
  for (const char* name :
       {"alg1", "alg2", "alg3", "eager", "ski", "periodic", "random"}) {
    EXPECT_TRUE(PolicyRegistry::instance().contains(name)) << name;
  }
}

TEST(Registry, UnknownNameRejected) {
  EXPECT_FALSE(PolicyRegistry::instance().contains("no-such-policy"));
  EXPECT_THROW((void)make_policy("no-such-policy"), std::runtime_error);
  EXPECT_THROW((void)PolicyRegistry::instance().description("no-such-policy"),
               std::runtime_error);
}

TEST(Registry, RegistryNameMatchesPolicyName) {
  // The registry name is what tables should print for the built-ins
  // whose policy self-name matches; ablation variants and baselines may
  // self-report differently (e.g. "ski" -> "ski-rental").
  for (const char* name : {"alg1", "alg2", "alg3", "eager", "periodic"}) {
    EXPECT_STREQ(make_policy(name)->name(), name);
  }
}

TEST(Registry, DuplicateRegistrationThrows) {
  EXPECT_THROW(PolicyRegistry::instance().add(
                   "alg1", "dup",
                   [](const PolicyParams&) {
                     return std::unique_ptr<OnlinePolicy>();
                   }),
               std::runtime_error);
}

TEST(Registry, ExternalPolicyCanBeRegistered) {
  PolicyRegistry& registry = PolicyRegistry::instance();
  const std::string name = "test-only-eager-alias";
  if (!registry.contains(name)) {
    registry.add(name, "registered by test_registry", [](const PolicyParams&) {
      return make_policy("eager");
    });
  }
  EXPECT_TRUE(registry.contains(name));
  const auto policy = registry.make(name);
  ASSERT_NE(policy, nullptr);
  EXPECT_STREQ(policy->name(), "eager");
}

TEST(Registry, RandomSeedIsPlumbed) {
  const Instance instance = regression_instance();
  const auto cost = [&](std::uint64_t seed) {
    PolicyParams params;
    params.seed = seed;
    const auto policy = make_policy("random", params);
    return online_objective(instance, /*G=*/9, *policy);
  };
  // Same seed twice -> identical run; the seed genuinely reaches the
  // policy, so *some* seed pair differs.
  EXPECT_EQ(cost(7), cost(7));
  bool any_difference = false;
  for (std::uint64_t seed = 0; seed < 32 && !any_difference; ++seed) {
    any_difference = cost(seed) != cost(7);
  }
  EXPECT_TRUE(any_difference);
}

TEST(Registry, PeriodicPeriodIsPlumbed) {
  // Arrivals spaced wider than one interval: a short cadence reacts at
  // the next even step, a long one strands late jobs until t % 11 == 0,
  // so the period reaching the policy shows up as strictly higher flow.
  const Instance instance(
      {Job{0, 1}, Job{10, 1}, Job{20, 1}},
      /*calibration_length=*/2, /*machines=*/1);
  PolicyParams short_period;
  short_period.period = 2;
  PolicyParams long_period;
  long_period.period = 11;
  const auto fast = make_policy("periodic", short_period);
  const auto slow = make_policy("periodic", long_period);
  const Schedule fast_schedule = run_online(instance, /*G=*/4, *fast);
  const Schedule slow_schedule = run_online(instance, /*G=*/4, *slow);
  EXPECT_LT(fast_schedule.weighted_flow(instance),
            slow_schedule.weighted_flow(instance));
}

}  // namespace
}  // namespace calib

file(REMOVE_RECURSE
  "CMakeFiles/bench_alg1.dir/bench_alg1.cpp.o"
  "CMakeFiles/bench_alg1.dir/bench_alg1.cpp.o.d"
  "bench_alg1"
  "bench_alg1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alg1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

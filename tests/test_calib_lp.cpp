// The Figure 1 LP: it must be a true relaxation (every schedule's
// canonical point is feasible with objective = its cost) and its optimum
// must lower-bound the exact OPT — with a nontrivial gap.
#include <gtest/gtest.h>

#include "lp/calib_lp.hpp"
#include "offline/brute_force.hpp"
#include "offline/budget_search.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(CalibLp, CanonicalPointOfOptimumIsFeasibleWithMatchingObjective) {
  Prng prng(1101);
  for (int trial = 0; trial < 12; ++trial) {
    const Instance instance = sparse_uniform_instance(
        4, 8, 3, 1, WeightModel::kUniform, 4, prng);
    const Cost G = prng.uniform_int(1, 10);
    const CalibrationLp lp(instance, G);
    const OfflineSolution opt = brute_force_online_objective(instance, G);
    ASSERT_TRUE(opt.feasible());
    const auto point = lp.canonical_point(*opt.schedule);
    EXPECT_NEAR(lp.max_violation(point), 0.0, 1e-9) << instance.to_string();
    EXPECT_NEAR(lp.objective_at(point),
                static_cast<double>(opt.schedule->online_cost(instance, G)),
                1e-9);
  }
}

TEST(CalibLp, CanonicalPointOfArbitraryScheduleIsFeasible) {
  // Not just optima: any valid schedule is a feasible primal point.
  Prng prng(1102);
  for (int trial = 0; trial < 12; ++trial) {
    const Instance instance = sparse_uniform_instance(
        4, 7, 2, 1, WeightModel::kUnit, 1, prng);
    const Cost G = 4;
    const CalibrationLp lp(instance, G);
    const OfflineSolution any = brute_force_budget(instance, 3);
    if (!any.feasible()) continue;
    const auto point = lp.canonical_point(*any.schedule);
    EXPECT_NEAR(lp.max_violation(point), 0.0, 1e-9);
  }
}

TEST(CalibLp, OptimumLowerBoundsExactOpt) {
  Prng prng(1103);
  for (int trial = 0; trial < 10; ++trial) {
    const Instance instance = sparse_uniform_instance(
        4, 8, 3, 1, WeightModel::kUniform, 3, prng);
    const Cost G = prng.uniform_int(1, 8);
    const double lp_value = lp_lower_bound(instance, G);
    const Cost opt = offline_online_optimum(instance, G).best_cost;
    EXPECT_LE(lp_value, static_cast<double>(opt) + 1e-6)
        << instance.to_string() << " G=" << G;
    // The bound is nontrivial: at least the everything-at-release flow
    // plus one calibration... conservatively, positive.
    EXPECT_GT(lp_value, 0.0);
  }
}

TEST(CalibLp, MultiMachineRelaxationStillLowerBounds) {
  Prng prng(1104);
  for (int trial = 0; trial < 6; ++trial) {
    const Instance instance = sparse_uniform_instance(
        4, 6, 2, 2, WeightModel::kUnit, 1, prng);
    const Cost G = 3;
    const double lp_value = lp_lower_bound(instance, G);
    const OfflineSolution opt = brute_force_online_objective(
        instance, G, StartCandidates::kExhaustive);
    ASSERT_TRUE(opt.feasible());
    EXPECT_LE(lp_value,
              static_cast<double>(opt.schedule->online_cost(instance, G)) +
                  1e-6);
  }
}

TEST(CalibLp, SingleJobBoundIsAlmostTight) {
  // One job: OPT = G + w. The LP can pay the calibration fractionally
  // over time but still must pay at least the job's final unit of flow.
  const Instance instance({Job{0, 2}}, 3);
  const double lp_value = lp_lower_bound(instance, 7);
  EXPECT_GT(lp_value, 2.0 - 1e-6);   // at least f_{r_j} = 1 step of flow
  EXPECT_LE(lp_value, 9.0 + 1e-6);  // at most OPT
}

TEST(CalibLp, VariableIndexingRoundTrips) {
  const Instance instance({Job{1, 1}, Job{3, 2}}, 2, 2);
  const CalibrationLp lp(instance, 5);
  // Distinct variables for distinct (t, j), (t, m), (j, m).
  EXPECT_NE(lp.f_var(1, 0), lp.f_var(2, 0));
  EXPECT_NE(lp.c_var(0, 0), lp.c_var(0, 1));
  EXPECT_NE(lp.a_var(0, 1), lp.a_var(1, 0));
  EXPECT_LT(lp.f_var(1, 0), lp.problem().num_vars);
  EXPECT_EQ(lp.calibration_lo(), 1 + 1 - 2);
}

}  // namespace
}  // namespace calib

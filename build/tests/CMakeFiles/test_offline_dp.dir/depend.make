# Empty dependencies file for test_offline_dp.
# This may be replaced when dependencies are built.

#include "online/sequences.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace calib {

bool interval_full(const Instance& instance, const Schedule& schedule,
                   Time start) {
  return static_cast<Time>(
             schedule.jobs_in_interval(0, start).size()) == instance.T();
}

std::vector<Sequence> partition_into_sequences(const Instance& instance,
                                               const Schedule& schedule) {
  CALIB_CHECK(instance.machines() == 1);
  const auto& starts = schedule.calendar().starts(0);
  for (std::size_t i = 1; i < starts.size(); ++i) {
    CALIB_CHECK_MSG(starts[i] >= starts[i - 1] + instance.T(),
                    "sequences are defined for non-overlapping intervals");
  }
  std::vector<Sequence> sequences;
  Sequence current;
  Time previous_end = std::numeric_limits<Time>::min();
  for (const Time start : starts) {
    if (!current.interval_starts.empty()) {
      current.interval_starts.push_back(start);
    } else {
      current.begin = previous_end == std::numeric_limits<Time>::min()
                          ? 0
                          : previous_end;
      current.interval_starts.push_back(start);
    }
    if (!interval_full(instance, schedule, start)) {
      // Non-full interval terminates the sequence.
      current.end = start + instance.T();
      previous_end = current.end;
      sequences.push_back(std::move(current));
      current = Sequence{};
    }
  }
  if (!current.interval_starts.empty()) {
    // Trailing all-full sequence (footnote 3: the last interval of the
    // schedule may be full).
    current.end = current.interval_starts.back() + instance.T();
    sequences.push_back(std::move(current));
  }
  return sequences;
}

Schedule release_order_optimum(const Instance& instance, Cost G) {
  CALIB_CHECK(instance.machines() == 1);
  CALIB_CHECK(!instance.empty());
  // FIFO assignment over a calendar: jobs in release order take slots
  // in time order — exactly the unweighted list scheduler's behavior,
  // so reuse its slot sweep with index order.
  const auto evaluate = [&](const std::vector<Time>& starts,
                            Schedule& out) -> Cost {
    Calendar calendar = Calendar::round_robin(starts, instance.T(), 1);
    Schedule schedule(calendar, instance.size());
    JobId next = 0;
    for (const auto& slot : calendar.slots()) {
      if (next >= instance.size()) break;
      if (instance.job(next).release <= slot.time) {
        schedule.place(next, 0, slot.time);
        ++next;
      }
    }
    if (next < instance.size()) return -1;  // infeasible
    out = schedule;
    return schedule.online_cost(instance, G);
  };

  // Candidate starts: every integer in the instance's active range
  // (exhaustive; OPT_r's structure is exactly what the tests probe, so
  // no unvalidated restriction is applied).
  std::vector<Time> candidates;
  for (Time s = instance.min_release() + 1 - instance.T();
       s <= instance.max_release(); ++s) {
    candidates.push_back(s);
  }
  Cost best_cost = -1;
  Schedule best(Calendar(instance.T(), 1), instance.size());
  std::vector<Time> chosen;
  auto search = [&](auto&& self, std::size_t from, int remaining) -> void {
    Schedule schedule(Calendar(instance.T(), 1), instance.size());
    if (!chosen.empty()) {
      const Cost cost = evaluate(chosen, schedule);
      if (cost >= 0 && (best_cost < 0 || cost < best_cost)) {
        best_cost = cost;
        best = schedule;
      }
    }
    if (remaining == 0) return;
    // Prune on calibration cost alone.
    if (best_cost >= 0 &&
        static_cast<Cost>(chosen.size() + 1) * G > best_cost) {
      return;
    }
    for (std::size_t i = from; i < candidates.size(); ++i) {
      chosen.push_back(candidates[i]);
      self(self, i + 1, remaining - 1);
      chosen.pop_back();
    }
  };
  search(search, 0, instance.size());
  CALIB_CHECK_MSG(best_cost >= 0, "n calibrations always feasible");
  CALIB_CHECK(!best.validate(instance).has_value());
  return best;
}

}  // namespace calib

#include "multitype/typed_calendar.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/check.hpp"

namespace calib {

TypedCalendar::TypedCalendar(std::vector<CalibrationType> types)
    : types_(std::move(types)) {
  CALIB_CHECK_MSG(!types_.empty(), "need at least one calibration type");
  for (const CalibrationType& type : types_) {
    CALIB_CHECK(type.length >= 1);
    CALIB_CHECK(type.cost >= 1);
  }
}

void TypedCalendar::add(Time start, int type) {
  CALIB_CHECK(type >= 0 && type < static_cast<int>(types_.size()));
  const Entry entry{start, type};
  entries_.insert(std::upper_bound(entries_.begin(), entries_.end(), entry,
                                   [](const Entry& a, const Entry& b) {
                                     return a.start < b.start;
                                   }),
                  entry);
}

Cost TypedCalendar::calibration_cost() const {
  Cost total = 0;
  for (const Entry& entry : entries_) {
    total += types_[static_cast<std::size_t>(entry.type)].cost;
  }
  return total;
}

bool TypedCalendar::covers(Time t) const {
  for (const Entry& entry : entries_) {
    if (entry.start > t) break;
    if (t < entry.start + types_[static_cast<std::size_t>(entry.type)].length)
      return true;
  }
  return false;
}

std::vector<Time> TypedCalendar::covered_slots() const {
  std::set<Time> slots;
  for (const Entry& entry : entries_) {
    const Time length = types_[static_cast<std::size_t>(entry.type)].length;
    for (Time t = entry.start; t < entry.start + length; ++t) {
      slots.insert(t);
    }
  }
  return {slots.begin(), slots.end()};
}

std::string TypedCalendar::to_string() const {
  std::ostringstream os;
  os << "TypedCalendar(";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) os << ' ';
    os << 't' << entries_[i].type << '@' << entries_[i].start;
  }
  os << ')';
  return os.str();
}

}  // namespace calib

file(REMOVE_RECURSE
  "CMakeFiles/bench_machine_min.dir/bench_machine_min.cpp.o"
  "CMakeFiles/bench_machine_min.dir/bench_machine_min.cpp.o.d"
  "bench_machine_min"
  "bench_machine_min.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_machine_min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

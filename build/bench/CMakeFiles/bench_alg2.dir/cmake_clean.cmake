file(REMOVE_RECURSE
  "CMakeFiles/bench_alg2.dir/bench_alg2.cpp.o"
  "CMakeFiles/bench_alg2.dir/bench_alg2.cpp.o.d"
  "bench_alg2"
  "bench_alg2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alg2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Coordinator-side run observability: the flight recorder and the live
// progress meter.
//
// Both consume the same stream of fleet decisions the coordinator
// already makes (spawn, lease, result, death, retry, shutdown) but
// serve different readers. The FlightRecorder writes a structured JSONL
// event log — one flat object per decision, flushed per line so a
// crashed run still leaves a readable prefix — which chaos tests assert
// against ("the killed worker's death was observed, then its lease was
// retried"). The ProgressMeter renders a periodic human status line to
// stderr: completion counts, a rolling-window throughput estimate with
// the ETA derived from it, and per-worker health judged by heartbeat
// age.
//
// Neither holds executor state: the coordinator pushes snapshots in.
// Both are inert (enabled() == false) when constructed without a
// stream, so the hot path pays one branch when the features are off.
#pragma once

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace calib::harness {

/// Structured JSONL log of coordinator fleet decisions. Event kinds
/// written by the executor: worker_spawn, lease, result, worker_death,
/// retry, cell_terminal, shutdown. Every line carries "t_ms" (run
/// clock) and "event"; the remaining fields are kind-specific strings.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::ostream* os = nullptr) : os_(os) {}

  [[nodiscard]] bool enabled() const { return os_ != nullptr; }

  /// Append one event line and flush it (a dying run must not lose the
  /// events leading up to the death — that is the log's whole point).
  void event(
      double t_ms, const char* kind,
      std::initializer_list<std::pair<const char*, std::string>> fields = {});

 private:
  std::ostream* os_;
};

/// One worker's health as the progress meter shows it.
struct WorkerHealth {
  int worker = -1;
  bool alive = false;
  bool lost = false;  ///< dead before clean shutdown (vs. exited)
  double heartbeat_age_ms = 0.0;
  std::int64_t lease = -1;  ///< in-flight cell (-1 = idle)
};

/// Periodic one-line status renderer. The rate is a rolling-window
/// estimate (completions over the last ~10 samples), so the ETA tracks
/// current throughput instead of averaging in a slow warm-up.
class ProgressMeter {
 public:
  /// `stale_after_ms`: heartbeat age past which a live worker is shown
  /// as stale (typically a few heartbeat intervals — lagging, but not
  /// yet past the kill timeout).
  ProgressMeter(std::ostream* os, std::size_t total, double interval_ms,
                double stale_after_ms);

  [[nodiscard]] bool enabled() const { return os_ != nullptr; }

  /// True once interval_ms has elapsed since the last render.
  [[nodiscard]] bool due(double now_ms) const;

  /// Render one status line. `done` counts resolved cells (ok + failed
  /// + skipped), `failed` the terminal non-ok ones, `retries` the
  /// leases re-queued so far.
  void render(double now_ms, std::size_t done, std::size_t failed,
              std::size_t retries, const std::vector<WorkerHealth>& workers);

 private:
  std::ostream* os_;
  std::size_t total_;
  double interval_ms_;
  double stale_after_ms_;
  double last_render_ms_ = -1e300;
  std::deque<std::pair<double, std::size_t>> window_;  ///< (t_ms, done)
};

}  // namespace calib::harness

# Empty compiler generated dependencies file for test_alg4.
# This may be replaced when dependencies are built.

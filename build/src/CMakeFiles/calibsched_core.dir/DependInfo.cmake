
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calendar.cpp" "src/CMakeFiles/calibsched_core.dir/core/calendar.cpp.o" "gcc" "src/CMakeFiles/calibsched_core.dir/core/calendar.cpp.o.d"
  "/root/repo/src/core/critical.cpp" "src/CMakeFiles/calibsched_core.dir/core/critical.cpp.o" "gcc" "src/CMakeFiles/calibsched_core.dir/core/critical.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/CMakeFiles/calibsched_core.dir/core/instance.cpp.o" "gcc" "src/CMakeFiles/calibsched_core.dir/core/instance.cpp.o.d"
  "/root/repo/src/core/list_scheduler.cpp" "src/CMakeFiles/calibsched_core.dir/core/list_scheduler.cpp.o" "gcc" "src/CMakeFiles/calibsched_core.dir/core/list_scheduler.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/CMakeFiles/calibsched_core.dir/core/schedule.cpp.o" "gcc" "src/CMakeFiles/calibsched_core.dir/core/schedule.cpp.o.d"
  "/root/repo/src/core/schedule_io.cpp" "src/CMakeFiles/calibsched_core.dir/core/schedule_io.cpp.o" "gcc" "src/CMakeFiles/calibsched_core.dir/core/schedule_io.cpp.o.d"
  "/root/repo/src/core/svg.cpp" "src/CMakeFiles/calibsched_core.dir/core/svg.cpp.o" "gcc" "src/CMakeFiles/calibsched_core.dir/core/svg.cpp.o.d"
  "/root/repo/src/core/transform.cpp" "src/CMakeFiles/calibsched_core.dir/core/transform.cpp.o" "gcc" "src/CMakeFiles/calibsched_core.dir/core/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/calibsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

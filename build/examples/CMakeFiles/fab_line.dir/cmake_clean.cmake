file(REMOVE_RECURSE
  "CMakeFiles/fab_line.dir/fab_line.cpp.o"
  "CMakeFiles/fab_line.dir/fab_line.cpp.o.d"
  "fab_line"
  "fab_line.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fab_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

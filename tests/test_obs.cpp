// Tests for the calib::obs layer: exact counter/histogram merges under
// the thread pool, snapshot serialization round trips, trace-export
// well-formedness (valid JSON, proper per-thread span nesting), and —
// most importantly — that turning the instrumentation on changes no
// solver output (golden objectives and sweep rows stay byte-identical).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/journal.hpp"
#include "harness/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "offline/budget_search.hpp"
#include "online/alg2_weighted.hpp"
#include "online/driver.hpp"
#include "util/thread_pool.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

// Minimal JSON well-formedness checker (objects, arrays, strings with
// escapes, numbers, literals). Enough to reject anything structurally
// broken in the exported snapshot/trace without a JSON dependency.
class JsonValidator {
 public:
  [[nodiscard]] static bool valid(const std::string& text) {
    JsonValidator v(text);
    v.ws();
    if (!v.value()) return false;
    v.ws();
    return v.i_ == text.size();
  }

 private:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  void ws() {
    while (i_ < text_.size() &&
           (text_[i_] == ' ' || text_[i_] == '\t' || text_[i_] == '\n' ||
            text_[i_] == '\r')) {
      ++i_;
    }
  }
  [[nodiscard]] bool expect(char c) {
    if (i_ >= text_.size() || text_[i_] != c) return false;
    ++i_;
    return true;
  }
  [[nodiscard]] bool peek(char c) const {
    return i_ < text_.size() && text_[i_] == c;
  }
  [[nodiscard]] bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!expect(*p)) return false;
    }
    return true;
  }
  [[nodiscard]] bool value() {
    if (i_ >= text_.size()) return false;
    switch (text_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  [[nodiscard]] bool object() {
    if (!expect('{')) return false;
    ws();
    if (peek('}')) return expect('}');
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (!expect(':')) return false;
      ws();
      if (!value()) return false;
      ws();
      if (peek(',')) {
        ++i_;
        continue;
      }
      return expect('}');
    }
  }
  [[nodiscard]] bool array() {
    if (!expect('[')) return false;
    ws();
    if (peek(']')) return expect(']');
    for (;;) {
      ws();
      if (!value()) return false;
      ws();
      if (peek(',')) {
        ++i_;
        continue;
      }
      return expect(']');
    }
  }
  [[nodiscard]] bool string() {
    if (!expect('"')) return false;
    while (i_ < text_.size()) {
      const char c = text_[i_];
      ++i_;
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') continue;
      if (i_ >= text_.size()) return false;
      const char escape = text_[i_];
      ++i_;
      if (escape == 'u') {
        for (int k = 0; k < 4; ++k) {
          if (i_ >= text_.size() ||
              std::isxdigit(static_cast<unsigned char>(text_[i_])) == 0) {
            return false;
          }
          ++i_;
        }
      } else if (std::string("\"\\/bfnrt").find(escape) ==
                 std::string::npos) {
        return false;
      }
    }
    return false;
  }
  [[nodiscard]] bool number() {
    const std::size_t start = i_;
    if (peek('-')) ++i_;
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
          c != 'e' && c != 'E' && c != '+' && c != '-') {
        break;
      }
      ++i_;
    }
    return i_ > start;
  }

  const std::string& text_;
  std::size_t i_ = 0;
};

harness::SweepGrid small_grid() {
  harness::WorkloadSpec spec;
  spec.kind = "poisson";
  spec.rate = 0.4;
  spec.steps = 16;
  spec.T = 3;
  harness::SweepGrid grid;
  grid.workloads = {spec};
  grid.solvers = {"alg1", "alg2"};
  grid.G_values = {5, 9};
  grid.seeds = 2;
  grid.base_seed = 7;
  grid.compare_to_opt = true;
  grid.threads = 1;
  return grid;
}

#if CALIBSCHED_OBS

std::string strip_ws(std::string s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == ' ')) s.pop_back();
  return s;
}

TEST(Metrics, CountersMergeExactlyAcrossThreads) {
  obs::MetricsRegistry registry;
  const obs::Counter ops = registry.counter("ops");
  constexpr std::size_t kAdds = 100000;
  ThreadPool pool(4);
  pool.parallel_for(kAdds, [&](std::size_t) { ops.add(); });
  EXPECT_EQ(registry.snapshot().counters.at("ops"), kAdds);
  EXPECT_EQ(ops.value(), kAdds);
}

TEST(Metrics, SameNameResolvesToTheSameMetric) {
  obs::MetricsRegistry registry;
  const obs::Counter a = registry.counter("shared");
  const obs::Counter b = registry.counter("shared");
  a.add(3);
  b.add(4);
  EXPECT_EQ(registry.snapshot().counters.at("shared"), 7u);
}

TEST(Metrics, GaugeTracksTheCurrentLevel) {
  obs::MetricsRegistry registry;
  const obs::Gauge depth = registry.gauge("depth");
  depth.set(5);
  depth.add(-2);
  depth.add(-4);
  EXPECT_EQ(depth.value(), -1);
  EXPECT_EQ(registry.snapshot().gauges.at("depth"), -1);
}

TEST(Metrics, HistogramStatsAreExactWhereExactnessIsPromised) {
  obs::MetricsRegistry registry;
  const obs::Histogram h = registry.histogram("h");
  double sum = 0.0;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    h.record(v);
    sum += static_cast<double>(v);
  }
  const obs::HistogramStats stats =
      registry.snapshot().histograms.at("h");
  EXPECT_EQ(stats.count, 1000u);
  EXPECT_DOUBLE_EQ(stats.sum, sum);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 1000.0);
  // Percentiles are bucket-interpolated estimates: ordered and inside
  // [min, max], with p50 in the right power-of-two neighborhood.
  EXPECT_LE(stats.min, stats.p50);
  EXPECT_LE(stats.p50, stats.p90);
  EXPECT_LE(stats.p90, stats.p99);
  EXPECT_LE(stats.p99, stats.max);
  EXPECT_GE(stats.p50, 256.0);
  EXPECT_LE(stats.p50, 768.0);
}

TEST(Metrics, ConcurrentHistogramRecordsAreAllCounted) {
  obs::MetricsRegistry registry;
  const obs::Histogram h = registry.histogram("h");
  constexpr std::size_t kRecords = 50000;
  ThreadPool pool(4);
  pool.parallel_for(kRecords,
                    [&](std::size_t i) { h.record(i % 1024); });
  const obs::HistogramStats stats =
      registry.snapshot().histograms.at("h");
  EXPECT_EQ(stats.count, kRecords);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 1023.0);
}

TEST(Metrics, RegistrationPastTheCapThrows) {
  obs::MetricsRegistry registry;
  for (std::size_t i = 0; i < obs::MetricsRegistry::kMaxCounters; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    (void)registry.counter(name);
  }
  EXPECT_THROW((void)registry.counter("one-too-many"),
               std::runtime_error);
  // Existing names still resolve after the cap is hit.
  registry.counter("c0").add();
  EXPECT_EQ(registry.snapshot().counters.at("c0"), 1u);
}

TEST(Metrics, ResetZeroesValuesButKeepsHandles) {
  obs::MetricsRegistry registry;
  const obs::Counter c = registry.counter("c");
  const obs::Histogram h = registry.histogram("h");
  c.add(9);
  h.record(4);
  registry.reset();
  EXPECT_EQ(registry.snapshot().counters.at("c"), 0u);
  EXPECT_EQ(registry.snapshot().histograms.at("h").count, 0u);
  c.add(2);
  EXPECT_EQ(registry.snapshot().counters.at("c"), 2u);
}

TEST(Metrics, SnapshotJsonRoundTripsThroughTheFlatParser) {
  obs::MetricsRegistry registry;
  registry.counter("sweep.cells").add(42);
  registry.gauge("pool.depth").set(-3);
  const obs::Histogram h = registry.histogram("cell_us");
  h.record(10);
  h.record(1000);
  const std::string json = strip_ws(registry.snapshot().to_json());
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  const auto fields = harness::parse_flat_json(json);
  EXPECT_EQ(fields.at("sweep.cells"), "42");
  EXPECT_EQ(fields.at("pool.depth"), "-3");
  EXPECT_EQ(fields.at("cell_us.count"), "2");
  EXPECT_EQ(fields.at("cell_us.min"), "10");
  EXPECT_EQ(fields.at("cell_us.max"), "1000");
  EXPECT_EQ(fields.at("cell_us.sum"), "1010");
  // The text form mentions every metric by name.
  const std::string text = registry.snapshot().to_text();
  EXPECT_NE(text.find("sweep.cells"), std::string::npos);
  EXPECT_NE(text.find("cell_us.p99"), std::string::npos);
}

TEST(Trace, SpansNestProperlyAndExportValidChromeJson) {
  obs::TraceCollector& collector = obs::tracer();
  collector.clear();
  collector.set_enabled(true);
  {
    obs::ScopedSpan outer("outer", "test");
    outer.arg("grid", "e3 \"quoted\"");
    const obs::ScopedSpan inner("inner", "test");
  }
  {
    ThreadPool pool(3);
    pool.parallel_for(32, [](std::size_t) {
      const obs::ScopedSpan span("task", "test");
    });
  }
  collector.set_enabled(false);

  const std::vector<obs::TraceEvent> events = collector.events();
  std::size_t outer_count = 0;
  std::size_t inner_count = 0;
  std::size_t task_count = 0;
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  for (const obs::TraceEvent& event : events) {
    if (event.name == "outer") {
      ++outer_count;
      outer = &event;
    } else if (event.name == "inner") {
      ++inner_count;
      inner = &event;
    } else if (event.name == "task") {
      ++task_count;
    }
  }
  EXPECT_EQ(outer_count, 1u);
  EXPECT_EQ(inner_count, 1u);
  EXPECT_EQ(task_count, 32u);
  EXPECT_EQ(collector.dropped(), 0u);

  // The inner span is contained in the outer one, on the same track.
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_LE(outer->ts_ns, inner->ts_ns);
  EXPECT_GE(outer->ts_ns + outer->dur_ns, inner->ts_ns + inner->dur_ns);

  // Well-formedness per track: sorted by start, and any two spans on a
  // track either nest or are disjoint — never partially overlap.
  std::map<std::uint32_t, std::vector<const obs::TraceEvent*>> tracks;
  for (const obs::TraceEvent& event : events) {
    tracks[event.tid].push_back(&event);
  }
  for (const auto& [tid, track] : tracks) {
    std::vector<std::uint64_t> open_ends;
    std::uint64_t last_ts = 0;
    for (const obs::TraceEvent* event : track) {
      EXPECT_GE(event->ts_ns, last_ts) << "tid " << tid;
      last_ts = event->ts_ns;
      const std::uint64_t end = event->ts_ns + event->dur_ns;
      while (!open_ends.empty() && open_ends.back() <= event->ts_ns) {
        open_ends.pop_back();
      }
      if (!open_ends.empty()) {
        EXPECT_LE(end, open_ends.back()) << "partial overlap on " << tid;
      }
      open_ends.push_back(end);
    }
  }

  std::ostringstream os;
  collector.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonValidator::valid(json));
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  // The span arg made it through, escaped.
  EXPECT_NE(json.find("e3 \\\"quoted\\\""), std::string::npos);
  collector.clear();
}

TEST(Trace, EventsPastTheBufferCapAreDroppedNotGrown) {
  obs::TraceCollector& collector = obs::tracer();
  collector.clear();
  collector.set_enabled(true);
  const std::size_t cap = obs::TraceCollector::kMaxEventsPerThread;
  for (std::size_t i = 0; i < cap + 100; ++i) {
    const obs::ScopedSpan span("tick", "test");
  }
  collector.set_enabled(false);
  EXPECT_EQ(collector.events().size(), cap);
  EXPECT_GE(collector.dropped(), 100u);
  // The export is still valid JSON at capacity.
  std::ostringstream os;
  collector.write_chrome_trace(os);
  EXPECT_TRUE(JsonValidator::valid(os.str()));
  collector.clear();
}

#endif  // CALIBSCHED_OBS

TEST(ObsSpans, ScopedSpanMeasuresTimeEvenWhenRecordingIsOff) {
  // The sweep engine reads wall_ms off spans with the collector
  // disabled (and with CALIBSCHED_OBS=0), so elapsed time must be real
  // in every configuration.
  const obs::ScopedSpan span("probe", "test");
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GT(span.elapsed_ns(), 0u);
  EXPECT_GE(span.elapsed_ms(), 0.0);
}

TEST(ObsDeterminism, GoldenObjectivesUnchangedUnderTracing) {
  // Instrumentation must be observation only: with the collector
  // recording, every solver reproduces the exact golden values pinned
  // by test_golden.
  obs::tracer().clear();
  obs::tracer().set_enabled(true);
  const Instance instance = regression_instance();
  const struct {
    Cost G;
    Cost alg2;
    Cost opt;
  } rows[] = {{3, 22, 22}, {7, 33, 30}, {15, 59, 46}, {40, 155, 96}};
  for (const auto& row : rows) {
    Alg2Weighted alg2;
    EXPECT_EQ(online_objective(instance, row.G, alg2), row.alg2)
        << "G=" << row.G;
    EXPECT_EQ(offline_online_optimum(instance, row.G).best_cost, row.opt)
        << "G=" << row.G;
  }
  obs::tracer().set_enabled(false);
  obs::tracer().clear();
}

TEST(ObsDeterminism, SweepRowsAndCacheStatsAreIdenticalAcrossRuns) {
  // The dp-cache accessors report per-cache deltas against the global
  // registry, so a second sweep in the same process must see the same
  // hit/miss profile as the first — and identical rows.
  const harness::SweepGrid grid = small_grid();
  const harness::SweepReport a = harness::SweepEngine(grid).run();
  const harness::SweepReport b = harness::SweepEngine(grid).run();
  // 8 cells over 2 distinct instances (1 workload x 2 seeds): the DP
  // runs twice, every other lookup hits.
  EXPECT_EQ(a.timing.dp_cache_misses, 2u);
  EXPECT_EQ(a.timing.dp_cache_hits, 6u);
  EXPECT_EQ(b.timing.dp_cache_misses, a.timing.dp_cache_misses);
  EXPECT_EQ(b.timing.dp_cache_hits, a.timing.dp_cache_hits);
  std::ostringstream ja;
  std::ostringstream jb;
  a.write_jsonl(ja);
  b.write_jsonl(jb);
  EXPECT_EQ(ja.str(), jb.str());
  // Every executed cell carries a real wall-time reading.
  for (const harness::SweepRow& row : a.rows) {
    EXPECT_GT(row.result.wall_ms, 0.0) << "cell " << row.cell;
  }
}

#if CALIBSCHED_OBS
TEST(Metrics, SnapshotsCarryRawBucketsMatchingTheCount) {
  obs::MetricsRegistry registry;
  const obs::Histogram h = registry.histogram("h");
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  const obs::HistogramStats stats = registry.snapshot().histograms.at("h");
  ASSERT_EQ(stats.buckets.size(), obs::kHistogramBuckets);
  std::uint64_t total = 0;
  for (const std::uint64_t b : stats.buckets) total += b;
  EXPECT_EQ(total, stats.count);
  // The snapshot's own percentiles equal what the public interpolator
  // derives from those buckets (clamped to the observed [min, max]) —
  // one percentile algorithm, not two.
  EXPECT_DOUBLE_EQ(
      stats.p50, obs::histogram_percentile(stats.buckets, stats.count, 0.50));
  EXPECT_DOUBLE_EQ(
      stats.p99,
      std::min(obs::histogram_percentile(stats.buckets, stats.count, 0.99),
               stats.max));
}
#endif  // CALIBSCHED_OBS

TEST(Metrics, BucketIndexMatchesTheLog2Contract) {
  EXPECT_EQ(obs::histogram_bucket_index(0), 0u);
  EXPECT_EQ(obs::histogram_bucket_index(1), 1u);
  EXPECT_EQ(obs::histogram_bucket_index(2), 2u);
  EXPECT_EQ(obs::histogram_bucket_index(3), 2u);
  EXPECT_EQ(obs::histogram_bucket_index(4), 3u);
  EXPECT_EQ(obs::histogram_bucket_index(1024), 11u);
  EXPECT_LT(obs::histogram_bucket_index(~std::uint64_t{0}),
            obs::kHistogramBuckets);
}

// ---- Timeline ---------------------------------------------------------

obs::Snapshot cumulative_snapshot(std::uint64_t cells, std::int64_t depth) {
  obs::Snapshot snapshot;
  snapshot.counters["sweep.cells_ok"] = cells;
  snapshot.gauges["queue.depth"] = depth;
  obs::HistogramStats h;
  h.count = cells;
  h.sum = static_cast<double>(cells) * 10.0;
  snapshot.histograms["cell_us"] = h;
  return snapshot;
}

TEST(Timeline, RecordsPerSourceDeltasAndGaugeLevels) {
  obs::Timeline timeline;
  timeline.record("worker-0", 100.0, cumulative_snapshot(3, 5));
  timeline.record("worker-1", 110.0, cumulative_snapshot(2, 1));
  timeline.record("worker-0", 200.0, cumulative_snapshot(8, 2));
  ASSERT_EQ(timeline.samples().size(), 3u);
  // First sample of a source is its full snapshot...
  const auto& first = timeline.samples()[0];
  EXPECT_EQ(first.source, "worker-0");
  EXPECT_EQ(first.counters.at("sweep.cells_ok"), 3u);
  EXPECT_EQ(first.gauges.at("queue.depth"), 5);
  EXPECT_EQ(first.histograms.at("cell_us").count, 3u);
  // ...later samples are deltas against that source (not worker-1).
  const auto& third = timeline.samples()[2];
  EXPECT_EQ(third.source, "worker-0");
  EXPECT_EQ(third.counters.at("sweep.cells_ok"), 5u);
  EXPECT_EQ(third.gauges.at("queue.depth"), 2);  // gauges stay levels
  EXPECT_EQ(third.histograms.at("cell_us").count, 5u);
  EXPECT_DOUBLE_EQ(third.histograms.at("cell_us").sum, 50.0);
}

TEST(Timeline, BackwardsCountersRestartTheBaseline) {
  // A worker that reset its registry reports a *smaller* cumulative
  // value; the delta must restart at the new value, not underflow.
  obs::Timeline timeline;
  timeline.record("w", 0.0, cumulative_snapshot(100, 0));
  timeline.record("w", 1.0, cumulative_snapshot(4, 0));
  EXPECT_EQ(timeline.samples()[1].counters.at("sweep.cells_ok"), 4u);
}

TEST(Timeline, ZeroDeltasAreElided) {
  obs::Timeline timeline;
  timeline.record("w", 0.0, cumulative_snapshot(7, 3));
  timeline.record("w", 1.0, cumulative_snapshot(7, 3));
  const auto& idle = timeline.samples()[1];
  EXPECT_TRUE(idle.counters.empty());
  EXPECT_TRUE(idle.histograms.empty());
  EXPECT_EQ(idle.gauges.at("queue.depth"), 3);  // levels always present
}

TEST(Timeline, JsonlRoundTripsAndTornLinesAreSkippedNotFatal) {
  obs::Timeline timeline;
  timeline.record("worker-0", 12.5, cumulative_snapshot(3, 5));
  timeline.record("worker-0", 99.25, cumulative_snapshot(9, 1));
  std::ostringstream os;
  timeline.write_jsonl(os);

  // Sandwich the good lines between garbage and a torn tail — the
  // classic shapes of a writer dying mid-stream.
  std::string text = "this is not json\n" + os.str();
  text += "{\"t_ms\":120.0,\"source\":\"worker-0\",\"c:sweep.cel";  // torn

  std::istringstream is(text);
  std::size_t skipped = 0;
  const obs::Timeline back = obs::Timeline::load_jsonl(is, &skipped);
  EXPECT_EQ(skipped, 2u);
  ASSERT_EQ(back.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(back.samples()[0].t_ms, 12.5);
  EXPECT_EQ(back.samples()[0].counters.at("sweep.cells_ok"), 3u);
  EXPECT_EQ(back.samples()[1].counters.at("sweep.cells_ok"), 6u);
  EXPECT_DOUBLE_EQ(back.samples()[1].histograms.at("cell_us").sum, 60.0);
  EXPECT_EQ(back.samples()[1].gauges.at("queue.depth"), 1);
}

TEST(Timeline, LinesWithoutTimestampOrSourceAreSkipped) {
  std::istringstream is(
      "{\"t_ms\":1.0,\"c:x\":1}\n"          // no source
      "{\"source\":\"w\",\"c:x\":1}\n"      // no t_ms
      "{\"t_ms\":2.0,\"source\":\"w\"}\n"   // minimal but valid
      "{\"t_ms\":3.0,\"source\":\"w\",\"bogus\":1}\n");  // unprefixed key
  std::size_t skipped = 0;
  const obs::Timeline back = obs::Timeline::load_jsonl(is, &skipped);
  EXPECT_EQ(skipped, 3u);
  ASSERT_EQ(back.samples().size(), 1u);
  EXPECT_DOUBLE_EQ(back.samples()[0].t_ms, 2.0);
}

}  // namespace
}  // namespace calib

#include "core/svg.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace calib {
namespace {

std::string escape(const std::string& text) {
  std::string out;
  for (const char ch : text) {
    switch (ch) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

}  // namespace

std::string render_svg(const Instance& instance, const Schedule& schedule,
                       const SvgOptions& options) {
  CALIB_CHECK(!schedule.validate(instance).has_value());
  const Calendar& calendar = schedule.calendar();

  Time lo = instance.empty() ? 0 : instance.min_release();
  Time hi = calendar.horizon();
  for (MachineId m = 0; m < calendar.machines(); ++m) {
    for (const auto& run : calendar.runs(m)) lo = std::min(lo, run.begin);
  }
  hi = std::max(hi, lo + 1);

  const int header = options.title.empty() ? 18 : 40;
  const auto x_of = [&](Time t) {
    return static_cast<long long>(t - lo) * options.cell_width + 40;
  };
  const int width =
      static_cast<int>(x_of(hi)) + options.cell_width;
  const int height =
      header + calendar.machines() * options.lane_height + 24;

  Weight w_max = 1;
  for (const Job& job : instance.jobs()) w_max = std::max(w_max, job.weight);

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" font-family=\"monospace\">\n";
  if (!options.title.empty()) {
    svg << "  <text x=\"8\" y=\"20\" font-size=\"14\">"
        << escape(options.title) << "</text>\n";
  }
  // Lanes with calibration bands.
  for (MachineId m = 0; m < calendar.machines(); ++m) {
    const int y = header + m * options.lane_height;
    svg << "  <text x=\"4\" y=\"" << y + options.lane_height / 2 + 4
        << "\" font-size=\"11\">m" << m << "</text>\n";
    for (const auto& run : calendar.runs(m)) {
      svg << "  <rect x=\"" << x_of(run.begin) << "\" y=\"" << y + 4
          << "\" width=\""
          << (run.end - run.begin) * options.cell_width << "\" height=\""
          << options.lane_height - 8
          << "\" fill=\"#cfe3f7\" stroke=\"#5588bb\"/>\n";
    }
  }
  // Jobs.
  for (JobId j = 0; j < instance.size(); ++j) {
    const Placement& p = schedule.placement(j);
    const int y = header + p.machine * options.lane_height;
    const double opacity =
        0.45 + 0.55 * static_cast<double>(instance.job(j).weight) /
                   static_cast<double>(w_max);
    svg << "  <rect x=\"" << x_of(p.start) + 1 << "\" y=\"" << y + 8
        << "\" width=\"" << options.cell_width - 2 << "\" height=\""
        << options.lane_height - 16
        << "\" fill=\"#e2742f\" fill-opacity=\"" << opacity
        << "\" stroke=\"#7a3a10\">\n"
        << "    <title>job " << j << ": r=" << instance.job(j).release
        << " w=" << instance.job(j).weight << " start=" << p.start
        << "</title>\n  </rect>\n";
  }
  // Release tick marks.
  if (options.show_releases) {
    for (const Job& job : instance.jobs()) {
      const int y = header + calendar.machines() * options.lane_height;
      svg << "  <line x1=\"" << x_of(job.release) << "\" y1=\"" << y + 2
          << "\" x2=\"" << x_of(job.release) << "\" y2=\"" << y + 10
          << "\" stroke=\"#333\"/>\n";
    }
  }
  // Time axis labels every 5 steps.
  for (Time t = lo; t <= hi; t += 5) {
    svg << "  <text x=\"" << x_of(t) << "\" y=\"" << height - 4
        << "\" font-size=\"9\">" << t << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

}  // namespace calib

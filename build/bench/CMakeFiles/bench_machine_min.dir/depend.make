# Empty dependencies file for bench_machine_min.
# This may be replaced when dependencies are built.

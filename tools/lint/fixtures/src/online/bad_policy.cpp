// Known-bad fixture for the policy-driver-isolation rule: a policy
// translation unit that includes the driver header and names
// OnlineDriver directly instead of going through DriverHandle.
#include "online/driver.hpp"

namespace calib {

void peek_past_the_handle(OnlineDriver& driver) {
  // A policy reading driver internals sees state the online model does
  // not reveal; both the include above and the identifier here must be
  // findings. This mention of OnlineDriver inside a comment must NOT
  // count.
  (void)driver;
}

}  // namespace calib

#include "multitype/multitype_sched.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>

#include "util/check.hpp"

namespace calib {

Cost MultitypeSchedule::flow(const Instance& instance) const {
  CALIB_CHECK(static_cast<int>(start.size()) == instance.size());
  Cost total = 0;
  for (JobId j = 0; j < instance.size(); ++j) {
    const Time s = start[static_cast<std::size_t>(j)];
    CALIB_CHECK_MSG(s != kUnscheduled, "job " << j << " unscheduled");
    total += instance.job(j).weight * (s + 1 - instance.job(j).release);
  }
  return total;
}

std::optional<std::string> MultitypeSchedule::validate(
    const Instance& instance) const {
  if (static_cast<int>(start.size()) != instance.size()) {
    return "start vector size mismatch";
  }
  std::set<Time> used;
  for (JobId j = 0; j < instance.size(); ++j) {
    const Time s = start[static_cast<std::size_t>(j)];
    const std::string tag = "job " + std::to_string(j);
    if (s == kUnscheduled) return tag + " unscheduled";
    if (s < instance.job(j).release) return tag + " before release";
    if (!calendar.covers(s)) return tag + " at uncovered step";
    if (!used.insert(s).second) return tag + " collides";
  }
  return std::nullopt;
}

MultitypeSchedule assign_multitype(const Instance& instance,
                                   const TypedCalendar& calendar) {
  CALIB_CHECK_MSG(instance.machines() == 1,
                  "multitype scheduling is single-machine");
  MultitypeSchedule schedule{calendar, std::vector<Time>(
                                           static_cast<std::size_t>(
                                               instance.size()),
                                           kUnscheduled)};
  std::deque<JobId> waiting;
  JobId next = 0;
  for (const Time slot : calendar.covered_slots()) {
    while (next < instance.size() && instance.job(next).release <= slot) {
      waiting.push_back(next);
      ++next;
    }
    if (!waiting.empty()) {
      schedule.start[static_cast<std::size_t>(waiting.front())] = slot;
      waiting.pop_front();
    }
  }
  return schedule;
}

MultitypeSchedule online_multitype(
    const Instance& instance, const std::vector<CalibrationType>& types) {
  CALIB_CHECK_MSG(instance.machines() == 1,
                  "multitype scheduling is single-machine");
  CALIB_CHECK_MSG(instance.is_unweighted(),
                  "the online multitype heuristic is unweighted");
  TypedCalendar calendar(types);
  std::vector<Time> start(static_cast<std::size_t>(instance.size()),
                          kUnscheduled);
  std::deque<JobId> waiting;
  JobId next = 0;
  Time t = instance.empty() ? 0 : instance.min_release();
  int placed = 0;
  // Generous guard: every trigger fires within min G_k steps of queue
  // pressure existing.
  Cost min_cost = types.front().cost;
  for (const CalibrationType& type : types) {
    min_cost = std::min(min_cost, type.cost);
  }
  const Time guard = instance.horizon() + min_cost +
                     static_cast<Time>(instance.size()) + 8;
  while (placed < instance.size()) {
    CALIB_CHECK_MSG(t <= guard, "multitype online failed to drain");
    while (next < instance.size() && instance.job(next).release <= t) {
      waiting.push_back(next);
      ++next;
    }
    if (!calendar.covers(t) && !waiting.empty()) {
      // Hypothetical queue flow if drained from t + 1 (Algorithm 1's f).
      Cost f = 0;
      Time slot = t + 1;
      for (const JobId j : waiting) {
        f += slot + 1 - instance.job(j).release;
        ++slot;
      }
      // Pick the type with the best cost per reachable job *first*,
      // then wait for that type's own trigger — buying a type the
      // moment some other type's trigger fires overpays on lone jobs
      // (a full recalibration for one waiting job).
      //
      // "Reachable" counts the queue plus the arrivals the interval
      // can expect to absorb, estimated from the observed arrival rate
      // (online-legitimate: only the past is consulted). Without the
      // rate term a long interval never looks good — queues stay short
      // precisely because calibrating drains them.
      int best_type = 0;
      double best_score = std::numeric_limits<double>::infinity();
      const auto queue_size = static_cast<Cost>(waiting.size());
      const double elapsed =
          static_cast<double>(t - instance.min_release() + 1);
      const double rate = static_cast<double>(next) / elapsed;
      for (std::size_t k = 0; k < types.size(); ++k) {
        const double reachable = std::min(
            static_cast<double>(types[k].length),
            static_cast<double>(queue_size) +
                rate * static_cast<double>(types[k].length));
        const double score =
            static_cast<double>(types[k].cost) / reachable;
        if (score < best_score) {
          best_score = score;
          best_type = static_cast<int>(k);
        }
      }
      const CalibrationType& chosen =
          types[static_cast<std::size_t>(best_type)];
      if (queue_size * chosen.length >= chosen.cost || f >= chosen.cost) {
        calendar.add(t, best_type);
      }
    }
    if (calendar.covers(t) && !waiting.empty()) {
      start[static_cast<std::size_t>(waiting.front())] = t;
      waiting.pop_front();
      ++placed;
    }
    ++t;
  }
  return MultitypeSchedule{std::move(calendar), std::move(start)};
}

namespace {

void search_multitype(const Instance& instance,
                      const std::vector<CalibrationType>& types,
                      const std::vector<Time>& candidate_starts,
                      std::size_t from, int remaining,
                      TypedCalendar& calendar, Cost& best_cost,
                      MultitypeSchedule& best) {
  // Evaluate the current calendar.
  MultitypeSchedule schedule = assign_multitype(instance, calendar);
  const bool complete =
      std::none_of(schedule.start.begin(), schedule.start.end(),
                   [](Time s) { return s == kUnscheduled; });
  if (complete) {
    const Cost cost = schedule.total_cost(instance);
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best = schedule;
    }
  }
  if (remaining == 0) return;
  // Prune: even with every job at flow 1 (the minimum), this branch
  // cannot beat the incumbent.
  if (best_cost >= 0 &&
      calendar.calibration_cost() + instance.total_weight() >= best_cost) {
    return;
  }
  for (std::size_t i = from; i < candidate_starts.size(); ++i) {
    for (std::size_t k = 0; k < types.size(); ++k) {
      TypedCalendar extended = calendar;
      extended.add(candidate_starts[i], static_cast<int>(k));
      search_multitype(instance, types, candidate_starts, i + 1,
                       remaining - 1, extended, best_cost, best);
    }
  }
}

}  // namespace

MultitypeSchedule optimal_multitype(
    const Instance& instance, const std::vector<CalibrationType>& types) {
  CALIB_CHECK_MSG(instance.machines() == 1,
                  "multitype scheduling is single-machine");
  CALIB_CHECK(!instance.empty());
  Time max_length = 0;
  for (const CalibrationType& type : types) {
    max_length = std::max(max_length, type.length);
  }
  std::vector<Time> candidates;
  for (Time s = instance.min_release() + 1 - max_length;
       s <= instance.max_release(); ++s) {
    candidates.push_back(s);
  }
  TypedCalendar calendar(types);
  Cost best_cost = -1;
  MultitypeSchedule best{calendar, {}};
  search_multitype(instance, types, candidates, 0, instance.size(),
                   calendar, best_cost, best);
  CALIB_CHECK_MSG(best_cost >= 0, "n calibrations always suffice");
  return best;
}

}  // namespace calib

// Schedule serialization round trips and error handling.
#include <gtest/gtest.h>

#include <sstream>

#include "core/schedule_io.hpp"
#include "offline/dp.hpp"
#include "online/alg2_weighted.hpp"
#include "online/driver.hpp"
#include "util/prng.hpp"
#include "workload/generators.hpp"

namespace calib {
namespace {

TEST(ScheduleIo, RoundTripsOnlineSchedule) {
  const Instance instance = regression_instance();
  Alg2Weighted policy;
  const Schedule original = run_online(instance, 7, policy);
  std::stringstream buffer;
  save_schedule_csv(original, buffer);
  const Schedule loaded = load_schedule_csv(buffer);
  EXPECT_EQ(loaded, original);
  EXPECT_EQ(loaded.validate(instance), std::nullopt);
  EXPECT_EQ(loaded.online_cost(instance, 7),
            original.online_cost(instance, 7));
}

TEST(ScheduleIo, RoundTripsMultiMachineAndDpWitness) {
  // DP witness.
  const Instance instance = regression_instance();
  OfflineDp dp(instance);
  const auto witness = dp.solve(3);
  ASSERT_TRUE(witness.has_value());
  std::stringstream buffer;
  save_schedule_csv(*witness, buffer);
  EXPECT_EQ(load_schedule_csv(buffer), *witness);

  // Multi-machine schedule.
  Prng prng(2501);
  const Instance multi = sparse_uniform_instance(
      6, 10, 3, 2, WeightModel::kUnit, 1, prng);
  Calendar calendar(3, 2);
  calendar.add(0, 0);
  calendar.add(1, 4);
  calendar.add(0, 8);
  Schedule schedule(calendar, multi.size());
  // Any placement set round-trips, valid or not; use a trivial one.
  for (JobId j = 0; j < multi.size(); ++j) {
    schedule.place(j, j % 2, 100 + j);
  }
  std::stringstream multi_buffer;
  save_schedule_csv(schedule, multi_buffer);
  EXPECT_EQ(load_schedule_csv(multi_buffer), schedule);
}

TEST(ScheduleIo, RejectsBadHeader) {
  std::istringstream is("bogus\n");
  EXPECT_THROW(load_schedule_csv(is), std::runtime_error);
}

TEST(ScheduleIo, RejectsMalformedRows) {
  std::istringstream missing_field("# T=3 P=1 N=1\ncalibration,0\n");
  EXPECT_THROW(load_schedule_csv(missing_field), std::runtime_error);
  std::istringstream bad_kind("# T=3 P=1 N=1\nfrobnicate,1,2,3\n");
  EXPECT_THROW(load_schedule_csv(bad_kind), std::runtime_error);
  std::istringstream bad_job("# T=3 P=1 N=1\nplacement,7,0,0\n");
  EXPECT_THROW(load_schedule_csv(bad_job), std::runtime_error);
}

TEST(ScheduleIo, EmptyScheduleRoundTrips) {
  const Schedule empty(Calendar(4, 2), 0);
  std::stringstream buffer;
  save_schedule_csv(empty, buffer);
  const Schedule loaded = load_schedule_csv(buffer);
  EXPECT_EQ(loaded, empty);
}

TEST(ScheduleIo, RejectsNumbersWithTrailingGarbage) {
  // stoll-style parsing would silently read "0x" as 0; the strict
  // parser must reject the whole token instead.
  std::istringstream bad_start("# T=3 P=1 N=1\nplacement,0,0,5x\n");
  EXPECT_THROW(load_schedule_csv(bad_start), std::runtime_error);
  std::istringstream bad_header("# T=3y P=1 N=1\n");
  EXPECT_THROW(load_schedule_csv(bad_header), std::runtime_error);
  std::istringstream empty_field("# T=3 P=1 N=1\ncalibration,0,\n");
  EXPECT_THROW(load_schedule_csv(empty_field), std::runtime_error);
}

TEST(ScheduleIo, RejectsOutOfRangeCoordinates) {
  // Out-of-range machines used to reach CALIB_CHECK in the Calendar and
  // abort the process; they must surface as runtime_error instead.
  std::istringstream bad_machine("# T=3 P=2 N=1\ncalibration,5,0\n");
  EXPECT_THROW(load_schedule_csv(bad_machine), std::runtime_error);
  std::istringstream negative_machine("# T=3 P=2 N=1\nplacement,0,-1,0\n");
  EXPECT_THROW(load_schedule_csv(negative_machine), std::runtime_error);
  std::istringstream pre_release("# T=3 P=1 N=1\nplacement,0,0,-2\n");
  EXPECT_THROW(load_schedule_csv(pre_release), std::runtime_error);
  std::istringstream overflow(
      "# T=3 P=1 N=1\ncalibration,0,99999999999999999999\n");
  EXPECT_THROW(load_schedule_csv(overflow), std::runtime_error);
  std::istringstream huge_jobs("# T=3 P=1 N=99999999999\n");
  EXPECT_THROW(load_schedule_csv(huge_jobs), std::runtime_error);
}

TEST(ScheduleIo, EveryTruncationAndMutationParsesOrThrows) {
  // Serialize a real schedule, then feed the loader every prefix and
  // every single-byte corruption. The contract: each attempt either
  // yields a Schedule or throws — no aborts, no silent misparse into
  // out-of-range coordinates (which would CALIB_CHECK-crash later).
  const Instance instance = regression_instance();
  Alg2Weighted policy;
  const Schedule original = run_online(instance, 7, policy);
  std::stringstream buffer;
  save_schedule_csv(original, buffer);
  const std::string text = buffer.str();
  ASSERT_GT(text.size(), 0u);

  for (std::size_t len = 0; len <= text.size(); ++len) {
    std::istringstream is(text.substr(0, len));
    try {
      (void)load_schedule_csv(is);
    } catch (const std::exception&) {
      // Rejected cleanly — equally acceptable.
    }
  }
  for (std::size_t i = 0; i < text.size(); ++i) {
    for (const char c : {'x', '9', '-', ',', '"', '\n', ' '}) {
      std::string mutated = text;
      mutated[i] = c;
      std::istringstream is(mutated);
      try {
        (void)load_schedule_csv(is);
      } catch (const std::exception&) {
      }
    }
  }
}

}  // namespace
}  // namespace calib

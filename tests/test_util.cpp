// Unit tests for the utility substrate: PRNG determinism and
// distributional sanity, summary statistics, fits, thread pool
// (including exception aggregation), cooperative budgets, table and CSV
// round trips plus malformed-input robustness.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/budget.hpp"
#include "util/csv.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace calib {
namespace {

TEST(Prng, DeterministicForSeed) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, ZeroSeedIsWellMixed) {
  Prng prng(0);
  // splitmix64 seeding must not leave the state degenerate.
  EXPECT_NE(prng(), 0u);
  EXPECT_NE(prng(), prng());
}

TEST(Prng, UniformIntRespectsBounds) {
  Prng prng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = prng.uniform_int(-3, 5);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 5);
  }
}

TEST(Prng, UniformIntSingleton) {
  Prng prng(7);
  EXPECT_EQ(prng.uniform_int(9, 9), 9);
}

TEST(Prng, UniformIntCoversRange) {
  Prng prng(11);
  std::array<int, 4> histogram{};
  for (int i = 0; i < 4000; ++i) {
    histogram[static_cast<std::size_t>(prng.uniform_int(0, 3))]++;
  }
  for (const int count : histogram) EXPECT_GT(count, 800);
}

TEST(Prng, Uniform01InHalfOpenRange) {
  Prng prng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = prng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prng, PoissonMeanApproximatesLambda) {
  Prng prng(5);
  for (const double lambda : {0.5, 3.0, 50.0}) {
    double sum = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
      sum += static_cast<double>(prng.poisson(lambda));
    }
    const double mean = sum / trials;
    EXPECT_NEAR(mean, lambda, 0.15 * lambda + 0.05) << "lambda=" << lambda;
  }
}

TEST(Prng, PoissonZeroLambda) {
  Prng prng(5);
  EXPECT_EQ(prng.poisson(0.0), 0);
}

TEST(Prng, ZipfFavorsSmallValues) {
  Prng prng(9);
  int ones = 0;
  int top = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t x = prng.zipf(10, 1.1);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 10);
    if (x == 1) ++ones;
    if (x == 10) ++top;
  }
  EXPECT_GT(ones, top * 3);
}

TEST(Prng, SplitStreamsAreIndependentlySeeded) {
  Prng parent(13);
  Prng child_a = parent.split(1);
  Prng child_b = parent.split(2);
  EXPECT_NE(child_a(), child_b());
}

TEST(Summary, BasicMoments) {
  Summary s;
  s.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_EQ(s.count(), 4u);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  s.add_all({0.0, 10.0});
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
}

TEST(Summary, PercentileSingleSample) {
  Summary s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
}

TEST(Stats, FitLineRecoversExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(Stats, FitPowerRecoversExponent) {
  std::vector<double> x;
  std::vector<double> y;
  for (double v = 2.0; v <= 64.0; v *= 2.0) {
    x.push_back(v);
    y.push_back(0.5 * v * v * v);  // y = 0.5 x^3
  }
  const PowerFit fit = fit_power(x, y);
  EXPECT_NEAR(fit.exponent, 3.0, 1e-9);
  EXPECT_NEAR(fit.coeff, 0.5, 1e-9);
}

TEST(ThreadPool, ParallelForVisitsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(257);
  pool.parallel_for(visits.size(), [&](std::size_t i) { visits[i]++; });
  for (const auto& count : visits) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SingleFailureKeepsItsExceptionType) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(8, [](std::size_t i) {
      if (i == 3) throw std::out_of_range("just me");
    });
    FAIL() << "expected a throw";
  } catch (const std::out_of_range& error) {
    EXPECT_STREQ(error.what(), "just me");
  }
}

TEST(ThreadPool, MultipleFailuresAreAggregated) {
  // Failures are caught per index, so every throwing index survives into
  // the aggregate (up to the cap), labeled [task i: what()] — not just
  // the first failure per chunk.
  ThreadPool pool(4);
  try {
    pool.parallel_for(16, [](std::size_t i) {
      if (i == 2 || i == 11) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("2 tasks failed"), std::string::npos) << what;
    EXPECT_NE(what.find("[task 2: boom 2]"), std::string::npos) << what;
    EXPECT_NE(what.find("[task 11: boom 11]"), std::string::npos) << what;
  }
}

TEST(ThreadPool, FailedIndexDoesNotAbortItsChunk) {
  // 64 indices on 2 threads → multi-index chunks; the throwing index
  // must not stop the chunk's remaining indices from running.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> visits(64);
  try {
    pool.parallel_for(visits.size(), [&](std::size_t i) {
      visits[i]++;
      if (i % 7 == 0) throw std::runtime_error("x");
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error&) {
  }
  for (const auto& count : visits) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, AggregatedMessageIsDeterministicAcrossThreadCounts) {
  // Submission-index ordering makes the aggregate identical no matter
  // how the chunks interleave across workers.
  const auto run = [](std::size_t threads) -> std::string {
    ThreadPool pool(threads);
    try {
      pool.parallel_for(48, [](std::size_t i) {
        if (i % 9 == 4) throw std::runtime_error("f" + std::to_string(i));
      });
    } catch (const std::runtime_error& error) {
      return error.what();
    }
    return "";
  };
  const std::string reference = run(1);
  EXPECT_NE(reference.find("[task 4: f4]"), std::string::npos) << reference;
  for (int repeat = 0; repeat < 4; ++repeat) {
    EXPECT_EQ(run(2), reference);
    EXPECT_EQ(run(5), reference);
  }
}

TEST(ThreadPool, AggregationCapsMessageCount) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(16, [](std::size_t i) {
      throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("16 tasks failed"), std::string::npos) << what;
    EXPECT_NE(what.find(" ..."), std::string::npos) << what;
  }
}

TEST(Budget, DefaultIsUnlimited) {
  Budget budget;
  EXPECT_TRUE(budget.unlimited());
  for (int i = 0; i < 1000; ++i) budget.charge();
  EXPECT_EQ(budget.steps_used(), 0u);  // unlimited budgets don't count
}

TEST(Budget, StepLimitThrowsDeterministically) {
  Budget budget = Budget::steps(3);
  budget.charge();
  budget.charge(2);
  EXPECT_EQ(budget.steps_used(), 3u);
  EXPECT_THROW(budget.charge(), BudgetExceeded);
}

TEST(Budget, ZeroStepLimitThrowsOnFirstCharge) {
  Budget budget = Budget::steps(0);
  EXPECT_THROW(budget.charge(), BudgetExceeded);
}

TEST(Budget, ExpiredDeadlineThrowsOnFirstCharge) {
  Budget budget = Budget::deadline_ms(-1.0);
  EXPECT_THROW(budget.charge(), BudgetExceeded);
}

TEST(Budget, GenerousDeadlinePermitsWork) {
  Budget budget = Budget::deadline_ms(60000.0);
  for (int i = 0; i < 10000; ++i) budget.charge();
  EXPECT_EQ(budget.steps_used(), 10000u);
}

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.row().add("alpha").add(static_cast<std::int64_t>(10));
  table.row().add("b").add(3.14159, 2);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Csv, RoundTripsQuotedFields) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"plain", "with,comma", "with\"quote", "multi\nline"});
  std::istringstream is(os.str());
  const auto rows = read_csv(is);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 4u);
  EXPECT_EQ(rows[0][0], "plain");
  EXPECT_EQ(rows[0][1], "with,comma");
  EXPECT_EQ(rows[0][2], "with\"quote");
  EXPECT_EQ(rows[0][3], "multi\nline");
}

TEST(Csv, RejectsUnterminatedQuote) {
  std::istringstream is("\"oops");
  EXPECT_THROW(read_csv(is), std::runtime_error);
}

TEST(Csv, EveryTruncationAndMutationParsesOrThrows) {
  // The robustness contract for untrusted input: any corruption either
  // parses into *some* row set or throws — never crashes or hangs
  // (meaningful under ASan/UBSan in the sanitizer CI job).
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_row({"plain", "with,comma", "with\"quote", "multi\nline"});
  writer.write_row({"1", "-2", "", "last"});
  const std::string text = os.str();
  for (std::size_t len = 0; len <= text.size(); ++len) {
    std::istringstream is(text.substr(0, len));
    try {
      (void)read_csv(is);
    } catch (const std::runtime_error&) {
    }
  }
  for (std::size_t i = 0; i < text.size(); ++i) {
    for (const char c : {'"', ',', '\n', '\r', 'x', '\0'}) {
      std::string mutated = text;
      mutated[i] = c;
      std::istringstream is(mutated);
      try {
        (void)read_csv(is);
      } catch (const std::runtime_error&) {
      }
    }
  }
}

TEST(Timer, MeasuresNonNegativeDurations) {
  Timer timer;
  EXPECT_GE(timer.seconds(), 0.0);
  timer.reset();
  EXPECT_GE(timer.millis(), 0.0);
}

}  // namespace
}  // namespace calib

// The Figure 2 dual, as an executable feasibility checker.
//
// Weak duality makes any feasible dual point a machine-checkable lower
// bound on OPT: its objective is <= the Figure 1 LP optimum <= the cost
// of every schedule. Theorem 3.10's proof constructs such points
// alongside Algorithm 3's run; here we provide (a) the checker, and
// (b) the proof's *static* assignment (y_t = z_j = G/2T), which already
// certifies the bound OPT >= n * G/2T used in its Case 2.
//
// Dual variables (for the primal of calib_lp.hpp):
//   x_{t,j,m} >= 0  - constraint (1)
//   y_t       >= 0  - constraint (2)
//   v_j       >= 0  - constraint (3)
//   z_j free        - constraint (4)
// Objective: maximize sum_j v_j + sum_j z_j.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "lp/calib_lp.hpp"

namespace calib {

struct DualPoint {
  /// x[j][m][t - r_j] for t in [r_j, horizon).
  std::vector<std::vector<std::vector<double>>> x;
  /// y[t - (lo+1)] for the constraint-(2) rows, t in (lo, horizon).
  std::vector<double> y;
  std::vector<double> v;  ///< per job
  std::vector<double> z;  ///< per job

  [[nodiscard]] double objective() const;
};

class DualChecker {
 public:
  explicit DualChecker(const CalibrationLp& lp);

  /// A zero dual point with correctly sized tensors.
  [[nodiscard]] DualPoint zero_point() const;

  /// Theorem 3.10's static assignment: y_t = z_j = G / (2T), x = v = 0,
  /// tapered to zero near the horizon so the boundary rows stay
  /// feasible. Objective ~ n * G / 2T.
  [[nodiscard]] DualPoint static_point() const;

  /// Maximum violation of the dual constraints (0 = feasible).
  [[nodiscard]] double max_violation(const DualPoint& point) const;

 private:
  const CalibrationLp& lp_;
  const Instance& instance_;
};

}  // namespace calib

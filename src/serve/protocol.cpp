#include "serve/protocol.hpp"

#include <stdexcept>

#include "harness/journal.hpp"
#include "obs/json_escape.hpp"

namespace calib::serve {
namespace {

using harness::parse_flat_json;

const std::string& field(const std::map<std::string, std::string>& fields,
                         const char* key) {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    throw std::runtime_error(std::string("serve payload: missing field ") +
                             key);
  }
  return it->second;
}

std::string opt_field(const std::map<std::string, std::string>& fields,
                      const char* key, const std::string& fallback) {
  const auto it = fields.find(key);
  return it == fields.end() ? fallback : it->second;
}

std::string quoted(const std::string& value) {
  return '"' + obs::json_escape(value) + '"';
}

}  // namespace

std::string encode_serve_frame(ServeFrame type, std::string_view payload) {
  return encode_frame(static_cast<std::uint32_t>(type), payload);
}

std::string encode_hello(const HelloRequest& hello) {
  return "{\"tenant\":" + quoted(hello.tenant) +
         ",\"policy\":" + quoted(hello.policy) +
         ",\"T\":" + std::to_string(hello.T) +
         ",\"machines\":" + std::to_string(hello.machines) +
         ",\"G\":" + std::to_string(hello.G) +
         ",\"seed\":" + std::to_string(hello.seed) +
         ",\"period\":" + std::to_string(hello.period) +
         ",\"resume\":" + std::to_string(hello.resume ? 1 : 0) + "}";
}

HelloRequest decode_hello(const std::string& payload) {
  const auto fields = parse_flat_json(payload);
  HelloRequest hello;
  hello.tenant = field(fields, "tenant");
  hello.policy = opt_field(fields, "policy", hello.policy);
  hello.T = std::stoll(opt_field(fields, "T", std::to_string(hello.T)));
  hello.machines = static_cast<int>(
      std::stol(opt_field(fields, "machines", std::to_string(hello.machines))));
  hello.G = std::stoll(opt_field(fields, "G", std::to_string(hello.G)));
  hello.seed = std::stoull(opt_field(fields, "seed", std::to_string(hello.seed)));
  hello.period =
      std::stoll(opt_field(fields, "period", std::to_string(hello.period)));
  hello.resume = opt_field(fields, "resume", "0") != "0";
  return hello;
}

std::string encode_submit(const SubmitJob& submit) {
  return "{\"release\":" + std::to_string(submit.release) +
         ",\"weight\":" + std::to_string(submit.weight) + "}";
}

SubmitJob decode_submit(const std::string& payload) {
  const auto fields = parse_flat_json(payload);
  SubmitJob submit;
  submit.release = std::stoll(field(fields, "release"));
  submit.weight = std::stoll(field(fields, "weight"));
  return submit;
}

std::string encode_decision(const Decision& decision) {
  return "{\"seq\":" + std::to_string(decision.seq) +
         ",\"now\":" + std::to_string(decision.now) +
         ",\"cost\":" + std::to_string(decision.cost) +
         ",\"events\":" + quoted(decision.events) + "}";
}

Decision decode_decision(const std::string& payload) {
  const auto fields = parse_flat_json(payload);
  Decision decision;
  decision.seq = std::stoull(field(fields, "seq"));
  decision.now = std::stoll(field(fields, "now"));
  decision.cost = std::stoll(field(fields, "cost"));
  decision.events = field(fields, "events");
  return decision;
}

std::string encode_stats(const TenantStats& stats) {
  return "{\"tenant\":" + quoted(stats.tenant) +
         ",\"state\":" + quoted(stats.state) +
         ",\"jobs\":" + std::to_string(stats.jobs) +
         ",\"placed\":" + std::to_string(stats.placed) +
         ",\"calibrations\":" + std::to_string(stats.calibrations) +
         ",\"cost\":" + std::to_string(stats.cost) +
         ",\"steps_used\":" + std::to_string(stats.steps_used) +
         ",\"violation\":" + quoted(stats.violation) + "}";
}

TenantStats decode_stats(const std::string& payload) {
  const auto fields = parse_flat_json(payload);
  TenantStats stats;
  stats.tenant = field(fields, "tenant");
  stats.state = field(fields, "state");
  stats.jobs = std::stoull(field(fields, "jobs"));
  stats.placed = std::stoull(field(fields, "placed"));
  stats.calibrations = std::stoull(field(fields, "calibrations"));
  stats.cost = std::stoll(field(fields, "cost"));
  stats.steps_used = std::stoull(field(fields, "steps_used"));
  stats.violation = field(fields, "violation");
  return stats;
}

std::string encode_error(const ErrorInfo& error) {
  return "{\"code\":" + quoted(error.code) +
         ",\"detail\":" + quoted(error.detail) +
         ",\"retry_after_ms\":" + std::to_string(error.retry_after_ms) + "}";
}

ErrorInfo decode_error(const std::string& payload) {
  const auto fields = parse_flat_json(payload);
  ErrorInfo error;
  error.code = field(fields, "code");
  error.detail = field(fields, "detail");
  error.retry_after_ms = std::stoll(field(fields, "retry_after_ms"));
  return error;
}

std::string encode_events(const std::vector<TraceEvent>& events,
                          std::size_t begin, std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end && i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (!out.empty()) out += ';';
    switch (e.kind) {
      case TraceEvent::Kind::kArrival:
        out += "A:" + std::to_string(e.at) + ':' + std::to_string(e.job) +
               ':' + std::to_string(e.weight);
        break;
      case TraceEvent::Kind::kCalibration:
        out += "C:" + std::to_string(e.at) + ':' + std::to_string(e.machine);
        break;
      case TraceEvent::Kind::kPlacement:
        out += "P:" + std::to_string(e.at) + ':' + std::to_string(e.job) +
               ':' + std::to_string(e.machine) + ':' + std::to_string(e.start);
        break;
    }
  }
  return out;
}

}  // namespace calib::serve

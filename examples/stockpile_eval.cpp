// Stockpile evaluation: the Integrated Stockpile Evaluation (ISE)
// setting that originally motivated scheduling with calibrations
// (Bender et al., SPAA'13; Section 1 of this paper).
//
// A fleet of P identical test benches runs scheduled weapon-component
// evaluations. Tests are unweighted but arrive in campaign bursts;
// calibrations are monetarily expensive. This example runs Algorithm 3
// on P machines, contrasts its explicit placements with the
// Observation 2.1 reassignment the paper recommends in practice, and
// shows the per-machine calendar.
//
//   $ ./stockpile_eval [machines] [seed]
#include <cstdlib>
#include <iostream>

#include "online/alg3_multi.hpp"
#include "online/driver.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace calib;
  const int machines = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  Prng prng(seed);

  BurstyConfig config;
  config.burst_probability = 0.06;
  config.burst_length = 10;
  config.burst_rate = 0.9;
  config.steps = 120;
  const Instance campaign =
      bursty_instance(config, /*T=*/12, machines, prng);
  const Cost G = 24;

  std::cout << "Stockpile campaign: " << campaign.size() << " tests on "
            << machines << " benches, T=" << campaign.T() << ", G=" << G
            << "\n\n";

  Alg3Multi policy;
  const Schedule explicit_schedule = run_online(campaign, G, policy);
  const Schedule reassigned =
      reassign_observation_2_1(campaign, explicit_schedule);

  Table table({"variant", "calibrations", "flow", "objective"});
  table.row()
      .add("Algorithm 3 (explicit)")
      .add(static_cast<std::int64_t>(explicit_schedule.calendar().count()))
      .add(explicit_schedule.weighted_flow(campaign))
      .add(explicit_schedule.online_cost(campaign, G));
  table.row()
      .add("+ Observation 2.1 reassignment")
      .add(static_cast<std::int64_t>(reassigned.calendar().count()))
      .add(reassigned.weighted_flow(campaign))
      .add(reassigned.online_cost(campaign, G));
  table.print(std::cout);

  std::cout << "\nPer-bench calibration calendar:\n";
  for (MachineId m = 0; m < machines; ++m) {
    std::cout << "  bench " << m << ":";
    for (const Time start : reassigned.calendar().starts(m)) {
      std::cout << " [" << start << ',' << start + campaign.T() << ')';
    }
    std::cout << '\n';
  }
  std::cout << "\nThe reassignment never increases flow (see "
               "tests/test_alg3.cpp); the paper expects exactly this.\n";
  return 0;
}

#include "util/framing.hpp"

#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <utility>

namespace calib {

// calib-lint: signal-safe-begin
// write_all and read_some are callable from the sandbox's forked child
// between fork() and _exit(): only async-signal-safe calls — no heap,
// no stdio, no locks. Checked by tools/lint/calib_lint.py (rule
// fork-child-signal-safety) at the call site in harness/sandbox.cpp.
bool write_all(int fd, const void* data, std::size_t size) noexcept {
  const char* bytes = static_cast<const char*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, bytes + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

ssize_t read_some(int fd, void* buffer, std::size_t capacity) noexcept {
  while (true) {
    const ssize_t n = ::read(fd, buffer, capacity);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}
// calib-lint: signal-safe-end

int poll_fds(pollfd* fds, std::size_t count, int timeout_ms) noexcept {
  while (true) {
    const int ready = ::poll(fds, static_cast<nfds_t>(count), timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    return ready;
  }
}

int wait_readable(int fd, int timeout_ms) noexcept {
  pollfd poll_fd{fd, POLLIN, 0};
  return poll_fds(&poll_fd, 1, timeout_ms);
}

void put_u32(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

std::uint32_t get_u32(const char* p) noexcept {
  const auto b = [&](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

std::string encode_frame(std::uint32_t type, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::runtime_error("frame payload too large: " +
                             std::to_string(payload.size()) + " bytes");
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, kFrameMagic);
  put_u32(out, type);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

bool write_frame(int fd, std::uint32_t type, std::string_view payload) {
  const std::string bytes = encode_frame(type, payload);
  return write_all(fd, bytes.data(), bytes.size());
}

void FrameReader::feed(const char* data, std::size_t n) {
  if (corrupted_) return;
  buffer_.append(data, n);
  decode();
}

void FrameReader::decode() {
  while (!corrupted_ && buffer_.size() >= kFrameHeaderBytes) {
    if (get_u32(buffer_.data()) != kFrameMagic) {
      corrupted_ = true;
      error_ = "bad frame magic";
      return;
    }
    const std::uint32_t type = get_u32(buffer_.data() + 4);
    const std::uint32_t length = get_u32(buffer_.data() + 8);
    if (type < min_type_ || type > max_type_) {
      corrupted_ = true;
      error_ = "unknown frame type " + std::to_string(type);
      return;
    }
    if (length > kMaxFrameBytes) {
      corrupted_ = true;
      error_ = "oversized frame (" + std::to_string(length) + " bytes)";
      return;
    }
    if (buffer_.size() < kFrameHeaderBytes + length) return;  // partial frame
    RawFrame frame;
    frame.type = type;
    frame.payload = buffer_.substr(kFrameHeaderBytes, length);
    buffer_.erase(0, kFrameHeaderBytes + length);
    ready_.push_back(std::move(frame));
  }
}

bool FrameReader::next(RawFrame& frame) {
  if (ready_.empty()) return false;
  frame = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

}  // namespace calib

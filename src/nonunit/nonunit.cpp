#include "nonunit/nonunit.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <sstream>

#include "util/check.hpp"

namespace calib {

NonUnitInstance::NonUnitInstance(std::vector<NonUnitJob> jobs,
                                 Time calibration_length)
    : jobs_(std::move(jobs)), T_(calibration_length) {
  CALIB_CHECK(T_ >= 1);
  for (const NonUnitJob& job : jobs_) {
    CALIB_CHECK(job.processing >= 1);
    CALIB_CHECK_MSG(job.release + job.processing <= job.deadline,
                    "window [" << job.release << ", " << job.deadline
                               << ") cannot fit processing "
                               << job.processing);
  }
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const NonUnitJob& a, const NonUnitJob& b) {
                     if (a.deadline != b.deadline)
                       return a.deadline < b.deadline;
                     return a.release < b.release;
                   });
}

const NonUnitJob& NonUnitInstance::job(JobId j) const {
  CALIB_CHECK(j >= 0 && j < size());
  return jobs_[static_cast<std::size_t>(j)];
}

Time NonUnitInstance::total_processing() const {
  Time total = 0;
  for (const NonUnitJob& job : jobs_) total += job.processing;
  return total;
}

Time NonUnitInstance::min_release() const {
  CALIB_CHECK(!jobs_.empty());
  Time best = jobs_.front().release;
  for (const NonUnitJob& job : jobs_) best = std::min(best, job.release);
  return best;
}

Time NonUnitInstance::max_deadline() const {
  CALIB_CHECK(!jobs_.empty());
  return jobs_.back().deadline;
}

std::string NonUnitInstance::to_string() const {
  std::ostringstream os;
  os << "NonUnitInstance(T=" << T_ << ", jobs=[";
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (i > 0) os << ", ";
    os << '[' << jobs_[i].release << ',' << jobs_[i].deadline << ")x"
       << jobs_[i].processing;
  }
  os << "])";
  return os.str();
}

namespace {

/// Preemptive EDF of `jobs` over an arbitrary ascending slot list.
bool edf_over_slots(std::vector<NonUnitJob> jobs,
                    const std::vector<Time>& slots) {
  std::sort(jobs.begin(), jobs.end(),
            [](const NonUnitJob& a, const NonUnitJob& b) {
              return a.release < b.release;
            });
  // (deadline, remaining) pairs, earliest deadline first.
  std::multiset<std::pair<Time, Time>> active;
  std::size_t next = 0;
  for (const Time t : slots) {
    while (next < jobs.size() && jobs[next].release <= t) {
      active.insert({jobs[next].deadline, jobs[next].processing});
      ++next;
    }
    if (!active.empty()) {
      if (active.begin()->first <= t) return false;  // already missed
      auto node = active.extract(active.begin());
      if (--node.value().second > 0) active.insert(std::move(node));
    }
    if (!active.empty() && active.begin()->first <= t + 1) return false;
  }
  return next == jobs.size() && active.empty();
}

std::vector<Time> contiguous_slots(Time from, Time to) {
  std::vector<Time> slots;
  slots.reserve(static_cast<std::size_t>(std::max<Time>(0, to - from)));
  for (Time t = from; t < to; ++t) slots.push_back(t);
  return slots;
}

}  // namespace

bool edf_feasible_nonunit(const NonUnitInstance& instance,
                          const Calendar& calendar) {
  CALIB_CHECK(calendar.machines() == 1);
  CALIB_CHECK(calendar.T() == instance.T());
  if (instance.empty()) return true;
  std::vector<Time> slots;
  for (const auto& slot : calendar.slots()) slots.push_back(slot.time);
  return edf_over_slots(instance.jobs(), slots);
}

bool hall_feasible_nonunit(const NonUnitInstance& instance,
                           const Calendar& calendar) {
  CALIB_CHECK(calendar.machines() == 1);
  if (instance.empty()) return true;
  std::set<Time> releases;
  std::set<Time> deadlines;
  for (const NonUnitJob& job : instance.jobs()) {
    releases.insert(job.release);
    deadlines.insert(job.deadline);
  }
  const auto slots = calendar.slots();
  for (const Time a : releases) {
    for (const Time b : deadlines) {
      if (b <= a) continue;
      Time demand = 0;
      for (const NonUnitJob& job : instance.jobs()) {
        if (job.release >= a && job.deadline <= b) demand += job.processing;
      }
      Time capacity = 0;
      for (const auto& slot : slots) {
        if (slot.time >= a && slot.time < b) ++capacity;
      }
      if (demand > capacity) return false;
    }
  }
  return true;
}

std::optional<Calendar> min_calibrations_nonunit(
    const NonUnitInstance& instance, int max_calibrations) {
  if (instance.empty()) return Calendar(instance.T(), 1);
  std::vector<Time> candidates;
  for (Time s = instance.min_release() + 1 - instance.T();
       s < instance.max_deadline(); ++s) {
    candidates.push_back(s);
  }
  const int cap =
      max_calibrations < 0
          ? static_cast<int>((instance.total_processing() + instance.T() -
                              1) /
                             instance.T()) +
                instance.size()
          : max_calibrations;
  const int lower = static_cast<int>(
      (instance.total_processing() + instance.T() - 1) / instance.T());
  std::vector<Time> chosen;
  auto search = [&](auto&& self, std::size_t from, int remaining) -> bool {
    if (remaining == 0) {
      Calendar calendar(instance.T(), 1);
      for (const Time start : chosen) calendar.add(0, start);
      return edf_feasible_nonunit(instance, calendar);
    }
    if (candidates.size() - from < static_cast<std::size_t>(remaining)) {
      return false;
    }
    for (std::size_t i = from; i < candidates.size(); ++i) {
      chosen.push_back(candidates[i]);
      if (self(self, i + 1, remaining - 1)) return true;
      chosen.pop_back();
    }
    return false;
  };
  for (int k = lower; k <= cap; ++k) {
    chosen.clear();
    if (search(search, 0, k)) {
      Calendar calendar(instance.T(), 1);
      for (const Time start : chosen) calendar.add(0, start);
      return calendar;
    }
  }
  return std::nullopt;
}

std::optional<Calendar> lazy_binning_nonunit(
    const NonUnitInstance& instance) {
  Calendar calendar(instance.T(), 1);
  if (instance.empty()) return calendar;

  std::vector<NonUnitJob> remaining = instance.jobs();
  Time cursor = instance.min_release() + 1 - instance.T();
  const Time horizon = instance.max_deadline();
  auto feasible_from = [&](Time t) {
    return edf_over_slots(remaining, contiguous_slots(t, horizon));
  };
  int guard = 2 * instance.size() +
              static_cast<int>(instance.total_processing());
  while (!remaining.empty()) {
    CALIB_CHECK_MSG(--guard >= 0, "lazy_binning_nonunit failed to converge");
    if (!feasible_from(cursor)) return std::nullopt;
    Time lo = cursor;
    Time hi = horizon - 1;
    while (lo < hi) {
      const Time mid = lo + (hi - lo + 1) / 2;
      if (feasible_from(mid)) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    const Time start = lo;
    calendar.add(0, start);
    // Commit the work the ideal schedule does inside [start, start+T):
    // preemptive EDF, decrementing processing.
    std::vector<NonUnitJob> pool = remaining;
    std::sort(pool.begin(), pool.end(),
              [](const NonUnitJob& a, const NonUnitJob& b) {
                return a.release < b.release;
              });
    // index into `pool` alongside (deadline, remaining) so we can write
    // back what is left.
    std::multiset<std::pair<Time, std::size_t>> active;
    std::vector<Time> left(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) left[i] = pool[i].processing;
    std::size_t next = 0;
    for (Time t = start; t < start + instance.T(); ++t) {
      while (next < pool.size() && pool[next].release <= t) {
        active.insert({pool[next].deadline, next});
        ++next;
      }
      if (active.empty()) continue;
      const auto [deadline, index] = *active.begin();
      CALIB_CHECK_MSG(deadline > t,
                      "lazy_binning_nonunit committed a missed job");
      active.erase(active.begin());
      if (--left[index] > 0) active.insert({deadline, index});
    }
    std::vector<NonUnitJob> still;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (left[i] > 0) {
        still.push_back(
            NonUnitJob{pool[i].release, pool[i].deadline, left[i]});
      }
    }
    // Residual jobs may have release < start + T but they can only run
    // in future intervals; relax their windows' processing constraint
    // check by keeping them as-is (the constructor invariant may no
    // longer hold for residuals, so bypass it via direct assembly).
    remaining = std::move(still);
    cursor = start + instance.T();
  }
  if (!edf_feasible_nonunit(instance, calendar)) return std::nullopt;
  return calendar;
}

}  // namespace calib

file(REMOVE_RECURSE
  "libcalibsched_lp.a"
)

// Fundamental types shared by every calibsched module.
//
// All quantities that enter cost arithmetic are 64-bit integers: weighted
// flow is a sum of weight*time products and must be exact — competitive
// ratios are formed from these integers only at reporting time.
#pragma once

#include <cstdint>

namespace calib {

using Time = std::int64_t;     ///< integer time step index
using Weight = std::int64_t;   ///< job weight (>= 1)
using Cost = std::int64_t;     ///< weighted-flow / calibration cost units
using JobId = std::int32_t;    ///< index into Instance::jobs
using MachineId = std::int32_t;

/// Sentinel for "not scheduled" job times.
inline constexpr Time kUnscheduled = -1;

/// Which waiting job runs first — the queue order the driver's automatic
/// assignment and the hypothetical drain flows are parameterized by.
/// Fundamental vocabulary: the online policies request it, and the
/// order-statistics structures underneath (util/pending_set.hpp) index
/// the waiting set per order.
enum class QueueOrder {
  kFifo,           ///< earliest release first (Algorithms 1 and 3)
  kHeaviestFirst,  ///< Observation 2.1's optimal order (Algorithm 2)
  kLightestFirst,  ///< Algorithm 2's literal line 13 (ablation only)
};

/// A unit-length job: released at `release`, contributes
/// weight * (start + 1 - release) to the objective when started at
/// `start >= release`.
struct Job {
  Time release = 0;
  Weight weight = 1;

  friend bool operator==(const Job&, const Job&) = default;
};

}  // namespace calib

#include "core/list_scheduler.hpp"

#include <queue>

#include "util/check.hpp"

namespace calib {
namespace {

/// Order: heaviest weight first, then earliest release, then lowest id.
struct HeaviestFirst {
  const Instance* instance;
  bool operator()(JobId a, JobId b) const {
    const Job& ja = instance->job(a);
    const Job& jb = instance->job(b);
    if (ja.weight != jb.weight) return ja.weight < jb.weight;  // max-heap
    if (ja.release != jb.release) return ja.release > jb.release;
    return a > b;
  }
};

}  // namespace

ListResult list_schedule(const Instance& instance, const Calendar& calendar) {
  CALIB_CHECK(calendar.T() == instance.T());
  CALIB_CHECK(calendar.machines() == instance.machines());

  Schedule schedule(calendar, instance.size());
  std::priority_queue<JobId, std::vector<JobId>, HeaviestFirst> waiting{
      HeaviestFirst{&instance}};

  const std::vector<Calendar::Slot> slots = calendar.slots();
  JobId next_arrival = 0;
  std::size_t cursor = 0;
  while (cursor < slots.size()) {
    const Time t = slots[cursor].time;
    while (next_arrival < instance.size() &&
           instance.job(next_arrival).release <= t) {
      waiting.push(next_arrival);
      ++next_arrival;
    }
    // All slots at time t, already ordered by machine index.
    while (cursor < slots.size() && slots[cursor].time == t) {
      if (!waiting.empty()) {
        const JobId j = waiting.top();
        waiting.pop();
        schedule.place(j, slots[cursor].machine, t);
      }
      ++cursor;
    }
  }

  ListResult result{std::move(schedule), {}};
  for (JobId j = 0; j < instance.size(); ++j) {
    if (!result.schedule.is_placed(j)) result.unscheduled.push_back(j);
  }
  return result;
}

ListResult list_schedule(const Instance& instance,
                         const std::vector<Time>& global_starts) {
  return list_schedule(instance,
                       Calendar::round_robin(global_starts, instance.T(),
                                             instance.machines()));
}

}  // namespace calib

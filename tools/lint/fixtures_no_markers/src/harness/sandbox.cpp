// Known-bad fixture: a sandbox.cpp whose signal-safe markers were
// deleted. The linter must flag the missing markers themselves —
// otherwise removing the annotation would silently disable the rule.
void child_path(int fd) { (void)fd; }

# Empty dependencies file for test_multitype.
# This may be replaced when dependencies are built.

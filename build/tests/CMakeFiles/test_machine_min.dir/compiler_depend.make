# Empty compiler generated dependencies file for test_machine_min.
# This may be replaced when dependencies are built.

// E11 — the paper's open problems, explored empirically:
//   (a) randomization: Lemma 3.1's lower bound is deterministic-only;
//       the randomized ski-rental threshold beats it in expectation on
//       the oblivious rent/buy subgame (expected ratio -> e/(e-1));
//   (b) weighted jobs on multiple machines (open after Theorems 3.8 and
//       3.10): the natural merged policy, measured against the Figure 1
//       LP lower bound and against per-machine decomposition.
// Expected shape: randomized mean ~1.58 where the deterministic rule is
// pinned at ~2; the weighted-multi heuristic stays within a small
// constant of the LP bound across loads.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>
#include <mutex>

#include "bench_common.hpp"
#include "lp/calib_lp.hpp"
#include "online/alg1_unweighted.hpp"
#include "online/alg4_weighted_multi.hpp"
#include "online/baselines.hpp"
#include "online/randomized.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace calib;

void BM_RandomizedRun(benchmark::State& state) {
  Prng prng(4);
  PoissonConfig config;
  config.rate = 0.3;
  config.steps = 500;
  const Instance instance = poisson_instance(config, 6, 1, prng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    RandomizedSkiRental policy(++seed);
    benchmark::DoNotOptimize(online_objective(instance, 18, policy));
  }
}

BENCHMARK(BM_RandomizedRun)->Unit(benchmark::kMillisecond);

struct TablePrinter {
  ~TablePrinter() {
    std::cout << "\nE11a - randomized vs deterministic threshold on the "
                 "rent/buy subgame (lone job, T < G; 600 draws per "
                 "cell):\n";
    Table a({"G", "T", "deterministic ratio", "randomized mean",
             "randomized p95", "e/(e-1)"});
    for (const Cost G : {50, 100, 400}) {
      const Time T = G / 2;
      const Instance lone({Job{0, 1}}, T);
      const Cost opt = offline_online_optimum(lone, G).best_cost;
      SkiRentalPolicy deterministic;
      const double det =
          static_cast<double>(online_objective(lone, G, deterministic)) /
          static_cast<double>(opt);
      Summary ratios;
      for (std::uint64_t seed = 0; seed < 600; ++seed) {
        RandomizedSkiRental policy(seed * 69427u + 11);
        ratios.add(
            static_cast<double>(online_objective(lone, G, policy)) /
            static_cast<double>(opt));
      }
      a.row()
          .add(static_cast<std::int64_t>(G))
          .add(static_cast<std::int64_t>(T))
          .add(det, 3)
          .add(ratios.mean(), 3)
          .add(ratios.percentile(95), 3)
          .add(std::exp(1.0) / (std::exp(1.0) - 1.0), 3);
    }
    a.print(std::cout);

    std::cout << "\nE11b - randomized policy on random workloads "
                 "(50 seeds x 8 draws): same worst-case family as E2, "
                 "expected cost vs exact OPT:\n";
    Table b({"G", "T", "alg1 mean", "randomized mean (expected)"});
    for (const auto& [G, T] :
         std::vector<std::pair<Cost, Time>>{{12, 3}, {24, 6}, {48, 6}}) {
      Summary det;
      Summary rnd;
      std::mutex mutex;
      global_pool().parallel_for(50, [&, G, T](std::size_t seed) {
        Prng prng(seed * 52711u + static_cast<std::uint64_t>(G));
        const Instance instance = sparse_uniform_instance(
            10, 40, T, 1, WeightModel::kUnit, 1, prng);
        const Cost opt = offline_online_optimum(instance, G).best_cost;
        Alg1Unweighted alg1;
        const double det_ratio =
            static_cast<double>(online_objective(instance, G, alg1)) /
            static_cast<double>(opt);
        double expectation = 0.0;
        for (std::uint64_t draw = 0; draw < 8; ++draw) {
          RandomizedSkiRental policy(seed * 131 + draw);
          expectation +=
              static_cast<double>(online_objective(instance, G, policy)) /
              static_cast<double>(opt) / 8.0;
        }
        const std::scoped_lock lock(mutex);
        det.add(det_ratio);
        rnd.add(expectation);
      });
      b.row()
          .add(static_cast<std::int64_t>(G))
          .add(static_cast<std::int64_t>(T))
          .add(det.mean(), 3)
          .add(rnd.mean(), 3);
    }
    b.print(std::cout);

    std::cout << "\nE11c - weighted jobs on P machines (open problem): "
                 "merged policy vs the Figure 1 LP lower bound "
                 "(10 seeds):\n";
    Table c({"P", "G", "cost/LP mean", "cost/LP max"});
    for (const int machines : {2, 3}) {
      const Cost G = 8;
      Summary ratios;
      std::mutex mutex;
      global_pool().parallel_for(10, [&, machines](std::size_t seed) {
        Prng prng(seed * 40961u + static_cast<std::uint64_t>(machines));
        const Instance instance = sparse_uniform_instance(
            8, 14, 3, machines, WeightModel::kUniform, 5, prng);
        Alg4WeightedMulti policy;
        const Cost cost = online_objective(instance, G, policy);
        const double lower = lp_lower_bound(instance, G);
        const std::scoped_lock lock(mutex);
        ratios.add(static_cast<double>(cost) / lower);
      });
      c.row()
          .add(machines)
          .add(static_cast<std::int64_t>(G))
          .add(ratios.mean(), 3)
          .add(ratios.max(), 3);
    }
    c.print(std::cout);
    std::cout << "(cost/LP is an upper bound on the true competitive "
                 "ratio; single digits support the conjecture that the "
                 "merged policy is O(1)-competitive.)\n";
  }
};
const TablePrinter printer;  // NOLINT(cert-err58-cpp)

}  // namespace

# Empty compiler generated dependencies file for calibsched_workload.
# This may be replaced when dependencies are built.

#include "online/driver.hpp"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace calib {

// ---- DriverHandle forwarding ------------------------------------------

Time DriverHandle::now() const { return driver_.now(); }
Cost DriverHandle::G() const { return driver_.G(); }
Time DriverHandle::T() const { return driver_.T(); }
int DriverHandle::machines() const { return driver_.machines(); }
const std::vector<JobId>& DriverHandle::waiting() const {
  return driver_.waiting();
}
const Job& DriverHandle::job(JobId j) const {
  return driver_.jobs()[static_cast<std::size_t>(j)];
}
Weight DriverHandle::waiting_weight() const {
  Weight sum = 0;
  for (const JobId j : driver_.waiting()) sum += job(j).weight;
  return sum;
}
bool DriverHandle::arrived_now() const { return driver_.arrived_now(); }
const Calendar& DriverHandle::calendar() const { return driver_.calendar(); }
bool DriverHandle::calibrated(MachineId m, Time t) const {
  return driver_.calendar().covers(m, t);
}
Cost DriverHandle::queue_flow_from(Time start, QueueOrder order) const {
  return driver_.queue_flow_from(start, order);
}
Cost DriverHandle::last_interval_flow() const {
  return driver_.last_interval_flow();
}
MachineId DriverHandle::calibrate() { return driver_.calibrate_round_robin(); }
void DriverHandle::assign(JobId j, MachineId m, Time start) {
  driver_.assign(j, m, start);
}
Time DriverHandle::first_free_slot(MachineId m, Time from, Time to) const {
  return driver_.first_free_slot(m, from, to);
}

// ---- OnlineDriver ------------------------------------------------------

OnlineDriver::OnlineDriver(Time T, int machines, Cost G,
                           OnlinePolicy& policy)
    : policy_(policy), G_(G), calendar_(T, machines) {
  CALIB_CHECK(G >= 1);
  occupied_.resize(static_cast<std::size_t>(machines));
  policy_.reset();
}

JobId OnlineDriver::add_job(Weight weight) {
  CALIB_CHECK(weight >= 1);
  const auto j = static_cast<JobId>(jobs_.size());
  jobs_.push_back(Job{now_, weight});
  placements_.emplace_back();
  waiting_.push_back(j);
  arrived_now_ = true;
  if (trace_ != nullptr) trace_->record_arrival(now_, j, weight);
  return j;
}

Time OnlineDriver::start_of(JobId j) const {
  CALIB_CHECK(j >= 0 && static_cast<std::size_t>(j) < placements_.size());
  return placements_[static_cast<std::size_t>(j)].start;
}

MachineId OnlineDriver::machine_of(JobId j) const {
  CALIB_CHECK(j >= 0 && static_cast<std::size_t>(j) < placements_.size());
  return placements_[static_cast<std::size_t>(j)].machine;
}

bool OnlineDriver::all_placed() const {
  return waiting_.empty() &&
         std::all_of(placements_.begin(), placements_.end(),
                     [](const Placement& p) { return p.start != kUnscheduled; });
}

Cost OnlineDriver::queue_flow_from(Time start, QueueOrder order) const {
  std::vector<JobId> queue = waiting_;
  switch (order) {
    case QueueOrder::kFifo:
      break;  // waiting_ is already in release order
    case QueueOrder::kHeaviestFirst:
      std::stable_sort(queue.begin(), queue.end(), [&](JobId a, JobId b) {
        return jobs_[static_cast<std::size_t>(a)].weight >
               jobs_[static_cast<std::size_t>(b)].weight;
      });
      break;
    case QueueOrder::kLightestFirst:
      std::stable_sort(queue.begin(), queue.end(), [&](JobId a, JobId b) {
        return jobs_[static_cast<std::size_t>(a)].weight <
               jobs_[static_cast<std::size_t>(b)].weight;
      });
      break;
  }
  Cost flow = 0;
  Time t = start;
  for (const JobId j : queue) {
    const Job& job = jobs_[static_cast<std::size_t>(j)];
    flow += job.weight * (t + 1 - job.release);
    ++t;
  }
  return flow;
}

Cost OnlineDriver::last_interval_flow() const {
  if (last_cal_start_ == kUnscheduled) return -1;
  Cost flow = 0;
  for (JobId j = 0; static_cast<std::size_t>(j) < jobs_.size(); ++j) {
    const Placement& p = placements_[static_cast<std::size_t>(j)];
    if (p.start == kUnscheduled || p.machine != last_cal_machine_) continue;
    if (p.start >= last_cal_start_ && p.start < last_cal_start_ + T()) {
      flow += jobs_[static_cast<std::size_t>(j)].weight *
              (p.start + 1 - jobs_[static_cast<std::size_t>(j)].release);
    }
  }
  return flow;
}

MachineId OnlineDriver::calibrate_round_robin() {
  static const obs::Counter calibrations =
      obs::metrics().counter("online.calibrations");
  calibrations.add();
  const MachineId m = next_rr_machine_;
  next_rr_machine_ = static_cast<MachineId>((next_rr_machine_ + 1) %
                                            calendar_.machines());
  calendar_.add(m, now_);
  last_cal_start_ = now_;
  last_cal_machine_ = m;
  if (trace_ != nullptr) trace_->record_calibration(now_, m);
  return m;
}

void OnlineDriver::assign(JobId j, MachineId m, Time start) {
  CALIB_CHECK(j >= 0 && static_cast<std::size_t>(j) < jobs_.size());
  CALIB_CHECK_MSG(placements_[static_cast<std::size_t>(j)].start ==
                      kUnscheduled,
                  "job " << j << " assigned twice");
  CALIB_CHECK_MSG(start >= jobs_[static_cast<std::size_t>(j)].release,
                  "job " << j << " assigned before release");
  CALIB_CHECK_MSG(start >= now_, "cannot assign into the past");
  CALIB_CHECK_MSG(calendar_.covers(m, start),
                  "slot (m" << m << ", t=" << start << ") is not calibrated");
  auto& occ = occupied_[static_cast<std::size_t>(m)];
  auto it = std::lower_bound(occ.begin(), occ.end(), start);
  CALIB_CHECK_MSG(it == occ.end() || *it != start,
                  "slot (m" << m << ", t=" << start << ") already occupied");
  occ.insert(it, start);
  placements_[static_cast<std::size_t>(j)] = Placement{start, m};
  waiting_.erase(std::find(waiting_.begin(), waiting_.end(), j));
  if (trace_ != nullptr) trace_->record_placement(now_, j, m, start);
}

Time OnlineDriver::first_free_slot(MachineId m, Time from, Time to) const {
  const auto& occ = occupied_[static_cast<std::size_t>(m)];
  for (Time t = from; t < to; ++t) {
    if (!calendar_.covers(m, t)) continue;
    if (!std::binary_search(occ.begin(), occ.end(), t)) return t;
  }
  return kUnscheduled;
}

void OnlineDriver::auto_assign() {
  // Observation 2.1 step 3: every calibrated, free machine takes the
  // best waiting job per the policy's order.
  for (MachineId m = 0; m < calendar_.machines() && !waiting_.empty(); ++m) {
    if (!calendar_.covers(m, now_)) continue;
    const auto& occ = occupied_[static_cast<std::size_t>(m)];
    if (std::binary_search(occ.begin(), occ.end(), now_)) continue;
    // Pick per order; waiting_ is ascending release (and arrival) order,
    // so stable selection gives the documented tie-breaks.
    std::size_t best = 0;
    if (policy_.order() != QueueOrder::kFifo) {
      for (std::size_t i = 1; i < waiting_.size(); ++i) {
        const Weight wi =
            jobs_[static_cast<std::size_t>(waiting_[i])].weight;
        const Weight wb =
            jobs_[static_cast<std::size_t>(waiting_[best])].weight;
        const bool better = policy_.order() == QueueOrder::kHeaviestFirst
                                ? wi > wb
                                : wi < wb;
        if (better) best = i;
      }
    }
    assign(waiting_[best], m, now_);
  }
}

void OnlineDriver::step() {
  static const obs::Counter steps = obs::metrics().counter("online.steps");
  static const obs::Counter idle_steps =
      obs::metrics().counter("online.idle_steps");
  static const obs::Histogram decide_ns =
      obs::metrics().histogram("online.decide_ns");
  if (budget_ != nullptr) budget_->charge();
  steps.add();
  const std::size_t waiting_before = waiting_.size();
  const int calibrations_before = calendar_.count();
  DriverHandle handle(*this);
  if (policy_.assign_before_decide()) auto_assign();
  const std::uint64_t decide_start = obs::now_ns();
  policy_.decide(handle);
  decide_ns.record(obs::now_ns() - decide_start);
  if (policy_.assign_after_decide()) auto_assign();
  // A step that had work queued but neither placed a job nor opened a
  // calibration is idle time the policy chose (or was forced) to eat.
  if (!waiting_.empty() && waiting_.size() == waiting_before &&
      calendar_.count() == calibrations_before) {
    idle_steps.add();
  }
  arrived_now_ = false;
  ++now_;
}

void OnlineDriver::drain() {
  // Any sane policy calibrates within O(G) steps of work existing; the
  // guard only trips on a policy that starves its queue.
  const Time guard =
      now_ + G_ + (static_cast<Time>(jobs_.size()) + 2) * (T() + 2) + 16;
  while (!all_placed()) {
    CALIB_CHECK_MSG(now_ <= guard, "policy failed to drain its queue (now="
                                       << now_ << ", guard=" << guard << ")");
    step();
  }
}

Instance OnlineDriver::realized_instance() const {
  return Instance(jobs_, T(), machines());
}

Schedule OnlineDriver::realized_schedule() const {
  // Instance() re-sorts jobs by (release, weight desc); map placements
  // through the same permutation so index i of the instance matches.
  std::vector<std::size_t> perm(jobs_.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (jobs_[a].release != jobs_[b].release)
                       return jobs_[a].release < jobs_[b].release;
                     return jobs_[a].weight > jobs_[b].weight;
                   });
  Schedule schedule(calendar_, static_cast<int>(jobs_.size()));
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const Placement& p = placements_[perm[i]];
    if (p.start != kUnscheduled) {
      schedule.place(static_cast<JobId>(i), p.machine, p.start);
    }
  }
  return schedule;
}

Cost OnlineDriver::online_cost() const {
  Cost flow = 0;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const Placement& p = placements_[j];
    CALIB_CHECK_MSG(p.start != kUnscheduled,
                    "online_cost before drain(): job " << j << " unplaced");
    flow += jobs_[j].weight * (p.start + 1 - jobs_[j].release);
  }
  return G_ * calendar_.count() + flow;
}

Schedule run_online(const Instance& instance, Cost G, OnlinePolicy& policy,
                    Trace* trace, Budget* budget) {
  OnlineDriver driver(instance.T(), instance.machines(), G, policy);
  driver.set_trace(trace);
  driver.set_budget(budget);
  JobId next = 0;
  // Jobs release at nonnegative times; the driver clock starts at 0.
  while (next < instance.size() || !driver.all_placed()) {
    while (next < instance.size() &&
           instance.job(next).release == driver.now()) {
      driver.add_job(instance.job(next).weight);
      ++next;
    }
    if (next >= instance.size()) {
      driver.drain();
      break;
    }
    driver.step();
  }
  Schedule schedule = driver.realized_schedule();
  const auto error = schedule.validate(instance);
  CALIB_CHECK_MSG(!error.has_value(), "online run produced invalid schedule: "
                                          << *error);
  return schedule;
}

Cost online_objective(const Instance& instance, Cost G,
                      OnlinePolicy& policy) {
  return run_online(instance, G, policy).online_cost(instance, G);
}

SolveResult run_online_result(const Instance& instance, Cost G,
                              OnlinePolicy& policy, Trace* trace) {
  const Timer timer;
  const Schedule schedule = run_online(instance, G, policy, trace);
  return summarize_schedule(policy.name(), instance, schedule, G,
                            timer.millis());
}

}  // namespace calib

# Empty dependencies file for shift_report.
# This may be replaced when dependencies are built.

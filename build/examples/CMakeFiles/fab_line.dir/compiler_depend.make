# Empty compiler generated dependencies file for fab_line.
# This may be replaced when dependencies are built.

#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <string>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace calib {

void ThreadPool::note_enqueued() {
  static const obs::Gauge depth = obs::metrics().gauge("pool.queue_depth");
  static const obs::Counter tasks = obs::metrics().counter("pool.tasks");
  depth.add(1);
  tasks.add();
}

void ThreadPool::note_dequeued(std::uint64_t wait_ns) {
  static const obs::Gauge depth = obs::metrics().gauge("pool.queue_depth");
  static const obs::Histogram wait =
      obs::metrics().histogram("pool.queue_wait_us");
  depth.add(-1);
  wait.record(wait_ns / 1000);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // Touch the obs singletons before spawning workers: function-local
  // statics are destroyed in reverse order of construction completion,
  // so this guarantees the registry/collector outlive the pool (workers
  // record into them right up until join).
  obs::metrics();
  obs::tracer();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      obs::tracer().set_thread_name("worker-" + std::to_string(i));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size() * 4);
  // Failures are caught per *index*, not per chunk: one throwing index
  // neither aborts its chunk's remaining indices nor hides later
  // failures, so the failure set — and the aggregate message below — is
  // identical at every thread count and chunking.
  Mutex errors_mutex;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    futures.push_back(submit([begin, end, &body, &errors, &errors_mutex] {
      for (std::size_t i = begin; i < end; ++i) {
        try {
          body(i);
        } catch (...) {
          const MutexLock lock(errors_mutex);
          errors.emplace_back(i, std::current_exception());
        }
      }
    }));
  }
  for (auto& future : futures) future.get();
  if (errors.empty()) return;
  // Submission-index order, regardless of which worker caught what when.
  std::sort(errors.begin(), errors.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (errors.size() == 1) std::rethrow_exception(errors.front().second);
  constexpr std::size_t kMaxMessages = 8;
  std::string message = "parallel_for: " + std::to_string(errors.size()) +
                        " tasks failed:";
  for (std::size_t i = 0; i < std::min(errors.size(), kMaxMessages); ++i) {
    message += " [task " + std::to_string(errors[i].first) + ": ";
    try {
      std::rethrow_exception(errors[i].second);
    } catch (const std::exception& error) {
      message += error.what();
    } catch (...) {
      message += "non-standard exception";
    }
    message += "]";
  }
  if (errors.size() > kMaxMessages) message += " ...";
  throw std::runtime_error(message);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace calib

#include "online/baselines.hpp"

#include "util/check.hpp"

namespace calib {
namespace {

/// Count machines with an uncovered current step (candidates to
/// calibrate); the baselines calibrate one machine per waiting job that
/// has no slot this step.
int uncalibrated_machines(const DriverHandle& handle) {
  int count = 0;
  for (MachineId m = 0; m < handle.machines(); ++m) {
    if (!handle.calibrated(m, handle.now())) ++count;
  }
  return count;
}

}  // namespace

void EagerPolicy::decide(DriverHandle& handle) {
  // Calibrate until every waiting job can start this very step.
  auto waiting = static_cast<int>(handle.waiting_count());
  int calibrated_free = handle.machines() - uncalibrated_machines(handle);
  while (waiting > calibrated_free && calibrated_free < handle.machines()) {
    handle.calibrate();
    ++calibrated_free;
  }
}

void SkiRentalPolicy::decide(DriverHandle& handle) {
  if (handle.waiting_empty()) return;
  // Rent (wait) until the queue's hypothetical flow pays for a buy
  // (one calibration); no count trigger, no immediate calibrations.
  for (MachineId m = 0; m < handle.machines(); ++m) {
    if (handle.calibrated(m, handle.now())) return;  // already calibrated
  }
  const Cost f = handle.queue_flow_from(handle.now() + 1,
                                        QueueOrder::kHeaviestFirst);
  if (f >= handle.G()) handle.calibrate();
}

PeriodicPolicy::PeriodicPolicy(Time period) : period_(period) {
  CALIB_CHECK(period >= 1);
}

void PeriodicPolicy::decide(DriverHandle& handle) {
  if (handle.waiting_empty()) return;
  if (handle.now() % period_ != 0) return;
  for (MachineId m = 0; m < handle.machines(); ++m) {
    if (!handle.calibrated(m, handle.now())) {
      handle.calibrate();
      return;
    }
  }
}

}  // namespace calib
